//! Quickstart: parse an SSA function, precompute the liveness checker
//! once, and ask live-in/live-out questions about any value at any
//! block.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use fastlive::core::FunctionLiveness;
use fastlive::ir::parse_function;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A counting loop: block1 is the header, v2 the loop-carried
    // counter (a φ expressed as a block parameter), v0 the bound.
    let func = parse_function(
        "function %count {
         block0(v0):
             v1 = iconst 0
             jump block1(v1)
         block1(v2):
             v3 = iconst 1
             v4 = iadd v2, v3
             v5 = icmp_slt v4, v0
             brif v5, block1(v4), block2
         block2:
             return v4
         }",
    )?;
    println!("{func}\n");

    // One variable-independent precomputation (Definition 4/5 sets)...
    let live = FunctionLiveness::compute(&func);

    // ...then O(|uses|) queries for anything, any time.
    println!("value  block    live-in  live-out");
    for name in ["v0", "v1", "v2", "v4"] {
        let v = func.value(name).expect("value exists");
        for b in func.blocks() {
            println!(
                "{name:>5}  {b:<8} {:>7}  {:>8}",
                live.is_live_in(&func, v, b),
                live.is_live_out(&func, v, b),
            );
        }
    }

    // The structural sets of the paper, for the curious:
    let checker = live.checker();
    println!("\nCFG reducible: {}", checker.is_reducible());
    for b in func.blocks() {
        println!(
            "  T_{} = {:?}   R_{} = {:?}",
            b.as_u32(),
            checker.t_set(b.as_u32()),
            b.as_u32(),
            checker.r_set(b.as_u32()),
        );
    }
    Ok(())
}
