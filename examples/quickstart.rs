//! Quickstart: parse an SSA module, open the facade's one front door,
//! and ask live-in/live-out questions about any value at any block —
//! by name, the way you'd type them.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use fastlive::{parse_module, Fastlive, LivenessChecker, Query, Response};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A counting loop: block1 is the header, v2 the loop-carried
    // counter (a φ expressed as a block parameter), v0 the bound.
    let module = parse_module(
        "function %count {
         block0(v0):
             v1 = iconst 0
             jump block1(v1)
         block1(v2):
             v3 = iconst 1
             v4 = iadd v2, v3
             v5 = icmp_slt v4, v0
             brif v5, block1(v4), block2
         block2:
             return v4
         }",
    )?;
    let func = module.func(0);
    println!("{func}\n");

    // One configured stack (builder defaults are fine here), one
    // session — the variable-independent precomputation runs once.
    let fl = Fastlive::builder().build()?;
    let mut session = fl.session(&module);

    // ...then O(|uses|) queries for anything, any time — grouped
    // through the planner, which answers all these block probes from
    // one batch-row pass.
    let names = ["v0", "v1", "v2", "v4"];
    let mut queries = Vec::new();
    for name in names {
        for b in func.blocks() {
            queries.push(Query::live_in("count", name, b));
            queries.push(Query::live_out("count", name, b));
        }
    }
    let answers = session.run_queries(&module, &queries);
    println!("value  block    live-in  live-out");
    let mut it = answers.iter();
    for name in names {
        for b in func.blocks() {
            let live_in = it.next().unwrap().as_ref();
            let live_out = it.next().unwrap().as_ref();
            println!(
                "{name:>5}  {b:<8} {:>7}  {:>8}",
                live_in.map(|r| r == &Response::Live(true)) == Ok(true),
                live_out.map(|r| r == &Response::Live(true)) == Ok(true),
            );
        }
    }

    // Scalar typed conveniences answer one-offs without Query plumbing.
    assert!(session.is_live_in(&module, "count", "v0", "block1")?);
    assert!(!session.is_live_in(&module, "count", "v0", "block2")?);

    // The structural sets of the paper, for the curious (the lower
    // layers stay importable straight from the facade crate root):
    let checker = LivenessChecker::compute(func);
    println!("\nCFG reducible: {}", checker.is_reducible());
    for b in func.blocks() {
        println!(
            "  T_{} = {:?}   R_{} = {:?}",
            b.as_u32(),
            checker.t_set(b.as_u32()),
            b.as_u32(),
            checker.r_set(b.as_u32()),
        );
    }
    Ok(())
}
