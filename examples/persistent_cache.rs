//! The cross-process cache end to end, through the facade: one
//! `Fastlive` analyzes a module with a persist directory configured
//! (paying the precomputations and writing them through), a second —
//! standing in for tomorrow's compiler invocation — analyzes the same
//! module from a cold start and is served entirely from disk. A
//! vandalized cache file then shows the corruption policy (a clean
//! reject, a recomputation, a repaired store), and the builder's `gc`
//! flag prunes the store on the way back in.
//!
//! ```text
//! cargo run --example persistent_cache
//! ```

use fastlive::{parse_module, CfgShape, Fastlive, PersistStore};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let module = parse_module(
        "function %count { block0(v0):
             v1 = iconst 0
             jump block1(v1)
         block1(v2):
             v3 = iconst 1
             v4 = iadd v2, v3
             v5 = icmp_slt v4, v0
             brif v5, block1(v4), block2
         block2:
             return v4 }
         function %straight { block0(v0):
             v1 = imul v0, v0
             return v1 }",
    )?;
    let dir = std::env::temp_dir().join(format!("fastlive-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // ---- Process 1: cold build, write-through.
    let first = Fastlive::builder().persist_dir(&dir).build()?;
    let mut session = first.session(&module);
    let stats = first.engine().cache_stats();
    println!(
        "first engine : {} precomputations, {} written to {}",
        stats.misses,
        stats.disk_misses,
        dir.display()
    );
    println!(
        "               v0 live-in at block1 of %count: {}",
        session.is_live_in(&module, "count", "v0", "block1")?
    );

    // ---- "Process 2": a brand-new facade, cold memory, same dir.
    let second = Fastlive::builder().persist_dir(&dir).build()?;
    let mut session2 = second.session(&module);
    let stats2 = second.engine().cache_stats();
    println!(
        "second engine: {} in-memory hits, {} disk hits, {} precomputations",
        stats2.hits,
        stats2.disk_hits,
        stats2.misses - stats2.disk_hits
    );
    assert_eq!(
        session.is_live_in(&module, "count", "v0", "block1")?,
        session2.is_live_in(&module, "count", "v0", "block1")?,
        "disk-served answers are byte-identical"
    );

    // ---- Corruption: flip a byte in %count's entry.
    let store = PersistStore::new(&dir);
    let count = module.by_name("count").unwrap();
    let path = store.entry_path(&CfgShape::of(module.func(count)));
    let mut bytes = std::fs::read(&path)?;
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes)?;

    let third = Fastlive::builder().persist_dir(&dir).build()?;
    let mut session3 = third.session(&module);
    let stats3 = third.engine().cache_stats();
    println!(
        "third engine : {} disk hits, {} disk rejects (corrupt entry recomputed + overwritten)",
        stats3.disk_hits, stats3.disk_rejects
    );
    assert_eq!(stats3.disk_rejects, 1);
    assert!(
        session3.is_live_in(&module, "count", "v0", "block1")?,
        "a corrupt file can cost a recomputation, never an answer"
    );

    // The overwrite repaired the store: a fourth cold start is clean.
    let fourth = Fastlive::builder().persist_dir(&dir).build()?;
    let _ = fourth.session(&module);
    println!(
        "fourth engine: {} disk hits, {} rejects — store healed",
        fourth.engine().cache_stats().disk_hits,
        fourth.engine().cache_stats().disk_rejects
    );

    // ---- Maintenance: the builder's gc flag prunes the store at
    // build() (age- and count-bounded). A gc'd entry just recomputes —
    // one clean disk miss — and the write-through restores it.
    let pruned = Fastlive::builder().persist_dir(&dir).gc(1, None).build()?;
    let mut session5 = pruned.session(&module);
    let stats5 = pruned.engine().cache_stats();
    println!(
        "after gc(1)  : {} disk hit, {} clean recompute — answers unchanged: {}",
        stats5.disk_hits,
        stats5.disk_misses,
        session5.is_live_in(&module, "count", "v0", "block1")?
    );
    assert_eq!(stats5.disk_hits + stats5.disk_misses, 2);
    assert_eq!(stats5.disk_rejects, 0);

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
