//! The paper's motivating property, §1: "the analysis result survives
//! all program transformations except for changes in the control-flow
//! graph."
//!
//! This example opens one facade session, then keeps editing the
//! function — inserting instructions, adding and removing uses,
//! creating fresh values — and shows that every answer stays exact
//! (validated against a brute-force path-search oracle after each
//! edit) with **zero recomputations**, while a set-based data-flow
//! result computed at the start silently goes stale.
//!
//! ```text
//! cargo run --example jit_invalidation
//! ```

use fastlive::dataflow::oracle;
use fastlive::ir::{InstData, UnaryOp};
use fastlive::{parse_module, Fastlive, IterativeLiveness, VarUniverse};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut module = parse_module(
        "function %jit {
         block0(v0):
             v1 = iconst 0
             jump block1(v1)
         block1(v2):
             v3 = iconst 1
             v4 = iadd v2, v3
             v5 = icmp_slt v4, v0
             brif v5, block1(v4), block2
         block2:
             return v4
         }",
    )?;

    // Both analyses run once, before any edit: the facade session
    // (backed by the paper's checker) and a classic set-based solve.
    let fl = Fastlive::builder().build()?;
    let mut session = fl.session(&module);
    let stale_sets = IterativeLiveness::compute(module.func(0), &VarUniverse::all(module.func(0)));

    let v0 = module.func(0).value("v0").unwrap();
    let block2 = module.func(0).block_by_index(2);
    println!("initially: v0 live-in at block2?");
    println!(
        "  facade:  {}",
        session.is_live_in(&module, "jit", "v0", "block2")?
    );
    println!("  sets:    {}", stale_sets.is_live_in(v0, block2));
    assert!(!session.is_live_in(&module, "jit", "v0", "block2")?);

    // --- Edit 1: a JIT pass sinks a use of v0 into block2. ---
    let neg = module.func_mut(0).insert_inst(
        block2,
        0,
        InstData::Unary {
            op: UnaryOp::Ineg,
            arg: v0,
        },
    );
    println!("\nafter inserting `ineg v0` into block2:");
    let now = session.is_live_in(&module, "jit", "v0", "block2")?;
    println!("  facade:  {now}   (no recomputation!)");
    println!(
        "  sets:    {}   (STALE - still the old answer)",
        stale_sets.is_live_in(v0, block2)
    );
    assert!(now);
    assert_eq!(
        now,
        oracle::live_in_value(module.func(0), v0, block2),
        "facade matches ground truth"
    );
    assert!(
        !stale_sets.is_live_in(v0, block2),
        "the set-based result is now wrong"
    );

    // --- Edit 2: create a brand-new value and use it across the loop. ---
    let entry = module.func(0).entry_block();
    let k = module
        .func_mut(0)
        .insert_inst(entry, 0, InstData::IntConst { imm: 42 });
    let kv = module.func(0).inst_result(k).unwrap();
    module.func_mut(0).insert_inst(
        block2,
        0,
        InstData::Unary {
            op: UnaryOp::Bnot,
            arg: kv,
        },
    );
    let block1 = module.func(0).block_by_index(1);
    println!(
        "\nafter creating v{} in block0 and using it in block2:",
        kv.as_u32()
    );
    let through_loop = session.is_live_in(&module, "jit", kv, block1)?;
    println!("  facade:  new value live through the loop header? {through_loop}");
    assert!(through_loop);
    assert_eq!(
        through_loop,
        oracle::live_in_value(module.func(0), kv, block1)
    );
    println!("  sets:    cannot answer at all (value not in the universe)");

    // --- Edit 3: remove the sunk use again; liveness reverts. ---
    module.func_mut(0).remove_inst(neg);
    println!("\nafter removing the `ineg` again:");
    let back = session.is_live_in(&module, "jit", "v0", "block2")?;
    println!("  facade:  {back}");
    assert!(!back);
    assert_eq!(back, oracle::live_in_value(module.func(0), v0, block2));

    // The engine session under the facade confirms: all of the above
    // cost zero recomputations — instruction edits are free.
    let engine_session = session.engine_session().expect("session backend");
    assert_eq!(engine_session.recomputations(), 0);
    println!("\nok: every facade answer stayed exact across all edits (0 recomputations)");
    Ok(())
}
