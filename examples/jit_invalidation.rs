//! The paper's motivating property, §1: "the analysis result survives
//! all program transformations except for changes in the control-flow
//! graph."
//!
//! This example precomputes liveness *once*, then keeps editing the
//! function — inserting instructions, adding and removing uses,
//! creating fresh values — and shows that every answer stays exact
//! (validated against a brute-force path-search oracle after each
//! edit), while a set-based data-flow result computed at the start
//! silently goes stale.
//!
//! ```text
//! cargo run --example jit_invalidation
//! ```

use fastlive::core::FunctionLiveness;
use fastlive::dataflow::{oracle, IterativeLiveness, VarUniverse};
use fastlive::ir::{parse_function, InstData, UnaryOp};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut func = parse_function(
        "function %jit {
         block0(v0):
             v1 = iconst 0
             jump block1(v1)
         block1(v2):
             v3 = iconst 1
             v4 = iadd v2, v3
             v5 = icmp_slt v4, v0
             brif v5, block1(v4), block2
         block2:
             return v4
         }",
    )?;

    // Both analyses run once, before any edit.
    let live = FunctionLiveness::compute(&func);
    let stale_sets = IterativeLiveness::compute(&func, &VarUniverse::all(&func));

    let v0 = func.value("v0").unwrap();
    let block2 = func.block_by_index(2);
    println!("initially: v0 live-in at block2?");
    println!("  checker: {}", live.is_live_in(&func, v0, block2));
    println!("  sets:    {}", stale_sets.is_live_in(v0, block2));
    assert!(!live.is_live_in(&func, v0, block2));

    // --- Edit 1: a JIT pass sinks a use of v0 into block2. ---
    let neg = func.insert_inst(
        block2,
        0,
        InstData::Unary {
            op: UnaryOp::Ineg,
            arg: v0,
        },
    );
    println!("\nafter inserting `ineg v0` into block2:");
    let now = live.is_live_in(&func, v0, block2);
    println!("  checker: {now}   (no recomputation!)");
    println!(
        "  sets:    {}   (STALE - still the old answer)",
        stale_sets.is_live_in(v0, block2)
    );
    assert!(now);
    assert_eq!(
        now,
        oracle::live_in_value(&func, v0, block2),
        "checker matches ground truth"
    );
    assert!(
        !stale_sets.is_live_in(v0, block2),
        "the set-based result is now wrong"
    );

    // --- Edit 2: create a brand-new value and use it across the loop. ---
    let k = func.insert_inst(func.entry_block(), 0, InstData::IntConst { imm: 42 });
    let kv = func.inst_result(k).unwrap();
    func.insert_inst(
        block2,
        0,
        InstData::Unary {
            op: UnaryOp::Bnot,
            arg: kv,
        },
    );
    let block1 = func.block_by_index(1);
    println!(
        "\nafter creating v{} in block0 and using it in block2:",
        kv.as_u32()
    );
    let through_loop = live.is_live_in(&func, kv, block1);
    println!("  checker: new value live through the loop header? {through_loop}");
    assert!(through_loop);
    assert_eq!(through_loop, oracle::live_in_value(&func, kv, block1));
    println!("  sets:    cannot answer at all (value not in the universe)");

    // --- Edit 3: remove the sunk use again; liveness reverts. ---
    func.remove_inst(neg);
    println!("\nafter removing the `ineg` again:");
    let back = live.is_live_in(&func, v0, block2);
    println!("  checker: {back}");
    assert!(!back);
    assert_eq!(back, oracle::live_in_value(&func, v0, block2));

    println!("\nok: every checker answer stayed exact across all edits");
    Ok(())
}
