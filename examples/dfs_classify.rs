//! Figure 1 of the paper, interactively: classify the edges of a CFG
//! into tree/back/forward/cross and emit a Graphviz drawing with back
//! edges dashed (the paper's convention).
//!
//! ```text
//! cargo run --example dfs_classify | dot -Tsvg > figure1.svg
//! ```

use fastlive::cfg::{DfsTree, DomTree, EdgeClass, Reducibility};
use fastlive::graph::{dot, DiGraph};

fn main() {
    // A graph with all four edge classes: a loop (back), a shortcut
    // (forward), and a join between two subtrees (cross).
    let g = DiGraph::from_edges(
        7,
        0,
        &[
            (0, 1),
            (1, 2),
            (2, 1),
            (2, 3),
            (0, 4),
            (4, 5),
            (5, 3),
            (0, 3),
            (5, 0),
        ],
    );
    let dfs = DfsTree::compute(&g);
    let dom = DomTree::compute(&g, &dfs);

    eprintln!("edge classification (DFS from node 0):");
    for (u, v, class) in dfs.classified_edges() {
        eprintln!("  {u} -> {v}: {class}");
    }
    let red = Reducibility::compute(&dfs, &dom);
    eprintln!(
        "back edges: {:?}; reducible: {}",
        dfs.back_edges(),
        red.is_reducible()
    );

    // The drawing goes to stdout for piping into `dot`.
    let style = dot::Style {
        node_label: Box::new(|n| n.to_string()),
        node_attrs: Box::new(|_| String::new()),
        edge_attrs: Box::new(|u, i, _| match dfs.edge_class_at(u, i) {
            EdgeClass::Back => "style=dashed, color=red".into(),
            EdgeClass::Cross => "color=blue".into(),
            EdgeClass::Forward => "color=darkgreen".into(),
            _ => String::new(),
        }),
    };
    println!("{}", dot::render(&g, "figure1", &style));
}
