//! The paper's evaluation workload end to end: generate a program,
//! construct SSA, run Sreedhar Method III SSA destruction with the
//! liveness checker answering the interference queries, and execute
//! both versions to confirm they agree.
//!
//! ```text
//! cargo run --example ssa_destruction
//! ```

use fastlive::construct::run_pre;
use fastlive::destruct::{destruct_ssa, CheckerEngine};
use fastlive::ir::interp;
use fastlive::workload::{generate_function, GenParams};
use fastlive::{Fastlive, Module};

fn main() {
    let params = GenParams {
        target_blocks: 14,
        num_params: 2,
        ..GenParams::default()
    };
    let (_, ssa) = generate_function("demo", params, 2008);
    println!("=== SSA input ===\n{ssa}\n");

    let result = destruct_ssa(ssa.clone(), CheckerEngine::compute);
    println!(
        "=== after copy insertion (φs still present) ===\n{}\n",
        result.func
    );

    println!("=== destruction statistics ===");
    println!("  φs processed:        {}", result.stats.phis_processed);
    println!("  critical edges split: {}", result.stats.split_edges);
    println!("  liveness queries:    {}", result.stats.queries.len());
    println!("  interference tests:  {}", result.stats.interference_tests);
    println!("  copies inserted:     {}", result.stats.copies_inserted);
    println!("  copies coalesced:    {}", result.stats.copies_coalesced);
    println!("  Method-I fallbacks:  {}", result.stats.fallback_phis);

    // The same interference primitive the destruction pass consumed is
    // a first-class facade query: spot-check a few value pairs through
    // the one front door.
    let mut module = Module::new();
    let demo = module.push(ssa.clone());
    let fl = Fastlive::builder().build().expect("default config");
    let mut session = fl.session(&module);
    let values: Vec<_> = module.func(demo).values().collect();
    let mut interfering = 0usize;
    for pair in values.windows(2) {
        if session
            .values_interfere(&module, demo, pair[0], pair[1])
            .expect("no detached definitions")
        {
            interfering += 1;
        }
    }
    println!(
        "\n=== facade spot-check ===\n  {} of {} adjacent value pairs interfere (Budimlić test)",
        interfering,
        values.len().saturating_sub(1),
    );

    // Semantic check: SSA and the out-of-SSA program must agree.
    println!("\n=== semantics (SSA vs out-of-SSA) ===");
    for args in [[3i64, 5], [0, 0], [-7, 2], [40, -1]] {
        let a = interp::run(&ssa, &args, 1_000_000).expect("ssa runs");
        let b = run_pre(&result.pre, &args, 1_000_000).expect("pre runs");
        assert_eq!(a.returned, b.returned, "mismatch on {args:?}");
        println!("  f({args:?}) = {:?}  (both)", a.returned);
    }
    println!("\nok: identical results on all probes");
}
