//! A guided tour of §3.2 of the paper on its own Figure 3 example:
//! the sets `R_v` and `T_q`, and why each of the four narrated queries
//! answers the way it does.
//!
//! ```text
//! cargo run --example figure3_walkthrough
//! ```

use fastlive::graph::DiGraph;
use fastlive::LivenessChecker;

fn main() {
    // The example CFG, nodes 0-based (paper node k = k-1).
    let g = DiGraph::from_edges(
        11,
        0,
        &[
            (0, 1),
            (1, 2),
            (1, 10),
            (2, 3),
            (2, 7),
            (3, 4),
            (4, 5),
            (5, 6),
            (5, 4),
            (6, 1),
            (7, 8),
            (8, 9),
            (8, 5),
            (9, 7),
            (9, 10),
        ],
    );
    let live = LivenessChecker::compute(&g);
    let paper = |n: u32| n + 1;

    println!("Figure 3 of Boissinot et al. (nodes shown in paper numbering)\n");
    println!(
        "back edges E^ = {:?}   (paper: (7,2), (6,5), (10,8))",
        live.dfs()
            .back_edges()
            .iter()
            .map(|&(s, t)| (paper(s), paper(t)))
            .collect::<Vec<_>>()
    );
    println!(
        "reducible: {} (the {{5,6}} loop has two entries)\n",
        live.is_reducible()
    );

    for q in [9u32, 3] {
        let t: Vec<u32> = live.t_set(q).iter().map(|&x| paper(x)).collect();
        let r: Vec<u32> = live.r_set(q).iter().map(|&x| paper(x)).collect();
        println!("T_{:<2} = {t:?}", paper(q));
        println!("R_{:<2} = {r:?}", paper(q));
    }

    // The three variables of the narration: (name, def, use).
    let vars = [("w", 1u32, 3u32), ("x", 2, 8), ("y", 2, 4)];
    println!("\nqueries (paper numbering):");
    for (name, def, usage) in vars {
        {
            let q = 9u32;
            let ans = live.is_live_in(def, &[usage], q);
            println!(
                "  is {name} (def {}, use {}) live-in at {:>2}?  {ans}",
                paper(def),
                paper(usage),
                paper(q),
            );
        }
    }
    let x_at_4 = live.is_live_in(2, &[8], 3);
    println!("  is x (def 3, use 9) live-in at  4?  {x_at_4}");

    println!("\nwhy:");
    println!("  x at 10: use 9 is reduced-reachable from back-edge target 8;");
    println!("  y at 10: two hops, 10 -> 8 -> (cross to 6) -> 5 reaches the use;");
    println!("  w at 10: candidate 2 is def(w) itself - excluded by sdom(def);");
    println!("  x at  4: reaching 8 from 4 would leave and re-enter def(x)'s");
    println!("           dominance subtree, so 8 is not in T_4.");

    assert!(live.is_live_in(2, &[8], 9));
    assert!(live.is_live_in(2, &[4], 9));
    assert!(!live.is_live_in(1, &[3], 9));
    assert!(!x_at_4);
    println!("\nok: all answers match the paper's narration");
}
