//! The analysis engine end to end: a multi-function module is parsed,
//! analyzed in parallel through the CFG-fingerprint cache, queried
//! through a session, edited (instruction-level and CFG-level), and
//! "recompiled" — showing which of those steps cost a precomputation
//! and which are free.
//!
//! ```text
//! cargo run --example engine_module
//! ```

use fastlive::core::FunctionLiveness;
use fastlive::engine::{AnalysisEngine, EngineConfig};
use fastlive::ir::{parse_module, InstData, UnaryOp};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three functions; %square and %cube are CFG-identical (their
    // instructions differ, but the paper's precomputation never reads
    // instructions).
    let mut module = parse_module(
        "function %count { block0(v0):
             v1 = iconst 0
             jump block1(v1)
         block1(v2):
             v3 = iconst 1
             v4 = iadd v2, v3
             v5 = icmp_slt v4, v0
             brif v5, block1(v4), block2
         block2:
             return v4 }
         function %square { block0(v0):
             v1 = imul v0, v0
             return v1 }
         function %cube { block0(v0):
             v1 = imul v0, v0
             v2 = imul v1, v0
             return v2 }",
    )?;

    let engine = AnalysisEngine::new(EngineConfig {
        threads: 2,
        ..EngineConfig::default()
    });
    let mut session = engine.analyze(&module);
    let stats = engine.cache_stats();
    println!(
        "analyzed {} functions: {} precomputations, {} shared via fingerprint",
        session.num_functions(),
        stats.misses,
        stats.hits
    );
    // Two distinct shapes end up cached. (Exact hit/miss counts can
    // wobble under >1 worker: two threads may race-compute the shared
    // %square/%cube shape — documented engine behavior.)
    assert_eq!(engine.cache_len(), 2, "%square and %cube share one shape");

    // Scalar queries through the session.
    let count = module.by_name("count").unwrap();
    let v0 = module.func(count).params()[0];
    let block1 = module.func(count).block_by_index(1);
    let block2 = module.func(count).block_by_index(2);
    println!(
        "\n%count: v0 live-in at block1? {}",
        session.is_live_in(&module, count, v0, block1)
    );
    assert!(session.is_live_in(&module, count, v0, block1));
    assert!(!session.is_live_in(&module, count, v0, block2));

    // Instruction-level edit: a JIT sinks a use of v0 into block2.
    // The engine answers exactly, with zero recomputation (epoch 0).
    module.func_mut(count).insert_inst(
        block2,
        0,
        InstData::Unary {
            op: UnaryOp::Ineg,
            arg: v0,
        },
    );
    println!(
        "after sinking a use into block2: live-in there? {} (epoch {})",
        session.is_live_in(&module, count, v0, block2),
        session.epoch(count)
    );
    assert!(session.is_live_in(&module, count, v0, block2));
    assert_eq!(session.epoch(count), 0, "no CFG change, no recompute");

    // CFG-level edit: splitting critical edges adds blocks. The next
    // query detects the stale precomputation and recomputes — that one
    // function only.
    let created = fastlive::ir::split_critical_edges(module.func_mut(count));
    let answer = session.is_live_in(&module, count, v0, block1);
    println!(
        "after splitting {} critical edges: epoch {} and still exact: {}",
        created.len(),
        session.epoch(count),
        answer
            == FunctionLiveness::compute(module.func(count)).is_live_in(
                module.func(count),
                v0,
                block1
            )
    );
    assert_eq!(session.epoch(count), 1);

    // "Recompilation": round-trip the whole module through text. All
    // CFGs are unchanged, so re-analysis is pure cache hits.
    let misses_before = engine.cache_stats().misses;
    let recompiled = parse_module(&module.to_string())?;
    let mut fresh = engine.analyze(&recompiled);
    let stats = engine.cache_stats();
    println!(
        "\nrecompiled module: {} new precomputations ({} total hits)",
        stats.misses - misses_before,
        stats.hits
    );
    assert_eq!(stats.misses, misses_before, "recompilation is free");

    // Dense consumers go through the batched route.
    let batch = fresh.batch(&recompiled, count);
    let func = recompiled.func(count);
    println!(
        "batched live-in sizes per block: {:?}",
        func.blocks()
            .map(|b| batch.live_in_len(b.as_u32()))
            .collect::<Vec<_>>()
    );

    println!("\nok: engine answers stayed exact across edits and recompilation");
    Ok(())
}
