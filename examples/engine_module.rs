//! The facade end to end over a multi-function module: built once via
//! `Fastlive::builder()`, analyzed in parallel through the
//! CFG-fingerprint cache, queried through a typed session, edited
//! (instruction-level and CFG-level), and "recompiled" — showing which
//! of those steps cost a precomputation and which are free.
//!
//! ```text
//! cargo run --example engine_module
//! ```

use fastlive::ir::{split_critical_edges, InstData, UnaryOp};
use fastlive::{parse_module, Fastlive, FunctionLiveness, Query, Response};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three functions; %square and %cube are CFG-identical (their
    // instructions differ, but the paper's precomputation never reads
    // instructions).
    let mut module = parse_module(
        "function %count { block0(v0):
             v1 = iconst 0
             jump block1(v1)
         block1(v2):
             v3 = iconst 1
             v4 = iadd v2, v3
             v5 = icmp_slt v4, v0
             brif v5, block1(v4), block2
         block2:
             return v4 }
         function %square { block0(v0):
             v1 = imul v0, v0
             return v1 }
         function %cube { block0(v0):
             v1 = imul v0, v0
             v2 = imul v1, v0
             return v2 }",
    )?;

    let fl = Fastlive::builder().threads(2).build()?;
    let mut session = fl.session(&module);
    let stats = fl.engine().cache_stats();
    println!(
        "analyzed {} functions: {} precomputations, {} shared via fingerprint",
        module.len(),
        stats.misses,
        stats.hits
    );
    // Two distinct shapes end up cached. (Exact hit/miss counts can
    // wobble under >1 worker: two threads may race-compute the shared
    // %square/%cube shape — documented engine behavior.)
    assert_eq!(
        fl.engine().cache_len(),
        2,
        "%square and %cube share one shape"
    );

    // Scalar typed queries through the session, addressed by name.
    println!(
        "\n%count: v0 live-in at block1? {}",
        session.is_live_in(&module, "count", "v0", "block1")?
    );
    assert!(session.is_live_in(&module, "count", "v0", "block1")?);
    assert!(!session.is_live_in(&module, "count", "v0", "block2")?);

    // Instruction-level edit: a JIT sinks a use of v0 into block2.
    // The facade answers exactly, with zero recomputation (epoch 0).
    let count = module.by_name("count").unwrap();
    let v0 = module.func(count).params()[0];
    let block2 = module.func(count).block_by_index(2);
    module.func_mut(count).insert_inst(
        block2,
        0,
        InstData::Unary {
            op: UnaryOp::Ineg,
            arg: v0,
        },
    );
    let epoch = |s: &fastlive::FastliveSession| s.engine_session().unwrap().epoch(count);
    println!(
        "after sinking a use into block2: live-in there? {} (epoch {})",
        session.is_live_in(&module, "count", "v0", "block2")?,
        epoch(&session)
    );
    assert!(session.is_live_in(&module, "count", "v0", "block2")?);
    assert_eq!(epoch(&session), 0, "no CFG change, no recompute");

    // CFG-level edit: splitting critical edges adds blocks. The next
    // query detects the stale precomputation and recomputes — that one
    // function only.
    let created = split_critical_edges(module.func_mut(count));
    let answer = session.is_live_in(&module, "count", "v0", "block1")?;
    println!(
        "after splitting {} critical edges: epoch {} and still exact: {}",
        created.len(),
        epoch(&session),
        answer
            == FunctionLiveness::compute(module.func(count)).is_live_in(
                module.func(count),
                v0,
                module.func(count).block_by_index(1)
            )
    );
    assert_eq!(epoch(&session), 1);

    // "Recompilation": round-trip the whole module through text. All
    // CFGs are unchanged, so re-analysis is pure cache hits.
    let misses_before = fl.engine().cache_stats().misses;
    let recompiled = parse_module(&module.to_string())?;
    let mut fresh = fl.session(&recompiled);
    let stats = fl.engine().cache_stats();
    println!(
        "\nrecompiled module: {} new precomputations ({} total hits)",
        stats.misses - misses_before,
        stats.hits
    );
    assert_eq!(stats.misses, misses_before, "recompilation is free");

    // Dense consumers ask for whole-function sets in one query.
    let Response::Sets(sets) = fresh.query(&recompiled, &Query::live_sets("count"))? else {
        unreachable!("LiveSets answers Sets");
    };
    println!(
        "batched live-in sizes per block: {:?}",
        sets.live_in.iter().map(Vec::len).collect::<Vec<_>>()
    );

    println!("\nok: facade answers stayed exact across edits and recompilation");
    Ok(())
}
