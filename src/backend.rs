//! The [`QueryEngine`] trait and its three backends.
//!
//! One query plane, three executors behind the [`Backend`] enum:
//!
//! * [`DirectBackend`] — the paper's per-function checker, computed on
//!   demand for each addressed function. No shared state, no cache:
//!   the semantics baseline, and the right choice for one-shot tools.
//! * [`SessionBackend`] — an [`EngineSession`] over the
//!   [`AnalysisEngine`](fastlive_engine::AnalysisEngine)'s two-tier
//!   fingerprint cache, revalidating against CFG edits per query. The
//!   default: this is the production path.
//! * [`OracleBackend`] — the iterative data-flow solver
//!   ([`IterativeLiveness`]), recomputed from scratch on every query.
//!   Slow and stateless by design: its answers are the referee the
//!   differential suites hold the other two against.
//!
//! All three answer byte-identical [`Response`]s for any [`Query`]
//! (`tests/facade_oracle.rs` enforces it over reducible, irreducible
//! and deep-live workloads); they differ only in cost model.

use std::sync::Arc;

use fastlive_cfg::{DfsTree, DomTree};
use fastlive_core::{
    BatchLiveness, FunctionLiveness, LivenessChecker, LivenessProvider, Nullness, NullnessArtifact,
    NullnessFacts, PointError,
};
use fastlive_dataflow::{IterativeLiveness, IterativeNullness, VarUniverse};
use fastlive_destruct::{values_interfere, CheckerEngine};
use fastlive_engine::{AnalysisKind, EngineSession};
use fastlive_ir::{Block, FuncId, Function, Module, ProgramPoint, Value};
use fastlive_telemetry::NoopRecorder;

use crate::plan::{run_planned, scalar_query};
use crate::query::{LiveSets, Query, QueryError, Response};

/// A liveness query executor: one [`Query`] in, one [`Response`] out,
/// batches via [`run_queries`](Self::run_queries).
///
/// Implementations must agree on semantics (Definitions 1–3 of the
/// paper, φ-uses attributed to predecessor blocks) — swapping backends
/// changes performance, never answers.
pub trait QueryEngine {
    /// Answers one query against the module's current state.
    fn query(&mut self, module: &Module, query: &Query) -> Result<Response, QueryError>;

    /// Answers a batch of queries, in input order. The default is a
    /// scalar loop; [`Backend`] and the concrete backends override it
    /// with a plan-and-run execution that groups queries per function,
    /// resolves each function's uses once, and serves grouped
    /// `LiveIn`/`LiveOut` probes from [`BatchLiveness`] rows.
    fn run_queries(
        &mut self,
        module: &Module,
        queries: &[Query],
    ) -> Vec<Result<Response, QueryError>> {
        queries.iter().map(|q| self.query(module, q)).collect()
    }

    /// Short backend name for reports.
    fn backend_name(&self) -> &'static str;
}

/// Which backend a [`Fastlive`](crate::Fastlive) session runs on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BackendKind {
    /// Per-function checker, computed per query ([`DirectBackend`]).
    Direct,
    /// Engine-cached, revalidating ([`SessionBackend`]) — the default.
    #[default]
    Session,
    /// Iterative dataflow, for differential testing ([`OracleBackend`]).
    Oracle,
}

/// The per-function checker backend: every query (or query group)
/// computes the paper's precomputation for the addressed function and
/// answers from it. Stateless between calls.
#[derive(Clone, Debug)]
pub struct DirectBackend {
    subtree_skipping: bool,
}

impl DirectBackend {
    /// A direct backend with §4.1 subtree skipping enabled.
    pub fn new() -> Self {
        DirectBackend {
            subtree_skipping: true,
        }
    }

    /// A direct backend with subtree skipping set explicitly (the
    /// facade builder's `subtree_skipping` knob lands here).
    pub fn with_subtree_skipping(enabled: bool) -> Self {
        DirectBackend {
            subtree_skipping: enabled,
        }
    }
}

impl Default for DirectBackend {
    fn default() -> Self {
        Self::new()
    }
}

/// The engine-cached backend: wraps an [`EngineSession`], so queries
/// ride the fingerprint cache, the persistence tier and the per-query
/// CFG revalidation.
pub struct SessionBackend<'e> {
    session: EngineSession<'e>,
}

impl<'e> SessionBackend<'e> {
    /// Wraps an analyzed session.
    pub fn new(session: EngineSession<'e>) -> Self {
        SessionBackend { session }
    }

    /// The underlying engine session (epochs, recomputation counters).
    pub fn session(&self) -> &EngineSession<'e> {
        &self.session
    }
}

/// The iterative-dataflow oracle backend: recomputes the classic
/// bit-vector fixpoint for the addressed function on **every** query.
/// Deliberately slow and stateless — the independent referee for
/// differential testing of the other backends.
#[derive(Clone, Copy, Debug, Default)]
pub struct OracleBackend;

/// The three executors behind one type — what
/// [`Fastlive::session`](crate::Fastlive::session) hands out (wrapped
/// in a [`FastliveSession`](crate::FastliveSession)).
pub enum Backend<'e> {
    /// Per-function checker.
    Direct(DirectBackend),
    /// Engine-cached session.
    Session(SessionBackend<'e>),
    /// Iterative-dataflow oracle.
    Oracle(OracleBackend),
}

/// One resolved function's analysis state for the duration of a query
/// (or of a whole per-function query group, under the planner): the
/// backend-specific engine plus a lazily computed dominator tree for
/// interference tests.
pub(crate) struct FuncAnalysis {
    kind: LivenessState,
    dom: Option<DomTree>,
}

/// How one resolved function's *liveness* is served. (This used to be
/// named `AnalysisKind`, which now names the engine's analysis-id enum
/// — the facade state is per-backend, the engine enum is per-analysis.)
enum LivenessState {
    /// An owned checker (direct backend). Boxed to keep the enum small
    /// — the checker embeds its matrices and tree arrays inline.
    Checker(Box<FunctionLiveness>),
    /// A cache-shared checker (session backend).
    Shared(Arc<FunctionLiveness>),
    /// The data-flow oracle's solved sets.
    Iterative(IterativeLiveness),
}

/// How one resolved function's *nullness* is served: the exact sparse
/// path (shape-level artifact + solved per-value facts) or the dense
/// iterative referee. Both answer identically — `tests/facade_oracle.rs`
/// and the fuzz campaign's query mix enforce it.
pub(crate) enum NullnessState {
    /// Dominance artifact plus the sparse solve over the function's
    /// current body (direct and session backends — session shares the
    /// artifact through the engine cache).
    Exact {
        art: Arc<NullnessArtifact>,
        facts: NullnessFacts,
    },
    /// The chaotic-iteration referee (oracle backend).
    Oracle(IterativeNullness),
}

impl NullnessState {
    pub(crate) fn fact(&self, v: Value) -> Nullness {
        match self {
            NullnessState::Exact { facts, .. } => facts.of(v),
            NullnessState::Oracle(it) => it.fact(v),
        }
    }

    pub(crate) fn definitely_init(&self, func: &Function, v: Value, q: Block) -> bool {
        match self {
            NullnessState::Exact { art, .. } => art.definitely_initialized_at_entry(func, v, q),
            NullnessState::Oracle(it) => it.definitely_initialized_at_entry(v, q),
        }
    }
}

impl FuncAnalysis {
    fn checker(&self) -> Option<&FunctionLiveness> {
        match &self.kind {
            LivenessState::Checker(c) => Some(c),
            LivenessState::Shared(c) => Some(c),
            LivenessState::Iterative(_) => None,
        }
    }

    pub(crate) fn live_in(&self, func: &Function, v: Value, b: Block) -> bool {
        // Total over every state: the old shape funneled the two
        // checker variants through an `Option` + `expect`, which made
        // adding a variant a latent runtime abort.
        match &self.kind {
            LivenessState::Iterative(it) => it.is_live_in(v, b),
            LivenessState::Checker(c) => c.is_live_in(func, v, b),
            LivenessState::Shared(c) => c.is_live_in(func, v, b),
        }
    }

    pub(crate) fn live_out(&self, func: &Function, v: Value, b: Block) -> bool {
        match &self.kind {
            LivenessState::Iterative(it) => it.is_live_out(v, b),
            LivenessState::Checker(c) => c.is_live_out(func, v, b),
            LivenessState::Shared(c) => c.is_live_out(func, v, b),
        }
    }

    pub(crate) fn live_at(
        &mut self,
        func: &Function,
        v: Value,
        p: ProgramPoint,
    ) -> Result<bool, PointError> {
        match &mut self.kind {
            LivenessState::Iterative(it) => LivenessProvider::live_at(it, func, v, p),
            LivenessState::Checker(c) => c.is_live_at(func, v, p),
            LivenessState::Shared(c) => c.is_live_at(func, v, p),
        }
    }

    pub(crate) fn live_sets(&self, func: &Function) -> LiveSets {
        let from_checker = |c: &FunctionLiveness| {
            let (live_in, live_out) = c.live_sets(func);
            LiveSets { live_in, live_out }
        };
        match &self.kind {
            LivenessState::Iterative(it) => LiveSets {
                live_in: func.blocks().map(|b| it.live_in_set(b)).collect(),
                live_out: func.blocks().map(|b| it.live_out_set(b)).collect(),
            },
            LivenessState::Checker(c) => from_checker(c),
            LivenessState::Shared(c) => from_checker(c),
        }
    }

    /// The dense row snapshot the planner serves grouped `LiveIn` /
    /// `LiveOut` probes from. `None` for the oracle — its block
    /// queries are already O(1) probes into the solved sets.
    pub(crate) fn batch(&self, func: &Function) -> Option<BatchLiveness> {
        self.checker().map(|c| c.batch(func))
    }

    pub(crate) fn interfere(
        &mut self,
        func: &Function,
        a: Value,
        b: Value,
    ) -> Result<bool, PointError> {
        let dom = self.dom.get_or_insert_with(|| {
            let dfs = DfsTree::compute(func);
            DomTree::compute(func, &dfs)
        });
        match &mut self.kind {
            LivenessState::Checker(c) => values_interfere(c.as_mut(), func, dom, a, b),
            LivenessState::Shared(arc) => {
                let mut engine = CheckerEngine::from_shared(Arc::clone(arc));
                values_interfere(&mut engine, func, dom, a, b)
            }
            LivenessState::Iterative(it) => values_interfere(it, func, dom, a, b),
        }
    }
}

/// Internal hook the scalar executor and the planner share: produce
/// the analysis state for one resolved function. Fallible because the
/// session backend's analysis may itself have failed (a panicked
/// precomputation under fault injection) — that failure becomes a
/// per-query [`QueryError::AnalysisFailed`], never a crash.
pub(crate) trait AnalysisSource {
    fn analysis_for(&mut self, module: &Module, id: FuncId) -> Result<FuncAnalysis, QueryError>;

    /// The nullness state for one resolved function — only called for
    /// groups that actually carry nullness queries, so liveness-only
    /// batches never pay for the second analysis.
    fn nullness_for(&mut self, module: &Module, id: FuncId) -> Result<NullnessState, QueryError>;

    /// Advisory cache warm-up for a cross-function batch: resolve the
    /// given `(function, analysis)` pairs through whatever parallelism
    /// the backend owns before the planner's sequential group loop.
    /// Default: nothing (the stateless backends compute per group
    /// anyway); the session backend threads the batch through the
    /// engine's worker pool.
    fn prefetch(&mut self, _module: &Module, _requests: &[(FuncId, AnalysisKind)]) {}
}

impl AnalysisSource for DirectBackend {
    fn analysis_for(&mut self, module: &Module, id: FuncId) -> Result<FuncAnalysis, QueryError> {
        let func = module.func(id);
        let mut checker = LivenessChecker::compute(func);
        checker.set_subtree_skipping(self.subtree_skipping);
        Ok(FuncAnalysis {
            kind: LivenessState::Checker(Box::new(FunctionLiveness::from_checker(checker))),
            dom: None,
        })
    }

    fn nullness_for(&mut self, module: &Module, id: FuncId) -> Result<NullnessState, QueryError> {
        // Computed over the function directly; dominance and frontiers
        // are successor-order independent, so this agrees bit-for-bit
        // with the session backend's canonical-graph artifact.
        let func = module.func(id);
        let art = Arc::new(NullnessArtifact::compute(func));
        let facts = art.solve(func);
        Ok(NullnessState::Exact { art, facts })
    }
}

impl AnalysisSource for SessionBackend<'_> {
    fn analysis_for(&mut self, module: &Module, id: FuncId) -> Result<FuncAnalysis, QueryError> {
        Ok(FuncAnalysis {
            kind: LivenessState::Shared(self.session.analysis(module, id)?),
            dom: None,
        })
    }

    fn nullness_for(&mut self, module: &Module, id: FuncId) -> Result<NullnessState, QueryError> {
        let art = self.session.nullness(module, id)?;
        let facts = art.solve(module.func(id));
        Ok(NullnessState::Exact { art, facts })
    }

    fn prefetch(&mut self, module: &Module, requests: &[(FuncId, AnalysisKind)]) {
        self.session.engine().prefetch(module, requests);
    }
}

impl AnalysisSource for OracleBackend {
    fn analysis_for(&mut self, module: &Module, id: FuncId) -> Result<FuncAnalysis, QueryError> {
        let func = module.func(id);
        Ok(FuncAnalysis {
            kind: LivenessState::Iterative(IterativeLiveness::compute(
                func,
                &VarUniverse::all(func),
            )),
            dom: None,
        })
    }

    fn nullness_for(&mut self, module: &Module, id: FuncId) -> Result<NullnessState, QueryError> {
        Ok(NullnessState::Oracle(IterativeNullness::compute(
            module.func(id),
        )))
    }
}

impl AnalysisSource for Backend<'_> {
    fn analysis_for(&mut self, module: &Module, id: FuncId) -> Result<FuncAnalysis, QueryError> {
        match self {
            Backend::Direct(b) => b.analysis_for(module, id),
            Backend::Session(b) => b.analysis_for(module, id),
            Backend::Oracle(b) => b.analysis_for(module, id),
        }
    }

    fn nullness_for(&mut self, module: &Module, id: FuncId) -> Result<NullnessState, QueryError> {
        match self {
            Backend::Direct(b) => b.nullness_for(module, id),
            Backend::Session(b) => b.nullness_for(module, id),
            Backend::Oracle(b) => b.nullness_for(module, id),
        }
    }

    fn prefetch(&mut self, module: &Module, requests: &[(FuncId, AnalysisKind)]) {
        match self {
            Backend::Direct(b) => b.prefetch(module, requests),
            Backend::Session(b) => b.prefetch(module, requests),
            Backend::Oracle(b) => b.prefetch(module, requests),
        }
    }
}

macro_rules! query_engine_impl {
    ($ty:ty, $name:expr) => {
        impl QueryEngine for $ty {
            fn query(&mut self, module: &Module, query: &Query) -> Result<Response, QueryError> {
                scalar_query(self, module, query)
            }
            fn run_queries(
                &mut self,
                module: &Module,
                queries: &[Query],
            ) -> Vec<Result<Response, QueryError>> {
                // The raw trait path is statically uninstrumented:
                // `NoopRecorder::enabled()` is `false` by construction,
                // so the planner reads no clock here. Metered batches go
                // through `FastliveSession::run_queries` instead.
                run_planned(self, module, queries, &NoopRecorder)
            }
            fn backend_name(&self) -> &'static str {
                $name
            }
        }
    };
}

query_engine_impl!(DirectBackend, "direct");
query_engine_impl!(SessionBackend<'_>, "session");
query_engine_impl!(OracleBackend, "oracle");

impl QueryEngine for Backend<'_> {
    fn query(&mut self, module: &Module, query: &Query) -> Result<Response, QueryError> {
        match self {
            Backend::Direct(b) => b.query(module, query),
            Backend::Session(b) => b.query(module, query),
            Backend::Oracle(b) => b.query(module, query),
        }
    }

    fn run_queries(
        &mut self,
        module: &Module,
        queries: &[Query],
    ) -> Vec<Result<Response, QueryError>> {
        match self {
            Backend::Direct(b) => b.run_queries(module, queries),
            Backend::Session(b) => b.run_queries(module, queries),
            Backend::Oracle(b) => b.run_queries(module, queries),
        }
    }

    fn backend_name(&self) -> &'static str {
        match self {
            Backend::Direct(b) => b.backend_name(),
            Backend::Session(b) => b.backend_name(),
            Backend::Oracle(b) => b.backend_name(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Module {
        fastlive_ir::parse_module(
            "function %f { block0(v0):
                 v1 = iconst 1
                 brif v0, block1(v1), block2
             block1(v2):
                 jump block2
             block2:
                 return v0 }",
        )
        .expect("parses")
    }

    fn analyses(module: &Module) -> Vec<(&'static str, FuncAnalysis)> {
        vec![
            (
                "direct",
                DirectBackend::new().analysis_for(module, 0).unwrap(),
            ),
            ("oracle", OracleBackend.analysis_for(module, 0).unwrap()),
        ]
    }

    /// The converted `expect("checker-backed")` family: every
    /// `AnalysisKind` answers every probe kind — the matches are total
    /// by construction, and the answers agree across kinds.
    #[test]
    fn every_analysis_kind_answers_every_probe() {
        let module = sample();
        let func = module.func(0);
        let v0 = func.value("v0").unwrap();
        let v1 = func.value("v1").unwrap();
        let b1 = func.block("block1").unwrap();
        let mut seen_live_in = Vec::new();
        let mut seen_sets = Vec::new();
        for (name, mut a) in analyses(&module) {
            seen_live_in.push((name, a.live_in(func, v0, b1)));
            assert!(!a.live_out(func, v1, b1), "{name}");
            let sets = a.live_sets(func);
            assert_eq!(sets.live_in.len(), func.num_blocks(), "{name}");
            seen_sets.push(sets);
            // The converted `expect("just computed")` path: the lazily
            // built dominator tree is reused across interfere calls.
            let first = a.interfere(func, v0, v1).unwrap();
            let again = a.interfere(func, v0, v1).unwrap();
            assert_eq!(first, again, "{name}");
        }
        assert!(seen_live_in.iter().all(|&(_, ans)| ans), "{seen_live_in:?}");
        assert_eq!(seen_sets[0], seen_sets[1], "kinds disagree on live_sets");
    }

    /// The oracle kind reports no batch snapshot (its probes are O(1)
    /// already); the checker kinds produce one. Neither path panics.
    #[test]
    fn batch_snapshots_match_kind() {
        let module = sample();
        let func = module.func(0);
        let mut it = analyses(&module).into_iter();
        let (_, direct) = it.next().unwrap();
        let (_, oracle) = it.next().unwrap();
        assert!(direct.batch(func).is_some());
        assert!(oracle.batch(func).is_none());
    }
}
