//! Plan-and-run batch execution: the shared executors behind
//! [`QueryEngine::query`](crate::QueryEngine::query) and
//! [`QueryEngine::run_queries`](crate::QueryEngine::run_queries).
//!
//! The scalar path resolves one query's references and answers it from
//! a freshly obtained per-function analysis. The planner instead
//! groups a batch by resolved function, obtains each function's
//! analysis **once**, and — when a group carries enough `LiveIn` /
//! `LiveOut` probes — materializes one [`BatchLiveness`] row snapshot
//! (resolving the function's def-use chains once) and answers those
//! probes as O(1) bit reads instead of per-query candidate scans.
//! That is what makes the facade *faster* than a loop over naive call
//! sites, not just prettier (`BENCH_facade.json` records the ratio).
//!
//! Planning never changes answers: the module is immutable for the
//! duration of the call, and the batch snapshot is bit-for-bit
//! equivalent to the scalar queries (a workspace-level invariant the
//! core crate's `batch_oracle` suite and `tests/facade_queries.rs`
//! both pin).

use fastlive_core::BatchLiveness;
use fastlive_engine::AnalysisKind;
use fastlive_ir::{FuncId, Function, Module};
use fastlive_telemetry::{QueryClass, Recorder};

use crate::backend::{AnalysisSource, FuncAnalysis, NullnessState};
use crate::query::{
    resolve_block, resolve_func, resolve_point, resolve_value, Query, QueryError, Response,
};

/// Minimum number of `LiveIn`/`LiveOut` probes in one function group
/// before the planner pays for a batch row snapshot. Below this, the
/// scalar candidate scan is always cheaper than a whole matrix pass.
const BATCH_THRESHOLD: usize = 2;

/// Should a group with `block_probes` `LiveIn`/`LiveOut` queries over
/// `func` materialize batch rows? The matrix pass costs
/// `O((E + Σ|T_q|) · V/64)` — roughly proportional to the block count
/// times the value-word count — while one scalar probe costs a
/// candidate scan plus a def-use walk. Requiring about half a block's
/// worth of probes per block keeps tiny batches on the scalar path
/// (where the pass could never amortize) without giving up the
/// asymptotic win; the exact break-even per shape is measured in
/// `BENCH_query.json`.
fn batch_pays_off(func: &Function, block_probes: usize) -> bool {
    block_probes >= BATCH_THRESHOLD.max(func.num_blocks() / 2)
}

/// Resolve-and-answer for one query, given the function's analysis and
/// (optionally) a pre-materialized batch snapshot for block probes.
fn answer(
    analysis: &mut FuncAnalysis,
    batch: Option<&BatchLiveness>,
    nullness: Option<&Result<NullnessState, QueryError>>,
    func: &Function,
    query: &Query,
) -> Result<Response, QueryError> {
    // Nullness-family queries answer from the group's (or scalar
    // call's) nullness state; a `None` here is a planner bookkeeping
    // slip, reported per-query like any other internal error.
    let nullness = |query: &'static str| match nullness {
        Some(Ok(state)) => Ok(state),
        Some(Err(e)) => Err(e.clone()),
        None => Err(QueryError::Internal {
            detail: format!("{query} query reached answer() without a nullness state"),
        }),
    };
    match query {
        Query::LiveIn { value, block, .. } => {
            let v = resolve_value(func, value)?;
            let b = resolve_block(func, block)?;
            Ok(Response::Live(match batch {
                Some(rows) => rows.is_live_in(v.index() as u32, b.as_u32()),
                None => analysis.live_in(func, v, b),
            }))
        }
        Query::LiveOut { value, block, .. } => {
            let v = resolve_value(func, value)?;
            let b = resolve_block(func, block)?;
            Ok(Response::Live(match batch {
                Some(rows) => rows.is_live_out(v.index() as u32, b.as_u32()),
                None => analysis.live_out(func, v, b),
            }))
        }
        Query::LiveAt { value, point, .. } => {
            let v = resolve_value(func, value)?;
            let p = resolve_point(func, point)?;
            Ok(Response::Live(analysis.live_at(func, v, p)?))
        }
        Query::LiveSets { .. } => Ok(Response::Sets(match batch {
            // The group's snapshot already holds every row — derive the
            // sets from it instead of paying another matrix pass (the
            // mapping below is exactly `FunctionLiveness::live_sets`).
            Some(rows) => sets_from_rows(rows, func),
            None => analysis.live_sets(func),
        })),
        Query::Interfere { a, b, .. } => {
            let va = resolve_value(func, a)?;
            let vb = resolve_value(func, b)?;
            Ok(Response::Interference(analysis.interfere(func, va, vb)?))
        }
        Query::Nullness { value, .. } => {
            let v = resolve_value(func, value)?;
            Ok(Response::Nullness(nullness("nullness")?.fact(v)))
        }
        Query::DefiniteInit { value, block, .. } => {
            let v = resolve_value(func, value)?;
            let b = resolve_block(func, block)?;
            Ok(Response::Init(
                nullness("definite-init")?.definitely_init(func, v, b),
            ))
        }
    }
}

/// Does the query need the function's [`NullnessState`]?
fn needs_nullness(query: &Query) -> bool {
    matches!(query, Query::Nullness { .. } | Query::DefiniteInit { .. })
}

/// Whole-function sets out of an existing row snapshot — the same
/// var-index → [`Value`](fastlive_ir::Value) mapping (ascending per
/// block) as `FunctionLiveness::live_sets`, which `tests/facade_*.rs`
/// pin against the other backends.
fn sets_from_rows(rows: &BatchLiveness, func: &Function) -> crate::LiveSets {
    let to_values = |vars: Vec<u32>| -> Vec<fastlive_ir::Value> {
        vars.into_iter()
            .map(|v| fastlive_ir::Value::from_index(v as usize))
            .collect()
    };
    crate::LiveSets {
        live_in: func
            .blocks()
            .map(|b| to_values(rows.live_in_vars(b.as_u32())))
            .collect(),
        live_out: func
            .blocks()
            .map(|b| to_values(rows.live_out_vars(b.as_u32())))
            .collect(),
    }
}

/// The telemetry label of a query kind — the per-class index the
/// facade's latency histograms are keyed by.
pub(crate) fn class_of(query: &Query) -> QueryClass {
    match query {
        Query::LiveIn { .. } => QueryClass::LiveIn,
        Query::LiveOut { .. } => QueryClass::LiveOut,
        Query::LiveAt { .. } => QueryClass::LiveAt,
        Query::LiveSets { .. } => QueryClass::LiveSets,
        Query::Interfere { .. } => QueryClass::Interfere,
        Query::Nullness { .. } => QueryClass::Nullness,
        Query::DefiniteInit { .. } => QueryClass::DefiniteInit,
    }
}

/// One query, straight through: resolve the function, obtain its
/// analysis, answer.
pub(crate) fn scalar_query<S: AnalysisSource>(
    source: &mut S,
    module: &Module,
    query: &Query,
) -> Result<Response, QueryError> {
    let id = resolve_func(module, query.func())?;
    let mut analysis = source.analysis_for(module, id)?;
    let nullness = needs_nullness(query).then(|| source.nullness_for(module, id));
    answer(
        &mut analysis,
        None,
        nullness.as_ref(),
        module.func(id),
        query,
    )
}

/// The planned batch executor: group by function, analyze once per
/// function, serve grouped block probes from batch rows. Results come
/// back in input order; per-query failures are per-slot `Err`s, never
/// a failure of the whole batch.
///
/// `recorder` observes what the plan *did* — batch size, how many
/// groups took the grouped (batch-row) vs the scalar path, and the
/// whole-batch latency. With a disabled recorder (the trait-path
/// default) not even a clock is read; answers never depend on it.
pub(crate) fn run_planned<S: AnalysisSource>(
    source: &mut S,
    module: &Module,
    queries: &[Query],
    recorder: &dyn Recorder,
) -> Vec<Result<Response, QueryError>> {
    let t0 = recorder.enabled().then(std::time::Instant::now);
    let mut grouped_groups = 0u64;
    let mut scalar_groups = 0u64;
    // Resolve every query's function up front; unresolvable ones fail
    // in place without costing any analysis. Groups are found through
    // a per-function index (O(1) per query — a linear group scan would
    // make planning O(queries × functions) on big modules) but kept in
    // first-appearance order so execution stays deterministic.
    let mut results: Vec<Option<Result<Response, QueryError>>> = vec![None; queries.len()];
    let mut groups: Vec<(FuncId, Vec<usize>)> = Vec::new();
    let mut group_of: Vec<Option<usize>> = vec![None; module.len()];
    for (i, query) in queries.iter().enumerate() {
        match resolve_func(module, query.func()) {
            Ok(id) => match group_of[id] {
                Some(g) => groups[g].1.push(i),
                None => {
                    group_of[id] = Some(groups.len());
                    groups.push((id, vec![i]));
                }
            },
            Err(e) => results[i] = Some(Err(e)),
        }
    }

    // Cross-function batches warm the cache through the backend's
    // worker pool before the sequential group loop: one `(function,
    // analysis)` request per distinct need, so the per-group
    // `analysis_for` / `nullness_for` below become memory hits. A
    // single-group batch gains nothing — the group loop would do the
    // same work with no parallelism to exploit.
    if groups.len() >= 2 {
        let mut requests = Vec::with_capacity(groups.len());
        for (id, idxs) in &groups {
            requests.push((*id, AnalysisKind::Liveness));
            if idxs.iter().any(|&i| needs_nullness(&queries[i])) {
                requests.push((*id, AnalysisKind::Nullness));
            }
        }
        source.prefetch(module, &requests);
    }

    for (id, idxs) in groups {
        let func = module.func(id);
        // A failed analysis fails every query of its group — the other
        // groups (other functions) still answer.
        let mut analysis = match source.analysis_for(module, id) {
            Ok(a) => a,
            Err(e) => {
                for i in idxs {
                    results[i] = Some(Err(e.clone()));
                }
                continue;
            }
        };
        // The second analysis is resolved once per group, and only for
        // groups that ask for it; a failure poisons just the group's
        // nullness-family queries, never its liveness ones.
        let nullness = idxs
            .iter()
            .any(|&i| needs_nullness(&queries[i]))
            .then(|| source.nullness_for(module, id));
        let block_probes = idxs
            .iter()
            .filter(|&&i| matches!(queries[i], Query::LiveIn { .. } | Query::LiveOut { .. }))
            .count();
        let sets_queries = idxs
            .iter()
            .filter(|&&i| matches!(queries[i], Query::LiveSets { .. }))
            .count();
        // One row materialization amortized over the group's block
        // probes — or over repeated whole-function set requests, each
        // of which would otherwise pay its own pass (checker-backed
        // backends only; the oracle's probes are already O(1) set
        // reads and its `batch()` is `None`).
        let batch = if batch_pays_off(func, block_probes) || sets_queries >= 2 {
            analysis.batch(func)
        } else {
            None
        };
        // The grouped/scalar split is per *group*: a group whose
        // snapshot materialized took the batch-row path (the oracle's
        // `batch()` is `None`, so its groups always count as scalar).
        if batch.is_some() {
            grouped_groups += 1;
        } else {
            scalar_groups += 1;
        }
        for i in idxs {
            // Batch-served block probes are the hot loop of dense
            // streams: answer them right here as O(1) bit reads, so
            // the per-query cost stays at the dispatch floor and only
            // the complex kinds pay the full `answer` call.
            let result = match (&batch, &queries[i]) {
                (Some(rows), Query::LiveIn { value, block, .. }) => resolve_value(func, value)
                    .and_then(|v| {
                        resolve_block(func, block)
                            .map(|b| Response::Live(rows.is_live_in(v.index() as u32, b.as_u32())))
                    }),
                (Some(rows), Query::LiveOut { value, block, .. }) => resolve_value(func, value)
                    .and_then(|v| {
                        resolve_block(func, block)
                            .map(|b| Response::Live(rows.is_live_out(v.index() as u32, b.as_u32())))
                    }),
                _ => answer(
                    &mut analysis,
                    batch.as_ref(),
                    nullness.as_ref(),
                    func,
                    &queries[i],
                ),
            };
            results[i] = Some(result);
        }
    }

    if let Some(t0) = t0 {
        recorder.plan(
            queries.len() as u64,
            grouped_groups,
            scalar_groups,
            t0.elapsed().as_nanos() as u64,
        );
    }

    finalize(results)
}

/// Collapses the planner's slot table into per-query results. Every
/// slot is filled by construction — grouped and answered, or failed at
/// resolution — but a planner bookkeeping slip must stay a per-slot
/// [`QueryError::Internal`], never a process abort for the whole batch
/// (this replaced an `expect`).
fn finalize(
    results: Vec<Option<Result<Response, QueryError>>>,
) -> Vec<Result<Response, QueryError>> {
    results
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.unwrap_or_else(|| {
                Err(QueryError::Internal {
                    detail: format!("query {i} was neither grouped nor failed at resolution"),
                })
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The converted `plan.rs:250` panic path: an unfilled slot is a
    /// typed per-query error; the filled slots still answer.
    #[test]
    fn unfilled_slot_is_a_typed_error_not_a_panic() {
        let filled = Some(Ok(Response::Live(true)));
        let out = finalize(vec![filled, None]);
        assert_eq!(out[0], Ok(Response::Live(true)));
        match &out[1] {
            Err(QueryError::Internal { detail }) => {
                assert!(detail.contains("query 1"), "{detail}")
            }
            other => panic!("expected Internal error, got {other:?}"),
        }
    }

    #[test]
    fn filled_slots_pass_through_in_order() {
        let e = QueryError::UnknownFunction(crate::FuncRef::Name("nope".into()));
        let out = finalize(vec![
            Some(Err(e.clone())),
            Some(Ok(Response::Interference(false))),
        ]);
        assert_eq!(out, vec![Err(e), Ok(Response::Interference(false))]);
    }
}
