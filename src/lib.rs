//! # fastlive — fast liveness checking for SSA-form programs
//!
//! An implementation of *Boissinot, Hack, Grund, Dupont de Dinechin,
//! Rastello: "Fast Liveness Checking for SSA-Form Programs" (CGO 2008)*,
//! together with everything needed to reproduce its evaluation: a
//! Cranelift-style SSA intermediate representation, CFG analyses, baseline
//! data-flow liveness engines (including a reimplementation of the LAO
//! comparator described in §6.2), SSA construction and destruction passes,
//! and SPEC2000-calibrated workload generators.
//!
//! ## One front door
//!
//! This crate is the **facade** over the whole workspace: build a
//! [`Fastlive`] once, open a [`FastliveSession`] per module, and ask
//! typed [`Query`]s — every question the five underlying public
//! surfaces (`LivenessChecker`, `FunctionLiveness`, `BatchLiveness`,
//! `AnalysisEngine`/`EngineSession`, `LivenessProvider`) answer, behind
//! one API that addresses functions, values and blocks by name or id:
//!
//! ```
//! use fastlive::{parse_module, Fastlive, PointRef, Query, Response};
//!
//! let module = parse_module(
//!     "function %count { block0(v0):
//!          v1 = iconst 0
//!          jump block1(v1)
//!      block1(v2):
//!          v3 = iconst 1
//!          v4 = iadd v2, v3
//!          v5 = icmp_slt v4, v0
//!          brif v5, block1(v4), block2
//!      block2:
//!          return v4 }",
//! )?;
//!
//! // One configured stack: threads, caches, persistence, GC.
//! let fl = Fastlive::builder().threads(2).build()?;
//! let mut session = fl.session(&module);
//!
//! // Scalar typed queries, by name or id ...
//! assert!(session.is_live_in(&module, "count", "v0", "block1")?);
//! assert!(session.is_live_at(&module, "count", "v4", PointRef::after("block1", 1))?);
//! assert!(session.values_interfere(&module, "count", "v0", "v2")?);
//!
//! // ... or planned batches: grouped per function, block probes
//! // answered from one batch-row pass instead of N candidate scans.
//! let answers = session.run_queries(
//!     &module,
//!     &[
//!         Query::live_in("count", "v0", "block1"),
//!         Query::live_out("count", "v4", "block1"),
//!         Query::live_sets("count"),
//!     ],
//! );
//! assert_eq!(answers[0], Ok(Response::Live(true)));
//! assert_eq!(answers[1], Ok(Response::Live(true)));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Three interchangeable executors answer the same queries behind the
//! [`QueryEngine`] trait (select one with
//! [`Fastlive::session_with`]): [`BackendKind::Direct`] (per-function
//! checker), [`BackendKind::Session`] (engine-cached, revalidating
//! against CFG edits — the default) and [`BackendKind::Oracle`]
//! (iterative dataflow, the differential-testing referee).
//!
//! ## Crate map
//!
//! The workspace members remain available under stable module names —
//! depend on individual `fastlive-*` crates for a narrower footprint —
//! and the historical entry-point types are re-exported at the crate
//! root, so `use fastlive::{FunctionLiveness, AnalysisEngine}` is the
//! single import root for pre-facade code.
//!
//! | module | contents |
//! |--------|----------|
//! | [`graph`] | [`Cfg`](graph::Cfg) trait, plain digraphs, Graphviz export |
//! | [`bitset`] | dense bitsets, bit matrices, sparse & sorted sets |
//! | [`mod@cfg`] | DFS trees, dominators, dominance frontiers, loop forests |
//! | [`ir`] | SSA IR: functions, builder, parser, printer, interpreter |
//! | [`core`] | the paper's algorithm: precomputation + live-in/live-out checks |
//! | [`engine`] | module-level analysis: worker pool, CFG-fingerprint cache, sessions |
//! | [`dataflow`] | baseline engines and the brute-force oracle |
//! | [`construct`] | SSA construction (Cytron et al.) |
//! | [`destruct`] | SSA destruction (Sreedhar et al. Method III) |
//! | [`telemetry`] | zero-dependency metrics: histograms, event log, the [`Recorder`] seam |
//! | [`workload`] | deterministic program generators and SPEC2000 profiles |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod builder;
mod plan;
mod query;

pub use backend::{
    Backend, BackendKind, DirectBackend, OracleBackend, QueryEngine, SessionBackend,
};
pub use builder::{BuildError, Fastlive, FastliveBuilder, FastliveSession, GcPolicy};
pub use query::{BlockRef, FuncRef, LiveSets, PointRef, Query, QueryError, Response, ValueRef};

pub use fastlive_bitset as bitset;
pub use fastlive_cfg as cfg;
pub use fastlive_construct as construct;
pub use fastlive_core as core;
pub use fastlive_dataflow as dataflow;
pub use fastlive_destruct as destruct;
pub use fastlive_engine as engine;
pub use fastlive_graph as graph;
pub use fastlive_ir as ir;
pub use fastlive_telemetry as telemetry;
pub use fastlive_workload as workload;

// The historical entry points, flattened to one import root: downstream
// code written against the pre-facade surfaces imports everything from
// `fastlive::` without naming the member crates.
pub use fastlive_core::{
    AnalysisError, BatchError, BatchLiveness, FunctionLiveness, LivenessChecker, LivenessProvider,
    Nullness, NullnessArtifact, NullnessFacts, PointError, Precomputation,
};
pub use fastlive_dataflow::{IterativeLiveness, IterativeNullness, VarUniverse};
pub use fastlive_destruct::values_interfere;
pub use fastlive_engine::{
    persist::GcStats,
    vfs::{Fault, FaultRule, FaultVfs, OpKind, StdVfs, Vfs},
    AnalysisEngine, AnalysisKind, BreakerConfig, BreakerState, CacheStats, CfgShape, EngineConfig,
    EngineSession, HealthReport, PersistStore,
};
pub use fastlive_ir::{
    parse_function, parse_module, Block, FuncId, Function, Inst, Module, ProgramPoint, Value,
};
// The observability surface: the recorder seam plus the snapshot and
// label types [`Fastlive::telemetry`] and [`Fastlive::health`] report
// in terms of.
pub use fastlive_telemetry::{
    Event, EventKind, HistogramSnapshot, NoopRecorder, QueryClass, Recorder, Telemetry,
    TelemetrySnapshot, Tier, VfsOp,
};
