//! # fastlive — fast liveness checking for SSA-form programs
//!
//! An implementation of *Boissinot, Hack, Grund, Dupont de Dinechin,
//! Rastello: "Fast Liveness Checking for SSA-Form Programs" (CGO 2008)*,
//! together with everything needed to reproduce its evaluation: a
//! Cranelift-style SSA intermediate representation, CFG analyses, baseline
//! data-flow liveness engines (including a reimplementation of the LAO
//! comparator described in §6.2), SSA construction and destruction passes,
//! and SPEC2000-calibrated workload generators.
//!
//! This crate is an umbrella that re-exports the workspace members under
//! stable module names. Depend on it to get the whole system, or depend on
//! individual `fastlive-*` crates for a narrower footprint.
//!
//! ## Quickstart
//!
//! ```
//! use fastlive::core::FunctionLiveness;
//! use fastlive::ir::parse_function;
//!
//! // A counting loop: the bound `v0` stays live around the back edge.
//! let func = parse_function(
//!     r#"
//!     function %count {
//!     block0(v0):
//!         v1 = iconst 0
//!         jump block1(v1)
//!     block1(v2):
//!         v3 = iconst 1
//!         v4 = iadd v2, v3
//!         v5 = icmp_slt v4, v0
//!         brif v5, block1(v4), block2
//!     block2:
//!         return v4
//!     }
//!     "#,
//! )?;
//!
//! // One variable-independent precomputation ...
//! let live = FunctionLiveness::compute(&func);
//!
//! // ... then O(uses) queries for any value at any block, reading the
//! // function's live def-use chains.
//! let v0 = func.value("v0").unwrap();
//! let block1 = func.block_by_index(1);
//! assert!(live.is_live_in(&func, v0, block1));
//! assert!(live.is_live_out(&func, v0, block1));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |--------|----------|
//! | [`graph`] | [`Cfg`](graph::Cfg) trait, plain digraphs, Graphviz export |
//! | [`bitset`] | dense bitsets, bit matrices, sparse & sorted sets |
//! | [`mod@cfg`] | DFS trees, dominators, dominance frontiers, loop forests |
//! | [`ir`] | SSA IR: functions, builder, parser, printer, interpreter |
//! | [`core`] | the paper's algorithm: precomputation + live-in/live-out checks |
//! | [`engine`] | module-level analysis: worker pool, CFG-fingerprint cache, sessions |
//! | [`dataflow`] | baseline engines and the brute-force oracle |
//! | [`construct`] | SSA construction (Cytron et al.) |
//! | [`destruct`] | SSA destruction (Sreedhar et al. Method III) |
//! | [`workload`] | deterministic program generators and SPEC2000 profiles |

#![forbid(unsafe_code)]

pub use fastlive_bitset as bitset;
pub use fastlive_cfg as cfg;
pub use fastlive_construct as construct;
pub use fastlive_core as core;
pub use fastlive_dataflow as dataflow;
pub use fastlive_destruct as destruct;
pub use fastlive_engine as engine;
pub use fastlive_graph as graph;
pub use fastlive_ir as ir;
pub use fastlive_workload as workload;
