//! The typed query plane of the facade: [`Query`] in, [`Response`] or
//! [`QueryError`] out.
//!
//! A query addresses a function, its values and its blocks either by
//! **id** (the dense [`FuncId`] / [`Value`] / [`Block`] entities every
//! lower layer speaks) or by **name** (the printed `%func` / `vN` /
//! `blockN` forms humans and textual tooling speak) — [`FuncRef`],
//! [`ValueRef`] and [`BlockRef`] unify the two, and the `From` impls
//! make call sites read naturally:
//!
//! ```
//! use fastlive::Query;
//!
//! // By name, by id, or mixed — all the same query.
//! let q1 = Query::live_in("count", "v0", "block1");
//! # let _ = (q1,);
//! ```
//!
//! Every backend ([`Backend`](crate::Backend)) answers the same
//! queries with byte-identical [`Response`]s; resolution failures are
//! values, not panics, so a long-lived service can refuse one bad
//! request and keep serving the rest.

use std::fmt;

use fastlive_core::Nullness;
use fastlive_ir::{Block, FuncId, Function, Module, ProgramPoint, Value};

/// A function addressed by dense id or by (printed) name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FuncRef {
    /// A [`FuncId`] minted by the module.
    Id(FuncId),
    /// The function's name, without the `%` sigil (`"count"`).
    Name(String),
}

/// A value addressed by entity or by printed name (`"v4"`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValueRef {
    /// The [`Value`] entity.
    Id(Value),
    /// The printed `vN` name.
    Name(String),
}

/// A block addressed by entity or by printed name (`"block2"`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BlockRef {
    /// The [`Block`] entity.
    Id(Block),
    /// The printed `blockN` name.
    Name(String),
}

/// A program point addressed structurally: a block plus a position in
/// its current instruction list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PointRef {
    /// The entry of a block, before any instruction.
    Entry(BlockRef),
    /// Just before the `inst`-th instruction of the block (0-based).
    Before {
        /// The block holding the instruction.
        block: BlockRef,
        /// Position in the block's instruction list.
        inst: usize,
    },
    /// Just after the `inst`-th instruction of the block (0-based).
    After {
        /// The block holding the instruction.
        block: BlockRef,
        /// Position in the block's instruction list.
        inst: usize,
    },
}

impl PointRef {
    /// The entry point of `block`.
    pub fn entry(block: impl Into<BlockRef>) -> Self {
        PointRef::Entry(block.into())
    }

    /// The point just before instruction `inst` of `block`.
    pub fn before(block: impl Into<BlockRef>, inst: usize) -> Self {
        PointRef::Before {
            block: block.into(),
            inst,
        }
    }

    /// The point just after instruction `inst` of `block`.
    pub fn after(block: impl Into<BlockRef>, inst: usize) -> Self {
        PointRef::After {
            block: block.into(),
            inst,
        }
    }
}

macro_rules! ref_from_impls {
    ($ref_ty:ident, $id_ty:ty) => {
        impl From<$id_ty> for $ref_ty {
            fn from(id: $id_ty) -> Self {
                $ref_ty::Id(id)
            }
        }
        impl From<&str> for $ref_ty {
            fn from(name: &str) -> Self {
                $ref_ty::Name(name.to_string())
            }
        }
        impl From<String> for $ref_ty {
            fn from(name: String) -> Self {
                $ref_ty::Name(name)
            }
        }
        impl fmt::Display for $ref_ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                match self {
                    $ref_ty::Id(id) => write!(f, "{id}"),
                    $ref_ty::Name(name) => write!(f, "{name}"),
                }
            }
        }
    };
}

ref_from_impls!(FuncRef, FuncId);
ref_from_impls!(ValueRef, Value);
ref_from_impls!(BlockRef, Block);

/// One liveness question, addressed symbolically — the unit both
/// [`FastliveSession::query`](crate::FastliveSession::query) and the
/// planned batch entry point
/// ([`run_queries`](crate::FastliveSession::run_queries)) consume.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Query {
    /// Is the value live-in at the block (Definition 2 / Algorithm 3)?
    LiveIn {
        /// The queried function.
        func: FuncRef,
        /// The queried value.
        value: ValueRef,
        /// The queried block.
        block: BlockRef,
    },
    /// Is the value live-out at the block (Definition 3 / Algorithm 2)?
    LiveOut {
        /// The queried function.
        func: FuncRef,
        /// The queried value.
        value: ValueRef,
        /// The queried block.
        block: BlockRef,
    },
    /// Is the value live at a program point (the §6.2 Budimlić
    /// primitive's granularity)?
    LiveAt {
        /// The queried function.
        func: FuncRef,
        /// The queried value.
        value: ValueRef,
        /// The queried point.
        point: PointRef,
    },
    /// Materialize the classic per-block live-in/live-out sets for the
    /// whole function.
    LiveSets {
        /// The queried function.
        func: FuncRef,
    },
    /// Do two values interfere (the Budimlić test of the
    /// SSA-destruction pass, §6.2)?
    Interfere {
        /// The queried function.
        func: FuncRef,
        /// First value.
        a: ValueRef,
        /// Second value.
        b: ValueRef,
    },
    /// What nullness fact holds for the value (the second analysis on
    /// the sparse platform: dominance-based forward propagation over
    /// def-use chains)?
    Nullness {
        /// The queried function.
        func: FuncRef,
        /// The queried value.
        value: ValueRef,
    },
    /// Is the value definitely initialized (its definition executed)
    /// whenever control reaches the entry of the block?
    DefiniteInit {
        /// The queried function.
        func: FuncRef,
        /// The queried value.
        value: ValueRef,
        /// The block whose entry is probed.
        block: BlockRef,
    },
}

impl Query {
    /// A [`Query::LiveIn`] from anything convertible to the refs.
    pub fn live_in(
        func: impl Into<FuncRef>,
        value: impl Into<ValueRef>,
        block: impl Into<BlockRef>,
    ) -> Self {
        Query::LiveIn {
            func: func.into(),
            value: value.into(),
            block: block.into(),
        }
    }

    /// A [`Query::LiveOut`] from anything convertible to the refs.
    pub fn live_out(
        func: impl Into<FuncRef>,
        value: impl Into<ValueRef>,
        block: impl Into<BlockRef>,
    ) -> Self {
        Query::LiveOut {
            func: func.into(),
            value: value.into(),
            block: block.into(),
        }
    }

    /// A [`Query::LiveAt`] from anything convertible to the refs.
    pub fn live_at(func: impl Into<FuncRef>, value: impl Into<ValueRef>, point: PointRef) -> Self {
        Query::LiveAt {
            func: func.into(),
            value: value.into(),
            point,
        }
    }

    /// A [`Query::LiveSets`] from anything convertible to a [`FuncRef`].
    pub fn live_sets(func: impl Into<FuncRef>) -> Self {
        Query::LiveSets { func: func.into() }
    }

    /// A [`Query::Interfere`] from anything convertible to the refs.
    pub fn interfere(
        func: impl Into<FuncRef>,
        a: impl Into<ValueRef>,
        b: impl Into<ValueRef>,
    ) -> Self {
        Query::Interfere {
            func: func.into(),
            a: a.into(),
            b: b.into(),
        }
    }

    /// A [`Query::Nullness`] from anything convertible to the refs.
    pub fn nullness(func: impl Into<FuncRef>, value: impl Into<ValueRef>) -> Self {
        Query::Nullness {
            func: func.into(),
            value: value.into(),
        }
    }

    /// A [`Query::DefiniteInit`] from anything convertible to the refs.
    pub fn definitely_init(
        func: impl Into<FuncRef>,
        value: impl Into<ValueRef>,
        block: impl Into<BlockRef>,
    ) -> Self {
        Query::DefiniteInit {
            func: func.into(),
            value: value.into(),
            block: block.into(),
        }
    }

    /// The function the query addresses.
    pub fn func(&self) -> &FuncRef {
        match self {
            Query::LiveIn { func, .. }
            | Query::LiveOut { func, .. }
            | Query::LiveAt { func, .. }
            | Query::LiveSets { func }
            | Query::Interfere { func, .. }
            | Query::Nullness { func, .. }
            | Query::DefiniteInit { func, .. } => func,
        }
    }
}

/// Whole-function live-in/live-out sets, indexed by block index; each
/// set is sorted by value index. The payload of [`Response::Sets`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LiveSets {
    /// `live_in[b]` = values live-in at the block of index `b`.
    pub live_in: Vec<Vec<Value>>,
    /// `live_out[b]` = values live-out at the block of index `b`.
    pub live_out: Vec<Vec<Value>>,
}

/// A successfully answered [`Query`]. Responses are plain comparable
/// values, which is what lets the differential suites assert that
/// every backend produces byte-identical answers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// The answer to a `LiveIn` / `LiveOut` / `LiveAt` query.
    Live(bool),
    /// The answer to an `Interfere` query.
    Interference(bool),
    /// The answer to a `LiveSets` query.
    Sets(LiveSets),
    /// The answer to a `Nullness` query.
    Nullness(Nullness),
    /// The answer to a `DefiniteInit` query.
    Init(bool),
}

impl Response {
    /// The boolean payload of a `Live`, `Interference` or `Init`
    /// response.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Response::Live(b) | Response::Interference(b) | Response::Init(b) => Some(b),
            Response::Sets(_) | Response::Nullness(_) => None,
        }
    }

    /// The set payload of a `Sets` response.
    pub fn as_sets(&self) -> Option<&LiveSets> {
        match self {
            Response::Sets(sets) => Some(sets),
            _ => None,
        }
    }

    /// The fact payload of a `Nullness` response.
    pub fn as_nullness(&self) -> Option<Nullness> {
        match *self {
            Response::Nullness(n) => Some(n),
            _ => None,
        }
    }
}

/// Why a [`Query`] could not be answered. Every variant is a
/// recoverable refusal of one request — the session stays usable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// The addressed function is not in the module (unknown name or
    /// out-of-range id).
    UnknownFunction(FuncRef),
    /// The addressed value does not exist in the addressed function.
    UnknownValue {
        /// The resolved function's name.
        func: String,
        /// The offending reference.
        value: ValueRef,
    },
    /// The addressed block does not exist in the addressed function.
    UnknownBlock {
        /// The resolved function's name.
        func: String,
        /// The offending reference.
        block: BlockRef,
    },
    /// A point reference addressed an instruction position past the
    /// block's current instruction list.
    MissingInstruction {
        /// The resolved function's name.
        func: String,
        /// The resolved block.
        block: Block,
        /// The requested instruction position.
        inst: usize,
        /// How many instructions the block currently holds.
        num_insts: usize,
    },
    /// The queried value's defining instruction has been removed: a
    /// detached definition has no program point, so point-granularity
    /// questions about it are unanswerable
    /// ([`PointError::DefinitionRemoved`](fastlive_core::PointError)).
    DetachedDefinition(Value),
    /// The addressed function's liveness analysis itself failed — its
    /// precomputation panicked
    /// ([`AnalysisError::ComputePanicked`](fastlive_core::AnalysisError)).
    /// Per-function: other functions of the same session keep
    /// answering, and retrying the query retries the analysis.
    AnalysisFailed(fastlive_core::AnalysisError),
    /// The planner accepted a query but failed to produce an answer
    /// for its slot — a facade bookkeeping bug, surfaced as a
    /// recoverable per-query refusal (this used to abort the whole
    /// process via an `expect`). Seeing this variant is itself a bug
    /// worth reporting; the session stays usable.
    Internal {
        /// What the planner left undone.
        detail: String,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::UnknownFunction(r) => write!(f, "unknown function {r}"),
            QueryError::UnknownValue { func, value } => {
                write!(f, "unknown value {value} in function %{func}")
            }
            QueryError::UnknownBlock { func, block } => {
                write!(f, "unknown block {block} in function %{func}")
            }
            QueryError::MissingInstruction {
                func,
                block,
                inst,
                num_insts,
            } => write!(
                f,
                "no instruction {inst} in {block} of %{func} ({num_insts} instructions)"
            ),
            QueryError::DetachedDefinition(v) => {
                write!(f, "the defining instruction of {v} was removed")
            }
            QueryError::AnalysisFailed(e) => write!(f, "analysis failed: {e}"),
            QueryError::Internal { detail } => write!(f, "internal planner error: {detail}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<fastlive_core::PointError> for QueryError {
    fn from(e: fastlive_core::PointError) -> Self {
        match e {
            fastlive_core::PointError::DefinitionRemoved(v) => QueryError::DetachedDefinition(v),
        }
    }
}

impl From<fastlive_core::AnalysisError> for QueryError {
    fn from(e: fastlive_core::AnalysisError) -> Self {
        match e {
            // A point failure keeps its precise facade shape.
            fastlive_core::AnalysisError::Point(p) => p.into(),
            other => QueryError::AnalysisFailed(other),
        }
    }
}

/// Resolves a function reference against the module.
pub(crate) fn resolve_func(module: &Module, r: &FuncRef) -> Result<FuncId, QueryError> {
    match r {
        FuncRef::Id(id) if *id < module.len() => Ok(*id),
        FuncRef::Name(name) => module
            .by_name(name)
            .ok_or_else(|| QueryError::UnknownFunction(r.clone())),
        FuncRef::Id(_) => Err(QueryError::UnknownFunction(r.clone())),
    }
}

/// Resolves a value reference against the (already resolved) function.
pub(crate) fn resolve_value(func: &Function, r: &ValueRef) -> Result<Value, QueryError> {
    let unknown = || QueryError::UnknownValue {
        func: func.name.clone(),
        value: r.clone(),
    };
    match r {
        ValueRef::Id(v) if v.index() < func.num_values() => Ok(*v),
        ValueRef::Name(name) => func.value(name).ok_or_else(unknown),
        ValueRef::Id(_) => Err(unknown()),
    }
}

/// Resolves a block reference against the (already resolved) function.
pub(crate) fn resolve_block(func: &Function, r: &BlockRef) -> Result<Block, QueryError> {
    let unknown = || QueryError::UnknownBlock {
        func: func.name.clone(),
        block: r.clone(),
    };
    match r {
        BlockRef::Id(b) if b.index() < func.num_blocks() => Ok(*b),
        BlockRef::Name(name) => func.block(name).ok_or_else(unknown),
        BlockRef::Id(_) => Err(unknown()),
    }
}

/// Resolves a point reference against the function's *current*
/// instruction layout.
pub(crate) fn resolve_point(func: &Function, r: &PointRef) -> Result<ProgramPoint, QueryError> {
    let (block_ref, inst) = match r {
        PointRef::Entry(b) => return Ok(ProgramPoint::block_entry(resolve_block(func, b)?)),
        PointRef::Before { block, inst } | PointRef::After { block, inst } => (block, *inst),
    };
    let block = resolve_block(func, block_ref)?;
    let insts = func.block_insts(block);
    let inst_id = *insts
        .get(inst)
        .ok_or_else(|| QueryError::MissingInstruction {
            func: func.name.clone(),
            block,
            inst,
            num_insts: insts.len(),
        })?;
    let point = match r {
        PointRef::Before { .. } => func.point_before(inst_id),
        _ => func.point_after(inst_id),
    };
    // The instruction was just read out of the block's list, so it
    // cannot have been concurrently removed — but stay total anyway.
    point.ok_or_else(|| QueryError::MissingInstruction {
        func: func.name.clone(),
        block,
        inst,
        num_insts: insts.len(),
    })
}
