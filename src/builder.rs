//! [`Fastlive`]: the one-stop front door, and its builder.
//!
//! ```
//! use fastlive::{parse_module, Fastlive, Query, Response};
//!
//! let module = parse_module(
//!     "function %count { block0(v0):
//!          v1 = iconst 0
//!          jump block1(v1)
//!      block1(v2):
//!          v3 = iconst 1
//!          v4 = iadd v2, v3
//!          v5 = icmp_slt v4, v0
//!          brif v5, block1(v4), block2
//!      block2:
//!          return v4 }",
//! )?;
//!
//! let fl = Fastlive::builder().threads(2).build()?;
//! let mut session = fl.session(&module);
//! assert_eq!(
//!     session.query(&module, &Query::live_in("count", "v0", "block1"))?,
//!     Response::Live(true),
//! );
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use fastlive_core::Nullness;
use fastlive_engine::persist::GcStats;
use fastlive_engine::vfs::Vfs;
use fastlive_engine::{AnalysisEngine, BreakerConfig, EngineConfig, EngineSession, HealthReport};
use fastlive_ir::Module;
use fastlive_telemetry::{NoopRecorder, Recorder, Telemetry, TelemetrySnapshot};

use crate::backend::{
    Backend, BackendKind, DirectBackend, OracleBackend, QueryEngine, SessionBackend,
};
use crate::plan::{class_of, run_planned};
use crate::query::{BlockRef, FuncRef, LiveSets, PointRef, Query, QueryError, Response, ValueRef};

/// A persistence-tier GC policy, applied at
/// [`build()`](FastliveBuilder::build) and re-runnable any time via
/// [`Fastlive::gc_persist`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GcPolicy {
    /// Keep at most this many `.flpc` entries (oldest evicted first).
    pub max_entries: usize,
    /// Also delete entries older than this, when set.
    pub max_age: Option<Duration>,
}

/// Why [`FastliveBuilder::build`] refused a configuration. Every
/// variant is a configuration that the lower layers would either
/// silently distort or only trip over at runtime — the builder front
/// door turns them into values instead.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuildError {
    /// More stripes than cache entries: the engine would round the
    /// per-stripe bound up to 1, silently inflating the configured
    /// capacity to `stripes` entries. Lower `stripes` or raise
    /// `cache_capacity`.
    StripesExceedCapacity {
        /// Configured stripe count.
        stripes: usize,
        /// Configured capacity.
        cache_capacity: usize,
    },
    /// The configured persist path exists and is not a directory — the
    /// store would silently degrade every probe to a reject.
    PersistDirNotADirectory(PathBuf),
    /// A GC policy was set without a persistence tier to sweep.
    GcWithoutPersistDir,
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::StripesExceedCapacity {
                stripes,
                cache_capacity,
            } => write!(
                f,
                "{stripes} stripes exceed the {cache_capacity}-entry cache capacity \
                 (the effective bound would round up to one entry per stripe)"
            ),
            BuildError::PersistDirNotADirectory(p) => {
                write!(
                    f,
                    "persist path {} exists and is not a directory",
                    p.display()
                )
            }
            BuildError::GcWithoutPersistDir => {
                write!(f, "a gc policy needs a persist_dir to sweep")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Builder for [`Fastlive`] — the preferred way to configure the
/// whole stack (it subsumes [`EngineConfig`] construction and
/// validates the combination at [`build()`](Self::build)).
#[derive(Clone)]
pub struct FastliveBuilder {
    threads: usize,
    cache_capacity: usize,
    stripes: usize,
    persist_dir: Option<PathBuf>,
    subtree_skipping: bool,
    backend: BackendKind,
    gc: Option<GcPolicy>,
    disk_breaker: BreakerConfig,
    vfs: Option<Arc<dyn Vfs>>,
    recorder: Option<Arc<dyn Recorder>>,
}

impl std::fmt::Debug for FastliveBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FastliveBuilder")
            .field("threads", &self.threads)
            .field("cache_capacity", &self.cache_capacity)
            .field("stripes", &self.stripes)
            .field("persist_dir", &self.persist_dir)
            .field("subtree_skipping", &self.subtree_skipping)
            .field("backend", &self.backend)
            .field("gc", &self.gc)
            .field("disk_breaker", &self.disk_breaker)
            .field("vfs", &self.vfs.as_ref().map(|_| "<dyn Vfs>"))
            .field(
                "recorder",
                &self.recorder.as_ref().map(|_| "<dyn Recorder>"),
            )
            .finish()
    }
}

impl Default for FastliveBuilder {
    fn default() -> Self {
        let config = EngineConfig::default();
        FastliveBuilder {
            threads: config.threads,
            cache_capacity: config.cache_capacity,
            stripes: config.stripes,
            persist_dir: config.persist_dir,
            subtree_skipping: true,
            backend: BackendKind::default(),
            gc: None,
            disk_breaker: config.disk_breaker,
            vfs: None,
            recorder: None,
        }
    }
}

impl FastliveBuilder {
    /// Worker threads for module analysis (`0` = one per CPU, the
    /// default; `1` = inline on the calling thread).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Bound on precomputations retained in memory (`0` disables the
    /// in-memory tier). Default 256.
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Lock stripes of the in-memory cache. `0` (the default) picks
    /// [`EngineConfig::DEFAULT_STRIPES`] narrowed to the cache
    /// capacity, so a small capacity never silently inflates; an
    /// explicit value larger than the capacity is a [`BuildError`].
    pub fn stripes(mut self, stripes: usize) -> Self {
        self.stripes = stripes;
        self
    }

    /// Directory of the cross-process persistence tier (disabled by
    /// default).
    pub fn persist_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.persist_dir = Some(dir.into());
        self
    }

    /// Enables or disables §4.1 dominance-subtree skipping in the
    /// candidate loop (on by default; disabling it is the paper's
    /// ablation mode). Applies to checkers the [`BackendKind::Direct`]
    /// backend computes; the engine's cached checkers always keep the
    /// default.
    pub fn subtree_skipping(mut self, enabled: bool) -> Self {
        self.subtree_skipping = enabled;
        self
    }

    /// Default backend for [`Fastlive::session`]
    /// ([`BackendKind::Session`] unless overridden).
    pub fn backend(mut self, kind: BackendKind) -> Self {
        self.backend = kind;
        self
    }

    /// Runs a persistence-tier GC sweep at [`build()`](Self::build)
    /// time (and records the policy for later
    /// [`Fastlive::gc_persist`] calls). Requires
    /// [`persist_dir`](Self::persist_dir).
    pub fn gc(mut self, max_entries: usize, max_age: Option<Duration>) -> Self {
        self.gc = Some(GcPolicy {
            max_entries,
            max_age,
        });
        self
    }

    /// Circuit-breaker policy for the persistence tier: after
    /// `trip_threshold` consecutive disk I/O *errors* (not rejects) the
    /// tier goes memory-only and is re-probed on an exponential
    /// backoff; `quarantine_threshold` consecutive rejects sideline one
    /// sick entry. See [`BreakerConfig`] for the defaults and
    /// [`Fastlive::health`] for the observable state.
    pub fn disk_breaker(mut self, config: BreakerConfig) -> Self {
        self.disk_breaker = config;
        self
    }

    /// Routes every persistence-tier filesystem operation through the
    /// given [`Vfs`] — the fault-injection seam
    /// ([`FaultVfs`](fastlive_engine::vfs::FaultVfs)) and the hook for
    /// custom storage. Default: the real filesystem
    /// ([`StdVfs`](fastlive_engine::vfs::StdVfs)).
    pub fn vfs(mut self, vfs: Arc<dyn Vfs>) -> Self {
        self.vfs = Some(vfs);
        self
    }

    /// Turns end-to-end telemetry on (or back off): a fresh
    /// [`Telemetry`] hub is installed and every layer — query dispatch,
    /// the batch planner, engine tier probes, persistence-tier I/O —
    /// records into it. Read the result with [`Fastlive::telemetry`]
    /// and the enriched [`Fastlive::health`]. Off by default, and off
    /// means *off*: the hot paths skip even the clock reads
    /// (`BENCH_obs.json` pins the no-op overhead at ≈1.0×).
    pub fn telemetry(mut self, enabled: bool) -> Self {
        self.recorder = enabled.then(|| Arc::new(Telemetry::new()) as Arc<dyn Recorder>);
        self
    }

    /// Installs a custom [`Recorder`] — the export seam for external
    /// metrics pipelines. Instrumentation is live wherever
    /// `recorder.enabled()` says so; a disabled recorder costs the
    /// same nothing as the default.
    pub fn recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Validates the configuration and builds the facade. The build
    /// itself is cheap — precomputation happens per analyzed module.
    pub fn build(self) -> Result<Fastlive, BuildError> {
        // Resolve the auto stripe count the way the engine will
        // (`EngineConfig::DEFAULT_STRIPES`), then narrow it to the
        // capacity: "auto" means "pick something valid", so a small
        // explicit capacity shrinks the stripe count rather than
        // tripping the validation below — only an *explicit*
        // stripes-exceeds-capacity combination is an error.
        let stripes = if self.stripes == 0 && self.cache_capacity > 0 {
            EngineConfig::DEFAULT_STRIPES.min(self.cache_capacity)
        } else {
            self.stripes
        };
        if stripes > 0 && self.cache_capacity > 0 && stripes > self.cache_capacity {
            return Err(BuildError::StripesExceedCapacity {
                stripes,
                cache_capacity: self.cache_capacity,
            });
        }
        if let Some(dir) = &self.persist_dir {
            if dir.exists() && !dir.is_dir() {
                return Err(BuildError::PersistDirNotADirectory(dir.clone()));
            }
        }
        if self.gc.is_some() && self.persist_dir.is_none() {
            return Err(BuildError::GcWithoutPersistDir);
        }
        let config = EngineConfig {
            threads: self.threads,
            cache_capacity: self.cache_capacity,
            stripes,
            persist_dir: self.persist_dir,
            disk_breaker: self.disk_breaker,
        };
        let recorder: Arc<dyn Recorder> = self.recorder.unwrap_or_else(|| Arc::new(NoopRecorder));
        let engine = AnalysisEngine::with_instrumentation(config, self.vfs, Arc::clone(&recorder));
        if let Some(policy) = self.gc {
            engine.gc_persist(policy.max_entries, policy.max_age);
        }
        Ok(Fastlive {
            engine,
            subtree_skipping: self.subtree_skipping,
            backend: self.backend,
            gc: self.gc,
            recorder,
        })
    }
}

/// The unified facade: one configured stack — engine, caches,
/// persistence, GC policy — handing out query sessions over any
/// module.
///
/// Most code needs exactly three lines: build once, open a session per
/// module, ask typed [`Query`]s (or use the named conveniences on
/// [`FastliveSession`]). The underlying layers stay reachable —
/// [`engine()`](Self::engine) for cache statistics, and every legacy
/// type re-exported at the crate root — but nothing requires them.
pub struct Fastlive {
    engine: AnalysisEngine,
    subtree_skipping: bool,
    backend: BackendKind,
    gc: Option<GcPolicy>,
    recorder: Arc<dyn Recorder>,
}

impl std::fmt::Debug for Fastlive {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fastlive")
            .field("config", self.engine.config())
            .field("subtree_skipping", &self.subtree_skipping)
            .field("backend", &self.backend)
            .field("gc", &self.gc)
            .field("telemetry", &self.recorder.enabled())
            .finish()
    }
}

impl Fastlive {
    /// Starts a builder with the default configuration.
    pub fn builder() -> FastliveBuilder {
        FastliveBuilder::default()
    }

    /// A facade with the default configuration (auto threads,
    /// 256-entry striped cache, no persistence, session backend).
    pub fn with_defaults() -> Self {
        Self::builder()
            .build()
            .expect("the default configuration is always valid")
    }

    /// The underlying analysis engine (cache statistics, manual
    /// analysis, stripe accounting).
    pub fn engine(&self) -> &AnalysisEngine {
        &self.engine
    }

    /// The engine configuration the builder produced.
    pub fn config(&self) -> &EngineConfig {
        self.engine.config()
    }

    /// The backend [`session`](Self::session) opens by default.
    pub fn default_backend(&self) -> BackendKind {
        self.backend
    }

    /// A point-in-time health snapshot of the stack: the disk tier's
    /// circuit-breaker state and counters, the quarantine population,
    /// and the aggregated cache statistics. Cheap enough to poll; see
    /// [`HealthReport`].
    pub fn health(&self) -> HealthReport {
        self.engine.health()
    }

    /// A point-in-time snapshot of the telemetry hub: per-kind query
    /// latency histograms, tier outcome counters with durations,
    /// persistence-tier I/O stats, planner counters and the recent
    /// structured events. A plain comparable value — render it with
    /// [`TelemetrySnapshot::to_json`],
    /// [`TelemetrySnapshot::to_prometheus`] or `Display`. Returns the
    /// all-zero default when instrumentation is off (the default
    /// no-op recorder has no state to snapshot).
    pub fn telemetry(&self) -> TelemetrySnapshot {
        self.recorder.snapshot().unwrap_or_default()
    }

    /// Sweeps the persistence tier with the builder's GC policy (or
    /// the given override). Returns `None` when no persistence tier —
    /// or, without an override, no policy — is configured. Always safe:
    /// a gc'd entry recomputes on its next probe.
    pub fn gc_persist(&self, policy: Option<GcPolicy>) -> Option<GcStats> {
        let policy = policy.or(self.gc)?;
        self.engine.gc_persist(policy.max_entries, policy.max_age)
    }

    /// Opens a query session over `module` on the default backend.
    ///
    /// On [`BackendKind::Session`] this analyzes the whole module up
    /// front (in parallel, through the caches); the other backends
    /// defer all work to query time. The module is **not** borrowed —
    /// it is passed by reference to every query, so it stays freely
    /// editable between queries and the session revalidates against
    /// its current state.
    pub fn session(&self, module: &Module) -> FastliveSession<'_> {
        self.session_with(module, self.backend)
    }

    /// Opens a query session on an explicit backend — the handle for
    /// differential setups that hold, say, a [`BackendKind::Session`]
    /// and a [`BackendKind::Oracle`] session side by side.
    pub fn session_with(&self, module: &Module, kind: BackendKind) -> FastliveSession<'_> {
        let backend = match kind {
            BackendKind::Direct => {
                Backend::Direct(DirectBackend::with_subtree_skipping(self.subtree_skipping))
            }
            BackendKind::Session => {
                Backend::Session(SessionBackend::new(self.engine.analyze(module)))
            }
            BackendKind::Oracle => Backend::Oracle(OracleBackend),
        };
        FastliveSession {
            backend,
            recorder: Arc::clone(&self.recorder),
        }
    }
}

/// A query session handed out by [`Fastlive::session`]: the typed
/// query layer ([`query`](Self::query) /
/// [`run_queries`](Self::run_queries)) plus named conveniences that
/// wrap the common queries.
///
/// Sessions borrow only the [`Fastlive`] they came from; the module is
/// taken by reference per call and may be edited freely between calls
/// (the session backend revalidates, the other backends recompute).
pub struct FastliveSession<'fl> {
    backend: Backend<'fl>,
    recorder: Arc<dyn Recorder>,
}

impl<'fl> FastliveSession<'fl> {
    /// Answers one typed query. With telemetry enabled, the dispatch
    /// is timed into the per-kind, per-backend latency histograms;
    /// answers never depend on it.
    pub fn query(&mut self, module: &Module, query: &Query) -> Result<Response, QueryError> {
        let t0 = self.recorder.enabled().then(Instant::now);
        let result = self.backend.query(module, query);
        if let Some(t0) = t0 {
            self.recorder.query(
                class_of(query),
                self.backend.backend_name(),
                t0.elapsed().as_nanos() as u64,
            );
        }
        result
    }

    /// Plan-and-run batch execution: groups `queries` per function,
    /// resolves each function once, and serves grouped
    /// `LiveIn`/`LiveOut` probes from one
    /// [`BatchLiveness`](crate::BatchLiveness) row snapshot per
    /// function. Answers are identical to one-at-a-time
    /// [`query`](Self::query) calls, in input order — only faster (see
    /// `BENCH_facade.json`). With telemetry enabled, the planner
    /// records the batch size, the grouped-vs-scalar group split and
    /// the whole-batch latency.
    pub fn run_queries(
        &mut self,
        module: &Module,
        queries: &[Query],
    ) -> Vec<Result<Response, QueryError>> {
        run_planned(&mut self.backend, module, queries, &*self.recorder)
    }

    /// The backend's short name (`"direct"` / `"session"` /
    /// `"oracle"`).
    pub fn backend_name(&self) -> &'static str {
        self.backend.backend_name()
    }

    /// The underlying [`EngineSession`] when this session runs on the
    /// engine backend (epoch and recomputation accounting) — `None`
    /// on the other backends.
    pub fn engine_session(&self) -> Option<&EngineSession<'fl>> {
        match &self.backend {
            Backend::Session(s) => Some(s.session()),
            _ => None,
        }
    }

    /// [`Query::LiveIn`], unwrapped: is `value` live-in at `block`?
    pub fn is_live_in(
        &mut self,
        module: &Module,
        func: impl Into<FuncRef>,
        value: impl Into<ValueRef>,
        block: impl Into<BlockRef>,
    ) -> Result<bool, QueryError> {
        match self.query(module, &Query::live_in(func, value, block))? {
            Response::Live(b) => Ok(b),
            _ => unreachable!("LiveIn answers Live"),
        }
    }

    /// [`Query::LiveOut`], unwrapped: is `value` live-out at `block`?
    pub fn is_live_out(
        &mut self,
        module: &Module,
        func: impl Into<FuncRef>,
        value: impl Into<ValueRef>,
        block: impl Into<BlockRef>,
    ) -> Result<bool, QueryError> {
        match self.query(module, &Query::live_out(func, value, block))? {
            Response::Live(b) => Ok(b),
            _ => unreachable!("LiveOut answers Live"),
        }
    }

    /// [`Query::LiveAt`], unwrapped: is `value` live at `point`?
    pub fn is_live_at(
        &mut self,
        module: &Module,
        func: impl Into<FuncRef>,
        value: impl Into<ValueRef>,
        point: PointRef,
    ) -> Result<bool, QueryError> {
        match self.query(module, &Query::live_at(func, value, point))? {
            Response::Live(b) => Ok(b),
            _ => unreachable!("LiveAt answers Live"),
        }
    }

    /// [`Query::LiveSets`], unwrapped: whole-function live-in/live-out
    /// sets.
    pub fn live_sets(
        &mut self,
        module: &Module,
        func: impl Into<FuncRef>,
    ) -> Result<LiveSets, QueryError> {
        match self.query(module, &Query::live_sets(func))? {
            Response::Sets(sets) => Ok(sets),
            _ => unreachable!("LiveSets answers Sets"),
        }
    }

    /// [`Query::Nullness`], unwrapped: the nullness fact for `value`
    /// at its definition.
    pub fn nullness_of(
        &mut self,
        module: &Module,
        func: impl Into<FuncRef>,
        value: impl Into<ValueRef>,
    ) -> Result<Nullness, QueryError> {
        match self.query(module, &Query::nullness(func, value))? {
            Response::Nullness(fact) => Ok(fact),
            _ => unreachable!("Nullness answers Nullness"),
        }
    }

    /// [`Query::DefiniteInit`], unwrapped: is `value` definitely
    /// initialized on every path reaching the entry of `block`?
    pub fn is_definitely_init(
        &mut self,
        module: &Module,
        func: impl Into<FuncRef>,
        value: impl Into<ValueRef>,
        block: impl Into<BlockRef>,
    ) -> Result<bool, QueryError> {
        match self.query(module, &Query::definitely_init(func, value, block))? {
            Response::Init(b) => Ok(b),
            _ => unreachable!("DefiniteInit answers Init"),
        }
    }

    /// [`Query::Interfere`], unwrapped: do `a` and `b` interfere (the
    /// Budimlić test the SSA-destruction pass runs, §6.2)?
    pub fn values_interfere(
        &mut self,
        module: &Module,
        func: impl Into<FuncRef>,
        a: impl Into<ValueRef>,
        b: impl Into<ValueRef>,
    ) -> Result<bool, QueryError> {
        match self.query(module, &Query::interfere(func, a, b))? {
            Response::Interference(b) => Ok(b),
            _ => unreachable!("Interfere answers Interference"),
        }
    }
}
