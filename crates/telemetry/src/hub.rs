//! [`Telemetry`]: the real [`Recorder`] — one hub of atomic metric
//! families shared (behind an `Arc`) by every layer of a fastlive
//! stack.

use crate::events::{EventKind, EventLog};
use crate::hist::{Counter, Histogram};
use crate::snapshot::{NamedCount, NamedHistogram, PlanSnapshot, TelemetrySnapshot, VfsOpSnapshot};
use crate::Recorder;

/// The facade query kinds, as telemetry labels. Mirrors the facade's
/// `Query` enum without depending on it — this crate sits *below*
/// every other fastlive crate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryClass {
    /// Block live-in probe.
    LiveIn,
    /// Block live-out probe.
    LiveOut,
    /// Program-point liveness probe.
    LiveAt,
    /// Whole-function live sets.
    LiveSets,
    /// Value-interference test.
    Interfere,
    /// Nullness fact probe (dominance-based sparse analysis).
    Nullness,
    /// Definite-initialization probe.
    DefiniteInit,
}

impl QueryClass {
    /// Every class, in label order (snapshot vectors use this order).
    pub const ALL: [QueryClass; 7] = [
        QueryClass::LiveIn,
        QueryClass::LiveOut,
        QueryClass::LiveAt,
        QueryClass::LiveSets,
        QueryClass::Interfere,
        QueryClass::Nullness,
        QueryClass::DefiniteInit,
    ];

    /// Stable snake_case label.
    pub fn name(self) -> &'static str {
        match self {
            QueryClass::LiveIn => "live_in",
            QueryClass::LiveOut => "live_out",
            QueryClass::LiveAt => "live_at",
            QueryClass::LiveSets => "live_sets",
            QueryClass::Interfere => "interfere",
            QueryClass::Nullness => "nullness",
            QueryClass::DefiniteInit => "definite_init",
        }
    }
}

/// Which cache tier resolved (or contributed to) one engine analysis
/// probe, with a duration attached. One `shaped_analysis` call records
/// exactly one of `MemoryHit` / `DedupWait` / `Compute`; when the disk
/// tier is consulted, one additional `Disk*` span rides along.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tier {
    /// The striped in-memory cache answered (span: lock + probe).
    MemoryHit,
    /// Another worker was computing the same shape; this probe waited
    /// and adopted its result (span: the full wait).
    DedupWait,
    /// The disk probe decoded a valid entry (span: read + decode +
    /// revive).
    DiskHit,
    /// The disk probe found nothing (span: the probe I/O).
    DiskMiss,
    /// The disk probe found an invalid entry (span: read + failed
    /// validation).
    DiskReject,
    /// The disk probe's I/O failed (span: the failing I/O).
    DiskError,
    /// The disk was skipped — breaker open or shape quarantined
    /// (span: 0; the count is the signal).
    DiskSkipped,
    /// The §5.2 precomputation ran (span: the compute itself).
    Compute,
}

impl Tier {
    /// Every tier, in label order.
    pub const ALL: [Tier; 8] = [
        Tier::MemoryHit,
        Tier::DedupWait,
        Tier::DiskHit,
        Tier::DiskMiss,
        Tier::DiskReject,
        Tier::DiskError,
        Tier::DiskSkipped,
        Tier::Compute,
    ];

    /// Stable snake_case label.
    pub fn name(self) -> &'static str {
        match self {
            Tier::MemoryHit => "memory_hit",
            Tier::DedupWait => "dedup_wait",
            Tier::DiskHit => "disk_hit",
            Tier::DiskMiss => "disk_miss",
            Tier::DiskReject => "disk_reject",
            Tier::DiskError => "disk_error",
            Tier::DiskSkipped => "disk_skipped",
            Tier::Compute => "compute",
        }
    }
}

/// Persistence-tier filesystem operation kinds — mirrors the engine's
/// `vfs::OpKind` (minus its `Any` matcher) without the dependency.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VfsOp {
    /// Whole-file read.
    Read,
    /// Whole-file write.
    Write,
    /// Atomic rename.
    Rename,
    /// File deletion.
    Remove,
    /// Stat.
    Metadata,
    /// Directory listing.
    ReadDir,
    /// Recursive directory creation.
    CreateDir,
}

impl VfsOp {
    /// Every op, in label order.
    pub const ALL: [VfsOp; 7] = [
        VfsOp::Read,
        VfsOp::Write,
        VfsOp::Rename,
        VfsOp::Remove,
        VfsOp::Metadata,
        VfsOp::ReadDir,
        VfsOp::CreateDir,
    ];

    /// Stable snake_case label.
    pub fn name(self) -> &'static str {
        match self {
            VfsOp::Read => "read",
            VfsOp::Write => "write",
            VfsOp::Rename => "rename",
            VfsOp::Remove => "remove",
            VfsOp::Metadata => "metadata",
            VfsOp::ReadDir => "read_dir",
            VfsOp::CreateDir => "create_dir",
        }
    }
}

/// Per-backend query counters: the three stock backends plus a bucket
/// for any external `QueryEngine` implementation.
const BACKENDS: [&str; 4] = ["direct", "session", "oracle", "other"];

fn backend_slot(name: &str) -> usize {
    BACKENDS
        .iter()
        .position(|&b| b == name)
        .unwrap_or(BACKENDS.len() - 1)
}

/// The real [`Recorder`]: atomic histogram/counter families for every
/// instrumented site, plus the event ring log. Shared as
/// `Arc<Telemetry>` between the facade (which also keeps it for
/// [`snapshot`](Telemetry::snapshot)) and the engine it built.
///
/// All record paths are lock-free (the event log's mutex is touched
/// only by rare events), so the enabled-recorder overhead on the query
/// hot path stays within the few-percent budget `BENCH_obs.json`
/// proves.
#[derive(Debug, Default)]
pub struct Telemetry {
    queries: [Histogram; QueryClass::ALL.len()],
    backend_queries: [Counter; BACKENDS.len()],
    tiers: [Histogram; Tier::ALL.len()],
    vfs_ns: [Histogram; VfsOp::ALL.len()],
    vfs_bytes: [Counter; VfsOp::ALL.len()],
    vfs_errors: [Counter; VfsOp::ALL.len()],
    plan_batches: Counter,
    plan_queries: Counter,
    plan_grouped_groups: Counter,
    plan_scalar_groups: Counter,
    plan_batch_size: Histogram,
    plan_batch_ns: Histogram,
    queue_depth: Histogram,
    events: EventLog,
}

impl Telemetry {
    /// A fresh hub with the default event capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh hub retaining at most `events` ring-log entries.
    pub fn with_event_capacity(events: usize) -> Self {
        Telemetry {
            events: EventLog::with_capacity(events),
            ..Self::default()
        }
    }

    /// Builds the comparable snapshot (also reachable through
    /// [`Recorder::snapshot`], which wraps it in `Some`).
    pub fn snapshot_now(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            queries: QueryClass::ALL
                .iter()
                .map(|&c| NamedHistogram {
                    name: c.name(),
                    hist: self.queries[c as usize].snapshot(),
                })
                .collect(),
            backend_queries: BACKENDS
                .iter()
                .zip(&self.backend_queries)
                .map(|(&name, c)| NamedCount {
                    name,
                    count: c.get(),
                })
                .collect(),
            tiers: Tier::ALL
                .iter()
                .map(|&t| NamedHistogram {
                    name: t.name(),
                    hist: self.tiers[t as usize].snapshot(),
                })
                .collect(),
            vfs_ops: VfsOp::ALL
                .iter()
                .map(|&op| VfsOpSnapshot {
                    name: op.name(),
                    latency: self.vfs_ns[op as usize].snapshot(),
                    bytes: self.vfs_bytes[op as usize].get(),
                    errors: self.vfs_errors[op as usize].get(),
                })
                .collect(),
            plan: PlanSnapshot {
                batches: self.plan_batches.get(),
                queries: self.plan_queries.get(),
                grouped_groups: self.plan_grouped_groups.get(),
                scalar_groups: self.plan_scalar_groups.get(),
                batch_size: self.plan_batch_size.snapshot(),
                batch_ns: self.plan_batch_ns.snapshot(),
            },
            queue_depth: self.queue_depth.snapshot(),
            events: self.events.snapshot(),
            events_dropped: self.events.dropped(),
        }
    }
}

impl Recorder for Telemetry {
    fn enabled(&self) -> bool {
        true
    }

    fn query(&self, class: QueryClass, backend: &'static str, ns: u64) {
        self.queries[class as usize].record(ns);
        self.backend_queries[backend_slot(backend)].inc();
    }

    fn plan(&self, queries: u64, grouped_groups: u64, scalar_groups: u64, ns: u64) {
        self.plan_batches.inc();
        self.plan_queries.add(queries);
        self.plan_grouped_groups.add(grouped_groups);
        self.plan_scalar_groups.add(scalar_groups);
        self.plan_batch_size.record(queries);
        self.plan_batch_ns.record(ns);
    }

    fn tier(&self, tier: Tier, ns: u64) {
        self.tiers[tier as usize].record(ns);
    }

    fn vfs_op(&self, op: VfsOp, ns: u64, bytes: u64, ok: bool) {
        self.vfs_ns[op as usize].record(ns);
        self.vfs_bytes[op as usize].add(bytes);
        if !ok {
            self.vfs_errors[op as usize].inc();
        }
    }

    fn queue_depth(&self, depth: u64) {
        self.queue_depth.record(depth);
    }

    fn event(&self, kind: EventKind, detail: &str) {
        self.events.record(kind, detail);
    }

    fn snapshot(&self) -> Option<TelemetrySnapshot> {
        Some(self.snapshot_now())
    }

    fn recent_events(&self) -> Vec<crate::Event> {
        self.events.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_site_lands_in_the_snapshot() {
        let hub = Telemetry::new();
        hub.query(QueryClass::LiveAt, "direct", 500);
        hub.query(QueryClass::LiveAt, "unknown-backend", 700);
        hub.plan(10, 2, 1, 40_000);
        hub.tier(Tier::Compute, 90_000);
        hub.vfs_op(VfsOp::Write, 3_000, 128, false);
        hub.queue_depth(4);
        hub.event(EventKind::GcRun, "retained=1 removed=0");

        let s = hub.snapshot_now();
        assert_eq!(s.queries[QueryClass::LiveAt as usize].hist.count, 2);
        assert_eq!(s.backend_queries[0].count, 1, "direct");
        assert_eq!(s.backend_queries[3].count, 1, "unknown folds into other");
        assert_eq!(s.plan.batches, 1);
        assert_eq!(s.plan.queries, 10);
        assert_eq!(s.plan.grouped_groups, 2);
        assert_eq!(s.plan.scalar_groups, 1);
        assert_eq!(s.tiers[Tier::Compute as usize].hist.count, 1);
        let write = &s.vfs_ops[VfsOp::Write as usize];
        assert_eq!(
            (write.bytes, write.errors, write.latency.count),
            (128, 1, 1)
        );
        assert_eq!(s.queue_depth.count, 1);
        assert_eq!(s.events.len(), 1);
        assert_eq!(s.events_dropped, 0);
    }

    #[test]
    fn snapshots_of_equal_state_compare_equal() {
        let a = Telemetry::new();
        let b = Telemetry::new();
        for hub in [&a, &b] {
            hub.query(QueryClass::LiveIn, "session", 64);
            hub.tier(Tier::MemoryHit, 32);
        }
        assert_eq!(a.snapshot_now(), b.snapshot_now());
        a.queue_depth(1);
        assert_ne!(a.snapshot_now(), b.snapshot_now());
    }
}
