//! `fastlive-telemetry` — the zero-dependency metrics core of the
//! fastlive stack.
//!
//! Everything the query plane wants to *measure* lives here, and
//! nothing the query plane wants to *answer* does: answers never
//! depend on telemetry state (a workspace standing invariant), so
//! this crate exports only write-mostly atomic primitives and one
//! read-side snapshot type.
//!
//! The pieces:
//!
//! * [`Counter`] — a relaxed atomic `u64`.
//! * [`Histogram`] — a fixed-boundary log₂-bucketed latency histogram
//!   (65 buckets cover the full `u64` nanosecond range). Each record
//!   is one `fetch_add` into exactly one bucket plus a sum/max update,
//!   so bucket totals are **exact under any contention** — the
//!   multi-thread exactness the barrier-storm tests pin.
//! * [`EventLog`] — a bounded ring buffer of structured [`Event`]s
//!   (breaker trips/restores, quarantines, compute panics, gc runs,
//!   session revalidations). Events are rare; the log is behind one
//!   mutex.
//! * [`Recorder`] — the instrumentation seam. Every method has a
//!   no-op default and [`Recorder::enabled`] defaults to `false`, so
//!   hot paths guard their clock reads on `enabled()` and a
//!   [`NoopRecorder`] compiles instrumentation down to one predictable
//!   branch (`BENCH_obs.json` records the ≈1.0× budget).
//! * [`Telemetry`] — the real recorder: per-query-kind, per-tier and
//!   per-VFS-op histograms, planner counters, queue-depth
//!   distribution, and the event log, snapshotted into a plain
//!   comparable [`TelemetrySnapshot`] with hand-rolled JSON /
//!   Prometheus-text / `Display` renderings (no serde — the same
//!   discipline as the persist codec).
//!
//! # Examples
//!
//! ```
//! use fastlive_telemetry::{QueryClass, Recorder, Telemetry};
//! use std::sync::Arc;
//!
//! let hub = Arc::new(Telemetry::new());
//! hub.query(QueryClass::LiveIn, "session", 1_250);
//! hub.query(QueryClass::LiveIn, "session", 840);
//!
//! let snap = hub.snapshot().expect("a real recorder snapshots");
//! let live_in = &snap.queries[QueryClass::LiveIn as usize].hist;
//! assert_eq!(live_in.count, 2);
//! assert_eq!(live_in.sum, 2_090);
//! assert!(snap.to_json().starts_with('{'));
//! assert!(snap.to_prometheus().contains("fastlive_query_latency_ns"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod events;
mod hist;
mod hub;
mod snapshot;

pub use events::{Event, EventKind, EventLog};
pub use hist::{Counter, Histogram, HistogramSnapshot, BUCKETS};
pub use hub::{QueryClass, Telemetry, Tier, VfsOp};
pub use snapshot::{NamedCount, NamedHistogram, PlanSnapshot, TelemetrySnapshot, VfsOpSnapshot};

/// The instrumentation seam every fastlive layer records through.
///
/// All methods default to no-ops and [`enabled`](Self::enabled)
/// defaults to `false`; instrumentation sites are written as
///
/// ```ignore
/// let t0 = recorder.enabled().then(Instant::now);
/// let out = hot_path();
/// if let Some(t0) = t0 {
///     recorder.tier(Tier::MemoryHit, t0.elapsed().as_nanos() as u64);
/// }
/// ```
///
/// so a disabled recorder never pays a clock read, a format, or an
/// allocation — only the `enabled()` branch. Implementations must be
/// `Send + Sync`: one recorder is shared by every worker thread.
///
/// The trait is deliberately analysis-agnostic (durations, byte
/// counts, opaque labels): the ROADMAP's sparse-dataflow
/// generalization reuses it unchanged.
pub trait Recorder: Send + Sync {
    /// Should instrumentation sites measure at all? `false` (the
    /// default) lets hot paths skip clock reads and detail formatting
    /// entirely.
    fn enabled(&self) -> bool {
        false
    }

    /// One facade query answered: its kind, the backend that served
    /// it, and the end-to-end dispatch latency in nanoseconds.
    fn query(&self, _class: QueryClass, _backend: &'static str, _ns: u64) {}

    /// One planned `run_queries` batch finished: how many queries it
    /// carried, how many per-function groups took the grouped
    /// (batch-row) vs the scalar path, and the whole-batch latency.
    fn plan(&self, _queries: u64, _grouped_groups: u64, _scalar_groups: u64, _ns: u64) {}

    /// One engine cache-tier outcome with its duration: a stripe hit,
    /// a dedup wait, a disk probe (classified), or a cold compute.
    fn tier(&self, _tier: Tier, _ns: u64) {}

    /// One persistence-tier filesystem operation: kind, latency,
    /// payload bytes (read or written; 0 for metadata-only ops) and
    /// whether it succeeded.
    fn vfs_op(&self, _op: VfsOp, _ns: u64, _bytes: u64, _ok: bool) {}

    /// Worker-pool queue depth observed when a worker claimed its next
    /// function (the number of functions still unclaimed, including
    /// the one just taken).
    fn queue_depth(&self, _depth: u64) {}

    /// A rare structured event (breaker trip/restore, quarantine,
    /// compute panic, gc run, session revalidation). Call sites guard
    /// on [`enabled`](Self::enabled) before formatting `detail`.
    fn event(&self, _kind: EventKind, _detail: &str) {}

    /// A point-in-time snapshot of everything recorded, or `None` for
    /// recorders that keep no state (the no-op).
    fn snapshot(&self) -> Option<TelemetrySnapshot> {
        None
    }

    /// The most recent events, oldest first — what `HealthReport`
    /// folds in. Empty for stateless recorders.
    fn recent_events(&self) -> Vec<Event> {
        Vec::new()
    }
}

/// The do-nothing [`Recorder`]: every default method body, state-free.
/// This is what uninstrumented stacks run on — one `enabled()` branch
/// per site and nothing else.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn noop_recorder_is_disabled_and_stateless() {
        let r = NoopRecorder;
        assert!(!r.enabled());
        r.query(QueryClass::LiveIn, "direct", 1);
        r.tier(Tier::Compute, 1);
        r.event(EventKind::GcRun, "retained=1");
        assert_eq!(r.snapshot(), None);
        assert!(r.recent_events().is_empty());
    }

    #[test]
    fn recorder_objects_are_shareable() {
        // The engine holds `Arc<dyn Recorder>`; both impls must coerce.
        let noop: Arc<dyn Recorder> = Arc::new(NoopRecorder);
        let real: Arc<dyn Recorder> = Arc::new(Telemetry::new());
        assert!(!noop.enabled());
        assert!(real.enabled());
    }
}
