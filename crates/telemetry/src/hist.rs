//! Atomic counters and the fixed-boundary log₂ latency histogram.

use std::sync::atomic::{AtomicU64, Ordering};

/// A relaxed atomic `u64` counter. `Relaxed` is sufficient everywhere
/// in this crate: counters are statistics, never synchronization — the
/// only cross-thread guarantee needed is that every increment lands,
/// which any atomic RMW provides.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of buckets: bucket 0 holds the value 0, bucket `b` (1..=64)
/// holds values in `[2^(b-1), 2^b)` — together they cover all of
/// `u64`, so recording can never overflow a boundary.
pub const BUCKETS: usize = 65;

/// A fixed-boundary log₂-bucketed histogram of `u64` samples
/// (nanoseconds on the latency paths, plain counts for batch sizes and
/// queue depths — the bucketing is unit-agnostic).
///
/// Each [`record`](Self::record) performs exactly one `fetch_add` into
/// one bucket plus a sum add and a max CAS-loop-free `fetch_max`, so
/// the bucket totals, the count and the sum are **exact** under any
/// multi-thread contention — no sampling, no loss. Boundaries are
/// fixed at powers of two, which makes quantile extraction a cumulative
/// walk and keeps two snapshots comparable without bucket alignment.
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// The bucket index of `value`: 0 for 0, otherwise the bit width
    /// of the value (so `[2^(b-1), 2^b)` lands in bucket `b`).
    pub(crate) fn bucket_of(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// The inclusive upper bound of bucket `b` — what quantiles report.
    pub(crate) fn bucket_upper(b: usize) -> u64 {
        if b == 0 {
            0
        } else if b >= 64 {
            u64::MAX
        } else {
            (1u64 << b) - 1
        }
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.counts[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// A point-in-time copy of the histogram's state.
    ///
    /// Taken bucket by bucket without a global lock, so a snapshot
    /// concurrent with recording may be torn *across* fields (count vs
    /// sum) — but every individual bucket value is exact, and a
    /// quiescent histogram snapshots exactly.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let count = buckets.iter().sum();
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A plain, comparable copy of a [`Histogram`] — what
/// [`TelemetrySnapshot`](crate::TelemetrySnapshot) is built from.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total samples (always the exact sum of `buckets`).
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample seen.
    pub max: u64,
    /// Per-bucket sample counts; bucket `b` covers `[2^(b-1), 2^b)`
    /// (bucket 0 covers exactly 0). Always [`BUCKETS`]-long — fixed
    /// boundaries keep any two snapshots directly comparable.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// The `q`-quantile (`0.0 ..= 1.0`) as the upper bound of the
    /// bucket holding the `⌈q·count⌉`-th sample, clamped to the exact
    /// observed maximum. 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= target {
                return Histogram::bucket_upper(b).min(self.max);
            }
        }
        self.max
    }

    /// Median (log₂-bucket resolution).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Non-empty `(inclusive_upper_bound, count)` pairs, low to high —
    /// the compact form the JSON rendering emits.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(b, &n)| (Histogram::bucket_upper(b), n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_cover_u64_without_gaps() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        // Every bucket's upper bound is the last value it holds.
        for b in 1..64 {
            let upper = Histogram::bucket_upper(b);
            assert_eq!(Histogram::bucket_of(upper), b);
            assert_eq!(Histogram::bucket_of(upper + 1), b + 1);
        }
    }

    #[test]
    fn record_tracks_count_sum_max_exactly() {
        let h = Histogram::new();
        for v in [0u64, 1, 7, 8, 1000, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 2016);
        assert_eq!(s.max, 1000);
        assert_eq!(s.buckets.iter().sum::<u64>(), s.count);
        assert_eq!(s.buckets[0], 1, "the single zero");
        assert_eq!(s.buckets[10], 2, "both 1000s land in [512, 1024)");
    }

    #[test]
    fn quantiles_walk_the_cumulative_distribution() {
        let h = Histogram::new();
        // 90 fast samples, 10 slow ones.
        for _ in 0..90 {
            h.record(100); // bucket 7, upper 127
        }
        for _ in 0..10 {
            h.record(10_000); // bucket 14, upper 16383
        }
        let s = h.snapshot();
        assert_eq!(s.p50(), 127);
        assert_eq!(s.p90(), 127);
        assert_eq!(s.p99(), 10_000, "p99 clamps to the observed max");
        assert_eq!(s.quantile(1.0), 10_000);
        assert_eq!(HistogramSnapshot::default().p99(), 0, "empty is 0");
    }

    #[test]
    fn concurrent_records_lose_nothing() {
        use std::sync::Barrier;
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        let h = Histogram::new();
        let barrier = Barrier::new(THREADS);
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let h = &h;
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    for i in 0..PER_THREAD {
                        h.record(t as u64 * 1000 + i % 97);
                    }
                });
            }
        });
        let s = h.snapshot();
        assert_eq!(
            s.count,
            THREADS as u64 * PER_THREAD,
            "exact under contention"
        );
        assert_eq!(s.buckets.iter().sum::<u64>(), s.count);
    }

    #[test]
    fn nonzero_buckets_compact_the_distribution() {
        let h = Histogram::new();
        h.record(0);
        h.record(5);
        h.record(5);
        let pairs = h.snapshot().nonzero_buckets();
        assert_eq!(pairs, vec![(0, 1), (7, 2)]);
    }
}
