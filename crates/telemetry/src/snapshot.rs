//! [`TelemetrySnapshot`]: the plain, comparable export value, with
//! hand-rolled JSON and Prometheus-text renderings.
//!
//! No serde anywhere — the renderings are built with `std::fmt::Write`
//! exactly like the persist codec builds bytes, so the exposition
//! formats are auditable in one file and cost nothing at build time.

use std::fmt::Write as _;

use crate::events::Event;
use crate::hist::HistogramSnapshot;

/// Escapes `s` for embedding in a JSON string literal (quotes,
/// backslashes and control characters; everything else passes
/// through). Shared by every `to_json` in the workspace.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl HistogramSnapshot {
    /// JSON object: count/sum/max, the three stock quantiles, and the
    /// non-empty buckets as `[upper_bound, count]` pairs.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[",
            self.count,
            self.sum,
            self.max,
            self.p50(),
            self.p90(),
            self.p99()
        );
        for (i, (upper, n)) in self.nonzero_buckets().into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{upper},{n}]");
        }
        out.push_str("]}");
        out
    }
}

impl Event {
    /// JSON object: `{"seq":…,"kind":"…","detail":"…"}`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"seq\":{},\"kind\":\"{}\",\"detail\":\"{}\"}}",
            self.seq,
            self.kind.name(),
            json_escape(&self.detail)
        )
    }
}

/// A labelled histogram snapshot (`name` is a stable snake_case label
/// from [`QueryClass`](crate::QueryClass) / [`Tier`](crate::Tier)).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NamedHistogram {
    /// The metric label.
    pub name: &'static str,
    /// The distribution.
    pub hist: HistogramSnapshot,
}

/// A labelled counter value.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NamedCount {
    /// The metric label.
    pub name: &'static str,
    /// The count.
    pub count: u64,
}

/// One VFS op kind's recorded I/O: latency distribution, cumulative
/// payload bytes, and failed-operation count.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VfsOpSnapshot {
    /// The op label (`"read"`, `"write"`, …).
    pub name: &'static str,
    /// Per-operation latency.
    pub latency: HistogramSnapshot,
    /// Total payload bytes moved (read: bytes returned; write: bytes
    /// submitted; 0 for metadata-only ops).
    pub bytes: u64,
    /// Operations that returned an error.
    pub errors: u64,
}

/// What the `run_queries` planner did across all batches.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PlanSnapshot {
    /// Planned batches executed.
    pub batches: u64,
    /// Queries carried by those batches.
    pub queries: u64,
    /// Per-function groups that took the grouped (batch-row) path.
    pub grouped_groups: u64,
    /// Per-function groups answered query-by-query (scalar path).
    pub scalar_groups: u64,
    /// Distribution of batch sizes (queries per `run_queries` call).
    pub batch_size: HistogramSnapshot,
    /// Distribution of whole-batch latencies, nanoseconds.
    pub batch_ns: HistogramSnapshot,
}

/// A point-in-time copy of everything a [`Telemetry`](crate::Telemetry)
/// hub recorded — a plain value: `Clone`, comparable, no locks, no
/// atomics. Render it with [`to_json`](Self::to_json),
/// [`to_prometheus`](Self::to_prometheus) or `Display`.
///
/// The default value is the "telemetry disabled" snapshot: every
/// vector empty, every counter zero — what `Fastlive::telemetry()`
/// returns on an uninstrumented stack.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// Per-query-kind dispatch latency, in
    /// [`QueryClass::ALL`](crate::QueryClass::ALL) order.
    pub queries: Vec<NamedHistogram>,
    /// Queries served per backend (`direct` / `session` / `oracle` /
    /// `other`).
    pub backend_queries: Vec<NamedCount>,
    /// Per-tier outcome durations, in [`Tier::ALL`](crate::Tier::ALL)
    /// order.
    pub tiers: Vec<NamedHistogram>,
    /// Per-VFS-op I/O, in [`VfsOp::ALL`](crate::VfsOp::ALL) order.
    pub vfs_ops: Vec<VfsOpSnapshot>,
    /// Planner activity.
    pub plan: PlanSnapshot,
    /// Worker-pool queue depths observed at claim time.
    pub queue_depth: HistogramSnapshot,
    /// Retained events, oldest first.
    pub events: Vec<Event>,
    /// Events evicted by the ring bound.
    pub events_dropped: u64,
}

impl TelemetrySnapshot {
    /// Total queries recorded across all kinds.
    pub fn total_queries(&self) -> u64 {
        self.queries.iter().map(|q| q.hist.count).sum()
    }

    /// Total tier outcomes recorded across all tiers.
    pub fn total_tier_records(&self) -> u64 {
        self.tiers.iter().map(|t| t.hist.count).sum()
    }

    /// The named tier's distribution, if present.
    pub fn tier(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.tiers.iter().find(|t| t.name == name).map(|t| &t.hist)
    }

    /// The named query kind's distribution, if present.
    pub fn query_kind(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.queries
            .iter()
            .find(|q| q.name == name)
            .map(|q| &q.hist)
    }

    /// The whole snapshot as one JSON object (stable key order; see
    /// the README's "Observability" section for the schema).
    pub fn to_json(&self) -> String {
        let named_hists = |out: &mut String, items: &[NamedHistogram]| {
            for (i, nh) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":{}", nh.name, nh.hist.to_json());
            }
        };
        let mut out = String::from("{\"queries\":{");
        named_hists(&mut out, &self.queries);
        out.push_str("},\"backend_queries\":{");
        for (i, nc) in self.backend_queries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", nc.name, nc.count);
        }
        out.push_str("},\"tiers\":{");
        named_hists(&mut out, &self.tiers);
        out.push_str("},\"vfs\":{");
        for (i, op) in self.vfs_ops.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"latency\":{},\"bytes\":{},\"errors\":{}}}",
                op.name,
                op.latency.to_json(),
                op.bytes,
                op.errors
            );
        }
        let _ = write!(
            out,
            "}},\"plan\":{{\"batches\":{},\"queries\":{},\"grouped_groups\":{},\
             \"scalar_groups\":{},\"batch_size\":{},\"batch_ns\":{}}}",
            self.plan.batches,
            self.plan.queries,
            self.plan.grouped_groups,
            self.plan.scalar_groups,
            self.plan.batch_size.to_json(),
            self.plan.batch_ns.to_json()
        );
        let _ = write!(out, ",\"queue_depth\":{}", self.queue_depth.to_json());
        out.push_str(",\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&e.to_json());
        }
        let _ = write!(out, "],\"events_dropped\":{}}}", self.events_dropped);
        out
    }

    /// Prometheus text exposition (version 0.0.4): proper `histogram`
    /// families with cumulative `le` buckets, `counter` families for
    /// the scalars, and an `fastlive_events_total` counter per event
    /// kind.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let hist_family =
            |out: &mut String, metric: &str, label: &str, items: &[(&str, &HistogramSnapshot)]| {
                let _ = writeln!(out, "# TYPE {metric} histogram");
                for (name, h) in items {
                    let mut cumulative = 0u64;
                    for (upper, n) in h.nonzero_buckets() {
                        cumulative += n;
                        let _ = writeln!(
                            out,
                            "{metric}_bucket{{{label}=\"{name}\",le=\"{upper}\"}} {cumulative}"
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{metric}_bucket{{{label}=\"{name}\",le=\"+Inf\"}} {}",
                        h.count
                    );
                    let _ = writeln!(out, "{metric}_sum{{{label}=\"{name}\"}} {}", h.sum);
                    let _ = writeln!(out, "{metric}_count{{{label}=\"{name}\"}} {}", h.count);
                }
            };
        hist_family(
            &mut out,
            "fastlive_query_latency_ns",
            "kind",
            &self
                .queries
                .iter()
                .map(|q| (q.name, &q.hist))
                .collect::<Vec<_>>(),
        );
        let _ = writeln!(out, "# TYPE fastlive_backend_queries_total counter");
        for nc in &self.backend_queries {
            let _ = writeln!(
                out,
                "fastlive_backend_queries_total{{backend=\"{}\"}} {}",
                nc.name, nc.count
            );
        }
        hist_family(
            &mut out,
            "fastlive_tier_latency_ns",
            "tier",
            &self
                .tiers
                .iter()
                .map(|t| (t.name, &t.hist))
                .collect::<Vec<_>>(),
        );
        hist_family(
            &mut out,
            "fastlive_vfs_latency_ns",
            "op",
            &self
                .vfs_ops
                .iter()
                .map(|v| (v.name, &v.latency))
                .collect::<Vec<_>>(),
        );
        let _ = writeln!(out, "# TYPE fastlive_vfs_bytes_total counter");
        for v in &self.vfs_ops {
            let _ = writeln!(
                out,
                "fastlive_vfs_bytes_total{{op=\"{}\"}} {}",
                v.name, v.bytes
            );
        }
        let _ = writeln!(out, "# TYPE fastlive_vfs_errors_total counter");
        for v in &self.vfs_ops {
            let _ = writeln!(
                out,
                "fastlive_vfs_errors_total{{op=\"{}\"}} {}",
                v.name, v.errors
            );
        }
        let _ = writeln!(out, "# TYPE fastlive_plan_batches_total counter");
        let _ = writeln!(out, "fastlive_plan_batches_total {}", self.plan.batches);
        let _ = writeln!(out, "# TYPE fastlive_plan_queries_total counter");
        let _ = writeln!(out, "fastlive_plan_queries_total {}", self.plan.queries);
        let _ = writeln!(out, "# TYPE fastlive_plan_groups_total counter");
        let _ = writeln!(
            out,
            "fastlive_plan_groups_total{{path=\"grouped\"}} {}",
            self.plan.grouped_groups
        );
        let _ = writeln!(
            out,
            "fastlive_plan_groups_total{{path=\"scalar\"}} {}",
            self.plan.scalar_groups
        );
        hist_family(
            &mut out,
            "fastlive_queue_depth",
            "pool",
            &[("analyze", &self.queue_depth)],
        );
        let _ = writeln!(out, "# TYPE fastlive_events_total counter");
        for kind in crate::EventKind::ALL {
            let n = self.events.iter().filter(|e| e.kind == kind).count();
            let _ = writeln!(out, "fastlive_events_total{{kind=\"{}\"}} {n}", kind.name());
        }
        out
    }
}

/// One summary line per non-empty metric family — the operator-log
/// rendering (`log::info!("{snapshot}")`-shaped, minus the logger).
impl std::fmt::Display for TelemetrySnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "telemetry: {} queries", self.total_queries())?;
        for q in self.queries.iter().filter(|q| q.hist.count > 0) {
            writeln!(
                f,
                "  query {:<10} n={:<8} p50={}ns p90={}ns p99={}ns max={}ns",
                q.name,
                q.hist.count,
                q.hist.p50(),
                q.hist.p90(),
                q.hist.p99(),
                q.hist.max
            )?;
        }
        for t in self.tiers.iter().filter(|t| t.hist.count > 0) {
            writeln!(
                f,
                "  tier  {:<12} n={:<8} p50={}ns p99={}ns",
                t.name,
                t.hist.count,
                t.hist.p50(),
                t.hist.p99()
            )?;
        }
        for v in self.vfs_ops.iter().filter(|v| v.latency.count > 0) {
            writeln!(
                f,
                "  vfs   {:<10} n={:<8} bytes={} errors={} p99={}ns",
                v.name,
                v.latency.count,
                v.bytes,
                v.errors,
                v.latency.p99()
            )?;
        }
        if self.plan.batches > 0 {
            writeln!(
                f,
                "  plan  batches={} queries={} grouped={} scalar={}",
                self.plan.batches,
                self.plan.queries,
                self.plan.grouped_groups,
                self.plan.scalar_groups
            )?;
        }
        if self.queue_depth.count > 0 {
            writeln!(
                f,
                "  queue depth n={} p50={} max={}",
                self.queue_depth.count,
                self.queue_depth.p50(),
                self.queue_depth.max
            )?;
        }
        write!(
            f,
            "  events retained={} dropped={}",
            self.events.len(),
            self.events_dropped
        )?;
        for e in &self.events {
            write!(f, "\n    [{}] {}: {}", e.seq, e.kind.name(), e.detail)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EventKind, QueryClass, Recorder, Telemetry, Tier, VfsOp};

    fn sample() -> TelemetrySnapshot {
        let hub = Telemetry::new();
        hub.query(QueryClass::LiveIn, "session", 100);
        hub.query(QueryClass::Interfere, "oracle", 9_000);
        hub.plan(3, 1, 0, 12_000);
        hub.tier(Tier::MemoryHit, 40);
        hub.tier(Tier::Compute, 80_000);
        hub.vfs_op(VfsOp::Read, 2_000, 512, true);
        hub.queue_depth(2);
        hub.event(EventKind::BreakerTripped, "streak=5 \"quoted\"\n");
        hub.snapshot_now()
    }

    /// A tiny structural JSON validator: brace/bracket balance with
    /// string-literal awareness — enough to catch every class of
    /// hand-rolling mistake (unescaped quotes, trailing commas are
    /// caught by the balance going wrong at the comma's container).
    fn assert_balanced_json(s: &str) {
        let mut depth: i64 = 0;
        let mut in_str = false;
        let mut escaped = false;
        for c in s.chars() {
            if in_str {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => {
                    depth -= 1;
                    assert!(depth >= 0, "unbalanced close in {s}");
                }
                _ => {}
            }
        }
        assert!(!in_str, "unterminated string in {s}");
        assert_eq!(depth, 0, "unbalanced braces in {s}");
    }

    #[test]
    fn json_is_balanced_and_carries_every_family() {
        let json = sample().to_json();
        assert_balanced_json(&json);
        for key in [
            "\"queries\"",
            "\"backend_queries\"",
            "\"tiers\"",
            "\"vfs\"",
            "\"plan\"",
            "\"queue_depth\"",
            "\"events\"",
            "\"events_dropped\"",
            "\"live_in\"",
            "\"memory_hit\"",
            "\"breaker_tripped\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn json_escapes_event_details() {
        let json = sample().to_json();
        assert!(json.contains("streak=5 \\\"quoted\\\"\\n"));
        assert_eq!(json_escape("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn prometheus_exposition_is_structurally_sound() {
        let prom = sample().to_prometheus();
        for needle in [
            "# TYPE fastlive_query_latency_ns histogram",
            "fastlive_query_latency_ns_bucket{kind=\"live_in\",le=\"+Inf\"} 1",
            "fastlive_query_latency_ns_count{kind=\"live_in\"} 1",
            "fastlive_backend_queries_total{backend=\"session\"} 1",
            "fastlive_tier_latency_ns_count{tier=\"compute\"} 1",
            "fastlive_vfs_bytes_total{op=\"read\"} 512",
            "fastlive_plan_batches_total 1",
            "fastlive_events_total{kind=\"breaker_tripped\"} 1",
        ] {
            assert!(prom.contains(needle), "missing {needle:?} in:\n{prom}");
        }
        // Cumulative le buckets never decrease within a series.
        let mut last: Option<(String, u64)> = None;
        for line in prom.lines().filter(|l| l.contains("_bucket{")) {
            let series = line.split(",le=").next().unwrap().to_string();
            let value: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            if let Some((prev_series, prev)) = &last {
                if *prev_series == series {
                    assert!(value >= *prev, "non-monotone bucket: {line}");
                }
            }
            last = Some((series, value));
        }
    }

    #[test]
    fn display_summarizes_nonempty_families_only() {
        let text = sample().to_string();
        assert!(text.contains("query live_in"));
        assert!(text.contains("tier  compute"));
        assert!(text.contains("plan  batches=1"));
        assert!(text.contains("breaker_tripped"));
        assert!(!text.contains("live_out"), "empty families are elided");

        let empty = TelemetrySnapshot::default().to_string();
        assert!(empty.contains("0 queries"));
    }

    #[test]
    fn default_snapshot_is_the_disabled_rendering() {
        let d = TelemetrySnapshot::default();
        assert_eq!(d.total_queries(), 0);
        assert_balanced_json(&d.to_json());
        assert!(d.to_prometheus().contains("fastlive_plan_batches_total 0"));
    }
}
