//! The bounded structured event log: rare, operator-facing state
//! transitions, kept in a ring buffer so a long-lived process never
//! grows without bound.

use std::collections::VecDeque;
use std::sync::Mutex;

/// What kind of state transition an [`Event`] records. These are the
/// *rare* facts an operator greps for — per-query data goes to the
/// histograms, never here.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// The disk circuit breaker tripped open (initial trip or a failed
    /// half-open probe re-opening).
    BreakerTripped,
    /// A successful half-open probe restored the breaker to closed.
    BreakerRestored,
    /// A shape's persist entry crossed the reject threshold and is now
    /// quarantined.
    ShapeQuarantined,
    /// A precomputation panicked; the failure was isolated to one
    /// function as a typed error.
    ComputePanicked,
    /// A persistence-tier GC sweep ran.
    GcRun,
    /// An engine session detected a stale entry and recomputed it.
    SessionRevalidated,
}

impl EventKind {
    /// Every kind, in rendering order.
    pub const ALL: [EventKind; 6] = [
        EventKind::BreakerTripped,
        EventKind::BreakerRestored,
        EventKind::ShapeQuarantined,
        EventKind::ComputePanicked,
        EventKind::GcRun,
        EventKind::SessionRevalidated,
    ];

    /// Stable snake_case name (used by the JSON and Prometheus
    /// renderings — changing one is a format break).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::BreakerTripped => "breaker_tripped",
            EventKind::BreakerRestored => "breaker_restored",
            EventKind::ShapeQuarantined => "shape_quarantined",
            EventKind::ComputePanicked => "compute_panicked",
            EventKind::GcRun => "gc_run",
            EventKind::SessionRevalidated => "session_revalidated",
        }
    }
}

/// One recorded state transition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Monotonic sequence number over the life of the log (never
    /// reused, so dropped events leave visible gaps).
    pub seq: u64,
    /// The transition class.
    pub kind: EventKind,
    /// Human-oriented detail (`"streak=5 backoff=100ms"`). Free-form;
    /// tooling should key on [`kind`](Self::kind).
    pub detail: String,
}

/// A bounded ring buffer of [`Event`]s. Recording past capacity drops
/// the **oldest** event; the total ever recorded stays observable so
/// drops are detectable ([`dropped`](Self::dropped)).
#[derive(Debug)]
pub struct EventLog {
    capacity: usize,
    inner: Mutex<LogInner>,
}

#[derive(Debug, Default)]
struct LogInner {
    next_seq: u64,
    ring: VecDeque<Event>,
}

impl EventLog {
    /// Default retained-event bound — plenty for a health report, tiny
    /// for a process.
    pub const DEFAULT_CAPACITY: usize = 256;

    /// A log retaining at most `capacity` events (0 keeps nothing but
    /// still counts — a pure drop counter).
    pub fn with_capacity(capacity: usize) -> Self {
        EventLog {
            capacity,
            inner: Mutex::new(LogInner::default()),
        }
    }

    /// A log with [`DEFAULT_CAPACITY`](Self::DEFAULT_CAPACITY).
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// Records one event, evicting the oldest if at capacity.
    pub fn record(&self, kind: EventKind, detail: impl Into<String>) {
        let mut inner = lock(&self.inner);
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.ring.push_back(Event {
            seq,
            kind,
            detail: detail.into(),
        });
        while inner.ring.len() > self.capacity {
            inner.ring.pop_front();
        }
    }

    /// The retained events, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        lock(&self.inner).ring.iter().cloned().collect()
    }

    /// Total events ever recorded (retained + dropped).
    pub fn total(&self) -> u64 {
        lock(&self.inner).next_seq
    }

    /// Events evicted by the capacity bound.
    pub fn dropped(&self) -> u64 {
        let inner = lock(&self.inner);
        inner.next_seq - inner.ring.len() as u64
    }
}

impl Default for EventLog {
    fn default() -> Self {
        Self::new()
    }
}

/// Poison-recovering lock: the log only ever appends whole events, so
/// data behind a poisoned mutex is always consistent.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_with_monotonic_seq() {
        let log = EventLog::new();
        log.record(EventKind::GcRun, "retained=3 removed=1");
        log.record(EventKind::BreakerTripped, "streak=5");
        let events = log.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[0].kind, EventKind::GcRun);
        assert_eq!(events[1].seq, 1);
        assert_eq!(log.dropped(), 0);
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let log = EventLog::with_capacity(3);
        for i in 0..5 {
            log.record(EventKind::SessionRevalidated, format!("func={i}"));
        }
        let events = log.snapshot();
        assert_eq!(events.len(), 3);
        // Events 0 and 1 were evicted; seq numbers betray the gap.
        assert_eq!(events[0].seq, 2);
        assert_eq!(events[2].seq, 4);
        assert_eq!(log.total(), 5);
        assert_eq!(log.dropped(), 2);
    }

    #[test]
    fn kind_names_are_stable_and_distinct() {
        let mut seen = std::collections::HashSet::new();
        for kind in EventKind::ALL {
            assert!(seen.insert(kind.name()), "duplicate name {}", kind.name());
            assert!(!kind.name().contains(char::is_uppercase));
        }
    }
}
