//! The `fastlive-lint` binary: scans the workspace sources and exits
//! non-zero on any gate violation. Run from the workspace root (CI
//! does `cargo run --release -p fastlive-lint`); pass `--root PATH` to
//! scan elsewhere.

use std::path::PathBuf;
use std::process::ExitCode;

use fastlive_lint::{run_workspace, RULES};

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root = PathBuf::from(".");
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("--root needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("fastlive-lint: workspace source gates\n");
                println!("usage: fastlive-lint [--root PATH]\n\nrules:");
                for rule in RULES {
                    println!("  {:<22} {}", rule.name, rule.summary);
                }
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let violations = match run_workspace(&root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("fastlive-lint: scan failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if violations.is_empty() {
        println!("fastlive-lint: {} rules, 0 violations", RULES.len());
        return ExitCode::SUCCESS;
    }
    for v in &violations {
        eprintln!("{v}");
    }
    eprintln!(
        "fastlive-lint: {} violation{} across {} rules",
        violations.len(),
        if violations.len() == 1 { "" } else { "s" },
        RULES.len()
    );
    ExitCode::FAILURE
}
