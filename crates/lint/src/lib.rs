//! `fastlive-lint` — the workspace's source gates as one
//! zero-dependency binary (`cargo run -p fastlive-lint`).
//!
//! These checks used to live as four `grep` pipelines in the CI
//! workflow; encoding them as a token scanner makes them runnable
//! locally, unit-testable against seeded violations, and honest about
//! their exemptions (each rule carries its allowlist as data, not as
//! `grep -v` incantations).
//!
//! The rules:
//!
//! | rule | scope | invariant |
//! |------|-------|-----------|
//! | `lock_recover` | `crates/engine/src/` | locks recover from poisoning via `lock_recover`, never `.lock().unwrap()` / `.expect()` |
//! | `vfs_isolation` | `crates/engine/src/` | `std::fs` only inside `vfs.rs` — everything else goes through the `Vfs` seam |
//! | `print_discipline` | `src/`, `crates/*/src/` | library crates never print; observability goes through the `Recorder` seam |
//! | `bitset_clippy` | `crates/bitset/src/` | no clippy suppressions in the hot kernels |
//! | `bitset_unsafe` | `crates/bitset/src/` | `#![forbid(unsafe_code)]` stays, and any future `unsafe` carries a `// SAFETY:` line |
//! | `facade_only_examples` | `examples/` | examples demonstrate the facade, not the internals |
//!
//! Test modules are exempt where the rule says so: the scanner treats
//! everything at or below the first `#[cfg(test)]` line as test code
//! (the workspace convention keeps test modules at the bottom of the
//! file). Comment lines are exempt from token rules — prose about
//! `std::fs` is not a call to it.

use std::fmt;

/// One rule violation at one source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// The rule that fired.
    pub rule: &'static str,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-indexed line.
    pub line: usize,
    /// The offending line, trimmed.
    pub excerpt: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.excerpt
        )
    }
}

/// A source file presented to the rules: a workspace-relative path
/// (always `/`-separated) plus its full text. Tests construct these
/// directly; the binary reads them off disk.
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// Full file contents.
    pub text: String,
}

impl SourceFile {
    /// A file from its path and text.
    pub fn new(path: impl Into<String>, text: impl Into<String>) -> Self {
        SourceFile {
            path: path.into(),
            text: text.into(),
        }
    }
}

/// One named gate: a scope filter and a per-file check.
pub struct Rule {
    /// Stable rule name (shown in reports and used in tests).
    pub name: &'static str,
    /// One-line statement of the invariant.
    pub summary: &'static str,
    /// The per-file check; returns every violation in the file.
    pub check: fn(&SourceFile) -> Vec<Violation>,
}

/// Every gate, in report order.
pub const RULES: &[Rule] = &[
    Rule {
        name: "lock_recover",
        summary: "engine locks recover from poisoning instead of unwrapping it",
        check: check_lock_recover,
    },
    Rule {
        name: "vfs_isolation",
        summary: "engine filesystem access goes through the Vfs seam (vfs.rs), not std::fs",
        check: check_vfs_isolation,
    },
    Rule {
        name: "print_discipline",
        summary: "library crates observe via the Recorder seam, never print",
        check: check_print_discipline,
    },
    Rule {
        name: "bitset_clippy",
        summary: "no clippy suppressions in the bitset kernels",
        check: check_bitset_clippy,
    },
    Rule {
        name: "bitset_unsafe",
        summary: "bitset keeps #![forbid(unsafe_code)]; any unsafe needs a // SAFETY: line",
        check: check_bitset_unsafe,
    },
    Rule {
        name: "facade_only_examples",
        summary: "examples import the fastlive facade, not fastlive_engine/fastlive_core",
        check: check_facade_only_examples,
    },
];

/// 0-indexed line where the file's test region starts (`usize::MAX`
/// when it has none). Everything at or after the first `#[cfg(test)]`
/// is test code by workspace convention.
fn test_region_start(text: &str) -> usize {
    text.lines()
        .position(|l| l.trim_start().starts_with("#[cfg(test)]"))
        .unwrap_or(usize::MAX)
}

fn is_comment(line: &str) -> bool {
    line.trim_start().starts_with("//")
}

/// Boundary-checked token search: the characters immediately before
/// and after a match must not be identifier characters, so `println!`
/// never matches inside `eprintln!` and `unsafe` never matches inside
/// `unsafe_code`.
fn has_token(line: &str, token: &str) -> bool {
    let ident = |c: char| c.is_alphanumeric() || c == '_';
    let mut start = 0;
    while let Some(pos) = line[start..].find(token) {
        let at = start + pos;
        let before_ok = line[..at].chars().next_back().is_none_or(|c| !ident(c));
        let after_ok = line[at + token.len()..]
            .chars()
            .next()
            .is_none_or(|c| !ident(c));
        if before_ok && after_ok {
            return true;
        }
        start = at + 1;
    }
    false
}

/// The line with all whitespace squeezed out — how rules match
/// multi-token patterns (`.lock() . unwrap(`) insensitively to
/// formatting.
fn squashed(line: &str) -> String {
    line.chars().filter(|c| !c.is_whitespace()).collect()
}

fn violation(rule: &'static str, file: &SourceFile, idx: usize, line: &str) -> Violation {
    Violation {
        rule,
        file: file.path.clone(),
        line: idx + 1,
        excerpt: line.trim().to_string(),
    }
}

/// Scans non-comment, non-test lines of `file` with `hit`, collecting
/// a violation per matching line.
fn scan_lines(
    rule: &'static str,
    file: &SourceFile,
    exempt_tests: bool,
    hit: impl Fn(&str) -> bool,
) -> Vec<Violation> {
    let cutoff = if exempt_tests {
        test_region_start(&file.text)
    } else {
        usize::MAX
    };
    file.text
        .lines()
        .enumerate()
        .take_while(|(i, _)| *i < cutoff)
        .filter(|(_, l)| !is_comment(l) && hit(l))
        .map(|(i, l)| violation(rule, file, i, l))
        .collect()
}

/// `lock_recover`: a panicking precomputation poisons whatever mutex
/// it held; `.lock().unwrap()` / `.lock().expect(..)` turns that one
/// panic into contagion for every later caller. Engine sources go
/// through `lock_recover` (crates/engine/src/vfs.rs). Test modules are
/// exempt — a test may assert however it likes.
pub fn check_lock_recover(file: &SourceFile) -> Vec<Violation> {
    if !file.path.starts_with("crates/engine/src/") {
        return Vec::new();
    }
    scan_lines("lock_recover", file, true, |l| {
        let s = squashed(l);
        s.contains(".lock().unwrap(") || s.contains(".lock().expect(")
    })
}

/// `vfs_isolation`: every filesystem touch in the engine goes through
/// the `Vfs` trait so fault injection and the breaker see it; a direct
/// `std::fs` call is invisible to both. Only `vfs.rs` (the seam
/// itself) may name `std::fs`; test modules are exempt.
pub fn check_vfs_isolation(file: &SourceFile) -> Vec<Violation> {
    if !file.path.starts_with("crates/engine/src/") || file.path == "crates/engine/src/vfs.rs" {
        return Vec::new();
    }
    scan_lines("vfs_isolation", file, true, |l| has_token(l, "std::fs"))
}

/// Paths exempt from `print_discipline`: printing is these binaries'
/// job.
pub const PRINT_ALLOWLIST: &[&str] = &[
    "crates/bench/src/",
    "crates/fuzz/src/main.rs",
    "crates/lint/src/",
];

/// `print_discipline`: a stray `println!` in a library crate is
/// invisible to the telemetry snapshot, unconditionally on, and
/// corrupts consumers' stdout. Bench/report binaries, the fuzz
/// campaign binary, this linter, and test modules are exempt.
pub fn check_print_discipline(file: &SourceFile) -> Vec<Violation> {
    let scanned = file.path.starts_with("src/")
        || (file.path.starts_with("crates/") && file.path.contains("/src/"));
    if !scanned || PRINT_ALLOWLIST.iter().any(|a| file.path.starts_with(a)) {
        return Vec::new();
    }
    scan_lines("print_discipline", file, true, |l| {
        ["println!", "eprintln!", "print!", "eprint!"]
            .iter()
            .any(|t| has_token(l, t))
    })
}

/// `bitset_clippy`: the wide kernels are the hottest code in the
/// repo; a lint suppression there hides exactly the kind of subtle
/// indexing or cast bug the differential suite exists to catch. Fix
/// the lint, don't silence it — in tests too.
pub fn check_bitset_clippy(file: &SourceFile) -> Vec<Violation> {
    if !file.path.starts_with("crates/bitset/src/") {
        return Vec::new();
    }
    scan_lines("bitset_clippy", file, false, |l| {
        squashed(l).contains("#[allow(clippy::")
    })
}

/// `bitset_unsafe`: the crate declares `#![forbid(unsafe_code)]` and
/// the padded arena keeps cache-line alignment without a single unsafe
/// block. Dropping the forbid counts as introducing unsafe; any future
/// unsafe must carry a `// SAFETY:` justification on the preceding
/// line.
pub fn check_bitset_unsafe(file: &SourceFile) -> Vec<Violation> {
    if !file.path.starts_with("crates/bitset/src/") {
        return Vec::new();
    }
    let mut out = Vec::new();
    if file.path == "crates/bitset/src/lib.rs" && !file.text.contains("forbid(unsafe_code)") {
        out.push(Violation {
            rule: "bitset_unsafe",
            file: file.path.clone(),
            line: 1,
            excerpt: "crates/bitset dropped #![forbid(unsafe_code)]".to_string(),
        });
    }
    let lines: Vec<&str> = file.text.lines().collect();
    for (i, l) in lines.iter().enumerate() {
        if is_comment(l) || squashed(l).contains("forbid(unsafe_code)") || !has_token(l, "unsafe") {
            continue;
        }
        let justified = i > 0 && lines[i - 1].contains("// SAFETY:");
        if !justified {
            out.push(violation("bitset_unsafe", file, i, l));
        }
    }
    out
}

/// `facade_only_examples`: examples are the doorstep of the repo —
/// they must demonstrate the one front door, not reach around it.
/// Low-level layers (graph/cfg/ir/workload/...) stay fair game; the
/// analysis surfaces must come from `fastlive` itself. Comments count
/// too: an example teaching readers to name the internals is the same
/// problem.
pub fn check_facade_only_examples(file: &SourceFile) -> Vec<Violation> {
    if !file.path.starts_with("examples/") {
        return Vec::new();
    }
    let cutoff = usize::MAX; // no test-region exemption in examples
    file.text
        .lines()
        .enumerate()
        .take_while(|(i, _)| *i < cutoff)
        .filter(|(_, l)| {
            ["fastlive_engine", "fastlive_core"]
                .iter()
                .any(|t| has_token(l, t))
                || l.contains("fastlive::engine::")
                || l.contains("fastlive::core::")
        })
        .map(|(i, l)| violation("facade_only_examples", file, i, l))
        .collect()
}

/// Runs every rule over one file.
pub fn check_file(file: &SourceFile) -> Vec<Violation> {
    RULES.iter().flat_map(|r| (r.check)(file)).collect()
}

/// Runs every rule over every `.rs` file under the workspace root's
/// scanned directories (`src/`, `crates/`, `examples/`), in path
/// order.
pub fn run_workspace(root: &std::path::Path) -> std::io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    for dir in ["src", "crates", "examples"] {
        collect_rs_files(root, &root.join(dir), &mut files)?;
    }
    files.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(files.iter().flat_map(check_file).collect())
}

fn collect_rs_files(
    root: &std::path::Path,
    dir: &std::path::Path,
    out: &mut Vec<SourceFile>,
) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().unwrap_or_default().to_string_lossy();
        if path.is_dir() {
            if name != "target" && !name.starts_with('.') {
                collect_rs_files(root, &path, out)?;
            }
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(SourceFile::new(rel, std::fs::read_to_string(&path)?));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(violations: &[Violation]) -> Vec<&'static str> {
        violations.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn lock_recover_catches_unwrapped_locks_and_spares_tests() {
        let bad = SourceFile::new(
            "crates/engine/src/engine.rs",
            "fn f(m: &std::sync::Mutex<u32>) {\n    let g = m.lock().unwrap();\n    let h = m.lock() . expect(\"x\");\n}",
        );
        let got = check_lock_recover(&bad);
        assert_eq!(names(&got), ["lock_recover", "lock_recover"]);
        assert_eq!(got[0].line, 2);

        // Test modules assert however they like.
        let test_only = SourceFile::new(
            "crates/engine/src/engine.rs",
            "fn ok() {}\n#[cfg(test)]\nmod tests {\n    fn t(m: &std::sync::Mutex<u32>) { m.lock().unwrap(); }\n}",
        );
        assert!(check_lock_recover(&test_only).is_empty());

        // Out of scope: the facade may do what it wants.
        let elsewhere = SourceFile::new("src/backend.rs", "m.lock().unwrap();");
        assert!(check_lock_recover(&elsewhere).is_empty());
    }

    #[test]
    fn vfs_isolation_confines_std_fs_to_the_seam() {
        let bad = SourceFile::new(
            "crates/engine/src/persist.rs",
            "fn save() {\n    std::fs::write(\"x\", b\"y\").ok();\n}",
        );
        assert_eq!(names(&check_vfs_isolation(&bad)), ["vfs_isolation"]);

        // The seam itself, comments, and test modules are exempt.
        let seam = SourceFile::new("crates/engine/src/vfs.rs", "std::fs::write(\"x\", b\"y\");");
        assert!(check_vfs_isolation(&seam).is_empty());
        let comment = SourceFile::new(
            "crates/engine/src/persist.rs",
            "/// cleanup: `std::fs::remove_dir_all(&dir).ok();`\nfn f() {}",
        );
        assert!(check_vfs_isolation(&comment).is_empty());
        let test_only = SourceFile::new(
            "crates/engine/src/persist.rs",
            "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn t() { std::fs::write(\"x\", b\"y\").ok(); }\n}",
        );
        assert!(check_vfs_isolation(&test_only).is_empty());
    }

    #[test]
    fn print_discipline_flags_library_prints_and_honors_the_allowlist() {
        let bad = SourceFile::new(
            "crates/core/src/nullness.rs",
            "fn f() {\n    println!(\"dbg\");\n    eprint!(\"dbg\");\n}",
        );
        assert_eq!(
            names(&check_print_discipline(&bad)),
            ["print_discipline", "print_discipline"]
        );

        for allowed in [
            "crates/bench/src/bin/bench_engine_json.rs",
            "crates/fuzz/src/main.rs",
            "crates/lint/src/main.rs",
        ] {
            let f = SourceFile::new(allowed, "fn f() { println!(\"report\"); }");
            assert!(check_print_discipline(&f).is_empty(), "{allowed}");
        }

        // A token inside a longer macro name is not a match.
        let near_miss = SourceFile::new(
            "crates/core/src/lib.rs",
            "fn f() { my_println!(\"not std\"); }",
        );
        assert!(check_print_discipline(&near_miss).is_empty());
    }

    #[test]
    fn bitset_clippy_suppressions_are_flagged_even_in_tests() {
        let bad = SourceFile::new(
            "crates/bitset/src/kernels.rs",
            "#[cfg(test)]\nmod tests {\n    #[allow(clippy::needless_range_loop)]\n    fn t() {}\n}",
        );
        assert_eq!(names(&check_bitset_clippy(&bad)), ["bitset_clippy"]);
        let elsewhere = SourceFile::new(
            "crates/core/src/lib.rs",
            "#[allow(clippy::too_many_arguments)]\nfn f() {}",
        );
        assert!(check_bitset_clippy(&elsewhere).is_empty());
    }

    #[test]
    fn bitset_unsafe_needs_forbid_and_safety_lines() {
        let dropped = SourceFile::new("crates/bitset/src/lib.rs", "pub fn f() {}");
        assert_eq!(names(&check_bitset_unsafe(&dropped)), ["bitset_unsafe"]);

        let kept = SourceFile::new(
            "crates/bitset/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f() {}",
        );
        assert!(check_bitset_unsafe(&kept).is_empty());

        let naked = SourceFile::new(
            "crates/bitset/src/arena.rs",
            "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}",
        );
        assert_eq!(names(&check_bitset_unsafe(&naked)), ["bitset_unsafe"]);

        let justified = SourceFile::new(
            "crates/bitset/src/arena.rs",
            "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid.\n    unsafe { *p }\n}",
        );
        assert!(check_bitset_unsafe(&justified).is_empty());

        // Prose about unsafety is not unsafety.
        let comment = SourceFile::new(
            "crates/bitset/src/arena.rs",
            "// no unsafe here\nfn unsafe_free() {}",
        );
        assert!(check_bitset_unsafe(&comment).is_empty());
    }

    #[test]
    fn examples_must_stay_facade_only() {
        let bad = SourceFile::new(
            "examples/quickstart.rs",
            "use fastlive_engine::AnalysisEngine;\nlet s = fastlive::core::Precomputation::default();",
        );
        let got = check_facade_only_examples(&bad);
        assert_eq!(
            names(&got),
            ["facade_only_examples", "facade_only_examples"]
        );

        // The facade and the low-level utility crates are fair game.
        let ok = SourceFile::new(
            "examples/quickstart.rs",
            "use fastlive::{Fastlive, Query};\nuse fastlive_ir::parse_module;",
        );
        assert!(check_facade_only_examples(&ok).is_empty());
    }

    #[test]
    fn the_workspace_itself_is_clean() {
        // The gates run in CI as `cargo run -p fastlive-lint`; running
        // them here too means `cargo test` catches a violation before
        // any workflow does.
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .expect("workspace root");
        let violations = run_workspace(&root).expect("scan succeeds");
        assert!(
            violations.is_empty(),
            "workspace violations:\n{}",
            violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
