//! Pruned SSA construction (Cytron et al. φ placement at iterated
//! dominance frontiers, restricted to blocks where the variable is
//! live-in, plus the Briggs et al. "global name" pre-filter).

use std::fmt;

use fastlive_cfg::{DfsTree, DomTree, DominanceFrontiers};
use fastlive_graph::{Cfg, NodeId};
use fastlive_ir::{Block, Function, InstData, Value};

use crate::pre_ir::{verify_definite_assignment, PreFunction, PreRvalue, PreTerm, Var};

/// Why SSA construction refused an input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConstructError {
    /// Description (unterminated block, unreachable block, or a
    /// definite-assignment violation).
    pub message: String,
}

impl fmt::Display for ConstructError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SSA construction failed: {}", self.message)
    }
}

impl std::error::Error for ConstructError {}

/// Converts a [`PreFunction`] into strict SSA form.
///
/// The pipeline is the textbook one (and the one Figure 2 of the paper
/// sketches):
///
/// 1. **φ placement.** For every *global* variable (used across blocks,
///    per Briggs' criterion), a φ — here: a block parameter — is placed
///    at every block of the iterated dominance frontier of its
///    definition blocks **where the variable is live-in** (pruned SSA).
///    The liveness restriction is not just an optimization: a φ for a
///    dead variable would demand arguments on paths where the variable
///    was never assigned.
/// 2. **Renaming.** A preorder walk of the dominator tree rewrites
///    every use to the closest dominating definition, pushes fresh SSA
///    values for assignments, and fills branch arguments (the φ
///    operands) at the predecessors.
///
/// The result satisfies [`fastlive_core`-style strictness]: every use
/// is dominated by its definition, which `tests` verify together with
/// semantic equivalence against the pre-IR interpreter.
///
/// # Errors
///
/// Rejects inputs with unterminated or unreachable blocks, and inputs
/// where some variable may be used before assignment (strictness would
/// fail).
pub fn construct_ssa(pre: &PreFunction) -> Result<Function, ConstructError> {
    // -- Validate the input.
    for b in 0..pre.num_blocks() as NodeId {
        if pre.term(b).is_none() {
            return Err(ConstructError {
                message: format!("block {b} has no terminator"),
            });
        }
    }
    let dfs = DfsTree::compute(pre);
    if !dfs.all_reachable() {
        let dead = (0..pre.num_blocks() as NodeId).find(|&b| !dfs.is_reachable(b));
        return Err(ConstructError {
            message: format!("block {} is unreachable", dead.expect("found above")),
        });
    }
    verify_definite_assignment(pre).map_err(|message| ConstructError { message })?;

    let dom = DomTree::compute(pre, &dfs);
    let df = DominanceFrontiers::compute(pre, &dom);

    // -- Identify globals (semi-pruning) and definition sites.
    let nv = pre.num_vars() as usize;
    let mut is_global = vec![false; nv];
    for b in 0..pre.num_blocks() as NodeId {
        let mut defined_here = vec![false; nv];
        for p in 0..pre.num_params() {
            if b == 0 {
                defined_here[p as usize] = true;
            }
        }
        let mark = |v: Var, defined_here: &[bool], is_global: &mut [bool]| {
            if !defined_here[v.0 as usize] {
                is_global[v.0 as usize] = true;
            }
        };
        for s in pre.stmts(b) {
            match s.rv {
                PreRvalue::Const(_) => {}
                PreRvalue::Unary(_, a) => mark(a, &defined_here, &mut is_global),
                PreRvalue::Binary(_, a, c) => {
                    mark(a, &defined_here, &mut is_global);
                    mark(c, &defined_here, &mut is_global);
                }
            }
            defined_here[s.dst.0 as usize] = true;
        }
        match pre.term(b).expect("validated") {
            PreTerm::Brif { cond, .. } => mark(*cond, &defined_here, &mut is_global),
            PreTerm::Return(vars) => {
                for v in vars {
                    mark(*v, &defined_here, &mut is_global);
                }
            }
            PreTerm::Jump(_) => {}
        }
    }
    let defs = pre.def_blocks();
    let live_in = pre_live_in(pre);

    // -- φ placement: block parameters at iterated dominance frontiers,
    //    pruned to blocks where the variable is live-in.
    let mut func = Function::new(pre.name.clone());
    let blocks: Vec<Block> = (0..pre.num_blocks()).map(|_| func.add_block()).collect();
    // phi_vars[b]: the source variable of each parameter of block b.
    let mut phi_vars: Vec<Vec<Var>> = vec![Vec::new(); pre.num_blocks()];
    // Entry parameters mirror the function parameters.
    for p in 0..pre.num_params() {
        func.append_block_param(blocks[0]);
        phi_vars[0].push(Var(p));
    }
    for v in 0..nv as u32 {
        if !is_global[v as usize] {
            continue;
        }
        for &b in &df.iterated(&defs[v as usize]) {
            if live_in[b as usize].contains(v) {
                func.append_block_param(blocks[b as usize]);
                phi_vars[b as usize].push(Var(v));
            }
        }
    }

    // -- Renaming: dominator-tree preorder walk with definition stacks.
    let mut stacks: Vec<Vec<Value>> = vec![Vec::new(); nv];
    // Explicit walk frames: (block, next child index). When a frame is
    // first visited we translate its statements; when it is popped we
    // pop its definitions.
    enum Frame {
        Enter(NodeId),
        Exit { pushed: Vec<Var> },
    }
    let mut work = vec![Frame::Enter(0)];
    while let Some(frame) = work.pop() {
        match frame {
            Frame::Exit { pushed } => {
                for v in pushed {
                    stacks[v.0 as usize].pop();
                }
            }
            Frame::Enter(b) => {
                let block = blocks[b as usize];
                let mut pushed: Vec<Var> = Vec::new();

                // φ / parameter definitions first.
                for (i, &v) in phi_vars[b as usize].iter().enumerate() {
                    let val = func.block_params(block)[i];
                    stacks[v.0 as usize].push(val);
                    pushed.push(v);
                }

                // Statements.
                let top = |stacks: &Vec<Vec<Value>>, v: Var| -> Value {
                    *stacks[v.0 as usize]
                        .last()
                        .expect("definite assignment guarantees a reaching definition")
                };
                for s in pre.stmts(b) {
                    let data = match s.rv {
                        PreRvalue::Const(k) => InstData::IntConst { imm: k },
                        PreRvalue::Unary(op, a) => InstData::Unary {
                            op,
                            arg: top(&stacks, a),
                        },
                        PreRvalue::Binary(op, a, c) => InstData::Binary {
                            op,
                            args: [top(&stacks, a), top(&stacks, c)],
                        },
                    };
                    let inst = func.append_inst(block, data);
                    let result = func.inst_result(inst).expect("value instruction");
                    stacks[s.dst.0 as usize].push(result);
                    pushed.push(s.dst);
                }

                // Terminator with φ arguments for each successor.
                let call = |stacks: &Vec<Vec<Value>>, dest: NodeId| {
                    let args = phi_vars[dest as usize]
                        .iter()
                        .map(|&v| top(stacks, v))
                        .collect();
                    fastlive_ir::BlockCall::with_args(blocks[dest as usize], args)
                };
                let data = match pre.term(b).expect("validated") {
                    PreTerm::Jump(d) => InstData::Jump {
                        dest: call(&stacks, *d),
                    },
                    PreTerm::Brif {
                        cond,
                        then_dest,
                        else_dest,
                    } => InstData::Brif {
                        cond: top(&stacks, *cond),
                        then_dest: call(&stacks, *then_dest),
                        else_dest: call(&stacks, *else_dest),
                    },
                    PreTerm::Return(vars) => InstData::Return {
                        args: vars.iter().map(|&v| top(&stacks, v)).collect(),
                    },
                };
                func.append_inst(block, data);

                // Recurse into dominator-tree children.
                work.push(Frame::Exit { pushed });
                for &c in dom.children(b).iter().rev() {
                    work.push(Frame::Enter(c));
                }
            }
        }
    }

    Ok(func)
}

/// Per-block live-in variable sets of the pre-IR (classic backward
/// data-flow over the mutable variables): the pruning input.
fn pre_live_in(pre: &PreFunction) -> Vec<fastlive_bitset::DenseBitSet> {
    use fastlive_bitset::DenseBitSet;
    let n = pre.num_blocks();
    let nv = pre.num_vars() as usize;
    let mut gen: Vec<DenseBitSet> = (0..n).map(|_| DenseBitSet::new(nv)).collect();
    let mut kill: Vec<DenseBitSet> = (0..n).map(|_| DenseBitSet::new(nv)).collect();
    for b in 0..n as NodeId {
        let bi = b as usize;
        let use_var = |v: Var, gen: &mut Vec<DenseBitSet>, kill: &Vec<DenseBitSet>| {
            if !kill[bi].contains(v.0) {
                gen[bi].insert(v.0);
            }
        };
        for s in pre.stmts(b) {
            match s.rv {
                PreRvalue::Const(_) => {}
                PreRvalue::Unary(_, a) => use_var(a, &mut gen, &kill),
                PreRvalue::Binary(_, a, c) => {
                    use_var(a, &mut gen, &kill);
                    use_var(c, &mut gen, &kill);
                }
            }
            kill[bi].insert(s.dst.0);
        }
        match pre.term(b).expect("validated") {
            PreTerm::Brif { cond, .. } => use_var(*cond, &mut gen, &kill),
            PreTerm::Return(vars) => {
                for v in vars {
                    use_var(*v, &mut gen, &kill);
                }
            }
            PreTerm::Jump(_) => {}
        }
    }
    let mut live_in: Vec<DenseBitSet> = (0..n).map(|_| DenseBitSet::new(nv)).collect();
    let mut changed = true;
    let mut scratch = DenseBitSet::new(nv);
    while changed {
        changed = false;
        for b in (0..n as NodeId).rev() {
            scratch.clear();
            for &s in pre.succs(b) {
                scratch.union_with(&live_in[s as usize]);
            }
            scratch.difference_with(&kill[b as usize]);
            scratch.union_with(&gen[b as usize]);
            if scratch != live_in[b as usize] {
                std::mem::swap(&mut live_in[b as usize], &mut scratch);
                changed = true;
            }
        }
    }
    live_in
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pre_ir::run_pre;
    use fastlive_ir::{interp, BinaryOp};

    fn counting_loop() -> PreFunction {
        let mut p = PreFunction::new("count", 1);
        let n = p.param(0);
        let x = p.fresh_var();
        let one = p.fresh_var();
        let c = p.fresh_var();
        let b0 = p.entry();
        let header = p.add_block();
        let body = p.add_block();
        let exit = p.add_block();
        p.assign(b0, x, PreRvalue::Const(0));
        p.set_term(b0, PreTerm::Jump(header));
        p.assign(header, c, PreRvalue::Binary(BinaryOp::IcmpSlt, x, n));
        p.set_term(
            header,
            PreTerm::Brif {
                cond: c,
                then_dest: body,
                else_dest: exit,
            },
        );
        p.assign(body, one, PreRvalue::Const(1));
        p.assign(body, x, PreRvalue::Binary(BinaryOp::Iadd, x, one));
        p.set_term(body, PreTerm::Jump(header));
        p.set_term(exit, PreTerm::Return(vec![x]));
        p
    }

    #[test]
    fn loop_gets_phi_at_header() {
        let p = counting_loop();
        let f = construct_ssa(&p).expect("constructs");
        // The header needs a φ for x (assigned at entry and in the body).
        let header = f.block_by_index(1);
        assert_eq!(f.block_params(header).len(), 1);
        // Exit and body need none (x's reaching def at exit is the φ).
        assert_eq!(f.block_params(f.block_by_index(2)).len(), 0);
        assert_eq!(f.block_params(f.block_by_index(3)).len(), 0);
    }

    #[test]
    fn constructed_ssa_is_strict_and_equivalent() {
        let p = counting_loop();
        let f = construct_ssa(&p).expect("constructs");
        fastlive_ir::verify_structure(&f).expect("well-formed");
        for n in [-5i64, 0, 1, 7, 40] {
            let want = run_pre(&p, &[n], 10_000).expect("pre runs");
            let got = interp::run(&f, &[n], 10_000).expect("ssa runs");
            assert_eq!(got.returned, want.returned, "input {n}");
        }
    }

    #[test]
    fn figure2_diamond_phi() {
        // Figure 2 of the paper: x assigned in both arms, used at join.
        let mut p = PreFunction::new("fig2", 2);
        let cond = p.param(0);
        let y = p.param(1);
        let x = p.fresh_var();
        let z = p.fresh_var();
        let b0 = p.entry();
        let b1 = p.add_block();
        let b2 = p.add_block();
        let b3 = p.add_block();
        p.set_term(
            b0,
            PreTerm::Brif {
                cond,
                then_dest: b1,
                else_dest: b2,
            },
        );
        p.assign(b1, x, PreRvalue::Const(10));
        p.set_term(b1, PreTerm::Jump(b3));
        p.assign(b2, x, PreRvalue::Const(20));
        p.set_term(b2, PreTerm::Jump(b3));
        p.assign(b3, z, PreRvalue::Binary(BinaryOp::Iadd, x, y));
        p.set_term(b3, PreTerm::Return(vec![z]));

        let f = construct_ssa(&p).expect("constructs");
        // Exactly one φ: x3 ← φ(x1, x2) at the join, as in the figure.
        let join = f.block_by_index(3);
        assert_eq!(f.block_params(join).len(), 1);
        assert_eq!(interp::run(&f, &[1, 5], 100).unwrap().returned, vec![15]);
        assert_eq!(interp::run(&f, &[0, 5], 100).unwrap().returned, vec![25]);
    }

    #[test]
    fn local_variables_get_no_phis() {
        // A temp defined and used within each block (non-global by the
        // Briggs criterion) must not receive φs even with many defs.
        let mut p = PreFunction::new("local", 1);
        let c = p.param(0);
        let t = p.fresh_var();
        let r = p.fresh_var();
        let b0 = p.entry();
        let b1 = p.add_block();
        let b2 = p.add_block();
        let b3 = p.add_block();
        p.set_term(
            b0,
            PreTerm::Brif {
                cond: c,
                then_dest: b1,
                else_dest: b2,
            },
        );
        for (b, k) in [(b1, 1i64), (b2, 2)] {
            p.assign(b, t, PreRvalue::Const(k));
            p.assign(b, r, PreRvalue::Unary(fastlive_ir::UnaryOp::Ineg, t));
            p.set_term(b, PreTerm::Jump(b3));
        }
        p.set_term(b3, PreTerm::Return(vec![r]));
        let f = construct_ssa(&p).expect("constructs");
        // r is global (used at b3) -> 1 φ; t is local -> none.
        assert_eq!(f.block_params(f.block_by_index(3)).len(), 1);
        assert_eq!(interp::run(&f, &[1], 100).unwrap().returned, vec![-1]);
        assert_eq!(interp::run(&f, &[0], 100).unwrap().returned, vec![-2]);
    }

    #[test]
    fn rejects_bad_inputs() {
        // Unterminated block.
        let p = PreFunction::new("open", 0);
        assert!(construct_ssa(&p)
            .unwrap_err()
            .message
            .contains("no terminator"));

        // Unreachable block.
        let mut p = PreFunction::new("dead", 0);
        let d = p.add_block();
        p.set_term(p.entry(), PreTerm::Return(vec![]));
        p.set_term(d, PreTerm::Return(vec![]));
        assert!(construct_ssa(&p)
            .unwrap_err()
            .message
            .contains("unreachable"));

        // Maybe-uninitialized variable.
        let mut p = PreFunction::new("uninit", 1);
        let c = p.param(0);
        let x = p.fresh_var();
        let b1 = p.add_block();
        let b2 = p.add_block();
        p.set_term(
            p.entry(),
            PreTerm::Brif {
                cond: c,
                then_dest: b1,
                else_dest: b2,
            },
        );
        p.assign(b1, x, PreRvalue::Const(1));
        p.set_term(b1, PreTerm::Jump(b2));
        p.set_term(b2, PreTerm::Return(vec![x]));
        assert!(construct_ssa(&p)
            .unwrap_err()
            .message
            .contains("uninitialized"));
    }

    #[test]
    fn nested_loops_round_trip() {
        // for (i = 0; i < n; i++) for (j = 0; j < i; j++) acc += j
        let mut p = PreFunction::new("nest", 1);
        let n = p.param(0);
        let i = p.fresh_var();
        let j = p.fresh_var();
        let acc = p.fresh_var();
        let one = p.fresh_var();
        let c = p.fresh_var();
        let b0 = p.entry();
        let oh = p.add_block(); // outer header
        let ih = p.add_block(); // inner header
        let ib = p.add_block(); // inner body
        let oi = p.add_block(); // outer increment
        let ex = p.add_block();
        p.assign(b0, i, PreRvalue::Const(0));
        p.assign(b0, acc, PreRvalue::Const(0));
        p.assign(b0, one, PreRvalue::Const(1));
        p.set_term(b0, PreTerm::Jump(oh));
        p.assign(oh, c, PreRvalue::Binary(BinaryOp::IcmpSlt, i, n));
        p.assign(oh, j, PreRvalue::Const(0));
        p.set_term(
            oh,
            PreTerm::Brif {
                cond: c,
                then_dest: ih,
                else_dest: ex,
            },
        );
        p.assign(ih, c, PreRvalue::Binary(BinaryOp::IcmpSlt, j, i));
        p.set_term(
            ih,
            PreTerm::Brif {
                cond: c,
                then_dest: ib,
                else_dest: oi,
            },
        );
        p.assign(ib, acc, PreRvalue::Binary(BinaryOp::Iadd, acc, j));
        p.assign(ib, j, PreRvalue::Binary(BinaryOp::Iadd, j, one));
        p.set_term(ib, PreTerm::Jump(ih));
        p.assign(oi, i, PreRvalue::Binary(BinaryOp::Iadd, i, one));
        p.set_term(oi, PreTerm::Jump(oh));
        p.set_term(ex, PreTerm::Return(vec![acc]));

        let f = construct_ssa(&p).expect("constructs");
        for input in [0i64, 1, 2, 5, 8] {
            let want = run_pre(&p, &[input], 100_000).unwrap().returned;
            let got = interp::run(&f, &[input], 100_000).unwrap().returned;
            assert_eq!(got, want, "input {input}");
        }
    }
}
