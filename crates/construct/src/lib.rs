//! SSA construction for the `fastlive` workspace: a mutable-variable
//! pre-IR and the classic algorithm of Cytron et al. (TOPLAS 1991).
//!
//! The paper's input language is strict SSA (§2.2, Figure 2); real
//! programs start with mutable variables. This crate provides:
//!
//! * [`PreFunction`] — a non-SSA program over mutable [`Var`]s with the
//!   same block structure and instruction set as `fastlive-ir`,
//!   including its own interpreter (ground truth for the construction
//!   pass) and a definite-assignment checker (strictness is a
//!   precondition of SSA construction and of the whole paper).
//! * [`construct_ssa`] — semi-pruned SSA construction: φ-functions
//!   (block parameters) are placed at the iterated dominance frontiers
//!   of each global variable's definition blocks, then a dominator-tree
//!   walk renames every use to the reaching definition. The output is
//!   verified strict SSA computing the same results as the input.
//!
//! # Examples
//!
//! Build Figure 2 of the paper (a diamond assigning `x` on both arms)
//! and watch the φ appear at the join:
//!
//! ```
//! use fastlive_construct::{construct_ssa, PreFunction, PreRvalue, PreTerm};
//!
//! let mut pre = PreFunction::new("fig2", 1); // param: the condition
//! let cond = pre.param(0);
//! let x = pre.fresh_var();
//! let b0 = pre.entry();
//! let b1 = pre.add_block();
//! let b2 = pre.add_block();
//! let b3 = pre.add_block();
//! pre.set_term(b0, PreTerm::Brif { cond, then_dest: b1, else_dest: b2 });
//! pre.assign(b1, x, PreRvalue::Const(1));
//! pre.set_term(b1, PreTerm::Jump(b3));
//! pre.assign(b2, x, PreRvalue::Const(2));
//! pre.set_term(b2, PreTerm::Jump(b3));
//! pre.set_term(b3, PreTerm::Return(vec![x]));
//!
//! let ssa = construct_ssa(&pre)?;
//! // The join block got exactly one parameter: the φ for x.
//! let join = ssa.block_by_index(3);
//! assert_eq!(ssa.block_params(join).len(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cytron;
mod pre_ir;

pub use cytron::{construct_ssa, ConstructError};
pub use pre_ir::{
    definite_assignment, run_pre, verify_definite_assignment, DefiniteAssignment, PreFunction,
    PreOutcome, PreRvalue, PreStmt, PreTerm, Var,
};
