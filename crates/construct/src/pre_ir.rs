//! The non-SSA pre-IR: blocks of assignments to mutable variables.

use fastlive_graph::{Cfg, NodeId};
use fastlive_ir::{BinaryOp, UnaryOp};

/// A mutable variable of a [`PreFunction`] (assignable many times —
/// precisely what SSA construction eliminates).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

impl std::fmt::Display for Var {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl std::fmt::Debug for Var {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Right-hand side of an assignment.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum PreRvalue {
    /// `x = constant`.
    Const(i64),
    /// `x = op y`.
    Unary(UnaryOp, Var),
    /// `x = y op z`.
    Binary(BinaryOp, Var, Var),
}

/// Block terminator of the pre-IR.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PreTerm {
    /// Unconditional jump.
    Jump(NodeId),
    /// Two-way branch on `cond != 0`.
    Brif {
        /// Condition variable.
        cond: Var,
        /// Target when non-zero.
        then_dest: NodeId,
        /// Target when zero.
        else_dest: NodeId,
    },
    /// Return the variables' current values.
    Return(Vec<Var>),
}

/// An assignment statement `dst = rvalue`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PreStmt {
    /// Assigned variable.
    pub dst: Var,
    /// Computed value.
    pub rv: PreRvalue,
}

#[derive(Clone, Debug, Default)]
struct PreBlock {
    stmts: Vec<PreStmt>,
    term: Option<PreTerm>,
}

/// A program over mutable variables: the input of SSA construction.
///
/// Function parameters are the variables `0..num_params`, assigned at
/// entry. Block 0 is the entry block. The CFG view ([`Cfg`]) is derived
/// from the terminators.
///
/// # Examples
///
/// ```
/// use fastlive_construct::{run_pre, PreFunction, PreRvalue, PreTerm};
/// use fastlive_ir::BinaryOp;
///
/// let mut p = PreFunction::new("sq", 1);
/// let x = p.param(0);
/// let y = p.fresh_var();
/// p.assign(p.entry(), y, PreRvalue::Binary(BinaryOp::Imul, x, x));
/// p.set_term(p.entry(), PreTerm::Return(vec![y]));
/// assert_eq!(run_pre(&p, &[7], 100).unwrap().returned, vec![49]);
/// ```
#[derive(Clone, Debug)]
pub struct PreFunction {
    /// Symbolic name.
    pub name: String,
    num_params: u32,
    num_vars: u32,
    blocks: Vec<PreBlock>,
    succs: Vec<Vec<NodeId>>,
    preds: Vec<Vec<NodeId>>,
}

impl PreFunction {
    /// Creates a function with `num_params` parameters and an empty
    /// entry block.
    pub fn new(name: impl Into<String>, num_params: u32) -> Self {
        PreFunction {
            name: name.into(),
            num_params,
            num_vars: num_params,
            blocks: vec![PreBlock::default()],
            succs: vec![Vec::new()],
            preds: vec![Vec::new()],
        }
    }

    /// The entry block (always node 0).
    pub fn entry(&self) -> NodeId {
        0
    }

    /// The `i`-th parameter variable.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_params`.
    pub fn param(&self, i: u32) -> Var {
        assert!(i < self.num_params, "parameter {i} out of range");
        Var(i)
    }

    /// Number of parameters.
    pub fn num_params(&self) -> u32 {
        self.num_params
    }

    /// Allocates a fresh mutable variable.
    pub fn fresh_var(&mut self) -> Var {
        let v = Var(self.num_vars);
        self.num_vars += 1;
        v
    }

    /// Total number of variables (parameters included).
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Appends a new empty block.
    pub fn add_block(&mut self) -> NodeId {
        self.blocks.push(PreBlock::default());
        self.succs.push(Vec::new());
        self.preds.push(Vec::new());
        (self.blocks.len() - 1) as NodeId
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Appends `dst = rv` to `block`.
    ///
    /// # Panics
    ///
    /// Panics if the block is already terminated or entities are out of
    /// range.
    pub fn assign(&mut self, block: NodeId, dst: Var, rv: PreRvalue) {
        assert!(
            self.blocks[block as usize].term.is_none(),
            "block {block} is terminated"
        );
        self.check_var(dst);
        match rv {
            PreRvalue::Const(_) => {}
            PreRvalue::Unary(_, a) => self.check_var(a),
            PreRvalue::Binary(_, a, b) => {
                self.check_var(a);
                self.check_var(b);
            }
        }
        self.blocks[block as usize].stmts.push(PreStmt { dst, rv });
    }

    /// Sets the terminator of `block` (once).
    ///
    /// # Panics
    ///
    /// Panics if the block already has a terminator or a target is out
    /// of range.
    pub fn set_term(&mut self, block: NodeId, term: PreTerm) {
        assert!(
            self.blocks[block as usize].term.is_none(),
            "block {block} is terminated"
        );
        let targets: Vec<NodeId> = match &term {
            PreTerm::Jump(d) => vec![*d],
            PreTerm::Brif {
                cond,
                then_dest,
                else_dest,
            } => {
                self.check_var(*cond);
                vec![*then_dest, *else_dest]
            }
            PreTerm::Return(vars) => {
                for v in vars {
                    self.check_var(*v);
                }
                vec![]
            }
        };
        for &d in &targets {
            assert!(
                (d as usize) < self.blocks.len(),
                "branch target {d} out of range"
            );
            self.succs[block as usize].push(d);
            self.preds[d as usize].push(block);
        }
        self.blocks[block as usize].term = Some(term);
    }

    /// Removes and returns the terminator of `block`, detaching its CFG
    /// edges. The block can then receive further statements and a new
    /// terminator — how the goto-injection of `fastlive-workload`
    /// rewires control flow.
    pub fn clear_term(&mut self, block: NodeId) -> Option<PreTerm> {
        let term = self.blocks[block as usize].term.take()?;
        let removed: Vec<NodeId> = match &term {
            PreTerm::Jump(d) => vec![*d],
            PreTerm::Brif {
                then_dest,
                else_dest,
                ..
            } => vec![*then_dest, *else_dest],
            PreTerm::Return(_) => Vec::new(),
        };
        for d in removed {
            remove_one(&mut self.succs[block as usize], d);
            remove_one(&mut self.preds[d as usize], block);
        }
        Some(term)
    }

    /// The statements of `block`.
    pub fn stmts(&self, block: NodeId) -> &[PreStmt] {
        &self.blocks[block as usize].stmts
    }

    /// The terminator of `block`, if set.
    pub fn term(&self, block: NodeId) -> Option<&PreTerm> {
        self.blocks[block as usize].term.as_ref()
    }

    fn check_var(&self, v: Var) {
        assert!(v.0 < self.num_vars, "variable {v} out of range");
    }

    /// The blocks assigning each variable (entry counts as assigning
    /// the parameters) — the `defs` input of φ-placement.
    pub fn def_blocks(&self) -> Vec<Vec<NodeId>> {
        let mut defs: Vec<Vec<NodeId>> = vec![Vec::new(); self.num_vars as usize];
        for p in 0..self.num_params {
            defs[p as usize].push(0);
        }
        for (b, data) in self.blocks.iter().enumerate() {
            for s in &data.stmts {
                let d = &mut defs[s.dst.0 as usize];
                if d.last() != Some(&(b as NodeId)) {
                    d.push(b as NodeId);
                }
            }
        }
        for d in &mut defs {
            d.sort_unstable();
            d.dedup();
        }
        defs
    }
}

fn remove_one(v: &mut Vec<NodeId>, x: NodeId) {
    let pos = v
        .iter()
        .position(|&e| e == x)
        .expect("edge to remove is present");
    v.swap_remove(pos);
}

impl Cfg for PreFunction {
    fn num_nodes(&self) -> usize {
        self.blocks.len()
    }
    fn entry(&self) -> NodeId {
        0
    }
    fn succs(&self, n: NodeId) -> &[NodeId] {
        &self.succs[n as usize]
    }
    fn preds(&self, n: NodeId) -> &[NodeId] {
        &self.preds[n as usize]
    }
}

/// Result of running a [`PreFunction`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PreOutcome {
    /// Returned values.
    pub returned: Vec<i64>,
    /// Executed statements + terminators.
    pub steps: u64,
}

/// Interprets `pre` on `args` with a step budget — the ground truth
/// that [`construct_ssa`](crate::construct_ssa) must preserve.
///
/// # Errors
///
/// `Err(())`-like string on fuel exhaustion or arity mismatch.
pub fn run_pre(pre: &PreFunction, args: &[i64], fuel: u64) -> Result<PreOutcome, String> {
    if args.len() != pre.num_params as usize {
        return Err(format!(
            "expected {} arguments, got {}",
            pre.num_params,
            args.len()
        ));
    }
    let mut env = vec![0i64; pre.num_vars as usize];
    env[..args.len()].copy_from_slice(args);
    let mut block = pre.entry();
    let mut steps = 0u64;
    loop {
        for s in pre.stmts(block) {
            steps += 1;
            if steps > fuel {
                return Err("out of fuel".into());
            }
            env[s.dst.0 as usize] = match s.rv {
                PreRvalue::Const(k) => k,
                PreRvalue::Unary(op, a) => op.eval(env[a.0 as usize]),
                PreRvalue::Binary(op, a, b) => op.eval(env[a.0 as usize], env[b.0 as usize]),
            };
        }
        steps += 1;
        if steps > fuel {
            return Err("out of fuel".into());
        }
        match pre
            .term(block)
            .expect("every block terminated before running")
        {
            PreTerm::Jump(d) => block = *d,
            PreTerm::Brif {
                cond,
                then_dest,
                else_dest,
            } => {
                block = if env[cond.0 as usize] != 0 {
                    *then_dest
                } else {
                    *else_dest
                };
            }
            PreTerm::Return(vars) => {
                return Ok(PreOutcome {
                    returned: vars.iter().map(|v| env[v.0 as usize]).collect(),
                    steps,
                });
            }
        }
    }
}

/// The definitely-assigned variable sets of a [`PreFunction`]: per
/// block, which variables are assigned on **every** path from the entry
/// (to the block's entry and to its exit). Computed by the classic
/// forward must-analysis.
#[derive(Clone, Debug)]
pub struct DefiniteAssignment {
    /// `entry[b][v]`: `v` assigned on every path reaching block `b`.
    pub entry: Vec<Vec<bool>>,
    /// `exit[b][v]`: `v` assigned on every path through the end of `b`.
    pub exit: Vec<Vec<bool>>,
}

/// Runs the definite-assignment analysis (see [`DefiniteAssignment`]).
pub fn definite_assignment(pre: &PreFunction) -> DefiniteAssignment {
    let n = pre.num_blocks();
    let nv = pre.num_vars as usize;
    // exit[b]: vars assigned on every path reaching the end of b.
    // Initialized to "everything" (top) except the entry.
    let full: Vec<bool> = vec![true; nv];
    let mut out: Vec<Vec<bool>> = vec![full; n];
    let mut entry_out = vec![false; nv];
    for p in 0..pre.num_params {
        entry_out[p as usize] = true;
    }
    for s in pre.stmts(0) {
        entry_out[s.dst.0 as usize] = true;
    }
    out[0] = entry_out;

    let mut changed = true;
    while changed {
        changed = false;
        for b in 0..n as NodeId {
            if b == 0 {
                continue;
            }
            let mut inn = vec![true; nv];
            let mut any_pred = false;
            for &p in pre.preds(b) {
                any_pred = true;
                for (i, flag) in inn.iter_mut().enumerate() {
                    *flag &= out[p as usize][i];
                }
            }
            if !any_pred {
                inn = vec![false; nv]; // unreachable: nothing assigned
            }
            for s in pre.stmts(b) {
                inn[s.dst.0 as usize] = true;
            }
            if inn != out[b as usize] {
                out[b as usize] = inn;
                changed = true;
            }
        }
    }

    // Entry sets from the fixpoint exits.
    let mut entry: Vec<Vec<bool>> = Vec::with_capacity(n);
    for b in 0..n as NodeId {
        let inn = if b == 0 {
            let mut v = vec![false; nv];
            for p in 0..pre.num_params {
                v[p as usize] = true;
            }
            v
        } else {
            let mut v = vec![true; nv];
            let mut any = false;
            for &p in pre.preds(b) {
                any = true;
                for (i, flag) in v.iter_mut().enumerate() {
                    *flag &= out[p as usize][i];
                }
            }
            if !any {
                v = vec![false; nv];
            }
            v
        };
        entry.push(inn);
    }
    DefiniteAssignment { entry, exit: out }
}

/// Checks that every variable is definitely assigned before each use —
/// the *strictness* precondition (§2.2).
///
/// # Errors
///
/// Describes the first use of a potentially-undefined variable — what a
/// compiler would report as "use of possibly-uninitialized variable".
pub fn verify_definite_assignment(pre: &PreFunction) -> Result<(), String> {
    let n = pre.num_blocks();
    let da = definite_assignment(pre);

    // Check uses block-locally against the incoming set.
    for b in 0..n as NodeId {
        let mut ok = da.entry[b as usize].clone();
        let check = |ok: &[bool], v: Var, what: &str| -> Result<(), String> {
            if !ok[v.0 as usize] {
                Err(format!(
                    "{v} may be used uninitialized in block {b} ({what})"
                ))
            } else {
                Ok(())
            }
        };
        for s in pre.stmts(b) {
            match s.rv {
                PreRvalue::Const(_) => {}
                PreRvalue::Unary(_, a) => check(&ok, a, "operand")?,
                PreRvalue::Binary(_, a, c) => {
                    check(&ok, a, "operand")?;
                    check(&ok, c, "operand")?;
                }
            }
            ok[s.dst.0 as usize] = true;
        }
        match pre.term(b) {
            Some(PreTerm::Brif { cond, .. }) => check(&ok, *cond, "branch condition")?,
            Some(PreTerm::Return(vars)) => {
                for v in vars {
                    check(&ok, *v, "return value")?;
                }
            }
            _ => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastlive_ir::BinaryOp;

    fn counting_loop() -> PreFunction {
        // x = 0; while (x < n) x = x + 1; return x
        let mut p = PreFunction::new("count", 1);
        let n = p.param(0);
        let x = p.fresh_var();
        let one = p.fresh_var();
        let c = p.fresh_var();
        let b0 = p.entry();
        let header = p.add_block();
        let body = p.add_block();
        let exit = p.add_block();
        p.assign(b0, x, PreRvalue::Const(0));
        p.set_term(b0, PreTerm::Jump(header));
        p.assign(header, c, PreRvalue::Binary(BinaryOp::IcmpSlt, x, n));
        p.set_term(
            header,
            PreTerm::Brif {
                cond: c,
                then_dest: body,
                else_dest: exit,
            },
        );
        p.assign(body, one, PreRvalue::Const(1));
        p.assign(body, x, PreRvalue::Binary(BinaryOp::Iadd, x, one));
        p.set_term(body, PreTerm::Jump(header));
        p.set_term(exit, PreTerm::Return(vec![x]));
        p
    }

    #[test]
    fn interpreter_runs_loops() {
        let p = counting_loop();
        assert_eq!(run_pre(&p, &[5], 1000).unwrap().returned, vec![5]);
        assert_eq!(run_pre(&p, &[0], 1000).unwrap().returned, vec![0]);
        assert_eq!(run_pre(&p, &[-3], 1000).unwrap().returned, vec![0]);
    }

    #[test]
    fn fuel_and_arity_checks() {
        let p = counting_loop();
        assert!(run_pre(&p, &[1_000_000], 10).unwrap_err().contains("fuel"));
        assert!(run_pre(&p, &[], 10).unwrap_err().contains("arguments"));
    }

    #[test]
    fn definite_assignment_accepts_strict_programs() {
        verify_definite_assignment(&counting_loop()).expect("strict");
    }

    #[test]
    fn definite_assignment_rejects_one_armed_init() {
        // if (p) x = 1; return x  -- x maybe uninitialized.
        let mut p = PreFunction::new("bad", 1);
        let cond = p.param(0);
        let x = p.fresh_var();
        let b0 = p.entry();
        let then = p.add_block();
        let join = p.add_block();
        p.set_term(
            b0,
            PreTerm::Brif {
                cond,
                then_dest: then,
                else_dest: join,
            },
        );
        p.assign(then, x, PreRvalue::Const(1));
        p.set_term(then, PreTerm::Jump(join));
        p.set_term(join, PreTerm::Return(vec![x]));
        let e = verify_definite_assignment(&p).unwrap_err();
        assert!(e.contains("uninitialized"), "{e}");
    }

    #[test]
    fn definite_assignment_handles_loops_conservatively() {
        // x assigned only in the loop body; used after the loop: the
        // loop may run zero times => error.
        let mut p = PreFunction::new("zero_trip", 1);
        let n = p.param(0);
        let x = p.fresh_var();
        let b0 = p.entry();
        let body = p.add_block();
        let exit = p.add_block();
        p.set_term(
            b0,
            PreTerm::Brif {
                cond: n,
                then_dest: body,
                else_dest: exit,
            },
        );
        p.assign(body, x, PreRvalue::Const(1));
        p.set_term(
            body,
            PreTerm::Brif {
                cond: x,
                then_dest: body,
                else_dest: exit,
            },
        );
        p.set_term(exit, PreTerm::Return(vec![x]));
        assert!(verify_definite_assignment(&p).is_err());
    }

    #[test]
    fn def_blocks_collects_assignments() {
        let p = counting_loop();
        let defs = p.def_blocks();
        // x (var 1) assigned at entry and in the body.
        assert_eq!(defs[1], vec![0, 2]);
        // the parameter is "assigned" at the entry.
        assert_eq!(defs[0], vec![0]);
    }

    #[test]
    #[should_panic(expected = "is terminated")]
    fn assign_after_terminator_panics() {
        let mut p = PreFunction::new("t", 0);
        let x = p.fresh_var();
        p.set_term(p.entry(), PreTerm::Return(vec![]));
        p.assign(p.entry(), x, PreRvalue::Const(1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_branch_target_panics() {
        let mut p = PreFunction::new("t", 0);
        p.set_term(p.entry(), PreTerm::Jump(7));
    }
}
