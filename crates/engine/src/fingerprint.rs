//! [`CfgShape`]: a canonical structural fingerprint of a CFG.
//!
//! The paper's precomputation depends on **nothing but the shape of the
//! control-flow graph** — block count and successor lists. Two
//! functions whose CFGs are identical (same blocks in the same order,
//! same edges) therefore share a `LivenessChecker` verbatim, even if
//! every instruction differs. `CfgShape` makes that sharing addressable:
//! it canonically encodes the shape and carries a precomputed 64-bit
//! FNV-1a hash, so it can key a hash map with O(1) probes while
//! equality stays *exact* (the full encoding is compared on hash
//! collisions — a collision can cost a wasted recomputation, never a
//! wrong answer).

use fastlive_graph::{Cfg, DiGraph};

/// Canonical structural encoding of a CFG, with a precomputed hash.
///
/// The encoding is `[num_nodes, entry, len(succs(0)), sorted(succs(0)),
/// len(succs(1)), sorted(succs(1)), ...]` — blocks in id order, each
/// successor list **sorted**. Sorting is what makes the fingerprint
/// canonical: successor *order* influences which DFS tree the
/// precomputation builds, but never a liveness answer (liveness is a
/// property of the edge relation, and every checker is exact for its
/// own numbering), so two functions whose edges agree as sets-with-
/// multiplicity may share one precomputation even when in-memory edge
/// order diverges — as happens after in-place terminator rewiring vs. a
/// textual round-trip. Instruction contents never enter.
///
/// # Examples
///
/// ```
/// use fastlive_engine::CfgShape;
/// use fastlive_ir::parse_function;
///
/// let a = parse_function("function %a { block0(v0): v1 = ineg v0  return v1 }")?;
/// let b = parse_function("function %b { block0(v0): v1 = iadd v0, v0  v2 = bnot v1  return v2 }")?;
/// // Different instructions, same single-block CFG: same shape.
/// assert_eq!(CfgShape::of(&a), CfgShape::of(&b));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug, Eq)]
pub struct CfgShape {
    encoding: Vec<u32>,
    hash: u64,
}

impl CfgShape {
    /// Fingerprints `g`'s structure.
    pub fn of<G: Cfg>(g: &G) -> Self {
        let n = g.num_nodes();
        let mut encoding = Vec::with_capacity(2 * n + 2);
        encoding.push(n as u32);
        encoding.push(g.entry());
        for v in 0..n as u32 {
            let succs = g.succs(v);
            encoding.push(succs.len() as u32);
            let start = encoding.len();
            encoding.extend_from_slice(succs);
            encoding[start..].sort_unstable();
        }
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for &word in &encoding {
            for byte in word.to_le_bytes() {
                hash ^= byte as u64;
                hash = hash.wrapping_mul(0x100_0000_01b3);
            }
        }
        CfgShape { encoding, hash }
    }

    /// The 64-bit structural hash (stable across runs and platforms).
    pub fn hash64(&self) -> u64 {
        self.hash
    }

    /// Number of blocks in the fingerprinted graph.
    pub fn num_blocks(&self) -> usize {
        self.encoding[0] as usize
    }

    /// The canonical encoding words (see the type docs for the layout)
    /// — the exact byte identity the persistence codec embeds in cache
    /// files so a fingerprint-hash collision degrades to a miss, never
    /// a wrong load.
    pub fn encoding(&self) -> &[u32] {
        &self.encoding
    }

    /// Materializes the **canonical graph** the shape encodes: same
    /// blocks and edge multiset as every function that fingerprints to
    /// this shape, successor lists sorted.
    ///
    /// This graph — not any particular function's — is what the engine
    /// runs the precomputation on. Successor *order* steers the DFS and
    /// therefore the dominance-preorder numbering the `R`/`T` matrices
    /// are indexed by, so two order-divergent functions sharing this
    /// shape would otherwise disagree about what the matrices mean.
    /// Canonicalizing pins one numbering per shape, which is what makes
    /// a precomputation serialized by one process exact for every
    /// shape-identical function loaded by another. Liveness answers are
    /// unaffected: they depend on the edge relation only.
    pub fn to_graph(&self) -> DiGraph {
        let n = self.encoding[0] as usize;
        let entry = self.encoding[1];
        let mut g = DiGraph::new(n, entry);
        let mut i = 2;
        for v in 0..n as u32 {
            let len = self.encoding[i] as usize;
            i += 1;
            for &w in &self.encoding[i..i + len] {
                g.add_edge(v, w);
            }
            i += len;
        }
        g
    }
}

impl PartialEq for CfgShape {
    fn eq(&self, other: &Self) -> bool {
        // Hash first (cheap reject), then the exact encoding: equality
        // is never probabilistic.
        self.hash == other.hash && self.encoding == other.encoding
    }
}

impl std::hash::Hash for CfgShape {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastlive_ir::parse_function;

    #[test]
    fn instruction_edits_preserve_the_shape() {
        let mut f = parse_function(
            "function %f { block0(v0):
                brif v0, block1, block2
            block1: jump block2
            block2: return v0 }",
        )
        .unwrap();
        let before = CfgShape::of(&f);
        let b2 = f.block_by_index(2);
        f.insert_inst(
            b2,
            0,
            fastlive_ir::InstData::Unary {
                op: fastlive_ir::UnaryOp::Ineg,
                arg: f.params()[0],
            },
        );
        assert_eq!(before, CfgShape::of(&f));
        assert_eq!(before.hash64(), CfgShape::of(&f).hash64());
        assert_eq!(before.num_blocks(), 3);
    }

    #[test]
    fn cfg_edits_change_the_shape() {
        let f = parse_function("function %f { block0: jump block1 block1: return }").unwrap();
        let g = parse_function(
            "function %g { block0: jump block1 block1: jump block2 block2: return }",
        )
        .unwrap();
        assert_ne!(CfgShape::of(&f), CfgShape::of(&g));
        // Same block count, different edges: still distinct.
        let h =
            parse_function("function %h { block0(v0): brif v0, block1, block1 block1: return }")
                .unwrap();
        let i =
            parse_function("function %i { block0(v0): brif v0, block0, block1 block1: return }")
                .unwrap();
        assert_eq!(CfgShape::of(&h).num_blocks(), CfgShape::of(&i).num_blocks());
        assert_ne!(CfgShape::of(&h), CfgShape::of(&i));
    }

    #[test]
    fn successor_order_does_not_change_the_shape() {
        // Swapped brif arms: same edge relation, different edge order,
        // one shape — in-place rewiring and textual round-trips may
        // reorder successor lists without changing any liveness answer.
        let a = parse_function(
            "function %a { block0(v0): brif v0, block1, block2 block1: return block2: return }",
        )
        .unwrap();
        let b = parse_function(
            "function %b { block0(v0): brif v0, block2, block1 block1: return block2: return }",
        )
        .unwrap();
        assert_eq!(CfgShape::of(&a), CfgShape::of(&b));
    }

    #[test]
    fn to_graph_rebuilds_the_canonical_edge_relation() {
        use fastlive_graph::Cfg;
        let f = parse_function(
            "function %f { block0(v0): brif v0, block2, block1
             block1: jump block0 block2: return }",
        )
        .unwrap();
        let g = CfgShape::of(&f).to_graph();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.entry(), 0);
        // Successors come back sorted regardless of branch-arm order.
        assert_eq!(g.succs(0), &[1, 2]);
        assert_eq!(g.succs(1), &[0]);
        assert_eq!(g.succs(2), &[] as &[u32]);
        // The canonical graph fingerprints back to the same shape.
        assert_eq!(CfgShape::of(&g), CfgShape::of(&f));
    }

    #[test]
    fn shape_is_name_and_value_independent() {
        let a = parse_function(
            "function %left { block0(v0): v1 = iconst 3  jump block1(v1) block1(v2): return v2 }",
        )
        .unwrap();
        let b = parse_function(
            "function %right { block0(v9): v5 = iconst 8  jump block1(v5) block1(v7): return v9 }",
        )
        .unwrap();
        assert_eq!(CfgShape::of(&a), CfgShape::of(&b));
    }
}
