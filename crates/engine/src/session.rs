//! [`EngineSession`]: the epoch-based query surface over an analyzed
//! [`Module`].

use std::sync::Arc;

use fastlive_core::{AnalysisError, BatchLiveness, FunctionLiveness, NullnessArtifact};
use fastlive_ir::{Block, FuncId, Module, ProgramPoint, Value};

use crate::engine::AnalysisEngine;
use crate::fingerprint::CfgShape;

/// A successfully analyzed function's state.
struct ReadyEntry {
    live: Arc<FunctionLiveness>,
    /// Fingerprint the current `live` was computed (or cache-resolved)
    /// under — the exact-revalidation baseline.
    shape: CfgShape,
}

struct SessionEntry {
    /// The function's analysis, or the typed error its most recent
    /// (re)computation ended in. An `Err` entry is **retried on the
    /// next query** — a transient failure (a panic injected by a fault
    /// campaign, a worker lost mid-analyze) self-heals instead of
    /// pinning the function to its first bad outcome.
    ready: Result<ReadyEntry, AnalysisError>,
    /// [`Function::cfg_version`](fastlive_ir::Function::cfg_version)
    /// observed when `ready` was (re)validated — the O(1) per-query
    /// staleness signal.
    cfg_version: u64,
    /// How many times this function's analysis was recomputed since the
    /// session started. Bumps per recomputation *attempt* triggered by
    /// a detected CFG change or a retried failure.
    epoch: u64,
}

/// Per-function liveness queries over a module, with transparent
/// revalidation.
///
/// A session is created by [`AnalysisEngine::analyze`] and holds one
/// analysis handle per function (possibly shared between CFG-identical
/// functions). Every query first validates the handle against the
/// function's *current* state by comparing the function's
/// [`cfg_version`](fastlive_ir::Function::cfg_version) counter — O(1)
/// and exact for every mutator-driven edit:
///
/// * **Instruction-level edits** (insert/remove instructions, add
///   values or uses, swap branch arguments) keep the analysis exact
///   with zero work — the paper's headline property. The version
///   counter and the epoch do not move.
/// * **CFG edits** (`add_block`, terminator insertion,
///   `redirect_branch_target` — every mutator that can change blocks
///   or edges bumps the counter) invalidate the entry: the next query
///   recomputes through the engine's fingerprint cache and bumps the
///   function's *epoch*.
/// * **Wholesale replacement** of a function (swapping in a different
///   `Function` object via [`Module::func_mut`]) carries the
///   replacement's own version counter, which may coincide with the
///   recorded one. Call [`revalidate`](Self::revalidate) after such a
///   swap: it compares the exact [`CfgShape`] and recomputes on any
///   structural difference.
///
/// Queries take the module by reference on every call, so the module
/// stays freely editable between queries — the session never borrows
/// it.
///
/// # Errors
///
/// Every query returns `Result<_, AnalysisError>`: a function whose
/// precomputation panicked (or whose point query hit a detached
/// definition) answers with a typed error instead of unwinding into
/// the caller, and every *other* function of the session keeps
/// answering normally — per-function isolation is the degradation
/// contract. Failed entries are retried on their next query.
pub struct EngineSession<'e> {
    engine: &'e AnalysisEngine,
    entries: Vec<SessionEntry>,
}

impl<'e> EngineSession<'e> {
    pub(crate) fn new(
        engine: &'e AnalysisEngine,
        module: &Module,
        lives: Vec<Result<(CfgShape, Arc<FunctionLiveness>), AnalysisError>>,
    ) -> Self {
        EngineSession {
            engine,
            entries: lives
                .into_iter()
                .zip(module.functions())
                .map(|(result, func)| SessionEntry {
                    ready: result.map(|(shape, live)| ReadyEntry { live, shape }),
                    cfg_version: func.cfg_version(),
                    epoch: 0,
                })
                .collect(),
        }
    }

    /// Number of functions the session serves (the module's length at
    /// [`AnalysisEngine::analyze`] time).
    pub fn num_functions(&self) -> usize {
        self.entries.len()
    }

    /// The engine this session resolves through — for batch planners
    /// that want to [`prefetch`](AnalysisEngine::prefetch) artifacts
    /// across functions before issuing per-function queries.
    pub fn engine(&self) -> &'e AnalysisEngine {
        self.engine
    }

    /// The recomputation epoch of `func`: 0 until its CFG first
    /// changes, +1 per detected invalidation (or retried failure)
    /// since.
    ///
    /// # Panics
    ///
    /// Panics if `func` is out of range.
    pub fn epoch(&self, func: FuncId) -> u64 {
        self.entries[func].epoch
    }

    /// Total recomputations across all functions since the session
    /// started.
    pub fn recomputations(&self) -> u64 {
        self.entries.iter().map(|e| e.epoch).sum()
    }

    /// The (revalidated) analysis handle for `func` — for callers that
    /// want to issue many raw [`FunctionLiveness`] queries without
    /// per-query session overhead. The handle is exact for the
    /// function's current state and stays so under instruction-level
    /// edits.
    ///
    /// # Panics
    ///
    /// Panics if `func` is out of range for the analyzed module.
    pub fn analysis(
        &mut self,
        module: &Module,
        func: FuncId,
    ) -> Result<Arc<FunctionLiveness>, AnalysisError> {
        self.refresh(module, func);
        match &self.entries[func].ready {
            Ok(r) => Ok(Arc::clone(&r.live)),
            Err(e) => Err(e.clone()),
        }
    }

    /// Is `v` live-in at block `q` of `module.func(func)`? Exact for
    /// the function's current state; transparently recomputes if the
    /// CFG changed. Errs if the function's analysis failed (see the
    /// [type docs](EngineSession#errors)).
    ///
    /// # Panics
    ///
    /// Panics if `func` is out of range.
    pub fn is_live_in(
        &mut self,
        module: &Module,
        func: FuncId,
        v: Value,
        q: Block,
    ) -> Result<bool, AnalysisError> {
        Ok(self
            .analysis(module, func)?
            .is_live_in(module.func(func), v, q))
    }

    /// Is `v` live-out at block `q` of `module.func(func)`?
    ///
    /// # Panics
    ///
    /// Panics if `func` is out of range.
    pub fn is_live_out(
        &mut self,
        module: &Module,
        func: FuncId,
        v: Value,
        q: Block,
    ) -> Result<bool, AnalysisError> {
        Ok(self
            .analysis(module, func)?
            .is_live_out(module.func(func), v, q))
    }

    /// Is `v` live at program point `p` of `module.func(func)` — the
    /// point-granularity query
    /// ([`FunctionLiveness::is_live_at`]) behind the session's
    /// revalidation?
    ///
    /// Point queries are instruction-level: they read the current
    /// instruction layout and def-use chains but never touch the CFG,
    /// so they neither bump nor depend on
    /// [`cfg_version`](fastlive_ir::Function::cfg_version) — the same
    /// freshness rules as block queries apply (instruction edits are
    /// free, CFG edits recompute transparently).
    ///
    /// Errs with
    /// [`AnalysisError::Point`]`(`[`PointError::DefinitionRemoved`](fastlive_core::PointError::DefinitionRemoved)`)`
    /// when `v`'s defining instruction has been removed.
    ///
    /// # Panics
    ///
    /// Panics if `func` is out of range.
    pub fn is_live_at(
        &mut self,
        module: &Module,
        func: FuncId,
        v: Value,
        p: ProgramPoint,
    ) -> Result<bool, AnalysisError> {
        Ok(self
            .analysis(module, func)?
            .is_live_at(module.func(func), v, p)?)
    }

    /// Is `v` live just after its own definition point (the Budimlić
    /// primitive)?
    ///
    /// # Panics
    ///
    /// Panics if `func` is out of range.
    pub fn is_live_after_def(
        &mut self,
        module: &Module,
        func: FuncId,
        v: Value,
    ) -> Result<bool, AnalysisError> {
        Ok(self
            .analysis(module, func)?
            .is_live_after_def(module.func(func), v)?)
    }

    /// Dense route for whole-function consumers: live-in/live-out bit
    /// rows for **all** `(value, block)` pairs of `func` in one matrix
    /// pass ([`FunctionLiveness::batch`]), 20–60× cheaper than looping
    /// scalar queries per `BENCH_query.json`. The snapshot reads the
    /// def-use chains at call time and goes stale on *any* later edit —
    /// re-request it after editing.
    ///
    /// # Panics
    ///
    /// Panics if `func` is out of range.
    pub fn batch(&mut self, module: &Module, func: FuncId) -> Result<BatchLiveness, AnalysisError> {
        Ok(self.analysis(module, func)?.batch(module.func(func)))
    }

    /// The nullness / definite-initialization artifact for `func`,
    /// resolved through the engine's `(fingerprint, analysis)` cache.
    ///
    /// Always exact for the function's current state: the engine keys
    /// by the CFG shape computed *at call time*, so a CFG edit simply
    /// resolves a different key (usually another cache hit) — nullness
    /// needs no epoch bookkeeping of its own. Run
    /// [`NullnessArtifact::solve`] over the handle for per-value
    /// facts; like liveness queries, solving reads the function's
    /// current instructions, so instruction-level edits are free.
    ///
    /// # Panics
    ///
    /// Panics if `func` is out of range.
    pub fn nullness(
        &mut self,
        module: &Module,
        func: FuncId,
    ) -> Result<Arc<NullnessArtifact>, AnalysisError> {
        self.engine.nullness_for(module.func(func))
    }

    /// Exact revalidation: recomputes the function's [`CfgShape`] and,
    /// on any structural difference from the shape the current analysis
    /// was built for, recomputes through the engine (bumping the
    /// epoch). A failed entry always recomputes. Needed only after
    /// replacing a function wholesale; plain mutator-driven edits are
    /// caught by the per-query check.
    ///
    /// Returns `true` if the analysis was recomputed.
    ///
    /// # Panics
    ///
    /// Panics if `func` is out of range.
    pub fn revalidate(&mut self, module: &Module, func: FuncId) -> bool {
        let current = module.func(func);
        let shape = CfgShape::of(current);
        match &self.entries[func].ready {
            Ok(r) if shape == r.shape => {
                // Structurally unchanged: adopt the (possibly
                // different) version counter so later queries don't
                // recompute for a CFG that is provably the same.
                self.entries[func].cfg_version = current.cfg_version();
                false
            }
            _ => {
                self.recompute(module, func);
                true
            }
        }
    }

    /// The O(1) per-query freshness check: the function's CFG-version
    /// counter moved ⇒ a block/edge mutation happened ⇒ recompute
    /// (through the cache, so a shape-preserving rewire that round-trips
    /// to a known fingerprint is still cheap). A failed entry is always
    /// stale: queries keep retrying it until it computes.
    fn refresh(&mut self, module: &Module, func: FuncId) {
        let current = module.func(func);
        let entry = &self.entries[func];
        // Block count is a backstop for wholesale replacement, where
        // the new object's own version counter may coincide with the
        // recorded one (see `revalidate` for the exact check).
        let stale = match &entry.ready {
            Ok(r) => entry.cfg_version != current.cfg_version() || !r.live.is_current_for(current),
            Err(_) => true,
        };
        if stale {
            self.recompute(module, func);
        }
    }

    fn recompute(&mut self, module: &Module, func: FuncId) {
        let result = self.engine.shaped_analysis(module.func(func));
        let entry = &mut self.entries[func];
        entry.ready = result.map(|(shape, live)| ReadyEntry { live, shape });
        entry.cfg_version = module.func(func).cfg_version();
        entry.epoch += 1;
        let recorder = self.engine.recorder();
        if recorder.enabled() {
            let detail = format!(
                "func={} epoch={} ok={}",
                module.func(func).name,
                entry.epoch,
                entry.ready.is_ok()
            );
            recorder.event(fastlive_telemetry::EventKind::SessionRevalidated, &detail);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use fastlive_ir::{parse_module, InstData, UnaryOp};

    fn looped_module() -> Module {
        parse_module(
            "function %jit { block0(v0):
                v1 = iconst 0
                jump block1(v1)
            block1(v2):
                v3 = iconst 1
                v4 = iadd v2, v3
                v5 = icmp_slt v4, v0
                brif v5, block1(v4), block2
            block2:
                return v4 }",
        )
        .expect("parses")
    }

    #[test]
    fn instruction_edits_keep_epoch_zero_and_answers_exact() {
        let mut module = looped_module();
        let engine = AnalysisEngine::with_defaults();
        let mut session = engine.analyze(&module);
        let id = 0;
        let v0 = module.func(id).params()[0];
        let b2 = module.func(id).block_by_index(2);
        assert!(!session.is_live_in(&module, id, v0, b2).unwrap());

        // Sink a use of v0 into block2: same CFG, new answer, no epoch.
        module.func_mut(id).insert_inst(
            b2,
            0,
            InstData::Unary {
                op: UnaryOp::Ineg,
                arg: v0,
            },
        );
        assert!(session.is_live_in(&module, id, v0, b2).unwrap());
        assert_eq!(session.epoch(id), 0);
        assert_eq!(session.recomputations(), 0);
    }

    #[test]
    fn cfg_edits_bump_the_epoch_and_recompute() {
        let mut module = looped_module();
        let engine = AnalysisEngine::with_defaults();
        let mut session = engine.analyze(&module);
        let id = 0;
        let v0 = module.func(id).params()[0];

        // Split critical edges: adds blocks, i.e. a CFG change.
        let created = fastlive_ir::split_critical_edges(module.func_mut(id));
        assert!(!created.is_empty(), "the loop exit edge is critical");
        let b2 = module.func(id).block_by_index(2);
        let before = session.epoch(id);
        let answer = session.is_live_in(&module, id, v0, b2).unwrap();
        assert_eq!(session.epoch(id), before + 1, "CFG change must recompute");
        // And the recomputed answer matches a from-scratch analysis.
        let oracle = FunctionLiveness::compute(module.func(id));
        assert_eq!(answer, oracle.is_live_in(module.func(id), v0, b2));
    }

    #[test]
    fn redirect_without_block_count_change_invalidates() {
        // Rewiring an edge keeps the block count — only the CFG-version
        // counter betrays the change. The session must recompute, not
        // serve stale answers.
        let mut module = parse_module(
            "function %f { block0(v0): jump block1 block1: jump block2 block2: return v0 }",
        )
        .expect("parses");
        let engine = AnalysisEngine::with_defaults();
        let mut session = engine.analyze(&module);
        let v0 = module.func(0).params()[0];
        let b1 = module.func(0).block_by_index(1);
        assert!(session.is_live_in(&module, 0, v0, b1).unwrap());

        // block0 now jumps straight to block2: block1 is unreachable.
        let func = module.func_mut(0);
        let jump = func.block_insts(func.entry_block())[0];
        let b2 = func.block_by_index(2);
        func.redirect_branch_target(jump, 0, b2, vec![]);

        assert!(
            !session.is_live_in(&module, 0, v0, b1).unwrap(),
            "stale answer after edge rewire"
        );
        assert_eq!(session.epoch(0), 1, "rewire must recompute");
        let oracle = FunctionLiveness::compute(module.func(0));
        for b in module.func(0).blocks() {
            assert_eq!(
                session.is_live_in(&module, 0, v0, b).unwrap(),
                oracle.is_live_in(module.func(0), v0, b)
            );
        }
    }

    #[test]
    fn revalidate_catches_same_block_count_replacement() {
        let mut module = parse_module("function %f { block0(v0): jump block1 block1: return v0 }")
            .expect("parses");
        let engine = AnalysisEngine::with_defaults();
        let mut session = engine.analyze(&module);

        // Replace %f with a CFG-different function of the SAME block
        // count (self-loop instead of straight-line).
        let replacement = fastlive_ir::parse_function(
            "function %f { block0(v0): brif v0, block0, block1 block1: return v0 }",
        )
        .expect("parses");
        *module.func_mut(0) = replacement;
        assert!(session.revalidate(&module, 0), "shape changed");
        assert_eq!(session.epoch(0), 1);
        assert!(!session.revalidate(&module, 0), "now current");

        let v0 = module.func(0).params()[0];
        let b0 = module.func(0).entry_block();
        let oracle = FunctionLiveness::compute(module.func(0));
        assert_eq!(
            session.is_live_out(&module, 0, v0, b0).unwrap(),
            oracle.is_live_out(module.func(0), v0, b0)
        );
    }

    #[test]
    fn recompile_with_identical_cfg_is_a_cache_hit() {
        let module = looped_module();
        let engine = AnalysisEngine::new(EngineConfig {
            threads: 1,
            cache_capacity: 8,
            ..EngineConfig::default()
        });
        let _first = engine.analyze(&module);
        assert_eq!(engine.cache_stats().misses, 1);

        // "Recompile": parse the same source again — fresh Function
        // objects, identical CFG. The second analysis never precomputes.
        let recompiled = parse_module(&module.to_string()).expect("round-trips");
        let mut session = engine.analyze(&recompiled);
        let stats = engine.cache_stats();
        assert_eq!(stats.misses, 1, "no new precomputation");
        assert_eq!(stats.hits, 1);

        let v0 = recompiled.func(0).params()[0];
        let b1 = recompiled.func(0).block_by_index(1);
        assert!(session.is_live_in(&recompiled, 0, v0, b1).unwrap());
    }

    #[test]
    fn point_queries_never_touch_cfg_version_or_epoch() {
        let mut module = looped_module();
        let engine = AnalysisEngine::with_defaults();
        let mut session = engine.analyze(&module);
        let id = 0;
        let v4 = module.func(id).value("v4").unwrap();
        let version_before = module.func(id).cfg_version();

        // Sweep every point of every block: answers come back, nothing
        // recomputes, the CFG-version counter never moves — the
        // point-API invariant recorded in the ROADMAP.
        let blocks: Vec<_> = module.func(id).blocks().collect();
        for b in blocks {
            let points: Vec<_> = module.func(id).block_points(b).collect();
            for p in points {
                let ans = session.is_live_at(&module, id, v4, p).expect("def exists");
                let oracle = FunctionLiveness::compute(module.func(id));
                assert_eq!(ans, oracle.is_live_at(module.func(id), v4, p).unwrap());
            }
        }
        assert_eq!(module.func(id).cfg_version(), version_before);
        assert_eq!(session.epoch(id), 0);
        assert_eq!(session.recomputations(), 0);

        // Instruction-level edit: point answers track it with no
        // recomputation, exactly like block queries.
        let b2 = module.func(id).block_by_index(2);
        module.func_mut(id).insert_inst(
            b2,
            0,
            InstData::Unary {
                op: UnaryOp::Ineg,
                arg: v4,
            },
        );
        let entry_b2 = fastlive_ir::ProgramPoint::block_entry(b2);
        assert_eq!(session.is_live_at(&module, id, v4, entry_b2), Ok(true));
        assert_eq!(session.epoch(id), 0);
    }

    #[test]
    fn detached_definition_errors_through_the_session() {
        let mut module = looped_module();
        let engine = AnalysisEngine::with_defaults();
        let mut session = engine.analyze(&module);
        let b0 = module.func(0).entry_block();
        let dead = module
            .func_mut(0)
            .insert_inst(b0, 0, InstData::IntConst { imm: 7 });
        let dv = module.func(0).inst_result(dead).unwrap();
        assert_eq!(session.is_live_after_def(&module, 0, dv), Ok(false));
        module.func_mut(0).remove_inst(dead);
        assert_eq!(
            session.is_live_after_def(&module, 0, dv),
            Err(AnalysisError::Point(
                fastlive_core::PointError::DefinitionRemoved(dv)
            ))
        );
    }

    #[test]
    fn nullness_rides_the_same_cache_without_duplicating_liveness() {
        let module = looped_module();
        let engine = AnalysisEngine::new(EngineConfig {
            threads: 1,
            cache_capacity: 8,
            ..EngineConfig::default()
        });
        let mut session = engine.analyze(&module);
        assert_eq!(engine.cache_len(), 1, "liveness artifact cached");

        // First nullness request is a second, independent cache entry
        // under the same fingerprint; repeats are memory hits.
        let art = session.nullness(&module, 0).unwrap();
        assert_eq!(engine.cache_len(), 2, "one entry per (shape, analysis)");
        let again = session.nullness(&module, 0).unwrap();
        assert!(
            Arc::ptr_eq(&art, &again),
            "second request shares the handle"
        );
        assert_eq!(engine.cache_stats().misses, 2, "one per analysis kind");

        // And the artifact answers over the function's real body.
        let func = module.func(0);
        let facts = art.solve(func);
        let v1 = func.value("v1").unwrap();
        assert_eq!(facts.of(v1), fastlive_core::Nullness::Null, "iconst 0");
    }

    #[test]
    fn batch_matches_scalar_session_queries() {
        let module = looped_module();
        let engine = AnalysisEngine::with_defaults();
        let mut session = engine.analyze(&module);
        let batch = session.batch(&module, 0).unwrap();
        let func = module.func(0);
        for v in func.values() {
            for b in func.blocks() {
                assert_eq!(
                    batch.is_live_in(v.index() as u32, b.as_u32()),
                    session.is_live_in(&module, 0, v, b).unwrap(),
                    "{v} at {b}"
                );
            }
        }
    }
}
