//! `fastlive-engine` — a parallel, fingerprint-cached, multi-function
//! liveness analysis engine.
//!
//! Most applications should configure this engine through the
//! [`fastlive` facade](https://docs.rs/fastlive)'s
//! `Fastlive::builder()` — it subsumes [`EngineConfig`] construction,
//! validates knob combinations at build time, and serves the session
//! below through a typed query layer. The types here are the
//! building blocks.
//!
//! The per-function checker ([`fastlive_core::FunctionLiveness`])
//! exploits the paper's headline property — the precomputation
//! "survives all program transformations except for changes in the
//! control-flow graph" (§1) — one function at a time. This crate turns
//! that property into a *system* that amortizes precomputation across a
//! whole module, across threads, and across recompilations:
//!
//! ```text
//!        Module (fastlive_ir)           source with many `function` units
//!           │
//!           ▼
//!   AnalysisEngine::analyze       scoped worker pool, self-scheduling
//!           │                     shared queue (EngineConfig::threads)
//!           ▼
//!   CfgShape fingerprint cache    lock-striped bounded LRU keyed by
//!           │                     CFG structure: CFG-identical
//!           │                     functions — including recompiled
//!           │                     ones — share one precomputation
//!           │                     (per-stripe CacheStats observable)
//!           ▼
//!   persist::PersistStore         optional cross-process tier
//!           │                     (EngineConfig::persist_dir): misses
//!           │                     decode a checksummed on-disk entry
//!           │                     instead of precomputing; corrupt
//!           │                     files degrade to clean misses
//!           ▼
//!       EngineSession             epoch-based queries: is_live_in /
//!                                 is_live_out / is_live_at (program
//!                                 points) / batch, transparently
//!                                 revalidated against each function's
//!                                 current state
//! ```
//!
//! Cache misses are **deduplicated per fingerprint**: workers that
//! miss on a shape another worker is already precomputing block on an
//! in-flight slot and adopt its result (`CacheStats::dedup_hits`), so
//! one precomputation happens per distinct shape under any
//! interleaving. The engine also drives whole-module SSA destruction
//! ([`AnalysisEngine::destruct_module`]) through the same cache, and
//! point queries ([`EngineSession::is_live_at`]) follow the same
//! revalidation rules as block queries — they are instruction-level
//! and never bump or depend on `cfg_version`.
//!
//! Why caching by CFG shape is sound: the §5.2 precomputation reads
//! *only* the graph (blocks and successor lists — what [`CfgShape`]
//! encodes), never instructions or values; queries re-read the queried
//! function's def-use chains on every call. One cached checker
//! therefore serves every CFG-identical function exactly, which is
//! also what makes the JIT scenario cheap: recompiling a function
//! almost always preserves its CFG, so re-analysis is one hash-map
//! probe.
//!
//! # Examples
//!
//! ```
//! use fastlive_engine::{AnalysisEngine, EngineConfig};
//! use fastlive_ir::parse_module;
//!
//! let module = parse_module(
//!     "function %count { block0(v0):
//!          v1 = iconst 0
//!          jump block1(v1)
//!      block1(v2):
//!          v3 = iconst 1
//!          v4 = iadd v2, v3
//!          v5 = icmp_slt v4, v0
//!          brif v5, block1(v4), block2
//!      block2:
//!          return v4 }
//!      function %id { block0(v0): return v0 }",
//! )?;
//!
//! let engine = AnalysisEngine::new(EngineConfig { threads: 4, ..EngineConfig::default() });
//! let mut session = engine.analyze(&module);
//!
//! let count = module.by_name("count").unwrap();
//! let v0 = module.func(count).params()[0];
//! let block1 = module.func(count).block_by_index(1);
//! assert!(session.is_live_in(&module, count, v0, block1)?);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod breaker;
mod cache;
mod driver;
mod engine;
mod fingerprint;
pub mod persist;
mod session;
pub mod vfs;

pub use artifact::{AnalysisArtifact, AnalysisKind, ArtifactHandle};
pub use breaker::{BreakerConfig, BreakerState, HealthReport};
pub use cache::CacheStats;
pub use engine::{AnalysisEngine, EngineConfig};
pub use fingerprint::CfgShape;
pub use persist::{GcStats, PersistStore};
pub use session::EngineSession;

// The telemetry seam: what `AnalysisEngine::with_instrumentation`
// accepts and what `health()` / `telemetry()` report in terms of.
pub use fastlive_telemetry::{
    Event, EventKind, NoopRecorder, Recorder, Telemetry, TelemetrySnapshot,
};
