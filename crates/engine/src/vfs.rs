//! The filesystem seam of the persistence tier: a small [`Vfs`] trait
//! that [`PersistStore`](crate::PersistStore) performs **all** of its
//! I/O through, with a production passthrough ([`StdVfs`]) and a
//! deterministic fault injector ([`FaultVfs`]).
//!
//! The disk tier is an accelerator that must degrade, never kill: a
//! full disk, a permission flip, a flaky controller or a torn write
//! may cost a recomputation but may not cost a wrong answer or a
//! process. Proving that requires *driving* those failures on demand —
//! which a real filesystem won't do on cue. `FaultVfs` replays a
//! scripted sequence of faults (I/O errors by errno, truncated "torn"
//! writes, added latency) against any operation pattern, turning the
//! corruption suite's ad-hoc `fs::write` tampering into one instance
//! of a general, deterministic harness:
//!
//! ```
//! use fastlive_engine::vfs::{Fault, FaultRule, FaultVfs, OpKind};
//! use fastlive_engine::persist::{LoadOutcome, PersistStore};
//! use std::sync::Arc;
//!
//! // Every write fails with ENOSPC; reads are untouched.
//! let vfs = Arc::new(FaultVfs::new(vec![FaultRule::every(
//!     OpKind::Write,
//!     Fault::enospc(),
//! )]));
//! let dir = std::env::temp_dir().join(format!("fastlive-vfs-doc-{}", std::process::id()));
//! let store = PersistStore::with_vfs(&dir, vfs.clone());
//! let f = fastlive_ir::parse_function("function %f { block0(v0): return v0 }")?;
//! let shape = fastlive_engine::CfgShape::of(&f);
//! let pre = fastlive_core::LivenessChecker::compute(&shape.to_graph())
//!     .precomputation()
//!     .clone();
//! assert!(store.save(&shape, &pre).is_err(), "full disk");
//! assert!(matches!(store.load(&shape), LoadOutcome::Absent));
//! assert!(vfs.faults_injected() >= 1);
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Scripts are plain data — op-kind filters, skip/count windows,
//! errno-classified faults — so adversarial campaigns compose with the
//! workload generators (`fastlive_workload::faults`) the same way the
//! Barany-style generator composes CFG shapes: seeded, replayable,
//! shrinkable.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, SystemTime};

/// Metadata the store actually consumes: byte length and modification
/// time. `modified` is optional because some filesystems cannot report
/// it — callers must have an explicit policy for `None` (the GC treats
/// it as *infinitely old*; see [`PersistStore::gc`](crate::PersistStore::gc)).
#[derive(Clone, Copy, Debug)]
pub struct VfsMetadata {
    /// File length in bytes.
    pub len: u64,
    /// Modification time, when the filesystem can report one.
    pub modified: Option<SystemTime>,
}

/// The filesystem operations the persistence tier needs — nothing
/// more. Every [`PersistStore`](crate::PersistStore) I/O goes through
/// exactly one of these methods, so one implementation swap puts the
/// whole disk tier under scripted fault control.
///
/// Implementations must be `Send + Sync`: one store is probed by many
/// workers concurrently.
pub trait Vfs: Send + Sync {
    /// Reads a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Creates or truncates `path` with `bytes`.
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Atomically renames `from` onto `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Deletes a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Stats a file.
    fn metadata(&self, path: &Path) -> io::Result<VfsMetadata>;
    /// Lists a directory's entries (full paths, any order).
    fn read_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;
    /// Creates a directory and all missing parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
}

/// The production [`Vfs`]: a thin passthrough to `std::fs`.
#[derive(Clone, Copy, Debug, Default)]
pub struct StdVfs;

impl Vfs for StdVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        std::fs::write(path, bytes)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn metadata(&self, path: &Path) -> io::Result<VfsMetadata> {
        let meta = std::fs::metadata(path)?;
        Ok(VfsMetadata {
            len: meta.len(),
            modified: meta.modified().ok(),
        })
    }

    fn read_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            out.push(entry?.path());
        }
        Ok(out)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }
}

/// Which [`Vfs`] operation a [`FaultRule`] intercepts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// [`Vfs::read`].
    Read,
    /// [`Vfs::write`].
    Write,
    /// [`Vfs::rename`].
    Rename,
    /// [`Vfs::remove_file`].
    Remove,
    /// [`Vfs::metadata`].
    Metadata,
    /// [`Vfs::read_dir`].
    ReadDir,
    /// [`Vfs::create_dir_all`].
    CreateDir,
    /// Matches every operation.
    Any,
}

impl OpKind {
    fn matches(self, op: OpKind) -> bool {
        self == OpKind::Any || self == op
    }
}

/// One scripted fault.
#[derive(Clone, Debug)]
pub enum Fault {
    /// Fail the operation with this OS errno (classified through
    /// `io::Error::from_raw_os_error`, so `ErrorKind` mapping matches
    /// what a real filesystem would produce).
    Errno(i32),
    /// A torn write: persist only the first `n` bytes of the payload,
    /// then report **success** — the lying-disk scenario an atomic
    /// tmp+rename cannot detect at write time. Applies to
    /// [`OpKind::Write`]; on any other operation it behaves like EIO.
    TornWrite(usize),
    /// Sleep for the duration, then perform the operation normally —
    /// a slow disk, not a broken one.
    Delay(Duration),
}

impl Fault {
    /// `ENOSPC` — device full.
    pub fn enospc() -> Self {
        Fault::Errno(28)
    }

    /// `EACCES` — permission denied.
    pub fn eacces() -> Self {
        Fault::Errno(13)
    }

    /// `EIO` — generic I/O error (the flaky-controller errno).
    pub fn eio() -> Self {
        Fault::Errno(5)
    }
}

/// One rule of a fault script: *which* operations it matches and
/// *when* in the matching sequence it fires.
///
/// A rule observes every operation whose kind and path match; it lets
/// the first `skip` of them through, injects its fault into the next
/// `count`, and is inert afterwards. Rules are independent — each
/// keeps its own position in the stream — and the **first** rule whose
/// active window covers an operation supplies the fault.
#[derive(Clone, Debug)]
pub struct FaultRule {
    /// Operation kind to intercept.
    pub op: OpKind,
    /// When set, only paths whose string form contains this substring
    /// match (scopes a rule to one entry, one extension, one dir).
    pub path_contains: Option<String>,
    /// Matching operations to let through before faulting.
    pub skip: usize,
    /// Matching operations to fault once active (`usize::MAX` ≈
    /// forever).
    pub count: usize,
    /// The fault to inject.
    pub fault: Fault,
    /// Matching operations seen so far (the rule's stream position).
    seen: usize,
}

impl FaultRule {
    /// A rule faulting every matching operation, forever.
    pub fn every(op: OpKind, fault: Fault) -> Self {
        FaultRule {
            op,
            path_contains: None,
            skip: 0,
            count: usize::MAX,
            fault,
            seen: 0,
        }
    }

    /// A rule faulting the matching operations numbered
    /// `skip .. skip + count` (0-based) and nothing else.
    pub fn window(op: OpKind, skip: usize, count: usize, fault: Fault) -> Self {
        FaultRule {
            op,
            path_contains: None,
            skip,
            count,
            fault,
            seen: 0,
        }
    }

    /// Restricts the rule to paths containing `s`.
    pub fn on_paths(mut self, s: impl Into<String>) -> Self {
        self.path_contains = Some(s.into());
        self
    }

    fn matches(&self, op: OpKind, path: &Path) -> bool {
        self.op.matches(op)
            && self
                .path_contains
                .as_ref()
                .is_none_or(|s| path.to_string_lossy().contains(s.as_str()))
    }
}

/// A deterministic fault-injecting [`Vfs`] over [`StdVfs`].
///
/// The script is a list of [`FaultRule`]s evaluated in order per
/// operation; faults are injected *before* the real operation runs
/// (except [`Fault::TornWrite`], which performs a truncated write, and
/// [`Fault::Delay`], which performs the real operation after
/// sleeping). Operation and fault counts are observable for
/// assertions. All bookkeeping is behind one mutex — the injector is
/// freely shared across the engine's worker threads.
pub struct FaultVfs {
    inner: StdVfs,
    rules: Mutex<Vec<FaultRule>>,
    ops: AtomicU64,
    injected: AtomicU64,
}

impl std::fmt::Debug for FaultVfs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultVfs")
            .field("ops", &self.ops.load(Ordering::Relaxed))
            .field("injected", &self.injected.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl FaultVfs {
    /// An injector replaying `rules` over the real filesystem.
    pub fn new(rules: Vec<FaultRule>) -> Self {
        FaultVfs {
            inner: StdVfs,
            rules: Mutex::new(rules),
            ops: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// An injector with no rules — byte-for-byte [`StdVfs`] behavior
    /// (the happy-path-overhead baseline).
    pub fn healthy() -> Self {
        Self::new(Vec::new())
    }

    /// Replaces the script (counters keep running). Lets a long-lived
    /// test flip a disk from healthy to failing and back without
    /// rebuilding the store.
    pub fn set_rules(&self, rules: Vec<FaultRule>) {
        *lock_recover(&self.rules) = rules;
    }

    /// Total operations intercepted (faulted or passed through).
    pub fn ops_seen(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// Total faults injected.
    pub fn faults_injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// The first active fault for this operation, advancing every
    /// matching rule's stream position.
    fn fault_for(&self, op: OpKind, path: &Path) -> Option<Fault> {
        self.ops.fetch_add(1, Ordering::Relaxed);
        let mut rules = lock_recover(&self.rules);
        let mut hit = None;
        for rule in rules.iter_mut() {
            if !rule.matches(op, path) {
                continue;
            }
            let pos = rule.seen;
            rule.seen += 1;
            if hit.is_none() && pos >= rule.skip && pos - rule.skip < rule.count {
                hit = Some(rule.fault.clone());
            }
        }
        if hit.is_some() {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Applies a non-write fault (torn writes degrade to EIO here).
    fn apply<T>(fault: Fault, run: impl FnOnce() -> io::Result<T>) -> io::Result<T> {
        match fault {
            Fault::Errno(errno) => Err(io::Error::from_raw_os_error(errno)),
            Fault::TornWrite(_) => Err(io::Error::from_raw_os_error(5)),
            Fault::Delay(d) => {
                std::thread::sleep(d);
                run()
            }
        }
    }
}

impl Vfs for FaultVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        match self.fault_for(OpKind::Read, path) {
            Some(f) => Self::apply(f, || self.inner.read(path)),
            None => self.inner.read(path),
        }
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.fault_for(OpKind::Write, path) {
            // The torn write is the one fault that *lies*: it persists
            // a prefix and reports success, so the CRC/structural
            // validation downstream is the only line of defense.
            Some(Fault::TornWrite(n)) => self.inner.write(path, &bytes[..n.min(bytes.len())]),
            Some(f) => Self::apply(f, || self.inner.write(path, bytes)),
            None => self.inner.write(path, bytes),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.fault_for(OpKind::Rename, from) {
            Some(f) => Self::apply(f, || self.inner.rename(from, to)),
            None => self.inner.rename(from, to),
        }
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        match self.fault_for(OpKind::Remove, path) {
            Some(f) => Self::apply(f, || self.inner.remove_file(path)),
            None => self.inner.remove_file(path),
        }
    }

    fn metadata(&self, path: &Path) -> io::Result<VfsMetadata> {
        match self.fault_for(OpKind::Metadata, path) {
            Some(f) => Self::apply(f, || self.inner.metadata(path)),
            None => self.inner.metadata(path),
        }
    }

    fn read_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        match self.fault_for(OpKind::ReadDir, dir) {
            Some(f) => Self::apply(f, || self.inner.read_dir(dir)),
            None => self.inner.read_dir(dir),
        }
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        match self.fault_for(OpKind::CreateDir, dir) {
            Some(f) => Self::apply(f, || self.inner.create_dir_all(dir)),
            None => self.inner.create_dir_all(dir),
        }
    }
}

/// A [`Vfs`] decorator that records every operation's latency, payload
/// bytes and success into a
/// [`Recorder`](fastlive_telemetry::Recorder) — how the engine meters
/// its disk tier when telemetry is enabled.
///
/// The wrapper times unconditionally, so the engine installs it only
/// around an *enabled* recorder; a disabled stack keeps the raw `Vfs`
/// and pays nothing. Faults injected by a wrapped [`FaultVfs`] are
/// observable as `errors` in the snapshot — telemetry sees exactly
/// what the persistence tier saw.
pub struct MeteredVfs {
    inner: Arc<dyn Vfs>,
    recorder: Arc<dyn fastlive_telemetry::Recorder>,
}

impl std::fmt::Debug for MeteredVfs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MeteredVfs").finish_non_exhaustive()
    }
}

impl MeteredVfs {
    /// Wraps `inner`, reporting every operation to `recorder`.
    pub fn new(inner: Arc<dyn Vfs>, recorder: Arc<dyn fastlive_telemetry::Recorder>) -> Self {
        MeteredVfs { inner, recorder }
    }

    /// Runs one op, reporting `(latency, bytes, ok)`; `bytes` is what
    /// `size` extracts from a successful result (payload moved).
    fn metered<T>(
        &self,
        op: fastlive_telemetry::VfsOp,
        run: impl FnOnce() -> io::Result<T>,
        size: impl FnOnce(&T) -> u64,
    ) -> io::Result<T> {
        let t0 = std::time::Instant::now();
        let result = run();
        let ns = t0.elapsed().as_nanos() as u64;
        match &result {
            Ok(v) => self.recorder.vfs_op(op, ns, size(v), true),
            Err(_) => self.recorder.vfs_op(op, ns, 0, false),
        }
        result
    }
}

impl Vfs for MeteredVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.metered(
            fastlive_telemetry::VfsOp::Read,
            || self.inner.read(path),
            |bytes| bytes.len() as u64,
        )
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let len = bytes.len() as u64;
        self.metered(
            fastlive_telemetry::VfsOp::Write,
            || self.inner.write(path, bytes),
            |()| len,
        )
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.metered(
            fastlive_telemetry::VfsOp::Rename,
            || self.inner.rename(from, to),
            |()| 0,
        )
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.metered(
            fastlive_telemetry::VfsOp::Remove,
            || self.inner.remove_file(path),
            |()| 0,
        )
    }

    fn metadata(&self, path: &Path) -> io::Result<VfsMetadata> {
        self.metered(
            fastlive_telemetry::VfsOp::Metadata,
            || self.inner.metadata(path),
            |_| 0,
        )
    }

    fn read_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        self.metered(
            fastlive_telemetry::VfsOp::ReadDir,
            || self.inner.read_dir(dir),
            |_| 0,
        )
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.metered(
            fastlive_telemetry::VfsOp::CreateDir,
            || self.inner.create_dir_all(dir),
            |()| 0,
        )
    }
}

/// Poison-recovering lock acquisition: a mutex poisoned by a panicking
/// holder still yields its data. Every guarded structure in this crate
/// stays consistent under unwinding (critical sections only move
/// counters or swap whole values), so recovering the lock is always
/// sound — and one crashed worker never wedges the rest of the engine.
pub(crate) fn lock_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("fastlive-vfs-{tag}-{}", std::process::id()))
    }

    #[test]
    fn healthy_fault_vfs_is_a_passthrough() {
        let vfs = FaultVfs::healthy();
        let path = tmp_path("pass");
        vfs.write(&path, b"hello").unwrap();
        assert_eq!(vfs.read(&path).unwrap(), b"hello");
        let meta = vfs.metadata(&path).unwrap();
        assert_eq!(meta.len, 5);
        vfs.remove_file(&path).unwrap();
        assert_eq!(vfs.faults_injected(), 0);
        assert_eq!(vfs.ops_seen(), 4);
    }

    #[test]
    fn errno_faults_classify_like_the_real_kernel() {
        let vfs = FaultVfs::new(vec![
            FaultRule::every(OpKind::Write, Fault::enospc()),
            FaultRule::every(OpKind::Read, Fault::eacces()),
            FaultRule::every(OpKind::Metadata, Fault::eio()),
        ]);
        let path = tmp_path("errno");
        assert_eq!(vfs.write(&path, b"x").unwrap_err().raw_os_error(), Some(28));
        assert_eq!(
            vfs.read(&path).unwrap_err().kind(),
            io::ErrorKind::PermissionDenied
        );
        assert_eq!(vfs.metadata(&path).unwrap_err().raw_os_error(), Some(5));
        assert_eq!(vfs.faults_injected(), 3);
    }

    #[test]
    fn windows_skip_then_fire_then_expire() {
        // Ops 0,1 pass; 2,3 fail; 4.. pass again.
        let vfs = FaultVfs::new(vec![FaultRule::window(OpKind::Write, 2, 2, Fault::eio())]);
        let path = tmp_path("window");
        for i in 0..6 {
            let r = vfs.write(&path, b"w");
            if (2..4).contains(&i) {
                assert!(r.is_err(), "op {i} should fault");
            } else {
                assert!(r.is_ok(), "op {i} should pass");
            }
        }
        std::fs::remove_file(&path).ok();
        assert_eq!(vfs.faults_injected(), 2);
    }

    #[test]
    fn path_scoping_leaves_other_files_alone() {
        let vfs = FaultVfs::new(vec![
            FaultRule::every(OpKind::Write, Fault::eio()).on_paths("victim")
        ]);
        let victim = tmp_path("victim");
        let bystander = tmp_path("bystander");
        assert!(vfs.write(&victim, b"x").is_err());
        assert!(vfs.write(&bystander, b"x").is_ok());
        std::fs::remove_file(&bystander).ok();
    }

    #[test]
    fn torn_write_persists_a_prefix_and_reports_success() {
        let vfs = FaultVfs::new(vec![FaultRule::every(OpKind::Write, Fault::TornWrite(3))]);
        let path = tmp_path("torn");
        vfs.write(&path, b"hello world").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"hel");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn delay_faults_still_complete() {
        let vfs = FaultVfs::new(vec![FaultRule::every(
            OpKind::Write,
            Fault::Delay(Duration::from_millis(5)),
        )]);
        let path = tmp_path("delay");
        let start = std::time::Instant::now();
        vfs.write(&path, b"slow").unwrap();
        assert!(start.elapsed() >= Duration::from_millis(5));
        assert_eq!(std::fs::read(&path).unwrap(), b"slow");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn first_active_rule_wins_but_all_rules_advance() {
        let vfs = FaultVfs::new(vec![
            FaultRule::window(OpKind::Write, 0, 1, Fault::enospc()),
            FaultRule::window(OpKind::Any, 0, 2, Fault::eio()),
        ]);
        let path = tmp_path("order");
        // Op 0: both active, first wins → ENOSPC.
        assert_eq!(vfs.write(&path, b"x").unwrap_err().raw_os_error(), Some(28));
        // Op 1: rule 0 expired, rule 1 (already advanced to position 1)
        // still active → EIO.
        assert_eq!(vfs.write(&path, b"x").unwrap_err().raw_os_error(), Some(5));
        // Op 2: both expired.
        assert!(vfs.write(&path, b"x").is_ok());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn metered_vfs_reports_latency_bytes_and_errors() {
        use fastlive_telemetry::{Telemetry, VfsOp};
        let hub = Arc::new(Telemetry::new());
        let inner = Arc::new(FaultVfs::new(vec![FaultRule::window(
            OpKind::Read,
            1,
            1,
            Fault::eio(),
        )]));
        let vfs = MeteredVfs::new(inner, hub.clone());
        let path = tmp_path("metered");
        vfs.write(&path, b"payload").unwrap();
        assert_eq!(vfs.read(&path).unwrap(), b"payload");
        assert!(vfs.read(&path).is_err(), "second read is faulted");
        vfs.remove_file(&path).unwrap();

        let s = hub.snapshot_now();
        let write = &s.vfs_ops[VfsOp::Write as usize];
        assert_eq!((write.latency.count, write.bytes, write.errors), (1, 7, 0));
        let read = &s.vfs_ops[VfsOp::Read as usize];
        assert_eq!(read.latency.count, 2, "both reads timed");
        assert_eq!(read.bytes, 7, "only the successful read moved bytes");
        assert_eq!(read.errors, 1);
        let remove = &s.vfs_ops[VfsOp::Remove as usize];
        assert_eq!((remove.latency.count, remove.errors), (1, 0));
    }

    #[test]
    fn lock_recover_yields_data_after_a_poisoning_panic() {
        use std::sync::Mutex;
        let m = std::sync::Arc::new(Mutex::new(41));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            // Holding the un-unwrapped `LockResult` still holds the
            // guard inside it; panicking here poisons the mutex.
            let _guard = m2.lock();
            panic!("poison the mutex");
        })
        .join();
        assert!(m.is_poisoned());
        *lock_recover(&m) += 1;
        assert_eq!(*lock_recover(&m), 42);
    }
}
