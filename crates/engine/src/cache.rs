//! The bounded LRU cache of analysis artifacts, keyed by
//! `(CfgShape, AnalysisKind)`.
//!
//! This is the paper's JIT story made concrete: recompiling a function
//! whose CFG did not change (the overwhelmingly common case for
//! instruction-level optimizations) must not pay a shape-level
//! precomputation again — for *any* analysis the engine serves.
//! Entries are shared [`ArtifactHandle`]s — *one* artifact serves
//! every CFG-identical function, because shape-level precomputations
//! never read instructions.

use std::collections::HashMap;

use crate::artifact::{AnalysisKind, ArtifactHandle};
use crate::fingerprint::CfgShape;

/// The striped cache's key: one CFG fingerprint, one analysis.
pub(crate) type ArtifactKey = (CfgShape, AnalysisKind);

/// Hit/miss/eviction/dedup and disk-tier counters of the engine's
/// fingerprint cache — the observability surface the engine exposes
/// ([`AnalysisEngine::cache_stats`](crate::AnalysisEngine::cache_stats),
/// [`AnalysisEngine::stripe_stats`](crate::AnalysisEngine::stripe_stats)).
///
/// With the cache striped, each stripe keeps its own `CacheStats`;
/// totals are recovered by [addition](Self::add) and per-stripe values
/// always sum exactly to the engine-wide numbers (the striping never
/// loses a probe).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Probes that found a CFG-identical precomputation in memory.
    pub hits: u64,
    /// Probes that found nothing in memory (the prober then consulted
    /// the disk tier, if configured, and computed on a disk miss).
    /// Every in-memory miss lands in exactly one of `disk_hits`,
    /// `disk_misses`, `disk_rejects` when persistence is enabled, so
    /// `misses - disk_hits` is the number of precomputations actually
    /// paid.
    pub misses: u64,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
    /// Probes that found the shape *being computed* by another worker
    /// and adopted that in-flight result instead of recomputing it —
    /// the per-fingerprint dedup. Two workers therefore never
    /// precompute the same shape: `misses` counts exactly one
    /// computation-or-disk-load per distinct shape, under any
    /// interleaving.
    pub dedup_hits: u64,
    /// In-memory misses served by decoding a valid on-disk entry — no
    /// precomputation was paid.
    pub disk_hits: u64,
    /// In-memory misses for which no on-disk entry existed (the
    /// precomputation ran, then wrote one through).
    pub disk_misses: u64,
    /// In-memory misses that found an on-disk entry but **rejected** it
    /// — corrupt, truncated, version-crossed, or hash-collided. The
    /// precomputation ran and the bad entry was overwritten; a reject
    /// is always a clean miss, never a wrong answer.
    pub disk_rejects: u64,
    /// Disk-tier operations (probe or write-through) whose **I/O
    /// failed** — EACCES, EIO, ENOSPC. Distinct from `disk_rejects`:
    /// a reject means the disk worked and the *file* was invalid; an
    /// error means the *device* failed. Errors feed the disk circuit
    /// breaker ([`BreakerConfig`](crate::BreakerConfig)); the affected
    /// probe is served memory-only either way.
    pub disk_errors: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]` (0 when nothing was probed yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// The counters as one JSON object (stable key order — the same
    /// hand-rolled discipline as the telemetry snapshot).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"hits\":{},\"misses\":{},\"evictions\":{},\"dedup_hits\":{},\
             \"disk_hits\":{},\"disk_misses\":{},\"disk_rejects\":{},\"disk_errors\":{}}}",
            self.hits,
            self.misses,
            self.evictions,
            self.dedup_hits,
            self.disk_hits,
            self.disk_misses,
            self.disk_rejects,
            self.disk_errors
        )
    }

    /// Field-wise sum — folds per-stripe stats back into engine totals.
    pub fn add(&self, other: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            evictions: self.evictions + other.evictions,
            dedup_hits: self.dedup_hits + other.dedup_hits,
            disk_hits: self.disk_hits + other.disk_hits,
            disk_misses: self.disk_misses + other.disk_misses,
            disk_rejects: self.disk_rejects + other.disk_rejects,
            disk_errors: self.disk_errors + other.disk_errors,
        }
    }
}

/// One-line operator rendering; disk counters appear only when any
/// disk activity happened.
impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "hits={} misses={} evictions={} dedup={}",
            self.hits, self.misses, self.evictions, self.dedup_hits
        )?;
        if self.disk_hits + self.disk_misses + self.disk_rejects + self.disk_errors > 0 {
            write!(
                f,
                " disk(hits={} misses={} rejects={} errors={})",
                self.disk_hits, self.disk_misses, self.disk_rejects, self.disk_errors
            )?;
        }
        Ok(())
    }
}

struct CacheEntry {
    handle: ArtifactHandle,
    /// Logical timestamp of the last probe that returned this entry.
    last_used: u64,
}

/// A bounded least-recently-used map
/// `(CfgShape, AnalysisKind) → ArtifactHandle`.
///
/// Capacity 0 disables caching entirely (every probe misses, inserts
/// are dropped) — the configuration the scaling benchmarks use to
/// measure raw precompute throughput. The capacity bounds *entries*,
/// so two analyses of one shape occupy two slots — each is its own
/// eviction victim.
pub(crate) struct FingerprintCache {
    capacity: usize,
    tick: u64,
    map: HashMap<ArtifactKey, CacheEntry>,
    stats: CacheStats,
}

impl FingerprintCache {
    pub(crate) fn new(capacity: usize) -> Self {
        FingerprintCache {
            capacity,
            tick: 0,
            map: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// Probes for `key`, bumping its recency (and the hit counter)
    /// on a hit. A `None` result records **nothing**: the caller
    /// decides whether the probe becomes a miss
    /// ([`note_miss`](Self::note_miss) — it will compute) or a dedup
    /// hit ([`note_dedup_hit`](Self::note_dedup_hit) — it adopts
    /// another worker's in-flight computation).
    pub(crate) fn probe(&mut self, key: &ArtifactKey) -> Option<ArtifactHandle> {
        self.tick += 1;
        match self.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = self.tick;
                self.stats.hits += 1;
                Some(entry.handle.clone())
            }
            None => None,
        }
    }

    /// Records a probe that will pay a full precomputation.
    pub(crate) fn note_miss(&mut self) {
        self.stats.misses += 1;
    }

    /// Records a probe that joined an in-flight computation of the
    /// same shape instead of recomputing it.
    pub(crate) fn note_dedup_hit(&mut self) {
        self.stats.dedup_hits += 1;
    }

    /// Records an in-memory miss served by a valid on-disk entry.
    pub(crate) fn note_disk_hit(&mut self) {
        self.stats.disk_hits += 1;
    }

    /// Records an in-memory miss with no on-disk entry.
    pub(crate) fn note_disk_miss(&mut self) {
        self.stats.disk_misses += 1;
    }

    /// Records an in-memory miss whose on-disk entry failed validation.
    pub(crate) fn note_disk_reject(&mut self) {
        self.stats.disk_rejects += 1;
    }

    /// Records a disk-tier operation whose I/O failed (probe or
    /// write-through) — the device's fault, not the file's.
    pub(crate) fn note_disk_error(&mut self) {
        self.stats.disk_errors += 1;
    }

    /// Inserts a freshly computed artifact, evicting the
    /// least-recently-used entry if the cache is full. Re-inserting an
    /// existing key (two threads raced on the same miss) just
    /// refreshes the entry.
    pub(crate) fn insert(&mut self, key: ArtifactKey, handle: ArtifactHandle) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            // O(len) victim scan: engine caches are small (hundreds of
            // shapes), and misses already paid a full precomputation.
            if let Some(victim) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&victim);
                self.stats.evictions += 1;
            }
        }
        self.map.insert(
            key,
            CacheEntry {
                handle,
                last_used: self.tick,
            },
        );
    }

    pub(crate) fn stats(&self) -> CacheStats {
        self.stats
    }

    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastlive_core::FunctionLiveness;
    use fastlive_ir::parse_function;
    use std::sync::Arc;

    fn key_and_handle(src: &str) -> (ArtifactKey, ArtifactHandle) {
        let f = parse_function(src).unwrap();
        (
            (CfgShape::of(&f), AnalysisKind::Liveness),
            ArtifactHandle::Liveness(Arc::new(FunctionLiveness::compute(&f))),
        )
    }

    #[test]
    fn lru_evicts_the_coldest_shape() {
        let (s1, l1) = key_and_handle("function %a { block0: return }");
        let (s2, l2) = key_and_handle("function %b { block0: jump block1 block1: return }");
        let (s3, l3) = key_and_handle(
            "function %c { block0: jump block1 block1: jump block2 block2: return }",
        );
        let mut cache = FingerprintCache::new(2);
        assert!(cache.probe(&s1).is_none());
        cache.note_miss();
        cache.insert(s1.clone(), l1);
        assert!(cache.probe(&s2).is_none());
        cache.note_miss();
        cache.insert(s2.clone(), l2);
        // Touch s1 so s2 becomes the LRU victim.
        assert!(cache.probe(&s1).is_some());
        cache.insert(s3.clone(), l3);
        assert_eq!(cache.len(), 2);
        assert!(cache.probe(&s1).is_some());
        assert!(cache.probe(&s2).is_none(), "s2 should have been evicted");
        assert!(cache.probe(&s3).is_some());
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.dedup_hits, 0);
        assert!(stats.hit_rate() > 0.5);
    }

    #[test]
    fn stats_add_is_fieldwise() {
        let a = CacheStats {
            hits: 1,
            misses: 2,
            evictions: 3,
            dedup_hits: 4,
            disk_hits: 5,
            disk_misses: 6,
            disk_rejects: 7,
            disk_errors: 8,
        };
        let b = CacheStats {
            hits: 10,
            misses: 20,
            evictions: 30,
            dedup_hits: 40,
            disk_hits: 50,
            disk_misses: 60,
            disk_rejects: 70,
            disk_errors: 80,
        };
        let sum = a.add(&b);
        assert_eq!(
            sum,
            CacheStats {
                hits: 11,
                misses: 22,
                evictions: 33,
                dedup_hits: 44,
                disk_hits: 55,
                disk_misses: 66,
                disk_rejects: 77,
                disk_errors: 88,
            }
        );
        assert_eq!(a.add(&CacheStats::default()), a);
    }

    #[test]
    fn stats_render_stably() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            disk_misses: 1,
            ..CacheStats::default()
        };
        assert_eq!(
            s.to_json(),
            "{\"hits\":3,\"misses\":1,\"evictions\":0,\"dedup_hits\":0,\
             \"disk_hits\":0,\"disk_misses\":1,\"disk_rejects\":0,\"disk_errors\":0}"
        );
        assert_eq!(
            s.to_string(),
            "hits=3 misses=1 evictions=0 dedup=0 disk(hits=0 misses=1 rejects=0 errors=0)"
        );
        assert_eq!(
            CacheStats::default().to_string(),
            "hits=0 misses=0 evictions=0 dedup=0",
            "no disk activity, no disk clause"
        );
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let (s1, l1) = key_and_handle("function %a { block0: return }");
        let mut cache = FingerprintCache::new(0);
        cache.insert(s1.clone(), l1);
        assert!(cache.probe(&s1).is_none());
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.stats().evictions, 0);
    }
}
