//! [`AnalysisEngine`]: parallel precomputation over a [`Module`] with
//! the fingerprint cache in front of it.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use fastlive_core::FunctionLiveness;
use fastlive_ir::{Function, Module};

use crate::cache::{CacheStats, FingerprintCache};
use crate::fingerprint::CfgShape;
use crate::session::EngineSession;

/// Tuning knobs of an [`AnalysisEngine`].
#[derive(Copy, Clone, Debug)]
pub struct EngineConfig {
    /// Worker threads for [`AnalysisEngine::analyze`]. `0` means "one
    /// per available CPU"; `1` runs inline on the calling thread.
    pub threads: usize,
    /// Maximum precomputations retained by the CFG-fingerprint cache.
    /// `0` disables caching (every analysis recomputes).
    pub cache_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: 0,
            cache_capacity: 256,
        }
    }
}

/// A module-level liveness analysis engine.
///
/// The engine owns one shared [CFG-fingerprint cache](CfgShape) and
/// fans the per-function precomputation
/// ([`FunctionLiveness::compute`]) out over a scoped worker pool.
/// Workers self-schedule from a shared function queue (an atomic
/// cursor), so a module whose function sizes are skewed — the common
/// case — still balances: whichever worker finishes its current
/// function first steals the next one from the queue.
///
/// Precomputations are cached and shared by CFG shape: analyzing two
/// functions with identical CFGs, or re-analyzing a recompiled function
/// whose CFG survived (the paper's §1 JIT scenario), costs one cache
/// probe instead of a §5.2 precomputation. Hits, misses and evictions
/// are observable through [`cache_stats`](Self::cache_stats).
///
/// # Examples
///
/// ```
/// use fastlive_engine::{AnalysisEngine, EngineConfig};
/// use fastlive_ir::parse_module;
///
/// let module = parse_module(
///     "function %a { block0(v0): v1 = ineg v0  return v1 }
///      function %b { block0(v0): v1 = bnot v0  return v1 }",
/// )?;
/// // threads: 1 makes the cache-counter assertions below exact; with
/// // more workers, racing probes may compute a shared shape twice.
/// let engine = AnalysisEngine::new(EngineConfig { threads: 1, ..EngineConfig::default() });
/// let mut session = engine.analyze(&module);
///
/// let a = module.by_name("a").unwrap();
/// let v0 = module.func(a).params()[0];
/// let entry = module.func(a).entry_block();
/// assert!(!session.is_live_in(&module, a, v0, entry));
///
/// // %a and %b are CFG-identical: one precomputation served both.
/// assert_eq!(engine.cache_stats().hits, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct AnalysisEngine {
    config: EngineConfig,
    cache: Mutex<FingerprintCache>,
}

impl AnalysisEngine {
    /// Creates an engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        AnalysisEngine {
            cache: Mutex::new(FingerprintCache::new(config.cache_capacity)),
            config,
        }
    }

    /// An engine with [`EngineConfig::default`] (auto thread count,
    /// 256-entry cache).
    pub fn with_defaults() -> Self {
        Self::new(EngineConfig::default())
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Precomputes liveness for every function of `module` — in
    /// parallel when the config allows — and returns a query session
    /// over the results. Functions are analyzed through the fingerprint
    /// cache, so CFG-identical functions (within this module or from
    /// any earlier analysis) share one precomputation.
    pub fn analyze(&self, module: &Module) -> EngineSession<'_> {
        let n = module.len();
        let workers = self.worker_count(n);
        let mut slots: Vec<Option<(CfgShape, Arc<FunctionLiveness>)>> = Vec::new();
        if workers <= 1 {
            slots.extend(
                module
                    .functions()
                    .iter()
                    .map(|f| Some(self.shaped_analysis(f))),
            );
        } else {
            slots.resize_with(n, || None);
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(|| {
                            // Self-scheduling queue pop: each worker takes
                            // the next unclaimed function until none remain.
                            let mut done = Vec::new();
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                if i >= n {
                                    break;
                                }
                                done.push((i, self.shaped_analysis(&module.functions()[i])));
                            }
                            done
                        })
                    })
                    .collect();
                for handle in handles {
                    for (i, result) in handle.join().expect("analysis worker panicked") {
                        slots[i] = Some(result);
                    }
                }
            });
        }
        EngineSession::new(
            self,
            module,
            slots
                .into_iter()
                .map(|s| s.expect("every queue index was claimed by exactly one worker"))
                .collect(),
        )
    }

    /// Analysis for a single function, through the cache: a probe by
    /// CFG shape, computing and inserting on a miss. The returned
    /// handle may be shared with every other CFG-identical function.
    pub fn analysis_for(&self, func: &Function) -> Arc<FunctionLiveness> {
        self.shaped_analysis(func).1
    }

    /// [`analysis_for`](Self::analysis_for) that also hands back the
    /// computed fingerprint (sessions keep it for exact revalidation).
    pub(crate) fn shaped_analysis(&self, func: &Function) -> (CfgShape, Arc<FunctionLiveness>) {
        let shape = CfgShape::of(func);
        if let Some(live) = self.cache.lock().expect("cache poisoned").get(&shape) {
            return (shape, live);
        }
        // Compute outside the lock: precomputation is the expensive
        // part, and two workers racing on the same shape merely do the
        // work twice (the second insert refreshes the entry).
        let live = Arc::new(FunctionLiveness::compute(func));
        self.cache
            .lock()
            .expect("cache poisoned")
            .insert(shape.clone(), Arc::clone(&live));
        (shape, live)
    }

    /// Cumulative cache statistics (hits / misses / evictions).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.lock().expect("cache poisoned").stats()
    }

    /// Number of precomputations currently cached.
    pub fn cache_len(&self) -> usize {
        self.cache.lock().expect("cache poisoned").len()
    }

    /// Resolved worker count for a module of `n` functions.
    fn worker_count(&self, n: usize) -> usize {
        let configured = if self.config.threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            self.config.threads
        };
        configured.clamp(1, n.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastlive_ir::parse_module;

    fn small_module() -> Module {
        parse_module(
            "function %a { block0(v0): v1 = ineg v0  return v1 }
             function %b { block0(v0): v1 = bnot v0  return v1 }
             function %c { block0(v0): jump block1 block1: return v0 }",
        )
        .expect("parses")
    }

    #[test]
    fn identical_shapes_share_one_precomputation() {
        let module = small_module();
        let engine = AnalysisEngine::new(EngineConfig {
            threads: 1,
            cache_capacity: 16,
        });
        let mut session = engine.analyze(&module);
        let stats = engine.cache_stats();
        // %a and %b share a shape; %c differs.
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
        assert_eq!(engine.cache_len(), 2);
        // The shared precomputation still answers per-function questions
        // from each function's own def-use chains.
        let c = module.by_name("c").unwrap();
        let v0 = module.func(c).params()[0];
        let b1 = module.func(c).block_by_index(1);
        assert!(session.is_live_in(&module, c, v0, b1));
    }

    #[test]
    fn thread_counts_do_not_change_results() {
        let module = small_module();
        for threads in [1usize, 2, 4, 8] {
            let engine = AnalysisEngine::new(EngineConfig {
                threads,
                cache_capacity: 0,
            });
            let mut session = engine.analyze(&module);
            for (id, func) in module.iter() {
                for v in func.values() {
                    for b in func.blocks() {
                        let expect = FunctionLiveness::compute(func).is_live_in(func, v, b);
                        assert_eq!(
                            session.is_live_in(&module, id, v, b),
                            expect,
                            "threads={threads} {} {v} {b}",
                            func.name
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn empty_module_analyzes_to_an_empty_session() {
        let engine = AnalysisEngine::with_defaults();
        let session = engine.analyze(&Module::new());
        assert_eq!(session.num_functions(), 0);
    }
}
