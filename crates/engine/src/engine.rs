//! [`AnalysisEngine`]: parallel precomputation over a [`Module`] with
//! the two-tier (striped in-memory + optional on-disk) fingerprint
//! cache in front of it.

use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Instant;

use fastlive_core::{AnalysisError, FunctionLiveness, NullnessArtifact};
use fastlive_ir::{FuncId, Function, Module};
use fastlive_telemetry::{EventKind, NoopRecorder, Recorder, TelemetrySnapshot, Tier};

use crate::artifact::{AnalysisArtifact, AnalysisKind, ArtifactHandle};
use crate::breaker::{BreakerConfig, DiskBreaker, HealthReport, Quarantine};
use crate::cache::{ArtifactKey, CacheStats, FingerprintCache};
use crate::fingerprint::CfgShape;
use crate::persist::{GcStats, LoadOutcome, PersistStore};
use crate::session::EngineSession;
use crate::vfs::{lock_recover, MeteredVfs, StdVfs, Vfs};

/// Tuning knobs of an [`AnalysisEngine`].
///
/// `EngineConfig` is `Clone` + `Default` but — deliberately — not
/// `Copy`: `persist_dir` owns a [`PathBuf`], so the `Copy` the
/// pre-persistence config accidentally had is gone for good. Struct
/// literals with `..EngineConfig::default()` keep working; code that
/// relied on implicit copies should clone, or better, stop building
/// configs by hand: the [`fastlive` facade](https://docs.rs/fastlive)
/// builder (`Fastlive::builder()`) is the preferred front door — it
/// subsumes every field here and validates the combination at
/// `build()` time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads for [`AnalysisEngine::analyze`]. `0` means "one
    /// per available CPU"; `1` runs inline on the calling thread.
    pub threads: usize,
    /// Bound on precomputations retained by the CFG-fingerprint cache.
    /// `0` disables in-memory caching (every analysis probes the disk
    /// tier, if configured, or recomputes). The bound is distributed
    /// over the stripes — each holds up to `⌈capacity / stripes⌉`
    /// entries (at least 1) — so the effective engine-wide bound is
    /// `stripes × ⌈capacity / stripes⌉`: rounded **up** to keep every
    /// stripe functional, never below the configured value, and at
    /// most `stripes - 1` above it. Size memory-critical deployments
    /// by the effective bound (or set `stripes: 1` for an exact one).
    pub cache_capacity: usize,
    /// Lock stripes of the in-memory cache. Fingerprints are spread
    /// over `stripes` independently locked segments by hash, so
    /// concurrent workers probing *different* shapes no longer
    /// serialize on one mutex (probing the *same* shape still
    /// deduplicates to one precomputation — the in-flight table is
    /// per-stripe, and a shape maps to exactly one stripe). `0` picks
    /// the default (8).
    pub stripes: usize,
    /// Directory of the cross-process persistence tier
    /// ([`PersistStore`]); `None` (the default) disables it. When set,
    /// every in-memory miss probes the directory for a serialized
    /// precomputation before computing, and every computed (or
    /// corrupt-and-recomputed) entry is written through — so a second
    /// process, or tomorrow's build, pays a file read instead of the
    /// §5.2 precomputation. See [`persist`](crate::persist) for the
    /// format and corruption guarantees.
    pub persist_dir: Option<PathBuf>,
    /// Degradation policy of the disk tier: the circuit breaker that
    /// trips the tier open after consecutive I/O errors (and the
    /// per-shape reject quarantine riding along). Irrelevant unless
    /// [`persist_dir`](Self::persist_dir) is set. See
    /// [`BreakerConfig`] and [`breaker`](crate::breaker) for the state
    /// machine; observe it through
    /// [`AnalysisEngine::health`](crate::AnalysisEngine::health).
    pub disk_breaker: BreakerConfig,
}

/// The default is a non-zero configuration (auto threads, a 256-entry
/// cache over 8 stripes, no persistence), so `Default` stays a manual
/// impl rather than a derive — `#[derive(Default)]` would silently
/// disable caching.
impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: 0,
            cache_capacity: 256,
            stripes: 0,
            persist_dir: None,
            disk_breaker: BreakerConfig::default(),
        }
    }
}

impl EngineConfig {
    /// Stripe count used when [`stripes`](Self::stripes) is 0 — public
    /// so front ends (the facade builder) can resolve the auto value
    /// the same way the engine will.
    pub const DEFAULT_STRIPES: usize = 8;
}

/// A module-level liveness analysis engine.
///
/// The engine owns one shared [CFG-fingerprint cache](CfgShape) and
/// fans the per-function precomputation
/// ([`FunctionLiveness::compute`]) out over a scoped worker pool.
/// Workers self-schedule from a shared function queue (an atomic
/// cursor), so a module whose function sizes are skewed — the common
/// case — still balances: whichever worker finishes its current
/// function first steals the next one from the queue.
///
/// Precomputations are cached and shared by CFG shape: analyzing two
/// functions with identical CFGs, or re-analyzing a recompiled function
/// whose CFG survived (the paper's §1 JIT scenario), costs one cache
/// probe instead of a §5.2 precomputation. The in-memory tier is
/// **lock-striped** ([`EngineConfig::stripes`]): different shapes may
/// probe concurrently, while two workers that miss on the *same* shape
/// are deduplicated — the first resolves, the rest block on the
/// in-flight slot and adopt its result — so `misses` counts exactly
/// one resolution per distinct shape under any interleaving. With
/// [`EngineConfig::persist_dir`] set, misses consult a cross-process
/// on-disk tier before computing and write through after
/// ([`persist`](crate::persist)). Hits, misses, evictions, dedup hits
/// and disk-tier outcomes are observable through
/// [`cache_stats`](Self::cache_stats) and, per stripe,
/// [`stripe_stats`](Self::stripe_stats).
///
/// # Examples
///
/// ```
/// use fastlive_engine::{AnalysisEngine, EngineConfig};
/// use fastlive_ir::parse_module;
///
/// let module = parse_module(
///     "function %a { block0(v0): v1 = ineg v0  return v1 }
///      function %b { block0(v0): v1 = bnot v0  return v1 }",
/// )?;
/// // threads: 1 resolves the shared shape as a plain cache hit; with
/// // more workers a concurrent probe may land in `dedup_hits`
/// // instead — never in a second precomputation.
/// let engine = AnalysisEngine::new(EngineConfig { threads: 1, ..EngineConfig::default() });
/// let mut session = engine.analyze(&module);
///
/// let a = module.by_name("a").unwrap();
/// let v0 = module.func(a).params()[0];
/// let entry = module.func(a).entry_block();
/// assert!(!session.is_live_in(&module, a, v0, entry)?);
///
/// // %a and %b are CFG-identical: one precomputation served both.
/// assert_eq!(engine.cache_stats().hits, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct AnalysisEngine {
    config: EngineConfig,
    /// Lock-striped cache segments: a fingerprint hashes to exactly one
    /// stripe, so same-shape probes still meet (and deduplicate) while
    /// different-shape probes proceed in parallel.
    stripes: Vec<Mutex<StripeState>>,
    /// The optional cross-process disk tier.
    store: Option<PersistStore>,
    /// Circuit breaker over the disk tier: consecutive I/O errors trip
    /// it open and the engine runs memory-only until a half-open probe
    /// finds the disk recovered.
    breaker: DiskBreaker,
    /// Per-entry reject streaks, keyed by the kind-salted shape hash:
    /// entries that keep failing validation stop being probed.
    quarantine: Quarantine,
    /// Fault-injection hook: when set, runs at the top of every §5.2
    /// precomputation (after both cache tiers missed). A panicking
    /// hook exercises the abandon/retry machinery exactly like a
    /// panicking precomputation would.
    compute_fault: Mutex<Option<ComputeFaultHook>>,
    /// The telemetry seam. [`NoopRecorder`] unless the engine was
    /// built with [`with_instrumentation`](Self::with_instrumentation);
    /// hot paths guard clock reads on `recorder.enabled()`, and
    /// **answers never depend on recorder state** (a workspace
    /// standing invariant).
    recorder: Arc<dyn Recorder>,
    /// Outcome of the most recent [`gc_persist`](Self::gc_persist)
    /// sweep, surfaced through [`health`](Self::health).
    last_gc: Mutex<Option<GcStats>>,
}

/// The test-only compute-fault callback (see
/// [`AnalysisEngine::set_compute_fault`]).
pub type ComputeFaultHook = Box<dyn Fn(&CfgShape) + Send + Sync>;

/// One stripe: cache segment plus the in-flight table, guarded by one
/// mutex so a probe and its in-flight registration are atomic. Both
/// maps are keyed per `(fingerprint, analysis)`: the same shape being
/// resolved for two analyses is two independent in-flight slots.
struct StripeState {
    cache: FingerprintCache,
    in_flight: HashMap<ArtifactKey, Arc<InFlightSlot>>,
}

/// One `(shape, analysis)` currently being precomputed by some worker.
/// Waiters block on the condvar; the computing worker publishes the
/// result (or `Abandoned`, if it unwound) and notifies.
#[derive(Default)]
struct InFlightSlot {
    state: Mutex<SlotState>,
    cond: Condvar,
}

#[derive(Default)]
enum SlotState {
    #[default]
    Pending,
    Done(ArtifactHandle),
    /// The computing worker unwound without a result; waiters retry
    /// from the top (one of them becomes the new computer).
    Abandoned,
}

/// Drop guard: if the computing worker unwinds mid-precomputation, the
/// slot is abandoned and waiters are released instead of deadlocking.
struct ComputeGuard<'a> {
    engine: &'a AnalysisEngine,
    stripe: usize,
    key: ArtifactKey,
    slot: Arc<InFlightSlot>,
    completed: bool,
}

impl Drop for ComputeGuard<'_> {
    fn drop(&mut self) {
        if self.completed {
            return;
        }
        let mut st = lock_recover(&self.engine.stripes[self.stripe]);
        st.in_flight.remove(&self.key);
        drop(st);
        *lock_recover(&self.slot.state) = SlotState::Abandoned;
        self.slot.cond.notify_all();
    }
}

/// What the disk tier contributed to one in-memory miss (recorded into
/// the owning stripe's stats after the result is ready).
enum DiskOutcome {
    /// Persistence disabled: no counter moves.
    Disabled,
    Hit,
    Miss,
    Reject,
    /// The probe's I/O failed (EACCES/EIO/…): counted as
    /// `disk_errors`, fed to the breaker, served memory-only.
    Error,
    /// The probe never touched the disk — breaker open or shape
    /// quarantined. No `CacheStats` counter moves (the breaker's own
    /// `probes_skipped` tracks it); the result was computed in memory.
    Skipped,
}

impl AnalysisEngine {
    /// Creates an engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        Self::build(config, None, Arc::new(NoopRecorder))
    }

    /// Like [`new`](Self::new), but the persistence tier performs all
    /// of its I/O through `vfs` — the fault-injection seam (see
    /// [`vfs`](crate::vfs)). No effect unless
    /// [`EngineConfig::persist_dir`] is set.
    pub fn with_vfs(config: EngineConfig, vfs: Arc<dyn Vfs>) -> Self {
        Self::build(config, Some(vfs), Arc::new(NoopRecorder))
    }

    /// The fully-general constructor: optional VFS seam plus a
    /// [`Recorder`] every layer of this engine reports through. When
    /// the recorder is enabled and persistence is configured, the
    /// store's VFS (given or [`StdVfs`]) is wrapped in a
    /// [`MeteredVfs`] so disk I/O latency and byte counts land in the
    /// same recorder. Pass [`NoopRecorder`] to get exactly
    /// [`with_vfs`](Self::with_vfs) / [`new`](Self::new) behavior.
    pub fn with_instrumentation(
        config: EngineConfig,
        vfs: Option<Arc<dyn Vfs>>,
        recorder: Arc<dyn Recorder>,
    ) -> Self {
        Self::build(config, vfs, recorder)
    }

    fn build(config: EngineConfig, vfs: Option<Arc<dyn Vfs>>, recorder: Arc<dyn Recorder>) -> Self {
        let nstripes = if config.stripes == 0 {
            EngineConfig::DEFAULT_STRIPES
        } else {
            config.stripes
        };
        // Distribute the capacity bound: ⌈capacity / stripes⌉ per
        // stripe (0 stays 0 — caching disabled everywhere).
        let per_stripe = if config.cache_capacity == 0 {
            0
        } else {
            config.cache_capacity.div_ceil(nstripes).max(1)
        };
        let stripes = (0..nstripes)
            .map(|_| {
                Mutex::new(StripeState {
                    cache: FingerprintCache::new(per_stripe),
                    in_flight: HashMap::new(),
                })
            })
            .collect();
        let store = config.persist_dir.as_ref().map(|dir| {
            if recorder.enabled() {
                // Metering wraps whatever VFS the disk tier would have
                // used (the given seam or the real filesystem), so
                // telemetry observes exactly what the store does —
                // injected faults included.
                let inner = vfs.clone().unwrap_or_else(|| Arc::new(StdVfs));
                let metered: Arc<dyn Vfs> = Arc::new(MeteredVfs::new(inner, Arc::clone(&recorder)));
                PersistStore::with_vfs(dir, metered)
            } else {
                match &vfs {
                    Some(v) => PersistStore::with_vfs(dir, Arc::clone(v)),
                    None => PersistStore::new(dir),
                }
            }
        });
        let breaker = DiskBreaker::new(config.disk_breaker.clone());
        let quarantine = Quarantine::new(config.disk_breaker.quarantine_threshold);
        AnalysisEngine {
            stripes,
            store,
            breaker,
            quarantine,
            compute_fault: Mutex::new(None),
            recorder,
            last_gc: Mutex::new(None),
            config,
        }
    }

    /// An engine with [`EngineConfig::default`] (auto thread count,
    /// 256-entry cache over 8 stripes, no persistence).
    pub fn with_defaults() -> Self {
        Self::new(EngineConfig::default())
    }

    /// The stripe owning `(shape, kind)` — pure hash dispatch over the
    /// kind-salted shape hash, stable for the life of the engine. The
    /// salt spreads a shape's analyses over (usually) different
    /// stripes, so resolving liveness and nullness for one hot shape
    /// does not serialize on one mutex.
    fn stripe_of(&self, shape: &CfgShape, kind: AnalysisKind) -> usize {
        ((shape.hash64() ^ kind.salt()) % self.stripes.len() as u64) as usize
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Precomputes liveness for every function of `module` — in
    /// parallel when the config allows — and returns a query session
    /// over the results. Functions are analyzed through the fingerprint
    /// cache, so CFG-identical functions (within this module or from
    /// any earlier analysis) share one precomputation.
    ///
    /// A function whose precomputation panics does not abort the run:
    /// its slot carries the [`AnalysisError`] (surfaced by the
    /// session's queries for that function), every other function
    /// analyzes normally.
    pub fn analyze(&self, module: &Module) -> EngineSession<'_> {
        type Slot = Result<(CfgShape, Arc<FunctionLiveness>), AnalysisError>;
        let n = module.len();
        let workers = self.worker_count(n);
        let mut slots: Vec<Option<Slot>> = Vec::new();
        if workers <= 1 {
            slots.extend(
                module
                    .functions()
                    .iter()
                    .map(|f| Some(self.shaped_analysis(f))),
            );
        } else {
            slots.resize_with(n, || None);
            let next = AtomicUsize::new(0);
            let meter_queue = self.recorder.enabled();
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(|| {
                            // Self-scheduling queue pop: each worker takes
                            // the next unclaimed function until none remain.
                            let mut done = Vec::new();
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                if i >= n {
                                    break;
                                }
                                if meter_queue {
                                    // Unclaimed functions at claim time,
                                    // including the one just taken.
                                    self.recorder.queue_depth((n - i) as u64);
                                }
                                done.push((i, self.shaped_analysis(&module.functions()[i])));
                            }
                            done
                        })
                    })
                    .collect();
                for handle in handles {
                    // A worker that died outside the per-function
                    // catch_unwind (out of memory, a bug in the queue)
                    // loses its claimed slots; those degrade to typed
                    // errors below instead of aborting the session.
                    if let Ok(done) = handle.join() {
                        for (i, result) in done {
                            slots[i] = Some(result);
                        }
                    }
                }
            });
        }
        EngineSession::new(
            self,
            module,
            slots
                .into_iter()
                .map(|s| {
                    s.unwrap_or_else(|| {
                        Err(AnalysisError::ComputePanicked {
                            message: "analysis worker terminated before publishing".into(),
                        })
                    })
                })
                .collect(),
        )
    }

    /// Analysis for a single function, through the cache: a probe by
    /// CFG shape, computing and inserting on a miss. The returned
    /// handle may be shared with every other CFG-identical function.
    ///
    /// Errs (instead of unwinding) when the precomputation panics —
    /// see [`AnalysisError::ComputePanicked`].
    pub fn analysis_for(&self, func: &Function) -> Result<Arc<FunctionLiveness>, AnalysisError> {
        self.shaped_analysis(func).map(|(_, live)| live)
    }

    /// Dominance-based nullness / definite-initialization artifact for
    /// a single function, through the same `(fingerprint, analysis)`
    /// cache, dedup, persist and degradation tiers as liveness. The
    /// artifact is shape-level (dominator tree + frontier matrix);
    /// callers run the sparse per-function solve
    /// ([`NullnessArtifact::solve`]) over it.
    pub fn nullness_for(&self, func: &Function) -> Result<Arc<NullnessArtifact>, AnalysisError> {
        self.shaped_artifact::<NullnessArtifact>(func)
            .map(|(_, art)| art)
    }

    /// [`analysis_for`](Self::analysis_for) that also hands back the
    /// computed fingerprint (sessions keep it for exact revalidation).
    pub(crate) fn shaped_analysis(
        &self,
        func: &Function,
    ) -> Result<(CfgShape, Arc<FunctionLiveness>), AnalysisError> {
        self.shaped_artifact::<FunctionLiveness>(func)
    }

    /// Resolves `kind` for `func` through the cache, returning the
    /// dynamically-typed handle — the dispatch point
    /// [`prefetch`](Self::prefetch) and cross-analysis batch planners
    /// use when the artifact type is only known at runtime.
    pub fn artifact_for(
        &self,
        func: &Function,
        kind: AnalysisKind,
    ) -> Result<ArtifactHandle, AnalysisError> {
        match kind {
            AnalysisKind::Liveness => self
                .shaped_artifact::<FunctionLiveness>(func)
                .map(|(_, live)| ArtifactHandle::Liveness(live)),
            AnalysisKind::Nullness => self
                .shaped_artifact::<NullnessArtifact>(func)
                .map(|(_, art)| ArtifactHandle::Nullness(art)),
        }
    }

    /// Warms the cache for a batch of `(function, analysis)` requests
    /// using the same self-scheduling worker pool as
    /// [`analyze`](Self::analyze): workers claim requests off a shared
    /// atomic cursor, so a batch that mixes analyses and function
    /// sizes still balances. Results land in the striped cache (and
    /// the persist tier, when configured) — the point is that later
    /// per-function queries become memory hits. Out-of-range ids and
    /// per-function failures are skipped: prefetching is advisory, the
    /// query path reports its own errors.
    pub fn prefetch(&self, module: &Module, requests: &[(FuncId, AnalysisKind)]) {
        let n = requests.len();
        let workers = self.worker_count(n);
        let run = |&(id, kind): &(FuncId, AnalysisKind)| {
            if id < module.len() {
                let _ = self.artifact_for(module.func(id), kind);
            }
        };
        if workers <= 1 {
            requests.iter().for_each(run);
            return;
        }
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    run(&requests[i]);
                });
            }
        });
    }

    /// The generic resolution path every analysis rides: a probe by
    /// `(CFG shape, analysis kind)`, computing and inserting on a
    /// miss.
    ///
    /// Cache misses are deduplicated per key: the first prober
    /// registers an in-flight slot in the key's stripe and resolves
    /// the miss **outside the stripe lock** — first against the disk
    /// tier (if configured), then by computing over the shape's
    /// canonical graph; concurrent probers of the same key block on
    /// the slot and adopt the result, counted as `dedup_hits`.
    /// Capacity 0 disables *caching* but not dedup — even then,
    /// concurrent same-key probes share one computation.
    ///
    /// The resolution itself runs under `catch_unwind`: a panicking
    /// precomputation abandons the in-flight slot (waiters retry and
    /// get their own error, or succeed if the panic was transient) and
    /// surfaces as [`AnalysisError::ComputePanicked`] — it never
    /// crosses the engine boundary as an unwind, and with every lock
    /// acquisition poison-recovering, it never wedges other stripes.
    pub(crate) fn shaped_artifact<A: AnalysisArtifact>(
        &self,
        func: &Function,
    ) -> Result<(CfgShape, Arc<A>), AnalysisError> {
        enum Role {
            Wait(Arc<InFlightSlot>),
            Compute(Arc<InFlightSlot>),
        }
        // The key's kind always matches `A`, so a cached or adopted
        // handle downcasts infallibly — the expect documents the
        // invariant rather than guarding a reachable state.
        let unwrap_handle = |handle: &ArtifactHandle| {
            Arc::clone(A::from_handle(handle).expect("cache entry kind matches its key"))
        };
        let shape = CfgShape::of(func);
        let key = (shape.clone(), A::KIND);
        let si = self.stripe_of(&shape, A::KIND);
        let metered = self.recorder.enabled();
        loop {
            // One span per loop iteration: a retry after an abandoned
            // slot records its own (accurate) wait or hit.
            let t0 = metered.then(Instant::now);
            let role = {
                let mut st = lock_recover(&self.stripes[si]);
                if let Some(handle) = st.cache.probe(&key) {
                    if let Some(t0) = t0 {
                        self.recorder
                            .tier(Tier::MemoryHit, t0.elapsed().as_nanos() as u64);
                    }
                    return Ok((shape, unwrap_handle(&handle)));
                }
                if let Some(slot) = st.in_flight.get(&key).map(Arc::clone) {
                    // The dedup hit is counted on *adoption*, not here:
                    // if the computing worker unwinds and abandons the
                    // slot, this prober retries from the top and must
                    // not have been counted twice.
                    Role::Wait(slot)
                } else {
                    st.cache.note_miss();
                    let slot = Arc::new(InFlightSlot::default());
                    st.in_flight.insert(key.clone(), Arc::clone(&slot));
                    Role::Compute(slot)
                }
            };
            match role {
                // Another worker is resolving this key: wait for its
                // result instead of duplicating the work.
                Role::Wait(slot) => {
                    let adopted = {
                        let mut state = lock_recover(&slot.state);
                        loop {
                            match &*state {
                                SlotState::Pending => {
                                    state = slot
                                        .cond
                                        .wait(state)
                                        .unwrap_or_else(PoisonError::into_inner);
                                }
                                SlotState::Done(handle) => break Some(handle.clone()),
                                SlotState::Abandoned => break None, // retry from the top
                            }
                        }
                    };
                    if let Some(handle) = adopted {
                        lock_recover(&self.stripes[si]).cache.note_dedup_hit();
                        if let Some(t0) = t0 {
                            self.recorder
                                .tier(Tier::DedupWait, t0.elapsed().as_nanos() as u64);
                        }
                        return Ok((shape, unwrap_handle(&handle)));
                    }
                }
                // This worker owns the miss; the guard releases waiters
                // if the load-or-compute unwinds.
                Role::Compute(slot) => {
                    let guard = ComputeGuard {
                        engine: self,
                        stripe: si,
                        key: key.clone(),
                        slot: Arc::clone(&slot),
                        completed: false,
                    };
                    // AssertUnwindSafe: on unwind, `guard` publishes
                    // `Abandoned` and nothing partial survives — the
                    // caches only ever see completed values.
                    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                        self.load_or_compute::<A>(&shape)
                    }));
                    let (art, disk) = match outcome {
                        Ok(resolved) => resolved,
                        Err(payload) => {
                            // Dropping the guard abandons the slot and
                            // releases waiters; the panic becomes a
                            // typed per-function error.
                            drop(guard);
                            let message = panic_message(payload.as_ref());
                            if metered {
                                self.recorder.event(EventKind::ComputePanicked, &message);
                            }
                            return Err(AnalysisError::ComputePanicked { message });
                        }
                    };
                    let handle = A::into_handle(Arc::clone(&art));
                    let mut guard = guard;
                    {
                        let mut st = lock_recover(&self.stripes[si]);
                        match disk {
                            DiskOutcome::Disabled | DiskOutcome::Skipped => {}
                            DiskOutcome::Hit => st.cache.note_disk_hit(),
                            DiskOutcome::Miss => st.cache.note_disk_miss(),
                            DiskOutcome::Reject => st.cache.note_disk_reject(),
                            DiskOutcome::Error => st.cache.note_disk_error(),
                        }
                        st.cache.insert(key.clone(), handle.clone());
                        st.in_flight.remove(&key);
                    }
                    *lock_recover(&slot.state) = SlotState::Done(handle);
                    slot.cond.notify_all();
                    guard.completed = true;
                    // Write-through happens *after* waiters are
                    // released — disk I/O never extends the dedup
                    // critical path. A valid entry that was just read
                    // back is not rewritten; a rejected one is
                    // overwritten with the recomputation. A *failed*
                    // write never disturbs the computed result — it
                    // only feeds `disk_errors` and the breaker.
                    if let (Some(store), DiskOutcome::Miss | DiskOutcome::Reject) =
                        (&self.store, &disk)
                    {
                        match store.save_artifact(&shape, &*art) {
                            Ok(()) => {
                                self.disk_success();
                                // A fresh valid entry is on disk: any
                                // reject streak for this key is over.
                                self.quarantine.note_good(shape.hash64() ^ A::KIND.salt());
                            }
                            Err(_) => {
                                self.disk_failure();
                                lock_recover(&self.stripes[si]).cache.note_disk_error();
                            }
                        }
                    }
                    return Ok((shape, art));
                }
            }
        }
    }

    /// Resolves one in-memory miss: probe the disk tier, falling back
    /// to the shape-level precomputation. Both paths build the
    /// artifact over the shape's **canonical graph** (sorted successor
    /// lists), which pins one dominance-preorder numbering per shape —
    /// the contract that makes serialized matrices exact for every
    /// shape-identical function in any process (see
    /// [`persist`](crate::persist)).
    ///
    /// The breaker is shared across analyses (it tracks the *device*),
    /// while quarantine entries are keyed by the kind-salted hash —
    /// exactly the unit that keeps rejecting on disk.
    fn load_or_compute<A: AnalysisArtifact>(&self, shape: &CfgShape) -> (Arc<A>, DiskOutcome) {
        let metered = self.recorder.enabled();
        let span = |tier: Tier, t0: Option<Instant>| {
            if let Some(t0) = t0 {
                self.recorder.tier(tier, t0.elapsed().as_nanos() as u64);
            }
        };
        let compute = |outcome: DiskOutcome| {
            self.fire_compute_fault(shape);
            let t0 = metered.then(Instant::now);
            let art = A::compute(shape);
            span(Tier::Compute, t0);
            (Arc::new(art), outcome)
        };
        let Some(store) = &self.store else {
            return compute(DiskOutcome::Disabled);
        };
        let salted = shape.hash64() ^ A::KIND.salt();
        // Degradation gates, cheapest first: a quarantined entry (it
        // kept rejecting) and a tripped breaker (the device kept
        // erroring) both skip the disk and compute memory-only. The
        // skip span is 0 ns by definition — the count is the signal.
        if self.quarantine.is_quarantined(salted) || !self.breaker.allow_at(Instant::now()) {
            if metered {
                self.recorder.tier(Tier::DiskSkipped, 0);
            }
            return compute(DiskOutcome::Skipped);
        }
        let t0 = metered.then(Instant::now);
        match store.load_artifact::<A>(shape) {
            // The store decodes *and* revives under the entry's
            // analysis tag: a hit is a fully validated artifact, and a
            // dimensionally-wrong or tag-mismatched entry surfaced as
            // `Reject` below rather than a partial value here.
            LoadOutcome::Hit(art) => {
                self.disk_success();
                self.quarantine.note_good(salted);
                // The hit span covers read + decode + revive — the
                // full cost of being served from disk.
                span(Tier::DiskHit, t0);
                (Arc::new(art), DiskOutcome::Hit)
            }
            LoadOutcome::Absent => {
                // The disk answered (even if with "nothing there"):
                // the device is healthy.
                self.disk_success();
                span(Tier::DiskMiss, t0);
                compute(DiskOutcome::Miss)
            }
            LoadOutcome::Reject => {
                self.disk_success();
                self.shape_reject(salted);
                span(Tier::DiskReject, t0);
                compute(DiskOutcome::Reject)
            }
            LoadOutcome::Error(_) => {
                self.disk_failure();
                span(Tier::DiskError, t0);
                compute(DiskOutcome::Error)
            }
        }
    }

    /// Feeds a disk success to the breaker; a closed-edge transition
    /// becomes a `breaker_restored` event.
    fn disk_success(&self) {
        if self.breaker.record_success_at(Instant::now()) && self.recorder.enabled() {
            self.recorder.event(
                EventKind::BreakerRestored,
                "probe succeeded; disk tier back",
            );
        }
    }

    /// Feeds a disk I/O failure to the breaker; an open-edge transition
    /// becomes a `breaker_tripped` event.
    fn disk_failure(&self) {
        if self.breaker.record_failure_at(Instant::now()) && self.recorder.enabled() {
            let (_, trips, _, _, streak) = self.breaker.snapshot();
            let detail = format!("trips={trips} streak={streak}");
            self.recorder.event(EventKind::BreakerTripped, &detail);
        }
    }

    /// Feeds a per-shape reject to the quarantine; crossing the
    /// threshold becomes a `shape_quarantined` event.
    fn shape_reject(&self, hash: u64) {
        if self.quarantine.note_reject(hash) && self.recorder.enabled() {
            let detail = format!("shape={hash:016x}");
            self.recorder.event(EventKind::ShapeQuarantined, &detail);
        }
    }

    /// Installs (or clears, with `None`) the compute-fault hook: a
    /// callback invoked at the top of every §5.2 precomputation, i.e.
    /// only after both cache tiers missed. **A fault-injection seam
    /// for tests** — a hook that panics for selected shapes exercises
    /// the panic-isolation path (slot abandonment, waiter retry, typed
    /// [`AnalysisError`]s) exactly as a real panicking precompute
    /// would. Production code has no reason to call this.
    pub fn set_compute_fault(&self, hook: Option<ComputeFaultHook>) {
        *lock_recover(&self.compute_fault) = hook;
    }

    fn fire_compute_fault(&self, shape: &CfgShape) {
        // The guard is held across the call: if the hook panics the
        // mutex poisons, which every other acquisition recovers from.
        let hook = lock_recover(&self.compute_fault);
        if let Some(hook) = hook.as_ref() {
            hook(shape);
        }
    }

    /// A point-in-time health snapshot: breaker state and counters,
    /// quarantine size, and the cumulative [`CacheStats`] (including
    /// `disk_errors`). This is the observability surface of graceful
    /// degradation — a long-running host polls it to notice the disk
    /// tier tripping open and restoring.
    pub fn health(&self) -> HealthReport {
        let (state, trips, restores, skipped, streak) = self.breaker.snapshot();
        let stripes = self.stripe_stats();
        let cache = stripes
            .iter()
            .fold(CacheStats::default(), |acc, s| acc.add(s));
        HealthReport {
            persist_configured: self.store.is_some(),
            disk_state: state,
            disk_trips: trips,
            disk_restores: restores,
            disk_probes_skipped: skipped,
            consecutive_disk_failures: streak,
            quarantined_shapes: self.quarantine.len(),
            cache,
            stripes,
            last_gc: *lock_recover(&self.last_gc),
            recent_events: self.recorder.recent_events(),
        }
    }

    /// Everything the engine's [`Recorder`] accumulated, as a plain
    /// comparable snapshot — `None` when the engine runs on the no-op
    /// recorder (built via [`new`](Self::new) / [`with_vfs`](Self::with_vfs)).
    pub fn telemetry(&self) -> Option<TelemetrySnapshot> {
        self.recorder.snapshot()
    }

    /// The engine's recorder (sessions report revalidations through
    /// it).
    pub(crate) fn recorder(&self) -> &dyn Recorder {
        &*self.recorder
    }

    /// Cumulative cache statistics (hits / misses / evictions / dedup
    /// hits / disk tier), summed over all stripes.
    pub fn cache_stats(&self) -> CacheStats {
        self.stripe_stats()
            .iter()
            .fold(CacheStats::default(), |acc, s| acc.add(s))
    }

    /// Per-stripe cache statistics, in stripe order. Always sums
    /// (field-wise) to [`cache_stats`](Self::cache_stats) — a probe is
    /// accounted in exactly one stripe.
    pub fn stripe_stats(&self) -> Vec<CacheStats> {
        self.stripes
            .iter()
            .map(|s| lock_recover(s).cache.stats())
            .collect()
    }

    /// Runs a GC sweep over the persistence tier
    /// ([`PersistStore::gc`]): entries older than `max_age` (when
    /// given) are deleted, then the oldest survivors until at most
    /// `max_entries` remain. Returns `None` when the engine has no
    /// [`EngineConfig::persist_dir`] configured.
    ///
    /// Always safe at any time: a gc'd entry degrades to one clean
    /// `disk_misses` recomputation (which writes the entry back). The
    /// in-memory tier is untouched — it has its own LRU bound.
    pub fn gc_persist(
        &self,
        max_entries: usize,
        max_age: Option<std::time::Duration>,
    ) -> Option<crate::persist::GcStats> {
        let stats = self.store.as_ref().map(|s| s.gc(max_entries, max_age));
        if let Some(stats) = stats {
            *lock_recover(&self.last_gc) = Some(stats);
            if self.recorder.enabled() {
                let detail = format!("retained={} removed={}", stats.retained, stats.removed);
                self.recorder.event(EventKind::GcRun, &detail);
            }
        }
        stats
    }

    /// Number of precomputations currently cached, over all stripes.
    pub fn cache_len(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| lock_recover(s).cache.len())
            .sum()
    }

    /// Resolved worker count for a module of `n` functions (shared
    /// with the module-destruction driver, which also reuses
    /// [`panic_message`] for its own catch_unwind).
    pub(crate) fn worker_count(&self, n: usize) -> usize {
        let configured = if self.config.threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            self.config.threads
        };
        configured.clamp(1, n.max(1))
    }
}

/// Stringifies a `catch_unwind` payload: `&str` and `String` payloads
/// (what `panic!` produces) come through verbatim, anything else
/// becomes a placeholder.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastlive_ir::parse_module;

    fn small_module() -> Module {
        parse_module(
            "function %a { block0(v0): v1 = ineg v0  return v1 }
             function %b { block0(v0): v1 = bnot v0  return v1 }
             function %c { block0(v0): jump block1 block1: return v0 }",
        )
        .expect("parses")
    }

    #[test]
    fn identical_shapes_share_one_precomputation() {
        let module = small_module();
        let engine = AnalysisEngine::new(EngineConfig {
            threads: 1,
            cache_capacity: 16,
            ..EngineConfig::default()
        });
        let mut session = engine.analyze(&module);
        let stats = engine.cache_stats();
        // %a and %b share a shape; %c differs.
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
        assert_eq!(engine.cache_len(), 2);
        // The shared precomputation still answers per-function questions
        // from each function's own def-use chains.
        let c = module.by_name("c").unwrap();
        let v0 = module.func(c).params()[0];
        let b1 = module.func(c).block_by_index(1);
        assert!(session.is_live_in(&module, c, v0, b1).unwrap());
    }

    #[test]
    fn thread_counts_do_not_change_results() {
        let module = small_module();
        for threads in [1usize, 2, 4, 8] {
            let engine = AnalysisEngine::new(EngineConfig {
                threads,
                cache_capacity: 0,
                ..EngineConfig::default()
            });
            let mut session = engine.analyze(&module);
            for (id, func) in module.iter() {
                for v in func.values() {
                    for b in func.blocks() {
                        let expect = FunctionLiveness::compute(func).is_live_in(func, v, b);
                        assert_eq!(
                            session.is_live_in(&module, id, v, b).unwrap(),
                            expect,
                            "threads={threads} {} {v} {b}",
                            func.name
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn empty_module_analyzes_to_an_empty_session() {
        let engine = AnalysisEngine::with_defaults();
        let session = engine.analyze(&Module::new());
        assert_eq!(session.num_functions(), 0);
    }

    #[test]
    fn concurrent_same_shape_probes_compute_exactly_once() {
        // ROADMAP PR-2 follow-up: per-fingerprint in-flight dedup. A
        // barrier releases N threads onto the same (uncached) shape at
        // once; exactly one may pay the precomputation, the rest must
        // adopt its in-flight result.
        use std::sync::Barrier;
        let func = fastlive_ir::parse_function(
            "function %f { block0(v0): jump block1 block1: return v0 }",
        )
        .expect("parses");
        const N: usize = 8;
        let engine = AnalysisEngine::new(EngineConfig {
            threads: 1,
            cache_capacity: 16,
            ..EngineConfig::default()
        });
        let barrier = Barrier::new(N);
        let handles: Vec<Arc<FunctionLiveness>> = std::thread::scope(|scope| {
            let joins: Vec<_> = (0..N)
                .map(|_| {
                    scope.spawn(|| {
                        barrier.wait();
                        engine.analysis_for(&func).expect("no injected faults")
                    })
                })
                .collect();
            joins
                .into_iter()
                .map(|j| j.join().expect("prober panicked"))
                .collect()
        });
        let stats = engine.cache_stats();
        assert_eq!(stats.misses, 1, "one precomputation under any interleaving");
        assert_eq!(
            stats.hits + stats.dedup_hits,
            (N - 1) as u64,
            "everyone else reused it: {stats:?}"
        );
        // All N handles share the single precomputation.
        for h in &handles[1..] {
            assert!(Arc::ptr_eq(&handles[0], h));
        }
        assert_eq!(engine.cache_len(), 1);
    }

    #[test]
    fn dedup_applies_even_with_caching_disabled() {
        // Capacity 0 drops inserts, but simultaneous probes of one
        // shape still share the in-flight computation.
        use std::sync::Barrier;
        let func =
            fastlive_ir::parse_function("function %f { block0(v0): return v0 }").expect("parses");
        const N: usize = 4;
        let engine = AnalysisEngine::new(EngineConfig {
            threads: 1,
            cache_capacity: 0,
            ..EngineConfig::default()
        });
        let barrier = Barrier::new(N);
        std::thread::scope(|scope| {
            for _ in 0..N {
                scope.spawn(|| {
                    barrier.wait();
                    engine.analysis_for(&func).expect("no injected faults")
                });
            }
        });
        let stats = engine.cache_stats();
        assert_eq!(
            stats.misses + stats.dedup_hits,
            N as u64,
            "every probe accounted for: {stats:?}"
        );
        assert!(
            stats.misses >= 1 && stats.misses + stats.hits <= N as u64,
            "{stats:?}"
        );
        assert_eq!(engine.cache_len(), 0, "capacity 0 retains nothing");
    }
}
