//! The on-disk tier of the engine cache: a versioned, checksummed
//! store of analysis artifacts keyed by `(fingerprint, analysis)` —
//! [`CfgShape`] × [`AnalysisKind`].
//!
//! A shape-level precomputation is the expensive part of a sparse
//! analysis and depends on nothing but the CFG shape — so it is worth
//! keeping not just across functions and recompilations (the in-memory
//! fingerprint cache) but across *processes*: a build daemon, a JIT
//! restarting, or parallel compiler invocations over one source tree
//! all re-encounter the same shapes. [`PersistStore`] serializes one
//! artifact body per `(shape, kind)` into one small file under a
//! shared directory; any later engine pointed at the same directory
//! revives them for the price of a read + CRC instead of a
//! recomputation. The bodies are defined by the
//! [`AnalysisArtifact`] trait: liveness
//! persists its `R`/`T` matrices, nullness its dominance-frontier
//! matrix.
//!
//! # Format (version 2, all integers little-endian)
//!
//! ```text
//! offset  size            field
//! 0       4               magic  "FLPC"
//! 4       4               format version (u32, currently 2)
//! 8       4               analysis tag (u32, AnalysisKind::tag)
//! 12      4               reserved, must be zero
//! 16      8               shape hash64 (raw, unsalted)
//! 24      4               k = shape-encoding word count (u32)
//! 28      4·k             shape encoding  (CfgShape::encoding, u32s)
//! ..      ...             per-kind body (AnalysisArtifact::encode_body)
//! last 4  4               CRC-32 (IEEE) over all preceding bytes
//! ```
//!
//! The file *name* is `{hash64 ^ kind.salt():016x}.flpc`, so each kind
//! gets its own entry per shape; the *embedded* hash stays raw, and
//! the embedded tag must match the probing kind — a CRC-valid entry
//! renamed or forged across kinds is rejected, never revived as the
//! other analysis. Liveness keeps salt 0, so files written by the
//! version-1 (liveness-only) format sit at exactly the paths the
//! engine still probes and degrade to `disk_rejects` through the
//! version gate — the bump-once, no-migration policy.
//!
//! # Corruption policy: reject, never trust
//!
//! Decoding is total: every length is bounds-checked, the CRC covers
//! the whole payload, the embedded shape encoding must equal the
//! probing shape byte-for-byte (a hash-collided or renamed file is
//! *someone else's* entry, not this shape's), and the matrix words are
//! revalidated structurally ([`BitMatrix::from_words`] refuses ghost
//! bits above the universe). Any mismatch — truncation, bit flips,
//! zero fill, a future format version — yields a clean miss
//! (`disk_rejects` in [`CacheStats`](crate::CacheStats)) and the entry
//! is recomputed and overwritten. A cache file can cost a
//! recomputation; it can never produce a wrong liveness answer or a
//! panic.
//!
//! Invalid *bytes* and failing *I/O* are distinct outcomes: a reject
//! ([`LoadOutcome::Reject`]) means the disk worked and the file is the
//! problem (overwrite it); an error ([`LoadOutcome::Error`]) means the
//! device is the problem (EACCES, EIO, ENOSPC — counted as
//! `disk_errors`, and repeated errors trip the engine's disk circuit
//! breaker instead of hammering a dead disk). Every I/O goes through
//! the [`Vfs`] seam, so both families are reproducible in tests via
//! [`FaultVfs`](crate::vfs::FaultVfs) fault scripts.
//!
//! Writes go through a unique temporary file followed by an atomic
//! rename, so concurrent processes racing on one shape publish one
//! complete file each — a reader sees either a whole entry or none.
//!
//! The store accretes one file per distinct shape; [`PersistStore::gc`]
//! (also reachable as `AnalysisEngine::gc_persist` and the facade
//! builder's `gc` knob) prunes it by age and entry count. Because any
//! entry is just a cached recomputation, GC needs no coordination with
//! readers or writers — a concurrently deleted entry is simply a
//! `disk_misses` on its next probe.
//!
//! # Why matrices revive exactly (the canonicalization contract)
//!
//! The matrices are indexed by a dominance-preorder numbering derived
//! from a DFS of the CFG, and a DFS depends on successor *order* —
//! which `CfgShape` deliberately erases (successor lists are sorted).
//! The engine therefore always runs the precomputation on the shape's
//! [canonical graph](CfgShape::to_graph), never on a particular
//! function's edge ordering. [`revive`] rebuilds the DFS and dominator
//! trees from that same canonical graph, so the decoded matrices land
//! in exactly the number space they were computed in — in this process
//! or any other.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::SystemTime;

use fastlive_bitset::BitMatrix;
use fastlive_cfg::{DfsTree, DomTree};
use fastlive_core::{FunctionLiveness, LivenessChecker, Precomputation};

use crate::artifact::{AnalysisArtifact, AnalysisKind};
use crate::fingerprint::CfgShape;
use crate::vfs::{StdVfs, Vfs};

/// First four bytes of every cache file.
pub const MAGIC: [u8; 4] = *b"FLPC";

/// The on-disk format version this build reads and writes. Bumped on
/// **any** layout change; older or newer files are rejected wholesale
/// (a version-crossed file degrades to one recomputation, which is
/// always cheaper than decoding a guess). Version 2 added the
/// per-analysis tag + reserved word after the version field; version-1
/// files degrade to `disk_rejects` per that policy.
pub const FORMAT_VERSION: u32 = 2;

/// File extension of cache entries (`{hash64:016x}.flpc`).
pub const FILE_EXTENSION: &str = "flpc";

/// CRC-32 (IEEE 802.3, reflected, init/xorout `!0`) — hand-rolled
/// because crates.io is unreachable; the table is built at compile
/// time.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xedb8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut c = !0u32;
    for &b in bytes {
        c = TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

/// Serializes any artifact (computed over `shape`'s canonical graph)
/// into the version-2 byte format — header with the artifact's
/// analysis tag, trait-encoded body, trailing CRC.
pub fn encode_artifact<A: AnalysisArtifact>(shape: &CfgShape, artifact: &A) -> Vec<u8> {
    let enc = shape.encoding();
    let mut out = Vec::with_capacity(32 + 4 * enc.len() + A::max_body_len(shape) as usize);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&A::KIND.tag().to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes()); // reserved
    out.extend_from_slice(&shape.hash64().to_le_bytes());
    out.extend_from_slice(&(enc.len() as u32).to_le_bytes());
    for &w in enc {
        out.extend_from_slice(&w.to_le_bytes());
    }
    artifact.encode_body(&mut out);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Serializes `pre` (computed over `shape`'s canonical graph) into a
/// liveness-tagged entry — the [`encode_artifact`] body format without
/// requiring a revived checker.
pub fn encode(shape: &CfgShape, pre: &Precomputation) -> Vec<u8> {
    let enc = shape.encoding();
    let mut out = Vec::with_capacity(
        32 + 4 * enc.len() + <FunctionLiveness as AnalysisArtifact>::max_body_len(shape) as usize,
    );
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&AnalysisKind::Liveness.tag().to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes()); // reserved
    out.extend_from_slice(&shape.hash64().to_le_bytes());
    out.extend_from_slice(&(enc.len() as u32).to_le_bytes());
    for &w in enc {
        out.extend_from_slice(&w.to_le_bytes());
    }
    encode_liveness_body(pre, &mut out);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Appends the liveness body — the `R` and `T` matrices — to `out`.
/// `to_words` strips the in-memory arena padding: the byte format
/// stores exactly `rows * ceil(cols/64)` words per matrix, so the
/// encoding is independent of the arena layout.
pub(crate) fn encode_liveness_body(pre: &Precomputation, out: &mut Vec<u8>) {
    encode_matrix(&pre.r, out);
    encode_matrix(&pre.t, out);
}

/// Appends one matrix: rows, cols, row-major unpadded words.
pub(crate) fn encode_matrix(m: &BitMatrix, out: &mut Vec<u8>) {
    out.extend_from_slice(&(m.rows() as u32).to_le_bytes());
    out.extend_from_slice(&(m.cols() as u32).to_le_bytes());
    for w in m.to_words() {
        out.extend_from_slice(&w.to_le_bytes());
    }
}

/// Bounds-checked little-endian cursor; every read can fail, no read
/// can panic. Public so [`AnalysisArtifact::decode_body`]
/// implementations can parse their bodies with the same discipline.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// The next `n` bytes, or `None` past the end.
    pub fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    /// The next little-endian `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// The next little-endian `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// `true` once every byte has been consumed — decoders use this to
    /// reject trailing garbage.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// Validates the CRC and the version-2 header of `bytes` against
/// `(shape, kind)` and returns a [`Reader`] positioned at the body.
/// `None` on any mismatch — including a CRC-valid entry carrying a
/// different analysis tag, which is *someone else's* artifact.
fn decode_header<'a>(shape: &CfgShape, kind: AnalysisKind, bytes: &'a [u8]) -> Option<Reader<'a>> {
    // CRC first: everything after this point may assume the bytes are
    // the bytes some encoder produced (or an astronomically lucky
    // corruption — which the structural checks below still bound).
    let payload_len = bytes.len().checked_sub(4)?;
    let stored_crc = u32::from_le_bytes(bytes[payload_len..].try_into().expect("4 bytes"));
    if crc32(&bytes[..payload_len]) != stored_crc {
        return None;
    }
    let mut r = Reader {
        buf: &bytes[..payload_len],
        pos: 0,
    };
    if r.take(4)? != MAGIC {
        return None;
    }
    if r.u32()? != FORMAT_VERSION {
        return None;
    }
    // The analysis tag gates *before* any body parsing: a tag-swapped
    // file must never reach the other kind's decoder.
    if AnalysisKind::from_tag(r.u32()?) != Some(kind) {
        return None;
    }
    if r.u32()? != 0 {
        return None; // reserved word
    }
    if r.u64()? != shape.hash64() {
        return None;
    }
    let k = r.u32()? as usize;
    let enc = shape.encoding();
    if k != enc.len() {
        return None;
    }
    for &want in enc {
        if r.u32()? != want {
            return None;
        }
    }
    Some(r)
}

/// Decodes and revives `bytes` as a `(shape, A::KIND)` entry. Returns
/// `None` — never panics, never a partial result — unless every one of
/// these holds: magic, [`FORMAT_VERSION`], analysis tag and reserved
/// word match, the trailing CRC matches the payload, the embedded
/// shape encoding equals `shape`'s exactly, the body passes the
/// artifact's structural validation, and no trailing bytes remain.
pub fn decode_artifact<A: AnalysisArtifact>(shape: &CfgShape, bytes: &[u8]) -> Option<A> {
    let mut r = decode_header(shape, A::KIND, bytes)?;
    let artifact = A::decode_body(shape, &mut r)?;
    if !r.is_exhausted() {
        return None;
    }
    Some(artifact)
}

/// Decodes `bytes` as a liveness entry **for `shape`**, yielding the
/// raw [`Precomputation`] (see [`decode_artifact`] for the fully
/// revived path and the exact validation contract).
pub fn decode(shape: &CfgShape, bytes: &[u8]) -> Option<Precomputation> {
    let mut r = decode_header(shape, AnalysisKind::Liveness, bytes)?;
    let pre = decode_liveness_body(shape, &mut r)?;
    if !r.is_exhausted() {
        return None;
    }
    Some(pre)
}

/// The liveness body: two square, mutually sized matrices bounded by
/// the shape's block count.
pub(crate) fn decode_liveness_body(shape: &CfgShape, r: &mut Reader<'_>) -> Option<Precomputation> {
    let max_dim = shape.num_blocks();
    let r_matrix = decode_matrix(r, max_dim)?;
    let t_matrix = decode_matrix(r, max_dim)?;
    if r_matrix.rows() != t_matrix.rows() {
        return None;
    }
    // `from_parts` re-derives the transposed reachability matrix; it is
    // deterministic in `r`, so the round-trip is still exact equality.
    Some(Precomputation::from_parts(r_matrix, t_matrix))
}

/// One square `rows == cols ≤ max_dim` matrix; dimensions are checked
/// *before* any allocation is sized from them.
pub(crate) fn decode_matrix(r: &mut Reader<'_>, max_dim: usize) -> Option<BitMatrix> {
    let rows = r.u32()? as usize;
    let cols = r.u32()? as usize;
    if rows != cols || rows > max_dim {
        return None;
    }
    let words_per_row = cols.div_ceil(64);
    let total = rows.checked_mul(words_per_row)?;
    let mut words = Vec::with_capacity(total);
    for _ in 0..total {
        words.push(r.u64()?);
    }
    BitMatrix::from_words(rows, cols, words)
}

/// Rebuilds a queryable [`FunctionLiveness`] around a decoded
/// [`Precomputation`]: DFS and dominator trees are recomputed from the
/// shape's canonical graph (the cheap, near-linear part) and the
/// matrices (the expensive, quadratic part) are adopted as-is.
///
/// Returns `None` if the matrices do not cover exactly the canonical
/// graph's reachable blocks — the final structural gate keeping a
/// CRC-passing-but-wrong file from panicking the checker constructor.
pub fn revive(shape: &CfgShape, pre: Precomputation) -> Option<FunctionLiveness> {
    let g = shape.to_graph();
    let dfs = DfsTree::compute(&g);
    let dom = DomTree::compute(&g, &dfs);
    let n = dom.num_reachable();
    // All matrices (the derived transpose included — the fields are
    // public, so a caller-built value could disagree) must be square
    // over exactly the reachable blocks — `decode` guarantees this for
    // its own output, but `revive` is a public gate and must hold for
    // any caller-supplied value.
    if [
        pre.r.rows(),
        pre.r.cols(),
        pre.t.rows(),
        pre.t.cols(),
        pre.rt.rows(),
        pre.rt.cols(),
    ] != [n; 6]
    {
        return None;
    }
    Some(FunctionLiveness::from_checker(
        LivenessChecker::with_precomputation(&g, dfs, dom, pre),
    ))
}

/// Outcome of one [`PersistStore::gc`] sweep.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Entries still present after the sweep.
    pub retained: usize,
    /// Entries deleted by the sweep.
    pub removed: usize,
}

/// What a [`PersistStore::load`] probe found.
///
/// `Reject` and `Error` are deliberately distinct outcomes: a reject
/// means the *disk worked* but the bytes were invalid (corruption,
/// version crossing, hash collision — recompute and overwrite, the
/// file is the problem); an error means the *I/O itself failed*
/// (EACCES, EIO, a detached volume — the device is the problem, and
/// repeated errors should trip the engine's disk circuit breaker
/// rather than hammer a dead disk). The engine accounts them as
/// `disk_rejects` vs `disk_errors` in
/// [`CacheStats`](crate::CacheStats).
#[derive(Debug)]
pub enum LoadOutcome<T = Precomputation> {
    /// A valid entry for exactly this `(shape, kind)`.
    Hit(T),
    /// No file for this fingerprint.
    Absent,
    /// A file existed but failed validation (corrupt, truncated,
    /// version-crossed, or a hash-collided entry for a different
    /// shape). The caller recomputes and overwrites.
    Reject,
    /// The probe's I/O failed with something other than "not found" —
    /// the payload is the underlying error. The caller recomputes
    /// (never bubbles the failure into an answer) and feeds the error
    /// to its disk-health tracking.
    Error(std::io::Error),
}

/// The cross-process store: one directory, one file per fingerprint.
///
/// All operations degrade instead of failing: a missing file is
/// [`Absent`](LoadOutcome::Absent), an invalid one is
/// [`Reject`](LoadOutcome::Reject), failing I/O is
/// [`Error`](LoadOutcome::Error) (reported, never bubbled into an
/// answer), and a failed write returns its error without disturbing
/// the computed result (the cache is an accelerator, not a database).
/// See the module docs for format and corruption policy.
///
/// # Examples
///
/// ```
/// use fastlive_core::FunctionLiveness;
/// use fastlive_engine::persist::{LoadOutcome, PersistStore};
/// use fastlive_engine::CfgShape;
/// use fastlive_ir::parse_function;
///
/// let dir = std::env::temp_dir().join(format!("fastlive-doc-{}", std::process::id()));
/// let store = PersistStore::new(&dir);
/// let f = parse_function("function %f { block0(v0): jump block1 block1: return v0 }")?;
/// let shape = CfgShape::of(&f);
/// assert!(matches!(store.load(&shape), LoadOutcome::Absent));
///
/// let checker = fastlive_core::LivenessChecker::compute(&shape.to_graph());
/// store.save(&shape, checker.precomputation())?;
/// assert!(matches!(store.load(&shape), LoadOutcome::Hit(_)));
/// # std::fs::remove_dir_all(&dir).ok();
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct PersistStore {
    dir: PathBuf,
    /// The filesystem seam: every I/O of the store goes through this
    /// handle, so tests swap in a [`FaultVfs`](crate::vfs::FaultVfs)
    /// and script ENOSPC storms or torn writes deterministically.
    vfs: Arc<dyn Vfs>,
}

/// Distinguishes concurrent writers' temp files within one process;
/// the pid distinguishes processes.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// `true` iff `name` matches the store's own temp-file pattern,
/// `{16 hex}.tmp.{digits}.{digits}` — the sweep must never touch
/// anything else living in a shared directory.
fn is_own_tmp_name(name: &str) -> bool {
    let Some(rest) = name
        .get(..16)
        .filter(|hex| hex.bytes().all(|b| b.is_ascii_hexdigit()))
        .and_then(|_| name[16..].strip_prefix(".tmp."))
    else {
        return false;
    };
    match rest.split_once('.') {
        Some((pid, counter)) => {
            !pid.is_empty()
                && !counter.is_empty()
                && pid.bytes().all(|b| b.is_ascii_digit())
                && counter.bytes().all(|b| b.is_ascii_digit())
        }
        None => false,
    }
}

/// `true` iff `name` matches the store's entry pattern,
/// `{16 hex}.flpc` — GC must never touch unrelated files living in a
/// shared `persist_dir`.
fn is_entry_name(name: &str) -> bool {
    name.len() == 16 + 1 + FILE_EXTENSION.len()
        && name.as_bytes()[16] == b'.'
        && name[..16].bytes().all(|b| b.is_ascii_hexdigit())
        && name[17..] == *FILE_EXTENSION
}

impl PersistStore {
    /// Opens (creating if needed, best-effort) a store rooted at `dir`
    /// on the real filesystem and sweeps temp files orphaned by
    /// crashed writers.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self::with_vfs(dir, Arc::new(StdVfs))
    }

    /// Like [`new`](Self::new), but every I/O goes through `vfs` — the
    /// fault-injection seam (see [`vfs`](crate::vfs)).
    pub fn with_vfs(dir: impl Into<PathBuf>, vfs: Arc<dyn Vfs>) -> Self {
        let dir = dir.into();
        let _ = vfs.create_dir_all(&dir);
        Self::sweep_stale_tmp(&dir, vfs.as_ref());
        PersistStore { dir, vfs }
    }

    /// Deletes temp files old enough that their writer is surely gone
    /// (a process killed between write and rename leaks its temp file;
    /// nothing else ever removes them). Only files matching this
    /// store's own temp-name pattern are touched — `persist_dir` may
    /// be a shared directory with unrelated contents. The age floor
    /// keeps a concurrent, still-live writer's file safe; everything
    /// is best-effort — a failed sweep costs disk space, never
    /// correctness.
    fn sweep_stale_tmp(dir: &Path, vfs: &dyn Vfs) {
        const STALE_AFTER: std::time::Duration = std::time::Duration::from_secs(600);
        let Ok(entries) = vfs.read_dir(dir) else {
            return;
        };
        for path in entries {
            let Some(name) = path.file_name() else {
                continue;
            };
            if !is_own_tmp_name(&name.to_string_lossy()) {
                continue;
            }
            let stale = vfs
                .metadata(&path)
                .ok()
                .and_then(|m| m.modified)
                .and_then(|t| t.elapsed().ok())
                .is_some_and(|age| age > STALE_AFTER);
            if stale {
                let _ = vfs.remove_file(&path);
            }
        }
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file a given shape's **liveness** entry persists to (salt
    /// 0 — see [`entry_path_for`](Self::entry_path_for)).
    pub fn entry_path(&self, shape: &CfgShape) -> PathBuf {
        self.entry_path_for(shape, AnalysisKind::Liveness)
    }

    /// The file a given `(shape, kind)` persists to: the shape hash
    /// XOR the kind's salt, hex, plus the common extension. Distinct
    /// kinds of one shape are distinct files, so GC, the tmp sweep and
    /// the entry-name pattern need no per-kind cases.
    pub fn entry_path_for(&self, shape: &CfgShape, kind: AnalysisKind) -> PathBuf {
        self.dir.join(format!(
            "{:016x}.{FILE_EXTENSION}",
            shape.hash64() ^ kind.salt()
        ))
    }

    /// Probes the store for `shape`'s liveness precomputation (see
    /// [`load_artifact`](Self::load_artifact) for the generic path and
    /// the outcome classification).
    pub fn load(&self, shape: &CfgShape) -> LoadOutcome {
        self.probe(shape, AnalysisKind::Liveness, |bytes| decode(shape, bytes))
    }

    /// Probes the store for `shape`'s `A::KIND` artifact, fully
    /// revived. Every failure mode is classified (see
    /// [`LoadOutcome`]): missing file → `Absent`, invalid bytes →
    /// `Reject`, failing I/O → `Error` — the caller always gets an
    /// answer it can degrade on, never a panic.
    pub fn load_artifact<A: AnalysisArtifact>(&self, shape: &CfgShape) -> LoadOutcome<A> {
        self.probe(shape, A::KIND, |bytes| decode_artifact::<A>(shape, bytes))
    }

    /// The shared probe skeleton: size gate on metadata, read, decode.
    fn probe<T>(
        &self,
        shape: &CfgShape,
        kind: AnalysisKind,
        decode_fn: impl FnOnce(&[u8]) -> Option<T>,
    ) -> LoadOutcome<T> {
        let path = self.entry_path_for(shape, kind);
        // Cheap size gate before reading: a valid entry for this
        // `(shape, kind)` can never exceed `max_entry_len` (body sizes
        // are bounded by the block count), so an absurdly large file —
        // filesystem corruption, a zero-extended blob — is rejected on
        // metadata alone instead of being slurped and CRC-scanned.
        match self.vfs.metadata(&path) {
            Ok(meta) if meta.len > Self::max_entry_len(shape, kind) => return LoadOutcome::Reject,
            Ok(_) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return LoadOutcome::Absent,
            // A failing stat is the disk's fault, not the file's:
            // classify as an I/O error so the breaker sees it.
            Err(e) => return LoadOutcome::Error(e),
        }
        let bytes = match self.vfs.read(&path) {
            Ok(bytes) => bytes,
            // Deleted between stat and read (a racing GC): clean miss.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return LoadOutcome::Absent,
            Err(e) => return LoadOutcome::Error(e),
        };
        match decode_fn(&bytes) {
            Some(value) => LoadOutcome::Hit(value),
            None => LoadOutcome::Reject,
        }
    }

    /// Upper bound on a valid entry's byte length for `(shape, kind)`:
    /// header and encoding are fixed, the body bound comes from the
    /// artifact trait.
    fn max_entry_len(shape: &CfgShape, kind: AnalysisKind) -> u64 {
        let body = match kind {
            AnalysisKind::Liveness => <FunctionLiveness as AnalysisArtifact>::max_body_len(shape),
            AnalysisKind::Nullness => {
                <fastlive_core::NullnessArtifact as AnalysisArtifact>::max_body_len(shape)
            }
        };
        32 + 4 * shape.encoding().len() as u64 + body + 4
    }

    /// Writes (or overwrites) `shape`'s liveness entry atomically (see
    /// [`save_artifact`](Self::save_artifact) for the contract).
    pub fn save(&self, shape: &CfgShape, pre: &Precomputation) -> Result<(), std::io::Error> {
        self.publish(shape, AnalysisKind::Liveness, encode(shape, pre))
    }

    /// Writes (or overwrites) `shape`'s `A::KIND` entry atomically:
    /// encode to a unique temp file, then rename into place. On any
    /// I/O failure the temp file is removed (best-effort), no partial
    /// entry is left behind, and the underlying error is returned —
    /// the caller keeps its freshly computed result either way (a
    /// failed write-through **never** invalidates a successful
    /// computation; it only feeds disk-health accounting).
    pub fn save_artifact<A: AnalysisArtifact>(
        &self,
        shape: &CfgShape,
        artifact: &A,
    ) -> Result<(), std::io::Error> {
        self.publish(shape, A::KIND, encode_artifact(shape, artifact))
    }

    /// The shared write-temp-then-rename skeleton.
    fn publish(
        &self,
        shape: &CfgShape,
        kind: AnalysisKind,
        bytes: Vec<u8>,
    ) -> Result<(), std::io::Error> {
        let final_path = self.entry_path_for(shape, kind);
        let tmp_path = self.dir.join(format!(
            "{:016x}.tmp.{}.{}",
            shape.hash64() ^ kind.salt(),
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        if let Err(e) = self.vfs.write(&tmp_path, &bytes) {
            let _ = self.vfs.remove_file(&tmp_path);
            return Err(e);
        }
        if let Err(e) = self.vfs.rename(&tmp_path, &final_path) {
            let _ = self.vfs.remove_file(&tmp_path);
            return Err(e);
        }
        Ok(())
    }

    /// Evicts cache entries: everything older than `max_age` (when
    /// given) is deleted first, then the oldest survivors until at
    /// most `max_entries` remain. Age and rank are read from file
    /// modification times — a write-through refreshes an entry's
    /// stamp, so "oldest" approximates "least recently recomputed".
    ///
    /// **Unreadable-mtime policy**: an entry whose modification time
    /// cannot be stat'd (`mtime = None`) is treated as *infinitely
    /// old* — it is expired by **any** `max_age` and sorts first under
    /// entry pressure. A file whose metadata cannot even be read is
    /// the least trustworthy thing in the store, and evicting it errs
    /// toward recomputation — the always-safe direction.
    ///
    /// Deleting **any** entry is always safe: the next probe of that
    /// shape degrades to one clean `disk_misses` recomputation whose
    /// write-through restores the file — GC can cost work, never
    /// correctness. Only files matching the store's own
    /// `{16 hex}.flpc` entry pattern are considered; everything else
    /// in a shared directory survives, and every deletion is
    /// best-effort (an undeletable entry is counted as retained).
    pub fn gc(&self, max_entries: usize, max_age: Option<std::time::Duration>) -> GcStats {
        let Ok(entries) = self.vfs.read_dir(&self.dir) else {
            return GcStats::default();
        };
        let mut removed = 0usize;
        // `None` mtime = infinitely old; `Option<SystemTime>` orders
        // `None` before every `Some`, so the default sort already puts
        // unreadable entries first in the eviction queue.
        let mut kept: Vec<(PathBuf, Option<SystemTime>)> = Vec::new();
        for path in entries {
            let Some(name) = path.file_name() else {
                continue;
            };
            if !is_entry_name(&name.to_string_lossy()) {
                continue;
            }
            let mtime = self.vfs.metadata(&path).ok().and_then(|m| m.modified);
            let expired = max_age.is_some_and(|age| match mtime {
                // Infinitely old: expired under any age bound.
                None => true,
                Some(t) => t.elapsed().map(|elapsed| elapsed > age).unwrap_or(false),
            });
            if expired && self.vfs.remove_file(&path).is_ok() {
                removed += 1;
            } else {
                kept.push((path, mtime));
            }
        }
        kept.sort_by_key(|&(_, mtime)| mtime);
        let excess = kept.len().saturating_sub(max_entries);
        let mut retained = kept.len() - excess;
        for (path, _) in kept.into_iter().take(excess) {
            if self.vfs.remove_file(&path).is_ok() {
                removed += 1;
            } else {
                retained += 1;
            }
        }
        GcStats { retained, removed }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastlive_ir::parse_function;

    fn shape_and_pre(src: &str) -> (CfgShape, Precomputation) {
        let f = parse_function(src).expect("parses");
        let shape = CfgShape::of(&f);
        let checker = LivenessChecker::compute(&shape.to_graph());
        let pre = checker.precomputation().clone();
        (shape, pre)
    }

    const LOOP_SRC: &str = "function %f { block0(v0):
        jump block1
    block1:
        brif v0, block1, block2
    block2:
        return v0 }";

    #[test]
    fn gc_entry_pattern_matches_only_entries() {
        assert!(is_entry_name("00ff00ff00ff00ff.flpc"));
        assert!(is_entry_name("abcdefABCDEF0123.flpc"));
        assert!(!is_entry_name("00ff00ff00ff00ff.tmp.12.3"));
        assert!(!is_entry_name("notes.flpc"));
        assert!(!is_entry_name("00ff00ff00ff00ff.flpcx"));
        assert!(!is_entry_name("zzff00ff00ff00ff.flpc"));
        assert!(!is_entry_name("00ff00ff00ff00ff"));
    }

    #[test]
    fn gc_prunes_to_the_entry_bound_oldest_first() {
        let dir = std::env::temp_dir().join(format!(
            "fastlive-persist-gc-{}-{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let store = PersistStore::new(&dir);
        let sources = [
            LOOP_SRC,
            "function %g { block0: return }",
            "function %h { block0(v0): jump block1 block1: return v0 }",
        ];
        let mut shapes = Vec::new();
        for (i, src) in sources.iter().enumerate() {
            let (shape, pre) = shape_and_pre(src);
            assert!(store.save(&shape, &pre).is_ok());
            // Space the mtimes out so "oldest" is deterministic even on
            // coarse-grained filesystems.
            let t = std::time::SystemTime::UNIX_EPOCH
                + std::time::Duration::from_secs(1_000 + i as u64);
            let f = std::fs::File::options()
                .append(true)
                .open(store.entry_path(&shape))
                .unwrap();
            f.set_modified(t).unwrap();
            shapes.push(shape);
        }
        // An unrelated file in the shared directory must survive GC.
        let bystander = dir.join("notes.txt");
        std::fs::write(&bystander, b"keep me").unwrap();

        let stats = store.gc(2, None);
        assert_eq!(
            stats,
            GcStats {
                retained: 2,
                removed: 1
            }
        );
        // The oldest entry (index 0) went; the newer two survive.
        assert!(matches!(store.load(&shapes[0]), LoadOutcome::Absent));
        assert!(matches!(store.load(&shapes[1]), LoadOutcome::Hit(_)));
        assert!(matches!(store.load(&shapes[2]), LoadOutcome::Hit(_)));
        assert!(bystander.exists());

        // Age-based expiry: everything is decades past a zero max-age.
        let stats = store.gc(usize::MAX, Some(std::time::Duration::ZERO));
        assert_eq!(
            stats,
            GcStats {
                retained: 0,
                removed: 2
            }
        );
        assert!(matches!(store.load(&shapes[1]), LoadOutcome::Absent));
        assert!(bystander.exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tmp_sweep_pattern_matches_only_own_files() {
        assert!(is_own_tmp_name("00ff00ff00ff00ff.tmp.1234.0"));
        assert!(is_own_tmp_name("abcdefABCDEF0123.tmp.9.42"));
        // Unrelated files sharing a shared persist_dir must survive.
        assert!(!is_own_tmp_name("notes.tmp.bak"));
        assert!(!is_own_tmp_name("data.tmp.1"));
        assert!(!is_own_tmp_name("00ff00ff00ff00ff.flpc"));
        assert!(!is_own_tmp_name("00ff00ff00ff00ff.tmp."));
        assert!(!is_own_tmp_name("00ff00ff00ff00ff.tmp.12x.3"));
        assert!(!is_own_tmp_name("zzff00ff00ff00ff.tmp.12.3"));
        assert!(!is_own_tmp_name("short.tmp.1.2"));
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn encode_decode_round_trips() {
        let (shape, pre) = shape_and_pre(LOOP_SRC);
        let bytes = encode(&shape, &pre);
        let back = decode(&shape, &bytes).expect("own encoding decodes");
        assert_eq!(back, pre);
    }

    #[test]
    fn decode_rejects_other_shapes_entries() {
        let (shape, pre) = shape_and_pre(LOOP_SRC);
        let (other, _) = shape_and_pre("function %g { block0: return }");
        let bytes = encode(&shape, &pre);
        // A different probing shape must see a reject, not a wrong hit
        // — this is the hash-collision safety net.
        assert!(decode(&other, &bytes).is_none());
    }

    #[test]
    fn store_round_trips_and_overwrites() {
        let dir = std::env::temp_dir().join(format!(
            "fastlive-persist-unit-{}-{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let store = PersistStore::new(&dir);
        let (shape, pre) = shape_and_pre(LOOP_SRC);
        assert!(matches!(store.load(&shape), LoadOutcome::Absent));
        assert!(store.save(&shape, &pre).is_ok());
        match store.load(&shape) {
            LoadOutcome::Hit(back) => assert_eq!(back, pre),
            other => panic!("expected hit, got {other:?}"),
        }
        // Corrupt the file in place: load degrades to Reject; saving
        // again repairs it.
        std::fs::write(store.entry_path(&shape), b"garbage").unwrap();
        assert!(matches!(store.load(&shape), LoadOutcome::Reject));
        assert!(store.save(&shape, &pre).is_ok());
        assert!(matches!(store.load(&shape), LoadOutcome::Hit(_)));
        // An absurdly oversized file is rejected on metadata alone
        // (the size gate — no multi-gigabyte slurp before validation).
        let valid = std::fs::read(store.entry_path(&shape)).unwrap();
        let mut huge = valid.clone();
        huge.resize(valid.len() + 4096, 0);
        std::fs::write(store.entry_path(&shape), &huge).unwrap();
        assert!(matches!(store.load(&shape), LoadOutcome::Reject));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_classifies_io_failures_as_errors_not_rejects() {
        use crate::vfs::{Fault, FaultRule, FaultVfs, OpKind};
        let dir = std::env::temp_dir().join(format!(
            "fastlive-persist-err-{}-{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let fv = Arc::new(FaultVfs::healthy());
        let store = PersistStore::with_vfs(&dir, fv.clone());
        let (shape, pre) = shape_and_pre(LOOP_SRC);
        assert!(store.save(&shape, &pre).is_ok());

        // A failing stat is an Error (the device's fault), not Reject.
        fv.set_rules(vec![FaultRule::every(OpKind::Metadata, Fault::eacces())]);
        match store.load(&shape) {
            LoadOutcome::Error(e) => assert_eq!(e.raw_os_error(), Some(13)),
            other => panic!("expected Error(EACCES), got {other:?}"),
        }

        // A failing read (after a clean stat) likewise.
        fv.set_rules(vec![FaultRule::every(OpKind::Read, Fault::eio())]);
        match store.load(&shape) {
            LoadOutcome::Error(e) => assert_eq!(e.raw_os_error(), Some(5)),
            other => panic!("expected Error(EIO), got {other:?}"),
        }

        // Faults cleared: the entry was never harmed.
        fv.set_rules(Vec::new());
        assert!(matches!(store.load(&shape), LoadOutcome::Hit(_)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_failure_leaves_no_partial_entry() {
        use crate::vfs::{Fault, FaultRule, FaultVfs, OpKind};
        let dir = std::env::temp_dir().join(format!(
            "fastlive-persist-enospc-{}-{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let fv = Arc::new(FaultVfs::healthy());
        let store = PersistStore::with_vfs(&dir, fv.clone());
        let (shape, pre) = shape_and_pre(LOOP_SRC);

        // ENOSPC on the tmp write: error surfaces, nothing published.
        fv.set_rules(vec![FaultRule::every(OpKind::Write, Fault::enospc())]);
        let err = store.save(&shape, &pre).expect_err("write faulted");
        assert_eq!(err.raw_os_error(), Some(28));
        fv.set_rules(Vec::new());
        assert!(matches!(store.load(&shape), LoadOutcome::Absent));

        // EIO on the rename: tmp cleaned up best-effort, still absent.
        fv.set_rules(vec![FaultRule::every(OpKind::Rename, Fault::eio())]);
        assert!(store.save(&shape, &pre).is_err());
        fv.set_rules(Vec::new());
        assert!(matches!(store.load(&shape), LoadOutcome::Absent));
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .map(|rd| rd.flatten().map(|e| e.file_name()).collect())
            .unwrap_or_default();
        assert!(leftovers.is_empty(), "tmp files left behind: {leftovers:?}");

        // Disk healed: the same save now lands.
        assert!(store.save(&shape, &pre).is_ok());
        assert!(matches!(store.load(&shape), LoadOutcome::Hit(_)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gc_treats_unreadable_mtime_as_infinitely_old() {
        use crate::vfs::{Fault, FaultRule, FaultVfs, OpKind};
        let dir = std::env::temp_dir().join(format!(
            "fastlive-persist-gcmtime-{}-{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let fv = Arc::new(FaultVfs::healthy());
        let store = PersistStore::with_vfs(&dir, fv.clone());
        let (shape_a, pre_a) = shape_and_pre(LOOP_SRC);
        let (shape_b, pre_b) = shape_and_pre("function %g { block0: return }");
        assert!(store.save(&shape_a, &pre_a).is_ok());
        assert!(store.save(&shape_b, &pre_b).is_ok());
        let a_name = format!("{:016x}", shape_a.hash64());

        // Make `a`'s mtime unreadable: under entry pressure it must be
        // the *first* evicted even though it is not actually older.
        fv.set_rules(vec![
            FaultRule::every(OpKind::Metadata, Fault::eio()).on_paths(&a_name)
        ]);
        let stats = store.gc(1, None);
        assert_eq!(
            stats,
            GcStats {
                retained: 1,
                removed: 1
            }
        );
        fv.set_rules(Vec::new());
        assert!(matches!(store.load(&shape_a), LoadOutcome::Absent));
        assert!(matches!(store.load(&shape_b), LoadOutcome::Hit(_)));

        // And under an age bound, unreadable = expired by *any* age —
        // even one generous enough to keep every readable entry.
        assert!(store.save(&shape_a, &pre_a).is_ok());
        fv.set_rules(vec![
            FaultRule::every(OpKind::Metadata, Fault::eio()).on_paths(&a_name)
        ]);
        let stats = store.gc(usize::MAX, Some(std::time::Duration::from_secs(3600)));
        assert_eq!(
            stats,
            GcStats {
                retained: 1,
                removed: 1
            }
        );
        fv.set_rules(Vec::new());
        assert!(matches!(store.load(&shape_a), LoadOutcome::Absent));
        assert!(matches!(store.load(&shape_b), LoadOutcome::Hit(_)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn revive_answers_like_a_fresh_checker() {
        let f = parse_function(LOOP_SRC).expect("parses");
        let shape = CfgShape::of(&f);
        let canonical = LivenessChecker::compute(&shape.to_graph());
        let pre = canonical.precomputation().clone();
        let bytes = encode(&shape, &pre);
        let revived =
            revive(&shape, decode(&shape, &bytes).expect("decodes")).expect("dimensions match");
        let fresh = FunctionLiveness::compute(&f);
        for v in f.values() {
            for b in f.blocks() {
                assert_eq!(
                    revived.is_live_in(&f, v, b),
                    fresh.is_live_in(&f, v, b),
                    "{v} live-in at {b}"
                );
                assert_eq!(
                    revived.is_live_out(&f, v, b),
                    fresh.is_live_out(&f, v, b),
                    "{v} live-out at {b}"
                );
            }
        }
    }

    #[test]
    fn artifact_round_trips_per_kind_with_salted_paths() {
        use fastlive_core::NullnessArtifact;
        let f = parse_function(LOOP_SRC).expect("parses");
        let shape = CfgShape::of(&f);
        let null = <NullnessArtifact as AnalysisArtifact>::compute(&shape);
        let bytes = encode_artifact(&shape, &null);
        let back: NullnessArtifact = decode_artifact(&shape, &bytes).expect("own encoding decodes");
        assert_eq!(back.df(), null.df(), "frontier matrix round-trips");

        // Through the store: each kind owns its salted path, and the
        // two entries for one shape coexist in one directory.
        let dir = std::env::temp_dir().join(format!(
            "fastlive-persist-kinds-{}-{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let store = PersistStore::new(&dir);
        let (_, pre) = shape_and_pre(LOOP_SRC);
        assert!(store.save(&shape, &pre).is_ok());
        assert!(store.save_artifact(&shape, &null).is_ok());
        assert_ne!(
            store.entry_path_for(&shape, AnalysisKind::Liveness),
            store.entry_path_for(&shape, AnalysisKind::Nullness),
        );
        assert!(matches!(store.load(&shape), LoadOutcome::Hit(_)));
        match store.load_artifact::<NullnessArtifact>(&shape) {
            LoadOutcome::Hit(got) => assert_eq!(got.df(), null.df()),
            other => panic!("expected nullness hit, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn decode_rejects_the_wrong_analysis_tag() {
        use fastlive_core::NullnessArtifact;
        let (shape, pre) = shape_and_pre(LOOP_SRC);
        let null = <NullnessArtifact as AnalysisArtifact>::compute(&shape);
        let live_bytes = encode(&shape, &pre);
        let null_bytes = encode_artifact(&shape, &null);
        // Each kind's decoder refuses the other kind's (CRC-valid)
        // bytes at the tag gate — before any body parsing.
        assert!(decode_artifact::<NullnessArtifact>(&shape, &live_bytes).is_none());
        assert!(decode(&shape, &null_bytes).is_none());
        assert!(decode_artifact::<FunctionLiveness>(&shape, &null_bytes).is_none());
    }

    #[test]
    fn revive_rejects_dimension_mismatches() {
        let (shape, pre) = shape_and_pre(LOOP_SRC);
        let (_, small) = shape_and_pre("function %g { block0: return }");
        assert!(revive(&shape, small.clone()).is_none());
        // Mixed dimensions (valid R, undersized T and vice versa) are
        // gated too — `revive` must hold for any caller-built value,
        // not just `decode` output.
        assert!(revive(
            &shape,
            Precomputation::from_parts(pre.r.clone(), small.t.clone())
        )
        .is_none());
        assert!(revive(&shape, Precomputation::from_parts(small.r, pre.t.clone())).is_none());
        // A hand-built value with a wrong-shaped derived transpose is
        // rejected too.
        let mut skewed = pre.clone();
        skewed.rt = small.t;
        assert!(revive(&shape, skewed).is_none());
        assert!(revive(&shape, pre).is_some());
    }
}
