//! The generic analysis-artifact layer: what the engine caches,
//! dedups, persists and revives — per `(fingerprint, analysis)` key.
//!
//! The engine started life as a liveness cache; the paper's
//! precomputation is just one instance of a shape-level artifact in
//! the parameterized sparse-dataflow construction (Tavares et al.).
//! This module is the seam that makes the rest of the machinery
//! analysis-agnostic:
//!
//! * [`AnalysisKind`] — the closed set of analyses the engine serves.
//!   Each kind owns a **tag** (embedded in every persisted entry next
//!   to `FORMAT_VERSION`, so a CRC-valid file can never revive as the
//!   wrong analysis) and a **filename salt** (XORed into the shape
//!   hash for the entry's file name, so kinds never collide in one
//!   persist directory).
//! * [`AnalysisArtifact`] — the trait an analysis implements to ride
//!   the engine: compute over the canonical graph, encode the
//!   expensive body, decode + revive (rebuild derived structures,
//!   validate against the graph — `None` degrades to a `disk_rejects`
//!   recomputation).
//! * [`ArtifactHandle`] — the dynamically-typed `Arc` the striped
//!   cache and in-flight slots store.
//!
//! Adding an analysis means: implement the trait, add a variant +
//! tag/salt here, and expose queries through the facade. The cache,
//! dedup, breaker, quarantine, persist codec, GC and telemetry tiers
//! all come for free.

use std::sync::Arc;

use fastlive_core::{FunctionLiveness, LivenessChecker, NullnessArtifact};

use crate::fingerprint::CfgShape;
use crate::persist::{self, Reader};

/// The analyses the engine can cache and persist. Every cache, dedup
/// and quarantine key in the engine is a `(CfgShape, AnalysisKind)`
/// pair.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AnalysisKind {
    /// The CGO 2008 liveness precomputation (`R`/`T` matrices).
    Liveness,
    /// Dominance-based nullness / definite-initialization (dominance
    /// frontier matrix).
    Nullness,
}

impl AnalysisKind {
    /// Every kind, in tag order.
    pub const ALL: [AnalysisKind; 2] = [AnalysisKind::Liveness, AnalysisKind::Nullness];

    /// The on-disk tag embedded in every persisted entry. Tags are
    /// never reused or renumbered — per the format-version policy, a
    /// layout change bumps `FORMAT_VERSION` instead.
    pub fn tag(self) -> u32 {
        match self {
            AnalysisKind::Liveness => 1,
            AnalysisKind::Nullness => 2,
        }
    }

    /// Inverse of [`tag`](Self::tag); `None` for unknown tags (a
    /// future kind or a corrupt file — reject either way).
    pub fn from_tag(tag: u32) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.tag() == tag)
    }

    /// XORed into the shape hash to form the entry **file name**, so
    /// each kind gets its own file per shape. Liveness keeps salt 0:
    /// pre-generalization (version-1) liveness files sit at exactly
    /// the paths the engine still probes, where the bumped
    /// `FORMAT_VERSION` rejects them into one clean `disk_rejects`
    /// recomputation each — degradation, not migration.
    pub fn salt(self) -> u64 {
        match self {
            AnalysisKind::Liveness => 0,
            AnalysisKind::Nullness => 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Stable snake_case label (telemetry, bench output).
    pub fn name(self) -> &'static str {
        match self {
            AnalysisKind::Liveness => "liveness",
            AnalysisKind::Nullness => "nullness",
        }
    }
}

impl std::fmt::Display for AnalysisKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// An analysis artifact the engine can serve: computable from the
/// canonical graph, persistable, revivable. Implementations must be
/// cheap to share (`Arc`) and safe to revive from hostile bytes —
/// `decode_body` returning `Some` is a promise that every later query
/// on the artifact is panic-free.
pub trait AnalysisArtifact: Send + Sync + Sized + 'static {
    /// The kind this artifact type serves.
    const KIND: AnalysisKind;

    /// Computes the artifact from scratch over `shape`'s canonical
    /// graph. This is the expensive path every cache tier exists to
    /// avoid.
    fn compute(shape: &CfgShape) -> Self;

    /// Appends the persistable body (the expensive, shape-derived
    /// part) to `out`. Derived structures that are cheap to rebuild
    /// (dominator trees, transposes) are **not** encoded — revive
    /// recomputes them, which keeps files small and the format stable.
    fn encode_body(&self, out: &mut Vec<u8>);

    /// Decodes a body and revives the artifact against `shape`'s
    /// canonical graph, validating every dimension. `None` means the
    /// bytes do not describe this shape's artifact — the store
    /// classifies that as a reject and the engine recomputes.
    fn decode_body(shape: &CfgShape, r: &mut Reader<'_>) -> Option<Self>;

    /// Upper bound on [`encode_body`](Self::encode_body)'s output
    /// length for `shape` — the store's pre-read size gate.
    fn max_body_len(shape: &CfgShape) -> u64;

    /// Wraps a shared artifact into the engine's dynamic handle.
    fn into_handle(this: Arc<Self>) -> ArtifactHandle;

    /// Recovers the typed artifact from a handle; `None` when the
    /// handle holds a different kind.
    fn from_handle(handle: &ArtifactHandle) -> Option<&Arc<Self>>;
}

/// The dynamically-typed artifact the striped cache, in-flight slots
/// and session entries store.
#[derive(Clone)]
pub enum ArtifactHandle {
    /// A revived or computed liveness checker.
    Liveness(Arc<FunctionLiveness>),
    /// A revived or computed nullness artifact.
    Nullness(Arc<NullnessArtifact>),
}

impl ArtifactHandle {
    /// The kind stored in this handle.
    pub fn kind(&self) -> AnalysisKind {
        match self {
            ArtifactHandle::Liveness(_) => AnalysisKind::Liveness,
            ArtifactHandle::Nullness(_) => AnalysisKind::Nullness,
        }
    }

    /// The liveness payload, if that is what this handle holds.
    pub fn as_liveness(&self) -> Option<&Arc<FunctionLiveness>> {
        match self {
            ArtifactHandle::Liveness(live) => Some(live),
            _ => None,
        }
    }

    /// The nullness payload, if that is what this handle holds.
    pub fn as_nullness(&self) -> Option<&Arc<NullnessArtifact>> {
        match self {
            ArtifactHandle::Nullness(art) => Some(art),
            _ => None,
        }
    }

    /// Approximate heap footprint, for cache accounting / diagnostics.
    pub fn heap_bytes(&self) -> usize {
        match self {
            ArtifactHandle::Liveness(live) => {
                let pre = live.checker().precomputation();
                pre.r.heap_bytes() + pre.t.heap_bytes() + pre.rt.heap_bytes()
            }
            ArtifactHandle::Nullness(art) => art.df().heap_bytes(),
        }
    }
}

impl std::fmt::Debug for ArtifactHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ArtifactHandle::{}", self.kind())
    }
}

impl AnalysisArtifact for FunctionLiveness {
    const KIND: AnalysisKind = AnalysisKind::Liveness;

    fn compute(shape: &CfgShape) -> Self {
        FunctionLiveness::from_checker(LivenessChecker::compute(&shape.to_graph()))
    }

    fn encode_body(&self, out: &mut Vec<u8>) {
        persist::encode_liveness_body(self.checker().precomputation(), out);
    }

    fn decode_body(shape: &CfgShape, r: &mut Reader<'_>) -> Option<Self> {
        let pre = persist::decode_liveness_body(shape, r)?;
        persist::revive(shape, pre)
    }

    fn max_body_len(shape: &CfgShape) -> u64 {
        let n = shape.num_blocks() as u64;
        2 * (8 + 8 * n * n.div_ceil(64))
    }

    fn into_handle(this: Arc<Self>) -> ArtifactHandle {
        ArtifactHandle::Liveness(this)
    }

    fn from_handle(handle: &ArtifactHandle) -> Option<&Arc<Self>> {
        handle.as_liveness()
    }
}

impl AnalysisArtifact for NullnessArtifact {
    const KIND: AnalysisKind = AnalysisKind::Nullness;

    fn compute(shape: &CfgShape) -> Self {
        NullnessArtifact::compute(&shape.to_graph())
    }

    fn encode_body(&self, out: &mut Vec<u8>) {
        persist::encode_matrix(self.df(), out);
    }

    fn decode_body(shape: &CfgShape, r: &mut Reader<'_>) -> Option<Self> {
        // The frontier matrix covers *all* blocks of the shape
        // (unreachable rows are empty), so the bound is the block
        // count and revive re-checks it against the graph.
        let df = persist::decode_matrix(r, shape.num_blocks())?;
        NullnessArtifact::from_parts(&shape.to_graph(), df)
    }

    fn max_body_len(shape: &CfgShape) -> u64 {
        let n = shape.num_blocks() as u64;
        8 + 8 * n * n.div_ceil(64)
    }

    fn into_handle(this: Arc<Self>) -> ArtifactHandle {
        ArtifactHandle::Nullness(this)
    }

    fn from_handle(handle: &ArtifactHandle) -> Option<&Arc<Self>> {
        handle.as_nullness()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_and_salts_are_distinct_and_stable() {
        assert_eq!(AnalysisKind::Liveness.tag(), 1);
        assert_eq!(AnalysisKind::Nullness.tag(), 2);
        assert_eq!(
            AnalysisKind::Liveness.salt(),
            0,
            "v1 liveness paths must stay probed"
        );
        for a in AnalysisKind::ALL {
            assert_eq!(AnalysisKind::from_tag(a.tag()), Some(a));
            for b in AnalysisKind::ALL {
                if a != b {
                    assert_ne!(a.tag(), b.tag());
                    assert_ne!(a.salt(), b.salt());
                }
            }
        }
        assert_eq!(AnalysisKind::from_tag(0), None);
        assert_eq!(AnalysisKind::from_tag(99), None);
    }

    #[test]
    fn handles_downcast_only_to_their_own_kind() {
        let f = fastlive_ir::parse_function("function %f { block0: return }").expect("parses");
        let shape = CfgShape::of(&f);
        let live = Arc::new(<FunctionLiveness as AnalysisArtifact>::compute(&shape));
        let null = Arc::new(<NullnessArtifact as AnalysisArtifact>::compute(&shape));
        let lh = FunctionLiveness::into_handle(live);
        let nh = NullnessArtifact::into_handle(null);
        assert_eq!(lh.kind(), AnalysisKind::Liveness);
        assert_eq!(nh.kind(), AnalysisKind::Nullness);
        assert!(FunctionLiveness::from_handle(&lh).is_some());
        assert!(FunctionLiveness::from_handle(&nh).is_none());
        assert!(NullnessArtifact::from_handle(&nh).is_some());
        assert!(NullnessArtifact::from_handle(&lh).is_none());
    }
}
