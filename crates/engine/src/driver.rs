//! [`AnalysisEngine::destruct_module`]: SSA destruction across a whole
//! [`Module`], reusing the engine's cached (and in-flight-deduplicated)
//! precomputations and its parallel fan-out.
//!
//! Per-function destruction ([`destruct_ssa`]) precomputes a liveness
//! checker *after* splitting critical edges. Run naively over a module
//! that is one §5.2 precomputation per function — even though modules
//! are full of CFG-identical functions (and recompilation reproduces
//! the same post-split shapes). Routing the engine construction through
//! [`AnalysisEngine::analysis_for`] makes destruction hit the same
//! fingerprint cache as analysis: CFG-identical functions share one
//! checker, warm reruns precompute nothing, and concurrent workers
//! that miss on the same shape are deduplicated.

use std::sync::atomic::{AtomicUsize, Ordering};

use fastlive_destruct::{destruct_ssa, CheckerEngine, DestructResult};
use fastlive_ir::Module;

use crate::engine::AnalysisEngine;

impl AnalysisEngine {
    /// Runs SSA destruction on every function of `module` — in
    /// parallel per [`EngineConfig::threads`](crate::EngineConfig) —
    /// with each function's liveness engine served through the
    /// fingerprint cache. Results are returned in function order;
    /// `module` itself is not modified (destruction works on clones,
    /// like a backend pipeline lowering a module it may re-analyze).
    ///
    /// The per-function engine is the paper's checker
    /// ([`CheckerEngine`]) wrapping a **shared** cached analysis:
    /// decisions are identical to
    /// `destruct_ssa(f, CheckerEngine::compute)`, but CFG-identical
    /// functions (and warm reruns — the JIT recompilation story) skip
    /// the precomputation. See `BENCH_point.json` for the measured
    /// cold/warm gap.
    pub fn destruct_module(&self, module: &Module) -> Vec<DestructResult> {
        let n = module.len();
        let workers = self.worker_count(n);
        let run_one = |i: usize| {
            let func = module.functions()[i].clone();
            // `analysis_for` is called after destruct_ssa splits
            // critical edges, so the cache is keyed by the final CFG.
            destruct_ssa(func, |f| CheckerEngine::from_shared(self.analysis_for(f)))
        };
        if workers <= 1 {
            return (0..n).map(run_one).collect();
        }
        let mut slots: Vec<Option<DestructResult>> = Vec::new();
        slots.resize_with(n, || None);
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        // Same self-scheduling queue pop as `analyze`:
                        // skewed function sizes still balance.
                        let mut done = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            done.push((i, run_one(i)));
                        }
                        done
                    })
                })
                .collect();
            for handle in handles {
                for (i, result) in handle.join().expect("destruction worker panicked") {
                    slots[i] = Some(result);
                }
            }
        });
        slots
            .into_iter()
            .map(|s| s.expect("every queue index was claimed by exactly one worker"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use fastlive_workload::{generate_module, ModuleParams};

    fn test_module(seed: u64) -> Module {
        generate_module(
            "drv",
            ModuleParams {
                functions: 6,
                min_blocks: 4,
                max_blocks: 16,
                irreducible_per_mille: 150,
                ..ModuleParams::default()
            },
            seed,
        )
    }

    #[test]
    fn module_destruction_matches_per_function_destruction() {
        let module = test_module(11);
        for threads in [1usize, 4] {
            let engine = AnalysisEngine::new(EngineConfig {
                threads,
                cache_capacity: 64,
                ..EngineConfig::default()
            });
            let results = engine.destruct_module(&module);
            assert_eq!(results.len(), module.len());
            for (i, func) in module.functions().iter().enumerate() {
                let standalone = destruct_ssa(func.clone(), CheckerEngine::compute);
                assert_eq!(
                    results[i].func.to_string(),
                    standalone.func.to_string(),
                    "threads={threads}: divergent destruction of {}",
                    func.name
                );
                assert_eq!(results[i].stats.queries, standalone.stats.queries);
                assert_eq!(
                    results[i].stats.copies_inserted,
                    standalone.stats.copies_inserted
                );
            }
        }
    }

    #[test]
    fn warm_rerun_precomputes_nothing() {
        let module = test_module(23);
        let engine = AnalysisEngine::new(EngineConfig {
            threads: 2,
            cache_capacity: 128,
            ..EngineConfig::default()
        });
        let cold = engine.destruct_module(&module);
        let misses_after_cold = engine.cache_stats().misses;
        let warm = engine.destruct_module(&module);
        let stats = engine.cache_stats();
        assert_eq!(
            stats.misses, misses_after_cold,
            "warm destruction must be all cache (or dedup) hits: {stats:?}"
        );
        for (c, w) in cold.iter().zip(&warm) {
            assert_eq!(c.func.to_string(), w.func.to_string());
        }
    }
}
