//! [`AnalysisEngine::destruct_module`]: SSA destruction across a whole
//! [`Module`], reusing the engine's cached (and in-flight-deduplicated)
//! precomputations and its parallel fan-out.
//!
//! Per-function destruction ([`destruct_ssa`]) precomputes a liveness
//! checker *after* splitting critical edges. Run naively over a module
//! that is one §5.2 precomputation per function — even though modules
//! are full of CFG-identical functions (and recompilation reproduces
//! the same post-split shapes). Routing the engine construction through
//! [`AnalysisEngine::analysis_for`] makes destruction hit the same
//! fingerprint cache as analysis: CFG-identical functions share one
//! checker, warm reruns precompute nothing, and concurrent workers
//! that miss on the same shape are deduplicated.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use fastlive_core::AnalysisError;
use fastlive_destruct::{destruct_ssa, CheckerEngine, DestructResult};
use fastlive_ir::Module;

use crate::engine::{panic_message, AnalysisEngine};

impl AnalysisEngine {
    /// Runs SSA destruction on every function of `module` — in
    /// parallel per [`EngineConfig::threads`](crate::EngineConfig) —
    /// with each function's liveness engine served through the
    /// fingerprint cache. Results are returned in function order;
    /// `module` itself is not modified (destruction works on clones,
    /// like a backend pipeline lowering a module it may re-analyze).
    ///
    /// The per-function engine is the paper's checker
    /// ([`CheckerEngine`]) wrapping a **shared** cached analysis:
    /// decisions are identical to
    /// `destruct_ssa(f, CheckerEngine::compute)`, but CFG-identical
    /// functions (and warm reruns — the JIT recompilation story) skip
    /// the precomputation. See `BENCH_point.json` for the measured
    /// cold/warm gap.
    ///
    /// Failures are **per function**: a precomputation that panics (or
    /// a destruction pass that does) yields `Err(AnalysisError)` in
    /// that function's slot while every other function's destruction
    /// completes normally — the process never aborts.
    pub fn destruct_module(&self, module: &Module) -> Vec<Result<DestructResult, AnalysisError>> {
        let n = module.len();
        let workers = self.worker_count(n);
        let run_one = |i: usize| -> Result<DestructResult, AnalysisError> {
            let func = module.functions()[i].clone();
            // `analysis_for` is called after destruct_ssa splits
            // critical edges, so the cache is keyed by the final CFG.
            // A typed analysis failure is smuggled out through the
            // unwind (destruct_ssa's engine callback is infallible by
            // signature) and recovered by the downcast below; any
            // *other* payload is a genuine destruction panic.
            catch_unwind(AssertUnwindSafe(|| {
                destruct_ssa(func, |f| match self.analysis_for(f) {
                    Ok(live) => CheckerEngine::from_shared(live),
                    Err(e) => std::panic::panic_any(e),
                })
            }))
            .map_err(|payload| match payload.downcast::<AnalysisError>() {
                Ok(e) => *e,
                Err(other) => AnalysisError::ComputePanicked {
                    message: panic_message(other.as_ref()),
                },
            })
        };
        if workers <= 1 {
            return (0..n).map(run_one).collect();
        }
        let mut slots: Vec<Option<Result<DestructResult, AnalysisError>>> = Vec::new();
        slots.resize_with(n, || None);
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        // Same self-scheduling queue pop as `analyze`:
                        // skewed function sizes still balance.
                        let mut done = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            done.push((i, run_one(i)));
                        }
                        done
                    })
                })
                .collect();
            for handle in handles {
                // A worker that dies outright (catch_unwind can't stop
                // e.g. a stack overflow abort path, but a plain unwind
                // that escapes run_one is caught here) forfeits its
                // claimed indices; those slots become typed errors
                // below instead of taking the whole module down.
                if let Ok(done) = handle.join() {
                    for (i, result) in done {
                        slots[i] = Some(result);
                    }
                }
            }
        });
        slots
            .into_iter()
            .map(|s| {
                s.unwrap_or_else(|| {
                    Err(AnalysisError::ComputePanicked {
                        message: "destruction worker terminated before publishing".into(),
                    })
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use fastlive_workload::{generate_module, ModuleParams};

    fn test_module(seed: u64) -> Module {
        generate_module(
            "drv",
            ModuleParams {
                functions: 6,
                min_blocks: 4,
                max_blocks: 16,
                irreducible_per_mille: 150,
                ..ModuleParams::default()
            },
            seed,
        )
    }

    #[test]
    fn module_destruction_matches_per_function_destruction() {
        let module = test_module(11);
        for threads in [1usize, 4] {
            let engine = AnalysisEngine::new(EngineConfig {
                threads,
                cache_capacity: 64,
                ..EngineConfig::default()
            });
            let results = engine.destruct_module(&module);
            assert_eq!(results.len(), module.len());
            for (i, func) in module.functions().iter().enumerate() {
                let got = results[i].as_ref().expect("no injected faults");
                let standalone = destruct_ssa(func.clone(), CheckerEngine::compute);
                assert_eq!(
                    got.func.to_string(),
                    standalone.func.to_string(),
                    "threads={threads}: divergent destruction of {}",
                    func.name
                );
                assert_eq!(got.stats.queries, standalone.stats.queries);
                assert_eq!(got.stats.copies_inserted, standalone.stats.copies_inserted);
            }
        }
    }

    #[test]
    fn warm_rerun_precomputes_nothing() {
        let module = test_module(23);
        let engine = AnalysisEngine::new(EngineConfig {
            threads: 2,
            cache_capacity: 128,
            ..EngineConfig::default()
        });
        let cold = engine.destruct_module(&module);
        let misses_after_cold = engine.cache_stats().misses;
        let warm = engine.destruct_module(&module);
        let stats = engine.cache_stats();
        assert_eq!(
            stats.misses, misses_after_cold,
            "warm destruction must be all cache (or dedup) hits: {stats:?}"
        );
        for (c, w) in cold.iter().zip(&warm) {
            assert_eq!(
                c.as_ref().unwrap().func.to_string(),
                w.as_ref().unwrap().func.to_string()
            );
        }
    }
}
