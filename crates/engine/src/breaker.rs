//! Graceful degradation of the disk tier: a circuit breaker over
//! [`PersistStore`](crate::PersistStore) I/O plus a per-shape
//! quarantine for entries that reject repeatedly.
//!
//! The disk tier is an accelerator. When the device under it fails —
//! ENOSPC, a permission flip, a dying controller — the correct
//! behavior is not to hammer it on every cache miss (each probe costs
//! a syscall timeout and log spam) but to *trip open*: skip the disk,
//! run memory-only, and probe occasionally until the device recovers.
//! That is a classic circuit breaker:
//!
//! ```text
//!            N consecutive I/O errors
//!   Closed ────────────────────────────▶ Open
//!     ▲                                   │ backoff elapses
//!     │ probe succeeds                    ▼
//!     └──────────────────────────────  HalfOpen
//!                │ probe fails: back to Open,
//!                ▼ backoff doubles (capped)
//! ```
//!
//! - **Closed** — healthy; every miss probes the disk.
//! - **Open** — tripped; every miss computes in memory without
//!   touching the disk (`probes_skipped`). After the current backoff
//!   elapses the next miss is promoted to a half-open probe.
//! - **HalfOpen** — exactly one probe is in flight against the disk.
//!   Success restores **Closed** (and resets the backoff); failure
//!   returns to **Open** with the backoff doubled, up to
//!   [`BreakerConfig::max_backoff`].
//!
//! Orthogonally, a *quarantine* tracks per-shape reject streaks: an
//! entry that decodes invalid over and over (a wedged file on an
//! otherwise healthy disk) stops being probed after
//! [`BreakerConfig::quarantine_threshold`] consecutive rejects — the
//! breaker handles sick *devices*, the quarantine sick *files*.
//!
//! Everything here is time-explicit (`*_at(now)`) so unit tests drive
//! the state machine with synthetic clocks; the engine passes
//! `Instant::now()`.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::cache::CacheStats;
use crate::persist::GcStats;
use crate::vfs::lock_recover;
use fastlive_telemetry::Event;

/// Tuning knobs of the disk circuit breaker (and the per-shape reject
/// quarantine riding along with it). See the [module docs](self) for
/// the state machine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive disk I/O errors that trip the breaker open.
    /// `0` disables tripping entirely (every miss keeps probing the
    /// disk, errors are still counted in `disk_errors`).
    pub trip_threshold: u32,
    /// Backoff before the first half-open probe after a trip.
    pub initial_backoff: Duration,
    /// Backoff ceiling: doubling stops here.
    pub max_backoff: Duration,
    /// Consecutive *rejects* of one shape's entry before that shape is
    /// quarantined (its probes skip the disk for the life of the
    /// engine, or until a probe sees a valid entry). `0` disables
    /// quarantining.
    pub quarantine_threshold: u32,
}

/// Defaults: trip after 5 consecutive errors, back off 100ms doubling
/// to 30s, quarantine a shape after 3 consecutive rejects.
impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            trip_threshold: 5,
            initial_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_secs(30),
            quarantine_threshold: 3,
        }
    }
}

/// Where the breaker's state machine currently sits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: disk probes flow.
    Closed,
    /// Tripped: disk probes are skipped until the backoff elapses.
    Open,
    /// One recovery probe is in flight; everyone else still skips.
    HalfOpen,
}

impl BreakerState {
    /// Stable snake_case label (used by the `HealthReport` renderings).
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// A point-in-time snapshot of the engine's degradation machinery —
/// returned by `AnalysisEngine::health()` and surfaced through the
/// facade as `Fastlive::health()`.
#[derive(Clone, Debug)]
pub struct HealthReport {
    /// Whether a persistence directory is configured at all. When
    /// `false` the breaker fields are inert (state stays `Closed`).
    pub persist_configured: bool,
    /// Current breaker state.
    pub disk_state: BreakerState,
    /// Transitions into [`BreakerState::Open`] — both initial trips
    /// and failed half-open probes re-opening.
    pub disk_trips: u64,
    /// Successful half-open probes that restored
    /// [`BreakerState::Closed`].
    pub disk_restores: u64,
    /// Disk probes skipped because the breaker was open (each one was
    /// served memory-only instead).
    pub disk_probes_skipped: u64,
    /// Current run of consecutive disk I/O errors (resets on any
    /// successful disk operation).
    pub consecutive_disk_failures: u32,
    /// Shapes currently quarantined for repeated rejects.
    pub quarantined_shapes: usize,
    /// Cumulative cache counters, including `disk_errors`, summed over
    /// all stripes.
    pub cache: CacheStats,
    /// Per-stripe cache counters, in stripe order; always sums
    /// field-wise to [`cache`](Self::cache).
    pub stripes: Vec<CacheStats>,
    /// Outcome of the most recent persistence-tier GC sweep run by
    /// this engine, if any.
    pub last_gc: Option<GcStats>,
    /// Recent telemetry events (breaker trips/restores, quarantines,
    /// compute panics, gc runs, session revalidations), oldest first.
    /// Empty when telemetry is disabled — the counters above are
    /// always live regardless.
    pub recent_events: Vec<Event>,
}

impl HealthReport {
    /// The report as one JSON object (stable key order; the same
    /// hand-rolled discipline as
    /// [`TelemetrySnapshot::to_json`](fastlive_telemetry::TelemetrySnapshot::to_json)).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"persist_configured\":{},\"disk_state\":\"{}\",\"disk_trips\":{},\
             \"disk_restores\":{},\"disk_probes_skipped\":{},\
             \"consecutive_disk_failures\":{},\"quarantined_shapes\":{},\"cache\":{}",
            self.persist_configured,
            self.disk_state.name(),
            self.disk_trips,
            self.disk_restores,
            self.disk_probes_skipped,
            self.consecutive_disk_failures,
            self.quarantined_shapes,
            self.cache.to_json()
        );
        out.push_str(",\"stripes\":[");
        for (i, s) in self.stripes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&s.to_json());
        }
        out.push(']');
        match &self.last_gc {
            Some(gc) => {
                let _ = write!(
                    out,
                    ",\"last_gc\":{{\"retained\":{},\"removed\":{}}}",
                    gc.retained, gc.removed
                );
            }
            None => out.push_str(",\"last_gc\":null"),
        }
        out.push_str(",\"recent_events\":[");
        for (i, e) in self.recent_events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&e.to_json());
        }
        out.push_str("]}");
        out
    }
}

/// Compact operator summary: one header line, one line per stripe with
/// activity, recent events last.
impl std::fmt::Display for HealthReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "health: disk={} trips={} restores={} skipped={} streak={} quarantined={} persist={}",
            self.disk_state.name(),
            self.disk_trips,
            self.disk_restores,
            self.disk_probes_skipped,
            self.consecutive_disk_failures,
            self.quarantined_shapes,
            self.persist_configured
        )?;
        write!(f, "\n  cache: {}", self.cache)?;
        for (i, s) in self.stripes.iter().enumerate() {
            if *s != CacheStats::default() {
                write!(f, "\n  stripe[{i}]: {s}")?;
            }
        }
        if let Some(gc) = &self.last_gc {
            write!(f, "\n  gc: retained={} removed={}", gc.retained, gc.removed)?;
        }
        for e in &self.recent_events {
            write!(f, "\n  event[{}] {}: {}", e.seq, e.kind.name(), e.detail)?;
        }
        Ok(())
    }
}

struct BreakerInner {
    state: BreakerState,
    consecutive_failures: u32,
    /// Backoff applied at the *next* (re-)open.
    backoff: Duration,
    /// In `Open`: when the next half-open probe may start. In
    /// `HalfOpen`: the probe's lease deadline — if the prober vanished
    /// (panicked between `allow` and `record_*`), a later caller may
    /// take over rather than wedging the tier open forever.
    deadline: Option<Instant>,
    trips: u64,
    restores: u64,
    probes_skipped: u64,
}

/// The engine's disk circuit breaker. All methods are time-explicit;
/// thread-safe behind one small mutex (taken only on disk-tier
/// decisions, never on in-memory hits).
pub(crate) struct DiskBreaker {
    config: BreakerConfig,
    inner: Mutex<BreakerInner>,
}

impl DiskBreaker {
    pub(crate) fn new(config: BreakerConfig) -> Self {
        let backoff = config.initial_backoff;
        DiskBreaker {
            config,
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                backoff,
                deadline: None,
                trips: 0,
                restores: 0,
                probes_skipped: 0,
            }),
        }
    }

    /// May this miss probe the disk right now? `false` means "skip the
    /// disk, compute memory-only" (counted in `probes_skipped`). A
    /// `true` from an `Open` state promotes the caller to *the*
    /// half-open probe — it must report back via
    /// [`record_success_at`](Self::record_success_at) or
    /// [`record_failure_at`](Self::record_failure_at).
    pub(crate) fn allow_at(&self, now: Instant) -> bool {
        let mut inner = lock_recover(&self.inner);
        match inner.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                if inner.deadline.is_some_and(|d| now >= d) {
                    inner.state = BreakerState::HalfOpen;
                    // Probe lease: if this prober never reports back,
                    // the tier un-wedges after one more backoff.
                    inner.deadline = Some(now + inner.backoff);
                    true
                } else {
                    inner.probes_skipped += 1;
                    false
                }
            }
            BreakerState::HalfOpen => {
                if inner.deadline.is_some_and(|d| now >= d) {
                    // The previous probe's lease expired without a
                    // verdict; take over.
                    inner.deadline = Some(now + inner.backoff);
                    true
                } else {
                    inner.probes_skipped += 1;
                    false
                }
            }
        }
    }

    /// A disk operation succeeded: any non-closed state restores to
    /// `Closed`, the failure streak and backoff reset. Returns `true`
    /// when this call *transitioned* the breaker back to `Closed` —
    /// the edge telemetry turns into a `breaker_restored` event.
    pub(crate) fn record_success_at(&self, _now: Instant) -> bool {
        let mut inner = lock_recover(&self.inner);
        inner.consecutive_failures = 0;
        let restored = inner.state != BreakerState::Closed;
        if restored {
            inner.state = BreakerState::Closed;
            inner.restores += 1;
        }
        inner.backoff = self.config.initial_backoff;
        inner.deadline = None;
        restored
    }

    /// A disk operation failed with an I/O error. In `Closed`, the
    /// streak grows and trips the breaker at the threshold; in
    /// `HalfOpen`, the probe failed — re-open with the backoff doubled
    /// (capped at [`BreakerConfig::max_backoff`]). Returns `true` when
    /// this call transitioned the breaker into `Open` — the edge
    /// telemetry turns into a `breaker_tripped` event.
    pub(crate) fn record_failure_at(&self, now: Instant) -> bool {
        let mut inner = lock_recover(&self.inner);
        inner.consecutive_failures = inner.consecutive_failures.saturating_add(1);
        match inner.state {
            BreakerState::Closed => {
                if self.config.trip_threshold > 0
                    && inner.consecutive_failures >= self.config.trip_threshold
                {
                    inner.state = BreakerState::Open;
                    inner.trips += 1;
                    inner.deadline = Some(now + inner.backoff);
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => {
                inner.state = BreakerState::Open;
                inner.trips += 1;
                inner.backoff = (inner.backoff * 2).min(self.config.max_backoff);
                inner.deadline = Some(now + inner.backoff);
                true
            }
            // Shouldn't happen (Open probes are skipped), but harmless:
            // the streak grew, the deadline stands.
            BreakerState::Open => false,
        }
    }

    #[cfg(test)]
    pub(crate) fn state(&self) -> BreakerState {
        lock_recover(&self.inner).state
    }

    /// (state, trips, restores, probes_skipped, consecutive_failures).
    pub(crate) fn snapshot(&self) -> (BreakerState, u64, u64, u64, u32) {
        let inner = lock_recover(&self.inner);
        (
            inner.state,
            inner.trips,
            inner.restores,
            inner.probes_skipped,
            inner.consecutive_failures,
        )
    }
}

/// Per-shape reject streaks: shapes whose on-disk entry keeps failing
/// validation stop being probed (the breaker handles sick devices;
/// this handles sick files on healthy devices). Keyed by the shape's
/// 64-bit fingerprint hash — a collision merely merges two streaks,
/// which can only cost an extra recomputation, never a wrong answer.
pub(crate) struct Quarantine {
    threshold: u32,
    counts: Mutex<HashMap<u64, u32>>,
}

impl Quarantine {
    pub(crate) fn new(threshold: u32) -> Self {
        Quarantine {
            threshold,
            counts: Mutex::new(HashMap::new()),
        }
    }

    /// Is this shape's disk entry quarantined (skip the probe)?
    pub(crate) fn is_quarantined(&self, hash: u64) -> bool {
        self.threshold > 0
            && lock_recover(&self.counts)
                .get(&hash)
                .is_some_and(|&c| c >= self.threshold)
    }

    /// The shape's entry failed validation again. Returns `true` when
    /// this reject *crossed* the threshold — the shape is newly
    /// quarantined (the edge telemetry turns into a
    /// `shape_quarantined` event; further rejects return `false`).
    pub(crate) fn note_reject(&self, hash: u64) -> bool {
        if self.threshold == 0 {
            return false;
        }
        let mut counts = lock_recover(&self.counts);
        let c = counts.entry(hash).or_insert(0);
        *c = c.saturating_add(1);
        *c == self.threshold
    }

    /// The shape's entry validated (or was overwritten with a fresh
    /// one): the streak resets.
    pub(crate) fn note_good(&self, hash: u64) {
        lock_recover(&self.counts).remove(&hash);
    }

    /// Shapes currently at or above the quarantine threshold.
    pub(crate) fn len(&self) -> usize {
        let counts = lock_recover(&self.counts);
        if self.threshold == 0 {
            return 0;
        }
        counts.values().filter(|&&c| c >= self.threshold).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            trip_threshold: 3,
            initial_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_millis(400),
            quarantine_threshold: 2,
        }
    }

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let b = DiskBreaker::new(cfg());
        let t0 = Instant::now();
        assert!(b.allow_at(t0));
        b.record_failure_at(t0);
        b.record_failure_at(t0);
        assert_eq!(b.state(), BreakerState::Closed, "streak of 2 < 3");
        // A success resets the streak entirely.
        b.record_success_at(t0);
        b.record_failure_at(t0);
        b.record_failure_at(t0);
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure_at(t0);
        assert_eq!(b.state(), BreakerState::Open);
        let (_, trips, _, _, streak) = b.snapshot();
        assert_eq!(trips, 1);
        assert_eq!(streak, 3);
    }

    #[test]
    fn open_skips_until_backoff_then_half_open_probe() {
        let b = DiskBreaker::new(cfg());
        let t0 = Instant::now();
        for _ in 0..3 {
            b.record_failure_at(t0);
        }
        assert_eq!(b.state(), BreakerState::Open);
        // Inside the backoff window: skipped.
        assert!(!b.allow_at(t0 + Duration::from_millis(50)));
        assert!(!b.allow_at(t0 + Duration::from_millis(99)));
        // Past it: exactly one caller becomes the half-open probe.
        let t1 = t0 + Duration::from_millis(100);
        assert!(b.allow_at(t1));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.allow_at(t1), "second caller is not a probe");
        let (_, _, _, skipped, _) = b.snapshot();
        assert_eq!(skipped, 3);
    }

    #[test]
    fn probe_success_restores_and_resets_backoff() {
        let b = DiskBreaker::new(cfg());
        let t0 = Instant::now();
        for _ in 0..3 {
            b.record_failure_at(t0);
        }
        let t1 = t0 + Duration::from_millis(100);
        assert!(b.allow_at(t1));
        b.record_success_at(t1);
        assert_eq!(b.state(), BreakerState::Closed);
        let (_, trips, restores, _, streak) = b.snapshot();
        assert_eq!((trips, restores, streak), (1, 1, 0));
        // Re-trip: the backoff starts over at initial, not doubled.
        for _ in 0..3 {
            b.record_failure_at(t1);
        }
        assert!(!b.allow_at(t1 + Duration::from_millis(99)));
        assert!(b.allow_at(t1 + Duration::from_millis(100)));
    }

    #[test]
    fn probe_failure_doubles_backoff_up_to_the_cap() {
        let b = DiskBreaker::new(cfg());
        let mut now = Instant::now();
        for _ in 0..3 {
            b.record_failure_at(now);
        }
        // Each failed probe doubles: 100 → 200 → 400 → 400 (capped).
        for expect_ms in [200u64, 400, 400] {
            now += Duration::from_millis(1_000); // well past any backoff
            assert!(b.allow_at(now), "promoted to probe");
            b.record_failure_at(now);
            assert_eq!(b.state(), BreakerState::Open);
            assert!(!b.allow_at(now + Duration::from_millis(expect_ms - 1)));
            assert!(b.allow_at(now + Duration::from_millis(expect_ms)));
            // Un-take the probe we just claimed for the assertion by
            // failing it; the loop's `now` jump re-syncs the clock.
            b.record_failure_at(now + Duration::from_millis(expect_ms));
        }
    }

    #[test]
    fn vanished_probe_lease_expires() {
        let b = DiskBreaker::new(cfg());
        let t0 = Instant::now();
        for _ in 0..3 {
            b.record_failure_at(t0);
        }
        let t1 = t0 + Duration::from_millis(100);
        assert!(b.allow_at(t1));
        // The prober never reports back (it panicked). After one more
        // backoff a new caller takes over instead of wedging forever.
        assert!(!b.allow_at(t1 + Duration::from_millis(99)));
        assert!(b.allow_at(t1 + Duration::from_millis(100)));
    }

    #[test]
    fn zero_threshold_never_trips() {
        let b = DiskBreaker::new(BreakerConfig {
            trip_threshold: 0,
            ..cfg()
        });
        let t0 = Instant::now();
        for _ in 0..100 {
            b.record_failure_at(t0);
            assert!(b.allow_at(t0));
        }
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn record_calls_flag_only_the_transition_edges() {
        let b = DiskBreaker::new(cfg());
        let t0 = Instant::now();
        assert!(!b.record_failure_at(t0));
        assert!(!b.record_failure_at(t0));
        assert!(b.record_failure_at(t0), "third failure trips");
        assert!(!b.record_failure_at(t0), "already open: no edge");
        let t1 = t0 + Duration::from_millis(100);
        assert!(b.allow_at(t1));
        assert!(b.record_success_at(t1), "probe success restores");
        assert!(!b.record_success_at(t1), "already closed: no edge");
    }

    #[test]
    fn note_reject_flags_only_the_threshold_crossing() {
        let q = Quarantine::new(2);
        assert!(!q.note_reject(9));
        assert!(q.note_reject(9), "second reject crosses");
        assert!(!q.note_reject(9), "already quarantined: no edge");
        q.note_good(9);
        assert!(!q.note_reject(9));
        assert!(q.note_reject(9), "healing and re-crossing flags again");
        assert!(!Quarantine::new(0).note_reject(1), "disabled never flags");
    }

    #[test]
    fn health_report_renders_stably() {
        use fastlive_telemetry::EventKind;
        let report = HealthReport {
            persist_configured: true,
            disk_state: BreakerState::HalfOpen,
            disk_trips: 2,
            disk_restores: 1,
            disk_probes_skipped: 7,
            consecutive_disk_failures: 3,
            quarantined_shapes: 1,
            cache: CacheStats {
                hits: 5,
                misses: 2,
                ..CacheStats::default()
            },
            stripes: vec![
                CacheStats {
                    hits: 5,
                    misses: 2,
                    ..CacheStats::default()
                },
                CacheStats::default(),
            ],
            last_gc: Some(GcStats {
                retained: 4,
                removed: 1,
            }),
            recent_events: vec![Event {
                seq: 0,
                kind: EventKind::BreakerTripped,
                detail: "streak=3".into(),
            }],
        };
        let json = report.to_json();
        for key in [
            "\"disk_state\":\"half_open\"",
            "\"cache\":{\"hits\":5",
            "\"stripes\":[{",
            "\"last_gc\":{\"retained\":4,\"removed\":1}",
            "\"kind\":\"breaker_tripped\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let text = report.to_string();
        assert!(text.contains("disk=half_open"));
        assert!(text.contains("stripe[0]"));
        assert!(!text.contains("stripe[1]"), "idle stripes are elided");
        assert!(text.contains("breaker_tripped: streak=3"));

        let none = HealthReport {
            last_gc: None,
            recent_events: Vec::new(),
            ..report
        };
        assert!(none.to_json().contains("\"last_gc\":null"));
    }

    #[test]
    fn quarantine_trips_per_shape_and_heals_on_good() {
        let q = Quarantine::new(2);
        assert!(!q.is_quarantined(7));
        q.note_reject(7);
        assert!(!q.is_quarantined(7), "streak of 1 < 2");
        q.note_reject(7);
        assert!(q.is_quarantined(7));
        assert!(!q.is_quarantined(8), "streaks are per shape");
        assert_eq!(q.len(), 1);
        q.note_good(7);
        assert!(!q.is_quarantined(7));
        assert_eq!(q.len(), 0);
        // Threshold 0 disables quarantining.
        let q0 = Quarantine::new(0);
        q0.note_reject(7);
        q0.note_reject(7);
        assert!(!q0.is_quarantined(7));
        assert_eq!(q0.len(), 0);
    }
}
