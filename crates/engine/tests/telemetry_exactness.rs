//! Telemetry exactness under contention (PR 7): a barrier storm of
//! probing threads must leave the tier histograms accounting for
//! **every** probe — `memory_hit + dedup_wait + compute` equals the
//! probe count exactly, `compute` equals the distinct shape count —
//! and the disk tier, the metered VFS and the structured event log
//! must all report what actually happened. Telemetry is an observer:
//! it never changes answers (the facade differential suite pins that
//! side).

mod common;

use std::sync::{Arc, Barrier};
use std::time::Duration;

use common::{distinct_shapes, temp_dir};
use fastlive_engine::vfs::{Fault, FaultRule, FaultVfs, OpKind};
use fastlive_engine::{
    AnalysisEngine, BreakerConfig, BreakerState, EngineConfig, EventKind, Recorder, Telemetry,
    TelemetrySnapshot,
};
use fastlive_ir::Module;
use fastlive_workload::{generate_module, ModuleParams};

fn test_module(seed: u64, functions: usize) -> Module {
    generate_module(
        "obs",
        ModuleParams {
            functions,
            min_blocks: 4,
            max_blocks: 18,
            irreducible_per_mille: 250,
            deep_live_per_mille: 350,
        },
        seed,
    )
}

fn instrumented(config: EngineConfig) -> (AnalysisEngine, Arc<Telemetry>) {
    let telemetry = Arc::new(Telemetry::new());
    let engine = AnalysisEngine::with_instrumentation(
        config,
        None,
        Arc::clone(&telemetry) as Arc<dyn Recorder>,
    );
    (engine, telemetry)
}

fn tier_count(snap: &TelemetrySnapshot, name: &str) -> u64 {
    snap.tier(name).map(|h| h.count).unwrap_or(0)
}

/// The headline exactness property: N threads released by one barrier
/// onto overlapping shapes. Every probe resolves through exactly one
/// of the three memory-tier outcomes, and the histogram counts — one
/// `fetch_add` per record, `Relaxed` or not — must sum to the probe
/// count exactly. No sampling, no drops, no double counts.
#[test]
fn barrier_storm_tier_histograms_account_for_every_probe() {
    const THREADS: usize = 8;
    let module = test_module(7, 6);
    let distinct = distinct_shapes(&module);
    let (engine, _telemetry) = instrumented(EngineConfig {
        threads: 1,
        cache_capacity: 64,
        ..EngineConfig::default()
    });

    let barrier = Barrier::new(THREADS);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let engine = &engine;
            let module = &module;
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                for i in 0..module.len() {
                    let func = &module.functions()[(i + t) % module.len()];
                    let _ = engine.analysis_for(func);
                }
            });
        }
    });

    let snap = engine.telemetry().expect("instrumented engine snapshots");
    let probes = (THREADS * module.len()) as u64;
    let memory = tier_count(&snap, "memory_hit");
    let dedup = tier_count(&snap, "dedup_wait");
    let compute = tier_count(&snap, "compute");
    assert_eq!(
        memory + dedup + compute,
        probes,
        "every probe lands in exactly one memory-tier bucket: {snap}"
    );
    assert_eq!(
        compute, distinct,
        "one computation span per distinct shape: {snap}"
    );
    // No disk tier configured: no disk spans, no VFS traffic.
    for disk in ["disk_hit", "disk_miss", "disk_reject", "disk_error"] {
        assert_eq!(tier_count(&snap, disk), 0, "{disk} without a store");
    }
    assert!(snap.vfs_ops.iter().all(|op| op.latency.count == 0));
    // And the counters agree with the cache's own accounting.
    let stats = engine.cache_stats();
    assert_eq!(stats.misses, compute);
    assert_eq!(stats.hits, memory);
    assert_eq!(stats.dedup_hits, dedup);
}

/// The disk tier's spans and the metered VFS line up with the cache
/// stats across a cold write-through run and a warm reload: `compute`
/// plus `disk_miss` on the first engine, `disk_hit` (and zero
/// computes) on the second, with read/write byte counts flowing.
#[test]
fn disk_tier_spans_and_vfs_bytes_match_cache_stats() {
    let module = test_module(21, 5);
    let distinct = distinct_shapes(&module);
    let dir = temp_dir("obs-disk");

    let (cold, _t) = instrumented(EngineConfig {
        threads: 2,
        persist_dir: Some(dir.clone()),
        ..EngineConfig::default()
    });
    let _ = cold.analyze(&module);
    let snap = cold.telemetry().expect("snapshot");
    assert_eq!(tier_count(&snap, "disk_miss"), distinct, "{snap}");
    assert_eq!(tier_count(&snap, "compute"), distinct, "{snap}");
    assert_eq!(tier_count(&snap, "disk_hit"), 0);
    let writes = snap.vfs_ops.iter().find(|op| op.name == "write").unwrap();
    assert_eq!(writes.latency.count, distinct, "one write-through each");
    assert!(writes.bytes > 0, "write-through moved bytes");
    assert_eq!(writes.errors, 0);

    let (warm, _t) = instrumented(EngineConfig {
        threads: 2,
        persist_dir: Some(dir.clone()),
        ..EngineConfig::default()
    });
    let _ = warm.analyze(&module);
    let snap = warm.telemetry().expect("snapshot");
    assert_eq!(tier_count(&snap, "disk_hit"), distinct, "{snap}");
    assert_eq!(tier_count(&snap, "compute"), 0, "warm disk: no computes");
    let reads = snap.vfs_ops.iter().find(|op| op.name == "read").unwrap();
    assert!(reads.latency.count >= distinct);
    assert!(reads.bytes > 0, "loads moved bytes");
    assert_eq!(warm.cache_stats().disk_hits, distinct);
    std::fs::remove_dir_all(&dir).ok();
}

/// The event log captures the transition *edges*: a persistent read
/// fault storm trips the breaker exactly once (one `breaker_tripped`
/// event, not one per failure), VFS errors are counted per op, and a
/// GC sweep lands one `gc_run` event carrying its stats.
#[test]
fn event_log_records_trips_gc_and_only_the_edges() {
    let module = test_module(33, 5);
    let dir = temp_dir("obs-events");

    // Seed a healthy store first so the faulty engine has entries to
    // fail at reading.
    let seeder = AnalysisEngine::new(EngineConfig {
        threads: 2,
        persist_dir: Some(dir.clone()),
        ..EngineConfig::default()
    });
    let _ = seeder.analyze(&module);

    let telemetry = Arc::new(Telemetry::new());
    let fv = Arc::new(FaultVfs::new(vec![FaultRule::every(
        OpKind::Read,
        Fault::eio(),
    )]));
    let engine = AnalysisEngine::with_instrumentation(
        EngineConfig {
            threads: 1,
            persist_dir: Some(dir.clone()),
            disk_breaker: BreakerConfig {
                trip_threshold: 2,
                initial_backoff: Duration::from_secs(3600),
                ..BreakerConfig::default()
            },
            ..EngineConfig::default()
        },
        Some(fv),
        Arc::clone(&telemetry) as Arc<dyn Recorder>,
    );
    let _ = engine.analyze(&module);
    assert_eq!(engine.health().disk_state, BreakerState::Open);

    let snap = telemetry.snapshot_now();
    let trips = snap
        .events
        .iter()
        .filter(|e| e.kind == EventKind::BreakerTripped)
        .count();
    assert_eq!(trips, 1, "one event per trip edge, not per failure");
    assert!(tier_count(&snap, "disk_error") >= 2, "{snap}");
    let reads = snap.vfs_ops.iter().find(|op| op.name == "read").unwrap();
    assert!(reads.errors >= 2, "faulted reads are counted as errors");

    // A sweep with max_entries=0 removes everything and logs one
    // gc_run event; the enriched health report carries it too.
    let stats = engine.gc_persist(0, None).expect("store configured");
    assert_eq!(stats.retained, 0);
    let health = engine.health();
    assert_eq!(health.last_gc, Some(stats));
    let snap = telemetry.snapshot_now();
    let gcs: Vec<_> = snap
        .events
        .iter()
        .filter(|e| e.kind == EventKind::GcRun)
        .collect();
    assert_eq!(gcs.len(), 1);
    assert!(gcs[0].detail.contains("removed"), "{:?}", gcs[0]);
    assert!(
        health
            .recent_events
            .iter()
            .any(|e| e.kind == EventKind::GcRun),
        "health folds the event log in: {health}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// An uninstrumented engine (the default `NoopRecorder`) has no
/// snapshot to give and an empty event tail in health — the seam's
/// disabled half.
#[test]
fn noop_recorder_yields_no_snapshot() {
    let module = test_module(41, 3);
    let engine = AnalysisEngine::new(EngineConfig {
        threads: 1,
        ..EngineConfig::default()
    });
    let _ = engine.analyze(&module);
    assert!(engine.telemetry().is_none());
    assert!(engine.health().recent_events.is_empty());
}
