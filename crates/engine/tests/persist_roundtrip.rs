//! Round-trip properties of the persistence codec (ISSUE 4): for
//! random reducible, goto-injected irreducible and deep-live modules,
//! `decode(encode(p))` must equal `p` field-for-field, and a decoded
//! cache entry must answer `is_live_in` / `is_live_out` / `is_live_at`
//! exactly like a fresh precomputation — with the iterative-dataflow
//! oracles as the independent referee. The engine-level half of the
//! acceptance criterion lives here too: a second `AnalysisEngine`
//! pointed at the same `persist_dir` serves every distinct fingerprint
//! from disk, with zero in-memory hits and byte-identical answers.

use fastlive_core::LivenessChecker;
use fastlive_dataflow::oracle;
use fastlive_engine::persist::{decode, encode, revive, LoadOutcome, PersistStore};
use fastlive_engine::{AnalysisEngine, CfgShape, EngineConfig};
use fastlive_ir::{parse_module, Module};
use fastlive_workload::{generate_module, ModuleParams};
use proptest::prelude::*;

mod common;
use common::{distinct_shapes, temp_dir};

fn test_module(seed: u64, irreducible_per_mille: u32, deep_live_per_mille: u32) -> Module {
    generate_module(
        "persist",
        ModuleParams {
            functions: 4,
            min_blocks: 4,
            max_blocks: 20,
            irreducible_per_mille,
            deep_live_per_mille,
        },
        seed,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Codec identity: every generated function's precomputation
    /// round-trips bit-for-bit, and the revived checker answers every
    /// block and point query identically to a fresh computation and to
    /// the dataflow oracles.
    #[test]
    fn decode_of_encode_is_identity_and_answers_exactly(
        seed in 0u64..400,
        irr in 0u32..2,
        deep in 0u32..2,
    ) {
        let module = test_module(seed, irr * 450, deep * 600);
        for (_, func) in module.iter() {
            let shape = CfgShape::of(func);
            let pre = LivenessChecker::compute(&shape.to_graph())
                .precomputation()
                .clone();
            let bytes = encode(&shape, &pre);
            let back = decode(&shape, &bytes)
                .unwrap_or_else(|| panic!("{}: own encoding must decode", func.name));
            prop_assert_eq!(&back, &pre, "{}: decode(encode(p)) != p", func.name);

            let revived = revive(&shape, back).expect("dimensions match the canonical graph");
            for v in func.values() {
                for b in func.blocks() {
                    prop_assert_eq!(
                        revived.is_live_in(func, v, b),
                        oracle::live_in_value(func, v, b),
                        "{}: revived live-in {} at {}", func.name, v, b
                    );
                    prop_assert_eq!(
                        revived.is_live_out(func, v, b),
                        oracle::live_out_value(func, v, b),
                        "{}: revived live-out {} at {}", func.name, v, b
                    );
                    for p in func.block_points(b) {
                        prop_assert_eq!(
                            revived.is_live_at(func, v, p),
                            Ok(oracle::live_at_value(func, v, p)),
                            "{}: revived live-at {} at {}", func.name, v, p
                        );
                    }
                }
            }
        }
    }

    /// Store round-trip through the filesystem: save, load, compare —
    /// and a second, separately opened store on the same directory
    /// sees the same entries (the cross-process story minus the
    /// process boundary).
    #[test]
    fn store_round_trips_across_openings(seed in 0u64..200) {
        let module = test_module(seed, 300, 300);
        let dir = temp_dir(&format!("store-rt-{seed}"));
        {
            let store = PersistStore::new(&dir);
            for (_, func) in module.iter() {
                let shape = CfgShape::of(func);
                let pre = LivenessChecker::compute(&shape.to_graph())
                    .precomputation()
                    .clone();
                prop_assert!(store.save(&shape, &pre).is_ok());
            }
        }
        let reopened = PersistStore::new(&dir);
        for (_, func) in module.iter() {
            let shape = CfgShape::of(func);
            let expect = LivenessChecker::compute(&shape.to_graph())
                .precomputation()
                .clone();
            match reopened.load(&shape) {
                LoadOutcome::Hit(pre) => prop_assert_eq!(pre, expect, "{}", func.name),
                other => prop_assert!(false, "{}: expected hit, got {:?}", func.name, other),
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// The padded row arena never leaks into the codec (PR 8): for
/// functions large enough that every matrix row carries cache-line
/// padding, the encoding still holds exactly `rows × ceil(cols/64)`
/// words per matrix — byte-length checked against the format
/// arithmetic — `decode(encode(p)) == p` bit-for-bit, and the revived
/// checker agrees with the iterative-dataflow oracle.
#[test]
fn padded_arena_never_leaks_into_the_encoding() {
    let module = generate_module(
        "padded",
        ModuleParams {
            functions: 1,
            min_blocks: 66,
            max_blocks: 80,
            irreducible_per_mille: 300,
            deep_live_per_mille: 400,
        },
        0x9a7d,
    );
    for (_, func) in module.iter() {
        let shape = CfgShape::of(func);
        let pre = LivenessChecker::compute(&shape.to_graph())
            .precomputation()
            .clone();
        let n = pre.r.rows();
        assert!(n > 64, "need multi-word rows for padding to exist");
        let words_per_row = pre.r.cols().div_ceil(64);
        // The in-memory arena is padded (rows rounded up to whole cache
        // lines, plus alignment slack) ...
        assert!(
            pre.r.heap_bytes() > n * words_per_row * 8,
            "{}: arena should carry padding",
            func.name
        );
        // ... but the packed view and the byte format are not: header
        // (magic + version + analysis tag + reserved + hash + shape
        // encoding) + two matrices of exactly rows × words_per_row
        // words + CRC.
        assert_eq!(pre.r.to_words().len(), n * words_per_row);
        let bytes = encode(&shape, &pre);
        // magic(4) + version(4) + tag(4) + reserved(4) + hash(8) +
        // enc count(4) = 28 bytes.
        let expect_len = 28 + 4 * shape.encoding().len() + 2 * (8 + 8 * n * words_per_row) + 4;
        assert_eq!(bytes.len(), expect_len, "{}: padding leaked", func.name);

        let back = decode(&shape, &bytes).expect("own encoding decodes");
        assert_eq!(back, pre, "{}: decode(encode(p)) != p", func.name);

        let revived = revive(&shape, back).expect("dimensions match");
        for v in func.values().take(12) {
            for b in func.blocks() {
                assert_eq!(
                    revived.is_live_in(func, v, b),
                    oracle::live_in_value(func, v, b),
                    "{}: revived live-in {} at {}",
                    func.name,
                    v,
                    b
                );
                assert_eq!(
                    revived.is_live_out(func, v, b),
                    oracle::live_out_value(func, v, b),
                    "{}: revived live-out {} at {}",
                    func.name,
                    v,
                    b
                );
            }
        }
    }
}

/// The acceptance criterion: a second engine on the same `persist_dir`
/// analyzes an identical module with **zero** in-memory hits (all
/// shapes distinct) but one `disk_hits` per distinct fingerprint, and
/// every answer is byte-identical to the first engine's.
#[test]
fn second_engine_is_served_entirely_from_disk() {
    // Hand-built module: four functions with pairwise distinct CFG
    // shapes (different block counts / edge relations).
    let src = "function %f1 { block0(v0): return v0 }
        function %f2 { block0(v0): jump block1 block1: return v0 }
        function %f3 { block0(v0): brif v0, block1, block2
            block1: jump block2 block2: return v0 }
        function %f4 { block0(v0): jump block1
            block1: brif v0, block1, block2 block2: return v0 }";
    let module = parse_module(src).expect("parses");
    let dir = temp_dir("second-engine");

    let first = AnalysisEngine::new(EngineConfig {
        threads: 2,
        persist_dir: Some(dir.clone()),
        ..EngineConfig::default()
    });
    let mut first_session = first.analyze(&module);
    let cold = first.cache_stats();
    assert_eq!(cold.misses, 4, "four distinct shapes");
    assert_eq!(cold.disk_misses, 4, "empty store: all disk misses");
    assert_eq!(cold.disk_hits, 0);
    assert_eq!(cold.disk_rejects, 0);

    // A brand-new engine — nothing shared in memory — on the same dir.
    let second = AnalysisEngine::new(EngineConfig {
        threads: 2,
        persist_dir: Some(dir.clone()),
        ..EngineConfig::default()
    });
    let mut second_session = second.analyze(&module);
    let warm = second.cache_stats();
    assert_eq!(warm.hits, 0, "nothing was in this engine's memory");
    assert_eq!(warm.misses, 4);
    assert_eq!(warm.disk_hits, 4, "one disk hit per distinct fingerprint");
    assert_eq!(warm.disk_misses, 0);
    assert_eq!(warm.disk_rejects, 0);
    assert_eq!(
        warm.misses,
        warm.disk_hits + warm.disk_misses + warm.disk_rejects,
        "every in-memory miss consults the disk tier exactly once"
    );

    // Byte-identical liveness answers, and both match the oracle.
    for (id, func) in module.iter() {
        for v in func.values() {
            for b in func.blocks() {
                let a = first_session.is_live_in(&module, id, v, b);
                let c = second_session.is_live_in(&module, id, v, b);
                assert_eq!(a, c, "{}: live-in {v} at {b}", func.name);
                assert_eq!(a, Ok(oracle::live_in_value(func, v, b)));
                let a = first_session.is_live_out(&module, id, v, b);
                let c = second_session.is_live_out(&module, id, v, b);
                assert_eq!(a, c, "{}: live-out {v} at {b}", func.name);
                assert_eq!(a, Ok(oracle::live_out_value(func, v, b)));
                for p in func.block_points(b) {
                    let a = first_session.is_live_at(&module, id, v, p);
                    let c = second_session.is_live_at(&module, id, v, p);
                    assert_eq!(a, c, "{}: live-at {v} at {p}", func.name);
                    assert_eq!(a, Ok(oracle::live_at_value(func, v, p)));
                }
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Same acceptance shape on generated modules, where fingerprints may
/// repeat: the second engine's memory hits account exactly for the
/// duplicates and its disk hits for the distinct shapes.
#[test]
fn second_engine_disk_hits_count_distinct_fingerprints() {
    for seed in [7u64, 19, 23] {
        let module = test_module(seed, 350, 500);
        let distinct = distinct_shapes(&module);
        let dir = temp_dir(&format!("distinct-{seed}"));
        let first = AnalysisEngine::new(EngineConfig {
            threads: 1,
            persist_dir: Some(dir.clone()),
            ..EngineConfig::default()
        });
        let _ = first.analyze(&module);
        assert_eq!(first.cache_stats().disk_misses, distinct, "seed {seed}");

        let second = AnalysisEngine::new(EngineConfig {
            threads: 1,
            persist_dir: Some(dir.clone()),
            ..EngineConfig::default()
        });
        let _ = second.analyze(&module);
        let stats = second.cache_stats();
        assert_eq!(stats.disk_hits, distinct, "seed {seed}: {stats:?}");
        assert_eq!(
            stats.hits,
            module.len() as u64 - distinct,
            "seed {seed}: duplicates served from memory: {stats:?}"
        );
        assert_eq!(stats.disk_rejects, 0, "seed {seed}");
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Persistence composes with `destruct_module`: destruction populates
/// the store (keyed by post-edge-split shapes), and a fresh engine
/// destructs the same module without a single precomputation —
/// `misses - disk_hits == 0` — producing identical programs.
#[test]
fn destruct_module_round_trips_through_the_store() {
    let module = test_module(42, 250, 400);
    let dir = temp_dir("destruct-persist");
    let first = AnalysisEngine::new(EngineConfig {
        threads: 2,
        persist_dir: Some(dir.clone()),
        ..EngineConfig::default()
    });
    let cold = first.destruct_module(&module);

    let second = AnalysisEngine::new(EngineConfig {
        threads: 2,
        persist_dir: Some(dir.clone()),
        ..EngineConfig::default()
    });
    let warm = second.destruct_module(&module);
    let stats = second.cache_stats();
    assert_eq!(
        stats.misses, stats.disk_hits,
        "warm-disk destruction must precompute nothing: {stats:?}"
    );
    assert_eq!(stats.disk_misses + stats.disk_rejects, 0, "{stats:?}");
    for (c, w) in cold.iter().zip(&warm) {
        assert_eq!(
            c.as_ref().unwrap().func.to_string(),
            w.as_ref().unwrap().func.to_string()
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
