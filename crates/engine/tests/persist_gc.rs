//! Engine-level GC acceptance (ISSUE 5 satellite): deleting persisted
//! entries is always safe. After a GC sweep prunes the store, a fresh
//! engine pointed at the same directory serves the surviving shapes as
//! `disk_hits` and pays exactly one clean `disk_misses` recomputation
//! per gc'd shape — with byte-identical answers either way — and its
//! write-through restores the store to full strength.

use std::time::Duration;

use fastlive_core::FunctionLiveness;
use fastlive_engine::persist::GcStats;
use fastlive_engine::{AnalysisEngine, EngineConfig, PersistStore};
use fastlive_ir::parse_module;
use fastlive_workload::{generate_module, ModuleParams};

mod common;
use common::{distinct_shapes, temp_dir};

fn engine_for(dir: &std::path::Path) -> AnalysisEngine {
    AnalysisEngine::new(EngineConfig {
        threads: 1,
        persist_dir: Some(dir.to_path_buf()),
        ..EngineConfig::default()
    })
}

#[test]
fn gcd_entry_degrades_to_one_clean_disk_miss() {
    let dir = temp_dir("persist-gc");
    let module = generate_module(
        "gc",
        ModuleParams {
            functions: 6,
            min_blocks: 4,
            max_blocks: 16,
            irreducible_per_mille: 300,
            deep_live_per_mille: 300,
        },
        0x6c5e,
    );
    let shapes = distinct_shapes(&module);
    assert!(shapes >= 2, "need several distinct shapes, got {shapes}");

    // Cold engine populates the store.
    let first = engine_for(&dir);
    let mut baseline = first.analyze(&module);
    assert_eq!(first.cache_stats().disk_misses, shapes);

    // GC down to one entry; the sweep must report the store's truth.
    let stats = first
        .gc_persist(1, None)
        .expect("persistence is configured");
    assert_eq!(
        stats,
        GcStats {
            retained: 1,
            removed: shapes as usize - 1,
        }
    );

    // A fresh engine on the pruned store: one disk hit for the
    // survivor, one clean disk-miss recomputation per gc'd shape, no
    // rejects — and answers identical to the pre-GC session and to a
    // from-scratch checker.
    let second = engine_for(&dir);
    let mut session = second.analyze(&module);
    let stats2 = second.cache_stats();
    assert_eq!(stats2.disk_hits, 1, "{stats2:?}");
    assert_eq!(stats2.disk_misses, shapes - 1, "{stats2:?}");
    assert_eq!(stats2.disk_rejects, 0, "{stats2:?}");
    for (id, func) in module.iter() {
        let oracle = FunctionLiveness::compute(func);
        for v in func.values() {
            for b in func.blocks() {
                assert_eq!(
                    session.is_live_in(&module, id, v, b),
                    Ok(oracle.is_live_in(func, v, b)),
                    "{} {v} live-in at {b}",
                    func.name
                );
                assert_eq!(
                    session.is_live_in(&module, id, v, b),
                    baseline.is_live_in(&module, id, v, b),
                );
            }
        }
    }

    // The second engine's write-through healed the store: a third cold
    // start is all disk hits again.
    let third = engine_for(&dir);
    let _ = third.analyze(&module);
    assert_eq!(third.cache_stats().disk_hits, shapes);
    assert_eq!(third.cache_stats().disk_misses, 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn gc_treats_mixed_analysis_kinds_as_ordinary_entries() {
    use fastlive_core::NullnessArtifact;
    use fastlive_engine::persist::LoadOutcome;
    use fastlive_engine::CfgShape;

    let dir = temp_dir("persist-gc-mixed");
    let module = parse_module(
        "function %a { block0(v0): jump block1 block1: return v0 }
         function %b { block0(v0): brif v0, block0, block1 block1: return v0 }",
    )
    .expect("parses");

    // Populate both kinds for both shapes: four entries in one store.
    let engine = engine_for(&dir);
    let _ = engine.analyze(&module);
    for (_, func) in module.iter() {
        engine.nullness_for(func).expect("computes");
    }
    let store = PersistStore::new(&dir);
    let count = || {
        std::fs::read_dir(&dir)
            .map(|d| d.filter_map(Result::ok).count())
            .unwrap_or(0)
    };
    assert_eq!(count(), 4, "two shapes x two kinds");

    // Prune to two entries: GC ranks by age alone — an analysis kind
    // is not a protected class, each file is just an entry.
    let stats = engine.gc_persist(2, None).expect("persistence configured");
    assert_eq!(
        stats,
        GcStats {
            retained: 2,
            removed: 2
        }
    );
    assert_eq!(count(), 2);

    // Whatever survived, a fresh engine degrades the gc'd kinds to
    // clean misses and write-through heals the store back to four.
    let second = engine_for(&dir);
    let mut session = second.analyze(&module);
    for (id, func) in module.iter() {
        let art = second.nullness_for(func).expect("recomputes");
        assert!(art.is_current_for(func));
        let oracle = FunctionLiveness::compute(func);
        for v in func.values() {
            for b in func.blocks() {
                assert_eq!(
                    session.is_live_in(&module, id, v, b),
                    Ok(oracle.is_live_in(func, v, b)),
                );
            }
        }
    }
    assert_eq!(second.cache_stats().disk_rejects, 0);
    assert_eq!(count(), 4, "write-through restores both kinds");
    for (_, func) in module.iter() {
        let shape = CfgShape::of(func);
        assert!(matches!(store.load(&shape), LoadOutcome::Hit(_)));
        assert!(matches!(
            store.load_artifact::<NullnessArtifact>(&shape),
            LoadOutcome::Hit(_)
        ));
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn age_gc_expires_everything_past_the_horizon() {
    let dir = temp_dir("persist-gc-age");
    let module = parse_module(
        "function %a { block0(v0): jump block1 block1: return v0 }
         function %b { block0(v0): brif v0, block0, block1 block1: return v0 }",
    )
    .expect("parses");
    let engine = engine_for(&dir);
    let _ = engine.analyze(&module);
    assert_eq!(engine.cache_stats().disk_misses, 2);

    // A generous horizon keeps everything; a zero horizon expires all.
    assert_eq!(
        engine.gc_persist(usize::MAX, Some(Duration::from_secs(3600))),
        Some(GcStats {
            retained: 2,
            removed: 0
        })
    );
    assert_eq!(
        engine.gc_persist(usize::MAX, Some(Duration::ZERO)),
        Some(GcStats {
            retained: 0,
            removed: 2
        })
    );
    let store = PersistStore::new(&dir);
    let shape = fastlive_engine::CfgShape::of(module.func(0));
    assert!(matches!(
        store.load(&shape),
        fastlive_engine::persist::LoadOutcome::Absent
    ));

    // No persistence tier → no sweep.
    let bare = AnalysisEngine::new(EngineConfig {
        threads: 1,
        ..EngineConfig::default()
    });
    assert_eq!(bare.gc_persist(0, None), None);
    std::fs::remove_dir_all(&dir).ok();
}
