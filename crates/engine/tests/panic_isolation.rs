//! Panic isolation across the engine: a precomputation that panics
//! (injected through the test-only compute-fault hook) must fail
//! exactly one function with a typed [`AnalysisError`] — concurrent
//! queries on other functions keep answering, waiters deduplicated on
//! the abandoned in-flight slot retry instead of hanging, and clearing
//! the fault self-heals every failed entry.

mod common;

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Barrier;

use common::temp_dir;
use fastlive_core::{AnalysisError, FunctionLiveness};
use fastlive_engine::{AnalysisEngine, CfgShape, EngineConfig};
use fastlive_ir::{parse_module, Module};

/// Two CFG-distinct functions: the hook can target one by block count.
fn two_function_module() -> Module {
    parse_module(
        "function %poisoned { block0(v0): jump block1
             block1: brif v0, block1, block2 block2: return v0 }
         function %healthy { block0(v0): return v0 }",
    )
    .expect("parses")
}

#[test]
fn panicking_function_fails_typed_while_others_answer() {
    let module = two_function_module();
    let bad_shape = CfgShape::of(module.func(0));
    let engine = AnalysisEngine::new(EngineConfig {
        threads: 2,
        ..EngineConfig::default()
    });
    let target = bad_shape.clone();
    engine.set_compute_fault(Some(Box::new(move |shape: &CfgShape| {
        if *shape == target {
            panic!("injected precompute panic");
        }
    })));

    let mut session = engine.analyze(&module);
    let poisoned = module.by_name("poisoned").unwrap();
    let healthy = module.by_name("healthy").unwrap();

    // The poisoned function answers with the typed error — including
    // the panic message — on every query surface.
    let v0 = module.func(poisoned).params()[0];
    let b1 = module.func(poisoned).block_by_index(1);
    match session.is_live_in(&module, poisoned, v0, b1) {
        Err(AnalysisError::ComputePanicked { message }) => {
            assert!(message.contains("injected precompute panic"), "{message}");
        }
        other => panic!("expected ComputePanicked, got {other:?}"),
    }
    assert!(matches!(
        session.batch(&module, poisoned),
        Err(AnalysisError::ComputePanicked { .. })
    ));

    // The healthy function is untouched.
    let func = module.func(healthy);
    let oracle = FunctionLiveness::compute(func);
    let hv = func.params()[0];
    let hb = func.entry_block();
    assert_eq!(
        session.is_live_in(&module, healthy, hv, hb),
        Ok(oracle.is_live_in(func, hv, hb))
    );
}

#[test]
fn waiters_on_an_abandoned_slot_retry_instead_of_hanging() {
    const THREADS: usize = 6;
    let module = two_function_module();
    let func = module.func(0).clone();
    let engine = AnalysisEngine::new(EngineConfig {
        threads: 1,
        ..EngineConfig::default()
    });
    // Exactly the first computation panics; any retry succeeds. If an
    // abandoned slot wedged its waiters this test would deadlock (and
    // time out) rather than fail an assertion.
    let first = AtomicBool::new(true);
    engine.set_compute_fault(Some(Box::new(move |_shape: &CfgShape| {
        if first.swap(false, Ordering::SeqCst) {
            panic!("first compute dies");
        }
    })));

    let barrier = Barrier::new(THREADS);
    let failed = AtomicUsize::new(0);
    let succeeded = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|| {
                barrier.wait();
                match engine.analysis_for(&func) {
                    Ok(live) => {
                        let oracle = FunctionLiveness::compute(&func);
                        let v = func.params()[0];
                        let b = func.block_by_index(2);
                        assert_eq!(live.is_live_in(&func, v, b), oracle.is_live_in(&func, v, b));
                        succeeded.fetch_add(1, Ordering::SeqCst);
                    }
                    Err(AnalysisError::ComputePanicked { .. }) => {
                        failed.fetch_add(1, Ordering::SeqCst);
                    }
                    Err(other) => panic!("unexpected error: {other:?}"),
                }
            });
        }
    });
    assert_eq!(
        failed.load(Ordering::SeqCst) + succeeded.load(Ordering::SeqCst),
        THREADS
    );
    // Only the prober that owned the doomed computation may fail; every
    // deduplicated waiter retried into the successful recompute.
    assert!(
        failed.load(Ordering::SeqCst) <= 1,
        "at most the owner fails"
    );
    assert!(succeeded.load(Ordering::SeqCst) >= THREADS - 1);
    // And the slot is fully healed: a fresh probe is an ordinary hit.
    assert!(engine.analysis_for(&func).is_ok());
}

#[test]
fn sessions_self_heal_once_the_fault_clears() {
    let module = two_function_module();
    let engine = AnalysisEngine::new(EngineConfig {
        threads: 1,
        ..EngineConfig::default()
    });
    engine.set_compute_fault(Some(Box::new(|_: &CfgShape| panic!("always"))));
    let mut session = engine.analyze(&module);
    let v0 = module.func(0).params()[0];
    let b2 = module.func(0).block_by_index(2);
    assert!(session.is_live_in(&module, 0, v0, b2).is_err());

    // Fault cleared: the very next query retries the failed entry and
    // succeeds — no session rebuild, no manual invalidation.
    engine.set_compute_fault(None);
    let func = module.func(0);
    let oracle = FunctionLiveness::compute(func);
    assert_eq!(
        session.is_live_in(&module, 0, v0, b2),
        Ok(oracle.is_live_in(func, v0, b2))
    );
    assert!(session.epoch(0) >= 1, "the retry is a recomputation");
}

#[test]
fn concurrent_queries_on_other_stripes_keep_answering() {
    // Many distinct shapes spread over stripes; one is poisoned. All
    // others must analyze concurrently without contagion.
    let mut src = String::new();
    for i in 0..12 {
        src.push_str(&format!("function %f{i} {{ block0(v0): "));
        for j in 0..i {
            src.push_str(&format!("jump block{} block{}: ", j + 1, j + 1));
        }
        src.push_str("return v0 }\n");
    }
    let module = parse_module(&src).expect("parses");
    let bad_shape = CfgShape::of(module.func(5));
    let engine = AnalysisEngine::new(EngineConfig {
        threads: 4,
        stripes: 8,
        ..EngineConfig::default()
    });
    let target = bad_shape.clone();
    engine.set_compute_fault(Some(Box::new(move |shape: &CfgShape| {
        if *shape == target {
            panic!("stripe-local poison");
        }
    })));

    let mut session = engine.analyze(&module);
    for (id, func) in module.iter() {
        let v = func.params()[0];
        let b = func.entry_block();
        let answer = session.is_live_in(&module, id, v, b);
        if CfgShape::of(func) == bad_shape {
            assert!(
                matches!(answer, Err(AnalysisError::ComputePanicked { .. })),
                "{}: expected the injected failure",
                func.name
            );
        } else {
            let oracle = FunctionLiveness::compute(func);
            assert_eq!(answer, Ok(oracle.is_live_in(func, v, b)), "{}", func.name);
        }
    }
}

#[test]
fn destruct_module_isolates_the_panicking_function() {
    let module = two_function_module();
    // Post-edge-split shapes differ from analysis shapes; target by
    // block count instead (%healthy is the only single-block CFG).
    let engine = AnalysisEngine::new(EngineConfig {
        threads: 2,
        ..EngineConfig::default()
    });
    engine.set_compute_fault(Some(Box::new(|shape: &CfgShape| {
        if shape.num_blocks() > 1 {
            panic!("multi-block destruction dies");
        }
    })));
    let results = engine.destruct_module(&module);
    assert_eq!(results.len(), 2);
    assert!(
        matches!(results[0], Err(AnalysisError::ComputePanicked { .. })),
        "%poisoned must fail typed: {:?}",
        results[0]
    );
    let healthy = results[1].as_ref().expect("single-block CFG unaffected");
    assert!(healthy.func.to_string().contains("return"));

    // Clearing the hook heals destruction too.
    engine.set_compute_fault(None);
    let results = engine.destruct_module(&module);
    assert!(results.iter().all(|r| r.is_ok()));
}

/// The hook fires only on true compute misses — cached shapes never
/// re-enter the panicking path, so a warm engine is immune.
#[test]
fn warm_cache_is_immune_to_compute_faults() {
    let module = two_function_module();
    let dir = temp_dir("pi-warm");
    let engine = AnalysisEngine::new(EngineConfig {
        threads: 1,
        persist_dir: Some(dir.clone()),
        ..EngineConfig::default()
    });
    // Warm both tiers first.
    let _ = engine.analyze(&module);
    engine.set_compute_fault(Some(Box::new(|_: &CfgShape| panic!("too late"))));
    let mut session = engine.analyze(&module);
    let func = module.func(0);
    let oracle = FunctionLiveness::compute(func);
    let v = func.params()[0];
    let b = func.block_by_index(2);
    assert_eq!(
        session.is_live_in(&module, 0, v, b),
        Ok(oracle.is_live_in(func, v, b)),
        "memory-warm shapes never recompute"
    );

    // Disk-warm is immune too: a fresh engine on the same store decodes
    // instead of computing, so the hook never fires.
    let cold = AnalysisEngine::new(EngineConfig {
        threads: 1,
        persist_dir: Some(dir.clone()),
        ..EngineConfig::default()
    });
    cold.set_compute_fault(Some(Box::new(|_: &CfgShape| panic!("disk should serve"))));
    let mut session = cold.analyze(&module);
    assert_eq!(
        session.is_live_in(&module, 0, v, b),
        Ok(oracle.is_live_in(func, v, b))
    );
    assert_eq!(cold.cache_stats().disk_hits, 2);
    std::fs::remove_dir_all(&dir).ok();
}
