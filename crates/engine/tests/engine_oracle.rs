//! The engine/oracle equivalence property (ISSUE 2 acceptance): every
//! [`EngineSession`] answer must match a from-scratch per-function
//! [`FunctionLiveness`] — across thread counts, across cache states
//! (cold, warm, disabled), on reducible and irreducible modules, and
//! after CFG-preserving and CFG-changing edits (the latter must
//! invalidate and recompute).

use fastlive_core::FunctionLiveness;
use fastlive_engine::{AnalysisEngine, EngineConfig, EngineSession};
use fastlive_ir::{parse_module, Module};
use fastlive_workload::{generate_module, ModuleParams, SplitMix64};
use proptest::prelude::*;

/// Every (value, block) live-in/live-out answer of `session` equals a
/// fresh per-function analysis of the module's current state.
fn assert_session_matches_oracle(session: &mut EngineSession<'_>, module: &Module, label: &str) {
    assert_eq!(session.num_functions(), module.len());
    for (id, func) in module.iter() {
        let oracle = FunctionLiveness::compute(func);
        let batch = session.batch(module, id).expect("no injected faults");
        for v in func.values() {
            for b in func.blocks() {
                assert_eq!(
                    session.is_live_in(module, id, v, b),
                    Ok(oracle.is_live_in(func, v, b)),
                    "{label}: {} live-in {v} at {b}",
                    func.name
                );
                assert_eq!(
                    session.is_live_out(module, id, v, b),
                    Ok(oracle.is_live_out(func, v, b)),
                    "{label}: {} live-out {v} at {b}",
                    func.name
                );
                // The dense route must agree with the sparse one.
                assert_eq!(
                    batch.is_live_in(v.index() as u32, b.as_u32()),
                    oracle.is_live_in(func, v, b),
                    "{label}: {} batch live-in {v} at {b}",
                    func.name
                );
            }
        }
    }
}

fn test_module(seed: u64, irreducible_per_mille: u32, deep_live_per_mille: u32) -> Module {
    generate_module(
        "prop",
        ModuleParams {
            functions: 5,
            min_blocks: 4,
            max_blocks: 24,
            irreducible_per_mille,
            deep_live_per_mille,
        },
        seed,
    )
}

#[test]
fn engine_matches_oracle_across_threads_and_cache_states() {
    // Reducible-only and irreducibility-heavy modules — half of each
    // generated with the liveness-driven deep-live bias, so long live
    // ranges crossing loop headers and live-through-but-not-used
    // blocks are routinely present; 1 and 4 worker threads; caching
    // disabled, cold and warm.
    for seed in 0..4u64 {
        for per_mille in [0u32, 400] {
            let deep = if seed % 2 == 1 { 700 } else { 0 };
            let module = test_module(seed * 31 + per_mille as u64, per_mille, deep);
            for threads in [1usize, 4] {
                for cache_capacity in [0usize, 64] {
                    let engine = AnalysisEngine::new(EngineConfig {
                        threads,
                        cache_capacity,
                        ..EngineConfig::default()
                    });
                    let mut cold = engine.analyze(&module);
                    assert_session_matches_oracle(
                        &mut cold,
                        &module,
                        &format!("cold s={seed} irr={per_mille} t={threads} c={cache_capacity}"),
                    );
                    // Warm pass: the same engine analyzes the module
                    // again; with caching on, every probe hits.
                    let misses_before = engine.cache_stats().misses;
                    let mut warm = engine.analyze(&module);
                    if cache_capacity > 0 {
                        assert_eq!(
                            engine.cache_stats().misses,
                            misses_before,
                            "warm analysis must not precompute"
                        );
                    }
                    assert_session_matches_oracle(
                        &mut warm,
                        &module,
                        &format!("warm s={seed} irr={per_mille} t={threads} c={cache_capacity}"),
                    );
                }
            }
        }
    }
}

#[test]
fn recompiled_cfg_identical_module_is_served_from_cache() {
    let module = test_module(99, 250, 500);
    let engine = AnalysisEngine::new(EngineConfig {
        threads: 4,
        cache_capacity: 128,
        ..EngineConfig::default()
    });
    let _ = engine.analyze(&module);
    let cold = engine.cache_stats();

    // "Recompilation": round-trip through text. Fresh Function objects,
    // identical CFGs — zero new precomputations.
    let recompiled = parse_module(&module.to_string()).expect("round-trips");
    let mut session = engine.analyze(&recompiled);
    let warm = engine.cache_stats();
    assert_eq!(warm.misses, cold.misses, "recompilation must be all hits");
    assert!(warm.hits > cold.hits);
    assert_session_matches_oracle(&mut session, &recompiled, "recompiled");
}

#[test]
fn shared_precomputation_across_edge_orders_stays_exact() {
    // Two functions whose edges agree as sets but diverge in successor
    // order (swapped brif arms) share one cached precomputation; both
    // must still answer exactly — liveness is edge-order-insensitive.
    let module = parse_module(
        "function %ab { block0(v0):
             v1 = iconst 1
             brif v0, block1(v1), block2
         block1(v2):
             jump block3
         block2:
             jump block3
         block3:
             return v0 }
         function %ba { block0(v0):
             v1 = iconst 1
             brif v0, block2, block1(v1)
         block1(v2):
             jump block3
         block2:
             jump block3
         block3:
             return v0 }",
    )
    .expect("parses");
    let engine = AnalysisEngine::new(EngineConfig {
        threads: 1,
        cache_capacity: 16,
        ..EngineConfig::default()
    });
    let mut session = engine.analyze(&module);
    assert_eq!(
        engine.cache_stats().misses,
        1,
        "edge order must not defeat sharing"
    );
    assert_eq!(engine.cache_stats().hits, 1);
    assert_session_matches_oracle(&mut session, &module, "edge orders");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random edit scripts: CFG-preserving edits never bump an epoch
    /// and never stale an answer; CFG-changing edits (critical-edge
    /// splitting) invalidate and recompute. After every step, all
    /// session answers match a fresh oracle.
    #[test]
    fn edits_revalidate_exactly(seed in 0u64..500, irr in 0u32..2) {
        let mut module = test_module(seed, if irr == 1 { 500 } else { 0 }, (seed % 2) as u32 * 600);
        let engine = AnalysisEngine::new(EngineConfig { threads: 2, cache_capacity: 64 , ..EngineConfig::default() });
        let mut session = engine.analyze(&module);
        let mut rng = SplitMix64::new(seed ^ 0xed17);

        for (id, _) in (0..module.len()).map(|i| (i, ())) {
            // CFG-preserving edit: sink a fresh use of a parameter into
            // a random block (position 0 is always legal).
            let func = module.func_mut(id);
            let param = func.params()[rng.index(func.params().len())];
            let target = func.block_by_index(rng.index(func.num_blocks()));
            func.insert_inst(
                target,
                0,
                fastlive_ir::InstData::Unary { op: fastlive_ir::UnaryOp::Ineg, arg: param },
            );
            prop_assert_eq!(session.epoch(id), 0, "instruction edit must not recompute");
            // Spot-check: the session sees the new use without recompute.
            let func = module.func(id);
            let oracle = FunctionLiveness::compute(func);
            for b in func.blocks() {
                prop_assert_eq!(
                    session.is_live_in(&module, id, param, b),
                    Ok(oracle.is_live_in(func, param, b)),
                    "after instruction edit: {} at {}", param, b
                );
            }
            prop_assert_eq!(session.epoch(id), 0);

            // CFG-changing edit: split critical edges. If any block was
            // created the next query must recompute (epoch bump).
            let created = fastlive_ir::split_critical_edges(module.func_mut(id));
            let func = module.func(id);
            let oracle = FunctionLiveness::compute(func);
            let v = func.params()[0];
            let q = func.block_by_index(rng.index(func.num_blocks()));
            let answer = session.is_live_in(&module, id, v, q);
            prop_assert_eq!(answer, Ok(oracle.is_live_in(func, v, q)));
            if created.is_empty() {
                prop_assert_eq!(session.epoch(id), 0, "no CFG change, no recompute");
            } else {
                prop_assert_eq!(session.epoch(id), 1, "CFG change must recompute once");
            }
        }

        // Full sweep at the end: everything still exact.
        assert_session_matches_oracle(&mut session, &module, "after edit script");
    }
}
