//! Helpers shared by the engine's integration-test binaries (each
//! binary compiles this module via `mod common;`).

#![allow(dead_code)] // not every binary uses every helper

use fastlive_engine::CfgShape;
use fastlive_ir::Module;

/// Number of distinct CFG fingerprints among `module`'s functions —
/// the expected miss (or disk-hit) count of a cold analysis.
pub fn distinct_shapes(module: &Module) -> u64 {
    let mut shapes: Vec<CfgShape> = module.iter().map(|(_, f)| CfgShape::of(f)).collect();
    let mut n = 0u64;
    while let Some(s) = shapes.pop() {
        if !shapes.contains(&s) {
            n += 1;
        }
    }
    n
}

/// A per-test scratch directory under the system temp dir, wiped on
/// entry (tests clean up on exit; a crashed run's leftovers must not
/// poison the next).
pub fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("fastlive-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}
