//! Concurrency properties of the lock-striped cache (ISSUE 4): N
//! threads released by a barrier onto overlapping fingerprints — cold,
//! warm-memory and warm-disk — must still compute (or disk-load) each
//! distinct shape exactly once (`dedup_hits` invariant survives
//! striping), per-stripe stats must sum to the engine totals, and
//! answers must be independent of the stripe count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Barrier;

use fastlive_core::FunctionLiveness;
use fastlive_engine::{AnalysisEngine, CacheStats, EngineConfig};
use fastlive_ir::Module;
use fastlive_workload::{generate_module, ModuleParams};

mod common;
use common::{distinct_shapes, temp_dir};

fn test_module(seed: u64, functions: usize) -> Module {
    generate_module(
        "stripe",
        ModuleParams {
            functions,
            min_blocks: 4,
            max_blocks: 18,
            irreducible_per_mille: 300,
            deep_live_per_mille: 400,
        },
        seed,
    )
}

fn assert_stripes_sum_to_totals(engine: &AnalysisEngine) -> CacheStats {
    let total = engine.cache_stats();
    let summed = engine
        .stripe_stats()
        .iter()
        .fold(CacheStats::default(), |acc, s| acc.add(s));
    assert_eq!(summed, total, "per-stripe stats must sum to the totals");
    total
}

/// The PR-3 dedup property, now under striping: N threads × one
/// barrier × overlapping shapes — exactly one computation per distinct
/// shape, across several stripe counts (including 1, the degenerate
/// single-mutex layout, and 3, which does not divide the shape count).
#[test]
fn barrier_storm_computes_each_shape_once_per_stripe_count() {
    const THREADS: usize = 8;
    let module = test_module(11, 6);
    let distinct = distinct_shapes(&module);
    for stripes in [1usize, 3, 8] {
        let engine = AnalysisEngine::new(EngineConfig {
            threads: 1,
            cache_capacity: 64,
            stripes,
            ..EngineConfig::default()
        });
        let barrier = Barrier::new(THREADS);
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let engine = &engine;
                let module = &module;
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    // Each thread walks the functions at a different
                    // starting offset so shape probes interleave.
                    for i in 0..module.len() {
                        let func = &module.functions()[(i + t) % module.len()];
                        let _ = engine.analysis_for(func);
                    }
                });
            }
        });
        let stats = assert_stripes_sum_to_totals(&engine);
        assert_eq!(
            stats.misses, distinct,
            "stripes={stripes}: one computation per distinct shape: {stats:?}"
        );
        assert_eq!(
            stats.hits + stats.dedup_hits + stats.misses,
            (THREADS * module.len()) as u64,
            "stripes={stripes}: every probe accounted for: {stats:?}"
        );
        assert_eq!(engine.cache_len() as u64, distinct);
    }
}

/// The same storm against a warm *disk*, cold memory: distinct shapes
/// are loaded from the store exactly once (`misses == disk_hits`, so
/// zero precomputations), under any interleaving.
#[test]
fn barrier_storm_on_warm_disk_loads_each_shape_once() {
    const THREADS: usize = 8;
    let module = test_module(29, 6);
    let distinct = distinct_shapes(&module);
    let dir = temp_dir("stripe-warmdisk");

    // Seed the store.
    let seeder = AnalysisEngine::new(EngineConfig {
        threads: 2,
        persist_dir: Some(dir.clone()),
        ..EngineConfig::default()
    });
    let _ = seeder.analyze(&module);
    assert_eq!(seeder.cache_stats().disk_misses, distinct);

    for stripes in [2usize, 8] {
        let engine = AnalysisEngine::new(EngineConfig {
            threads: 1,
            cache_capacity: 64,
            stripes,
            persist_dir: Some(dir.clone()),
            ..EngineConfig::default()
        });
        let barrier = Barrier::new(THREADS);
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let engine = &engine;
                let module = &module;
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    for i in 0..module.len() {
                        let func = &module.functions()[(i + t) % module.len()];
                        let _ = engine.analysis_for(func);
                    }
                });
            }
        });
        let stats = assert_stripes_sum_to_totals(&engine);
        assert_eq!(
            stats.misses, distinct,
            "stripes={stripes}: one resolution per distinct shape: {stats:?}"
        );
        assert_eq!(
            stats.disk_hits, distinct,
            "stripes={stripes}: all of them from disk: {stats:?}"
        );
        assert_eq!(
            stats.misses - stats.disk_hits,
            0,
            "stripes={stripes}: zero precomputations on a warm disk"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Stripe counts never change answers: 1, 2 and 8 stripes produce
/// bit-identical sessions (checked against a fresh per-function
/// analysis).
#[test]
fn stripe_count_does_not_change_answers() {
    let module = test_module(43, 5);
    for stripes in [1usize, 2, 8] {
        let engine = AnalysisEngine::new(EngineConfig {
            threads: 4,
            cache_capacity: 32,
            stripes,
            ..EngineConfig::default()
        });
        let mut session = engine.analyze(&module);
        for (id, func) in module.iter() {
            let oracle = FunctionLiveness::compute(func);
            for v in func.values() {
                for b in func.blocks() {
                    assert_eq!(
                        session.is_live_in(&module, id, v, b),
                        Ok(oracle.is_live_in(func, v, b)),
                        "stripes={stripes}: {} {v} at {b}",
                        func.name
                    );
                }
            }
        }
        assert_stripes_sum_to_totals(&engine);
    }
}

/// `analyze`'s own worker pool (not a hand-rolled barrier) through the
/// striped cache: warm reruns stay all-hit and per-stripe stats keep
/// summing after repeated traffic and evictions.
#[test]
fn analyze_pool_traffic_keeps_stripe_accounting_exact() {
    let module = test_module(57, 12);
    let distinct = distinct_shapes(&module);
    let engine = AnalysisEngine::new(EngineConfig {
        threads: 4,
        cache_capacity: 8, // small: force evictions across stripes
        stripes: 4,
        ..EngineConfig::default()
    });
    for round in 0..4 {
        let _ = engine.analyze(&module);
        let stats = assert_stripes_sum_to_totals(&engine);
        assert_eq!(
            stats.hits + stats.dedup_hits + stats.misses,
            ((round + 1) * module.len()) as u64,
            "round {round}: every probe accounted for: {stats:?}"
        );
        assert!(
            stats.misses >= distinct,
            "round {round}: at least one computation per distinct shape"
        );
    }
    // The capacity bound holds across stripes (ceil-distributed).
    assert!(
        engine.cache_len() <= 4 * 2usize,
        "4 stripes × ⌈8/4⌉ entries: {} cached",
        engine.cache_len()
    );
}

/// Concurrent probes through `analysis_for` share one `Arc` per shape
/// even when stripes and the disk tier are both in play.
#[test]
fn concurrent_probes_share_one_arc_per_shape() {
    const THREADS: usize = 6;
    let func = fastlive_ir::parse_function(
        "function %f { block0(v0): jump block1 block1: brif v0, block1, block2 block2: return v0 }",
    )
    .expect("parses");
    let dir = temp_dir("stripe-arc");
    let engine = AnalysisEngine::new(EngineConfig {
        threads: 1,
        cache_capacity: 16,
        stripes: 4,
        persist_dir: Some(dir.clone()),
        ..EngineConfig::default()
    });
    let barrier = Barrier::new(THREADS);
    let resolved = AtomicUsize::new(0);
    let handles: Vec<_> = std::thread::scope(|scope| {
        let joins: Vec<_> = (0..THREADS)
            .map(|_| {
                scope.spawn(|| {
                    barrier.wait();
                    let live = engine.analysis_for(&func).expect("no injected faults");
                    resolved.fetch_add(1, Ordering::Relaxed);
                    live
                })
            })
            .collect();
        joins
            .into_iter()
            .map(|j| j.join().expect("prober panicked"))
            .collect()
    });
    assert_eq!(resolved.load(Ordering::Relaxed), THREADS);
    for h in &handles[1..] {
        assert!(
            std::sync::Arc::ptr_eq(&handles[0], h),
            "all probers must share the single resolution"
        );
    }
    let stats = assert_stripes_sum_to_totals(&engine);
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.hits + stats.dedup_hits, (THREADS - 1) as u64);
    std::fs::remove_dir_all(&dir).ok();
}
