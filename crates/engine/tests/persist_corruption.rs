//! Adversarial serialization tests (ISSUE 4): every way a cache file
//! can rot — truncation at *every* prefix length, a flip of *every*
//! bit, zero fill, version and magic bumps (with the CRC patched so
//! the version gate itself is what trips), plus ≥256 proptest cases of
//! random byte mutations — must yield a clean `disk_rejects` miss:
//! never a panic, never a wrong answer, never a partial load. After a
//! reject the engine recomputes and overwrites, leaving a valid entry
//! behind.

use fastlive_core::LivenessChecker;
use fastlive_dataflow::oracle;
use fastlive_engine::persist::{crc32, decode, encode, LoadOutcome, PersistStore};
use fastlive_engine::{AnalysisEngine, CfgShape, EngineConfig};
use fastlive_ir::{parse_function, parse_module};
use fastlive_workload::{generate_function, GenParams};
use proptest::prelude::*;

mod common;

/// A small function whose encoded entry still exercises every format
/// section (multi-block, loop, branch).
const SMALL_SRC: &str = "function %small { block0(v0):
        jump block1
    block1:
        brif v0, block1, block2
    block2:
        return v0 }";

fn encoded_entry(src: &str) -> (CfgShape, Vec<u8>) {
    let f = parse_function(src).expect("parses");
    let shape = CfgShape::of(&f);
    let pre = LivenessChecker::compute(&shape.to_graph())
        .precomputation()
        .clone();
    let bytes = encode(&shape, &pre);
    (shape, bytes)
}

/// Re-stamps the trailing CRC so structural mutations (version bump,
/// magic change) are tested on their own gate, not masked by the
/// checksum.
fn fix_crc(bytes: &mut [u8]) {
    let n = bytes.len();
    let crc = crc32(&bytes[..n - 4]).to_le_bytes();
    bytes[n - 4..].copy_from_slice(&crc);
}

#[test]
fn every_truncation_is_rejected() {
    let (shape, bytes) = encoded_entry(SMALL_SRC);
    assert!(decode(&shape, &bytes).is_some(), "sanity: full entry loads");
    for len in 0..bytes.len() {
        assert!(
            decode(&shape, &bytes[..len]).is_none(),
            "prefix of {len}/{} bytes must be rejected",
            bytes.len()
        );
    }
    // Trailing junk is a reject too — an entry is exactly its bytes.
    let mut extended = bytes.clone();
    extended.push(0);
    assert!(decode(&shape, &extended).is_none());
}

#[test]
fn every_single_bit_flip_is_rejected() {
    let (shape, bytes) = encoded_entry(SMALL_SRC);
    for i in 0..bytes.len() {
        for bit in 0..8 {
            let mut mutated = bytes.clone();
            mutated[i] ^= 1 << bit;
            assert!(
                decode(&shape, &mutated).is_none(),
                "flip of bit {bit} in byte {i} must be rejected"
            );
        }
    }
}

#[test]
fn zero_fill_is_rejected() {
    let (shape, bytes) = encoded_entry(SMALL_SRC);
    // Whole file zeroed (same length), empty file, and each section
    // zeroed in place.
    assert!(decode(&shape, &vec![0u8; bytes.len()]).is_none());
    assert!(decode(&shape, &[]).is_none());
    // Sections of the v2 layout: magic+version, tag+reserved, hash+k,
    // encoding+body.
    for (lo, hi) in [(0usize, 8usize), (8, 16), (16, 28), (28, bytes.len() - 4)] {
        let mut mutated = bytes.clone();
        mutated[lo..hi].fill(0);
        assert!(
            decode(&shape, &mutated).is_none(),
            "zeroed bytes {lo}..{hi} must be rejected"
        );
    }
}

#[test]
fn version_and_magic_gates_hold_even_with_a_valid_crc() {
    let (shape, bytes) = encoded_entry(SMALL_SRC);
    // Future format version, CRC re-stamped: the version gate rejects.
    let mut vbump = bytes.clone();
    vbump[4] = vbump[4].wrapping_add(1);
    fix_crc(&mut vbump);
    assert!(
        decode(&shape, &vbump).is_none(),
        "a version-crossed file must degrade to a miss"
    );
    // Wrong magic, CRC re-stamped.
    let mut mbad = bytes.clone();
    mbad[0] = b'X';
    fix_crc(&mut mbad);
    assert!(decode(&shape, &mbad).is_none());
    // Unknown analysis tag (byte 8), CRC re-stamped: the tag gate
    // rejects before any body parsing.
    let mut tbad = bytes.clone();
    tbad[8] = 99;
    fix_crc(&mut tbad);
    assert!(decode(&shape, &tbad).is_none());
    // Nonzero reserved word, CRC re-stamped.
    let mut rbad = bytes.clone();
    rbad[12] = 1;
    fix_crc(&mut rbad);
    assert!(decode(&shape, &rbad).is_none());
    // Wrong embedded hash, CRC re-stamped.
    let mut hbad = bytes.clone();
    hbad[16] ^= 0xff;
    fix_crc(&mut hbad);
    assert!(decode(&shape, &hbad).is_none());
    // A shape-encoding word changed, CRC re-stamped: the exact-identity
    // gate (not just the hash) rejects — this is the collision net.
    let mut sbad = bytes.clone();
    sbad[28] = sbad[28].wrapping_add(1);
    fix_crc(&mut sbad);
    assert!(decode(&shape, &sbad).is_none());
}

/// A CRC-valid forgery whose analysis tag was swapped to the *other*
/// kind must never decode as that kind — and at the engine level it
/// lands in `disk_rejects`, then gets overwritten by a healthy entry.
#[test]
fn a_tag_swapped_forgery_never_decodes_as_the_other_analysis() {
    use fastlive_core::NullnessArtifact;
    use fastlive_engine::persist::{decode_artifact, encode_artifact};
    use fastlive_engine::AnalysisKind;

    let f = parse_function(SMALL_SRC).expect("parses");
    let shape = CfgShape::of(&f);

    // Liveness bytes re-tagged as nullness: the tag gate refuses them
    // even though the CRC is freshly valid. The forged body would even
    // parse as a plausible matrix — the tag must reject first.
    let pre = LivenessChecker::compute(&shape.to_graph())
        .precomputation()
        .clone();
    let mut forged_null = encode(&shape, &pre);
    forged_null[8..12].copy_from_slice(&AnalysisKind::Nullness.tag().to_le_bytes());
    fix_crc(&mut forged_null);
    assert!(decode_artifact::<NullnessArtifact>(&shape, &forged_null).is_none());
    assert!(decode(&shape, &forged_null).is_none(), "nor as liveness");

    // And the mirror image: nullness bytes re-tagged as liveness.
    let art = NullnessArtifact::compute(&shape.to_graph());
    let mut forged_live = encode_artifact(&shape, &art);
    forged_live[8..12].copy_from_slice(&AnalysisKind::Liveness.tag().to_le_bytes());
    fix_crc(&mut forged_live);
    assert!(decode(&shape, &forged_live).is_none());
    assert!(decode_artifact::<NullnessArtifact>(&shape, &forged_live).is_none());

    // Engine level: plant each forgery at the kind's salted path and
    // ask for that kind — one disk_rejects each, exact recomputation,
    // healthy overwrite.
    let module = parse_module(SMALL_SRC).expect("parses");
    let dir = common::temp_dir("corrupt-tag-forgery");
    let store = PersistStore::new(&dir);
    std::fs::create_dir_all(&dir).expect("store dir");
    std::fs::write(
        store.entry_path_for(&shape, AnalysisKind::Nullness),
        &forged_null,
    )
    .expect("plant nullness forgery");
    std::fs::write(store.entry_path(&shape), &forged_live).expect("plant liveness forgery");

    let engine = AnalysisEngine::new(EngineConfig {
        persist_dir: Some(dir.clone()),
        ..EngineConfig::default()
    });
    let _ = engine.analyze(&module);
    let art = engine.nullness_for(module.func(0)).expect("recomputes");
    assert!(art.is_current_for(module.func(0)));
    let stats = engine.cache_stats();
    assert_eq!(stats.disk_rejects, 2, "{stats:?}");
    assert_eq!(stats.disk_hits, 0, "{stats:?}");

    // Both paths were overwritten with valid same-kind entries.
    assert!(matches!(store.load(&shape), LoadOutcome::Hit(_)));
    assert!(matches!(
        store.load_artifact::<NullnessArtifact>(&shape),
        LoadOutcome::Hit(_)
    ));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn entry_for_one_shape_never_loads_for_another() {
    let (shape_a, bytes_a) = encoded_entry(SMALL_SRC);
    let (shape_b, bytes_b) =
        encoded_entry("function %other { block0(v0): jump block1 block1: return v0 }");
    assert!(decode(&shape_b, &bytes_a).is_none());
    assert!(decode(&shape_a, &bytes_b).is_none());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// ≥256 random mutations of a larger generated entry — byte
    /// stomps, truncations, extensions — must never panic and, unless
    /// the mutation is the identity, never load.
    #[test]
    fn random_mutations_never_panic_or_load(
        seed in 0u64..64,
        kind in 0u32..3,
        a in 0usize..usize::MAX,
        b in 0u8..=255u8,
        n in 1usize..48,
    ) {
        let (_, f) = generate_function(
            "mut",
            GenParams { target_blocks: 16, ..GenParams::default() },
            seed,
        );
        let shape = CfgShape::of(&f);
        let pre = LivenessChecker::compute(&shape.to_graph())
            .precomputation()
            .clone();
        let original = encode(&shape, &pre);
        let mut mutated = original.clone();
        match kind {
            // Stomp `n` pseudo-random bytes starting at a random offset.
            0 => {
                let start = a % mutated.len();
                for i in 0..n {
                    let idx = (start + i * 7) % mutated.len();
                    mutated[idx] = mutated[idx].wrapping_add(b).wrapping_add(i as u8);
                }
            }
            // Truncate to a random length.
            1 => mutated.truncate(a % mutated.len()),
            // Extend with junk.
            _ => mutated.extend(std::iter::repeat_n(b, n)),
        }
        let out = decode(&shape, &mutated); // must not panic
        if mutated != original {
            prop_assert!(out.is_none(), "a mutated entry must never load");
        } else {
            prop_assert_eq!(out.as_ref(), Some(&pre));
        }
    }
}

/// Engine-level degradation: a corrupted file costs one `disk_rejects`
/// and a recomputation, answers stay exact, and the bad entry is
/// overwritten with a valid one.
#[test]
fn engine_recovers_from_corrupt_files_and_overwrites_them() {
    let module = parse_module(SMALL_SRC).expect("parses");
    let dir = common::temp_dir("corrupt-engine-recover");

    // Populate, then vandalize every entry three different ways across
    // three rounds: truncate, bit-flip, zero-fill.
    let seeder = AnalysisEngine::new(EngineConfig {
        persist_dir: Some(dir.clone()),
        ..EngineConfig::default()
    });
    let _ = seeder.analyze(&module);
    let store = PersistStore::new(&dir);
    let shape = CfgShape::of(module.func(0));
    let path = store.entry_path(&shape);
    let valid = std::fs::read(&path).expect("entry was written");

    for (round, vandalize) in [
        (&|bytes: &[u8]| bytes[..bytes.len() / 2].to_vec()) as &dyn Fn(&[u8]) -> Vec<u8>,
        &|bytes: &[u8]| {
            let mut m = bytes.to_vec();
            m[bytes.len() / 3] ^= 0x10;
            m
        },
        &|bytes: &[u8]| vec![0u8; bytes.len()],
    ]
    .into_iter()
    .enumerate()
    {
        std::fs::write(&path, vandalize(&valid)).expect("vandalize");
        let engine = AnalysisEngine::new(EngineConfig {
            persist_dir: Some(dir.clone()),
            ..EngineConfig::default()
        });
        let mut session = engine.analyze(&module);
        let stats = engine.cache_stats();
        assert_eq!(stats.disk_rejects, 1, "round {round}: {stats:?}");
        assert_eq!(stats.disk_hits, 0, "round {round}: {stats:?}");
        // Exact answers despite the corruption.
        let func = module.func(0);
        for v in func.values() {
            for b in func.blocks() {
                assert_eq!(
                    session.is_live_in(&module, 0, v, b),
                    Ok(oracle::live_in_value(func, v, b)),
                    "round {round}: {v} at {b}"
                );
            }
        }
        // The reject was overwritten: the store is healthy again.
        assert!(
            matches!(store.load(&shape), LoadOutcome::Hit(_)),
            "round {round}: recomputation must overwrite the bad entry"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A vanished persist directory (deleted mid-flight) degrades to
/// misses and rewrites — never a panic.
#[test]
fn deleted_directory_degrades_to_misses() {
    let module = parse_module(SMALL_SRC).expect("parses");
    let dir = common::temp_dir("corrupt-deleted-dir");
    let engine = AnalysisEngine::new(EngineConfig {
        persist_dir: Some(dir.clone()),
        ..EngineConfig::default()
    });
    let _ = engine.analyze(&module);
    std::fs::remove_dir_all(&dir).expect("delete store out from under the engine");
    // Force a fresh probe of the same shape: new engine, same dir.
    let engine2 = AnalysisEngine::new(EngineConfig {
        persist_dir: Some(dir.clone()),
        ..EngineConfig::default()
    });
    let _ = engine2.analyze(&module);
    let stats = engine2.cache_stats();
    assert_eq!(stats.disk_misses, 1, "{stats:?}");
    std::fs::remove_dir_all(&dir).ok();
}
