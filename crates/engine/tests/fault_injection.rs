//! Scripted disk-fault campaigns against the three-tier cache: ENOSPC
//! storms, torn writes at every byte boundary, flaky reads, quarantine
//! and the circuit breaker's trip → backoff → restore cycle. The
//! standing contract under every schedule: **zero process aborts,
//! every query gets the correct answer or a typed error, and answers
//! stay byte-identical to a from-scratch analysis.**

mod common;

use std::sync::Arc;
use std::time::Duration;

use common::{distinct_shapes, temp_dir};
use fastlive_core::FunctionLiveness;
use fastlive_engine::vfs::{Fault, FaultRule, FaultVfs, OpKind};
use fastlive_engine::{AnalysisEngine, BreakerConfig, BreakerState, CfgShape, EngineConfig};
use fastlive_ir::{parse_module, Module};
use fastlive_workload::{
    generate_campaigns, generate_module, CampaignParams, FaultOp, FaultSpec, ModuleParams,
};

fn test_module(seed: u64) -> Module {
    generate_module(
        "fi",
        ModuleParams {
            functions: 8,
            min_blocks: 4,
            max_blocks: 20,
            irreducible_per_mille: 150,
            deep_live_per_mille: 300,
        },
        seed,
    )
}

/// Every session answer equals a from-scratch per-function analysis.
fn assert_exact(engine: &AnalysisEngine, module: &Module, label: &str) {
    let mut session = engine.analyze(module);
    for (id, func) in module.iter() {
        let oracle = FunctionLiveness::compute(func);
        for v in func.values() {
            for b in func.blocks() {
                assert_eq!(
                    session.is_live_in(module, id, v, b),
                    Ok(oracle.is_live_in(func, v, b)),
                    "{label}: {} live-in {v} at {b}",
                    func.name
                );
            }
        }
    }
}

/// An unbounded ENOSPC storm on writes: nothing persists, every
/// computation still succeeds, the failures land in `disk_errors`
/// (never in `disk_rejects`), and answers stay exact.
#[test]
fn enospc_storm_never_loses_a_computation() {
    let module = test_module(1);
    let dir = temp_dir("fi-enospc");
    let fv = Arc::new(FaultVfs::new(vec![FaultRule::every(
        OpKind::Write,
        Fault::enospc(),
    )]));
    let engine = AnalysisEngine::with_vfs(
        EngineConfig {
            threads: 2,
            persist_dir: Some(dir.clone()),
            ..EngineConfig::default()
        },
        fv.clone(),
    );
    assert_exact(&engine, &module, "enospc storm");
    let stats = engine.cache_stats();
    assert_eq!(stats.disk_rejects, 0, "{stats:?}");
    assert!(
        stats.disk_errors >= distinct_shapes(&module),
        "every failed write-through must be accounted: {stats:?}"
    );
    assert!(fv.faults_injected() > 0);
    // The store holds no committed entries (tmp files were cleaned up
    // best-effort; the atomic-rename protocol never published one).
    let entries = std::fs::read_dir(&dir)
        .map(|rd| {
            rd.flatten()
                .filter(|e| e.path().extension().is_some_and(|x| x == "flpc"))
                .count()
        })
        .unwrap_or(0);
    assert_eq!(entries, 0, "no entry may be published under ENOSPC");
    std::fs::remove_dir_all(&dir).ok();
}

/// A torn write at **every** byte boundary of the entry: each truncated
/// prefix must decode to a clean reject (recompute + overwrite), never
/// a wrong answer, and a healthy rewrite heals the store.
#[test]
fn torn_write_at_every_boundary_is_a_clean_reject() {
    use fastlive_core::LivenessChecker;
    use fastlive_engine::persist::{LoadOutcome, PersistStore};

    let module = parse_module(
        "function %f { block0(v0): jump block1
             block1: brif v0, block1, block2 block2: return v0 }",
    )
    .expect("parses");
    let shape = CfgShape::of(module.func(0));
    let pre = LivenessChecker::compute(&shape.to_graph())
        .precomputation()
        .clone();

    let dir = temp_dir("fi-torn");
    let fv = Arc::new(FaultVfs::healthy());
    let store = PersistStore::with_vfs(&dir, fv.clone());
    store.save(&shape, &pre).expect("healthy save");
    let full_len = match store.load(&shape) {
        LoadOutcome::Hit(got) => {
            assert_eq!(got, pre);
            std::fs::metadata(store.entry_path(&shape))
                .expect("entry exists")
                .len() as usize
        }
        other => panic!("expected hit, got {other:?}"),
    };

    for cut in 0..full_len {
        fv.set_rules(vec![FaultRule::every(OpKind::Write, Fault::TornWrite(cut))]);
        store
            .save(&shape, &pre)
            .expect("a torn write lies: it reports success");
        fv.set_rules(vec![]);
        match store.load(&shape) {
            LoadOutcome::Reject => {}
            LoadOutcome::Hit(got) => {
                panic!("cut={cut}: a {cut}-byte prefix of {full_len} decoded as a hit: {got:?}")
            }
            other => panic!("cut={cut}: expected reject, got {other:?}"),
        }
        // Healthy rewrite heals the entry.
        store.save(&shape, &pre).expect("healing save");
        assert!(
            matches!(store.load(&shape), LoadOutcome::Hit(_)),
            "cut={cut}: store must heal"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Consecutive disk errors trip the breaker (memory-only operation,
/// probes skipped), the backoff holds, and a recovered disk restores
/// the tier through a half-open probe.
#[test]
fn breaker_trips_backs_off_and_restores() {
    let module = test_module(3);
    let dir = temp_dir("fi-breaker");
    let fv = Arc::new(FaultVfs::new(vec![
        FaultRule::every(OpKind::Metadata, Fault::eio()),
        FaultRule::every(OpKind::Read, Fault::eio()),
        FaultRule::every(OpKind::Write, Fault::eio()),
    ]));
    let engine = AnalysisEngine::with_vfs(
        EngineConfig {
            threads: 1,
            cache_capacity: 0, // force every probe to the disk tier
            persist_dir: Some(dir.clone()),
            disk_breaker: BreakerConfig {
                trip_threshold: 3,
                initial_backoff: Duration::from_millis(40),
                max_backoff: Duration::from_millis(200),
                ..BreakerConfig::default()
            },
            ..EngineConfig::default()
        },
        fv.clone(),
    );

    // Sick disk: answers stay exact throughout.
    assert_exact(&engine, &module, "sick disk");
    let health = engine.health();
    assert!(health.persist_configured);
    assert_eq!(health.disk_state, BreakerState::Open, "{health:?}");
    assert!(health.disk_trips >= 1, "{health:?}");
    assert!(health.cache.disk_errors >= 3, "{health:?}");

    // While open, further probes are skipped, not attempted.
    let skipped_before = engine.health().disk_probes_skipped;
    assert_exact(&engine, &module, "breaker open");
    let health = engine.health();
    assert!(
        health.disk_probes_skipped > skipped_before,
        "open breaker must skip probes: {health:?}"
    );

    // Disk recovers; after the backoff a half-open probe restores the
    // tier and write-through resumes.
    fv.set_rules(vec![]);
    std::thread::sleep(Duration::from_millis(250));
    assert_exact(&engine, &module, "recovered disk");
    let health = engine.health();
    assert_eq!(health.disk_state, BreakerState::Closed, "{health:?}");
    assert!(health.disk_restores >= 1, "{health:?}");
    assert_eq!(health.consecutive_disk_failures, 0, "{health:?}");

    // The healed tier now actually serves: committed entries exist.
    let entries = std::fs::read_dir(&dir)
        .map(|rd| rd.flatten().count())
        .unwrap_or(0);
    assert!(entries > 0, "restored tier must write entries");
    std::fs::remove_dir_all(&dir).ok();
}

/// An entry that keeps rejecting *and* cannot be overwritten is
/// quarantined after the configured streak: the disk stops being
/// probed for that one shape while everything else proceeds normally.
#[test]
fn repeatedly_rejecting_entry_is_quarantined() {
    use fastlive_core::LivenessChecker;
    use fastlive_engine::persist::PersistStore;

    let module =
        parse_module("function %f { block0(v0): jump block1 block1: return v0 }").expect("parses");
    let shape = CfgShape::of(module.func(0));
    let dir = temp_dir("fi-quarantine");

    // Plant a sick entry, then make every overwrite fail (EACCES): the
    // engine can neither use nor heal the file.
    {
        let healthy = PersistStore::with_vfs(&dir, Arc::new(FaultVfs::healthy()));
        let pre = LivenessChecker::compute(&shape.to_graph())
            .precomputation()
            .clone();
        healthy.save(&shape, &pre).expect("plant");
        let path = healthy.entry_path(&shape);
        let mut bytes = std::fs::read(&path).expect("read entry");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).expect("corrupt entry");
    }

    let fv = Arc::new(FaultVfs::new(vec![FaultRule::every(
        OpKind::Write,
        Fault::eacces(),
    )]));
    let engine = AnalysisEngine::with_vfs(
        EngineConfig {
            threads: 1,
            cache_capacity: 0, // every probe consults the disk tier
            persist_dir: Some(dir.clone()),
            disk_breaker: BreakerConfig {
                trip_threshold: 0, // isolate quarantine from the breaker
                quarantine_threshold: 2,
                ..BreakerConfig::default()
            },
            ..EngineConfig::default()
        },
        fv,
    );

    let func = module.func(0);
    for _ in 0..5 {
        let live = engine.analysis_for(func).expect("compute always works");
        let oracle = FunctionLiveness::compute(func);
        for v in func.values() {
            for b in func.blocks() {
                assert_eq!(live.is_live_in(func, v, b), oracle.is_live_in(func, v, b));
            }
        }
    }
    let stats = engine.cache_stats();
    assert_eq!(
        stats.disk_rejects, 2,
        "rejects must stop at the quarantine threshold: {stats:?}"
    );
    let health = engine.health();
    assert_eq!(health.quarantined_shapes, 1, "{health:?}");
    std::fs::remove_dir_all(&dir).ok();
}

/// The workload crate's generated campaigns, run end to end: translate
/// each scripted schedule onto a `FaultVfs`, analyze the campaign's own
/// module, and hold every answer to the oracle. No schedule may abort
/// the process or corrupt an answer.
#[test]
fn generated_fault_campaigns_never_corrupt_answers() {
    let campaigns = generate_campaigns(
        CampaignParams {
            campaigns: 6,
            functions: 4,
            max_blocks: 12,
            torn_bound: 48,
        },
        0xca3f,
    );
    for campaign in &campaigns {
        let module = generate_module("fc", campaign.module, campaign.module_seed);
        let rules: Vec<FaultRule> = campaign
            .events
            .iter()
            .map(|e| {
                let op = match e.op {
                    FaultOp::Read => OpKind::Read,
                    FaultOp::Write => OpKind::Write,
                    FaultOp::Rename => OpKind::Rename,
                    FaultOp::Remove => OpKind::Remove,
                    FaultOp::Metadata => OpKind::Metadata,
                    FaultOp::ReadDir => OpKind::ReadDir,
                    FaultOp::CreateDir => OpKind::CreateDir,
                    FaultOp::Any => OpKind::Any,
                };
                let fault = match e.fault {
                    FaultSpec::Errno(code) => Fault::Errno(code),
                    FaultSpec::TornWrite(n) => Fault::TornWrite(n),
                    FaultSpec::DelayMicros(us) => Fault::Delay(Duration::from_micros(us)),
                };
                FaultRule::window(op, e.skip as usize, e.count.min(1 << 20) as usize, fault)
            })
            .collect();
        let dir = temp_dir(&format!("fi-campaign-{}", campaign.name));
        let engine = AnalysisEngine::with_vfs(
            EngineConfig {
                threads: 2,
                persist_dir: Some(dir.clone()),
                disk_breaker: BreakerConfig {
                    trip_threshold: 3,
                    initial_backoff: Duration::from_millis(20),
                    ..BreakerConfig::default()
                },
                ..EngineConfig::default()
            },
            Arc::new(FaultVfs::new(rules)),
        );
        assert_exact(&engine, &module, &campaign.name);
        if campaign.expect_persistent_failure {
            let health = engine.health();
            assert!(
                health.cache.disk_errors > 0,
                "{}: a persistent-failure schedule must surface disk errors: {health:?}",
                campaign.name
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Sanity for the default configuration: a healthy `FaultVfs` behaves
/// exactly like `StdVfs` — same stats, same store contents.
#[test]
fn healthy_fault_vfs_matches_std_vfs_end_to_end() {
    let module = test_module(9);
    let dir_std = temp_dir("fi-std");
    let dir_fv = temp_dir("fi-fv");

    let std_engine = AnalysisEngine::new(EngineConfig {
        threads: 1,
        persist_dir: Some(dir_std.clone()),
        ..EngineConfig::default()
    });
    let fv_engine = AnalysisEngine::with_vfs(
        EngineConfig {
            threads: 1,
            persist_dir: Some(dir_fv.clone()),
            ..EngineConfig::default()
        },
        Arc::new(FaultVfs::healthy()),
    );
    let _ = std_engine.analyze(&module);
    let _ = fv_engine.analyze(&module);
    assert_eq!(std_engine.cache_stats(), fv_engine.cache_stats());

    let list = |d: &std::path::Path| -> Vec<String> {
        let mut names: Vec<String> = std::fs::read_dir(d)
            .map(|rd| {
                rd.flatten()
                    .map(|e| e.file_name().to_string_lossy().into_owned())
                    .collect()
            })
            .unwrap_or_default();
        names.sort();
        names
    };
    assert_eq!(list(&dir_std), list(&dir_fv), "identical store contents");
    std::fs::remove_dir_all(&dir_std).ok();
    std::fs::remove_dir_all(&dir_fv).ok();
}
