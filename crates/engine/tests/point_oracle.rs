//! The point-query/oracle equivalence property (ISSUE 3 acceptance):
//! every [`EngineSession::is_live_at`] answer must match the
//! per-point reference oracle of `fastlive-dataflow` — a literal
//! backward simulation inside the queried block seeded with the
//! path-search live-out — across thread counts, across cold and warm
//! cache states, on reducible and goto-injected irreducible modules.
//! The fast path must also agree bit-for-bit with the retired
//! chain-walk shim it replaced, and point queries must never move
//! `cfg_version` (the ROADMAP point-API invariant).

use fastlive_core::FunctionLiveness;
use fastlive_dataflow::oracle;
use fastlive_engine::{AnalysisEngine, EngineConfig, EngineSession};
use fastlive_ir::Module;
use fastlive_workload::{generate_module, ModuleParams};
use proptest::prelude::*;

fn test_module(seed: u64, irreducible_per_mille: u32, deep_live_per_mille: u32) -> Module {
    generate_module(
        "pointprop",
        ModuleParams {
            functions: 4,
            min_blocks: 4,
            max_blocks: 20,
            irreducible_per_mille,
            deep_live_per_mille,
        },
        seed,
    )
}

/// Every `(value, point)` answer of `session` equals the brute-force
/// per-point oracle and the chain-walk reference, and issuing the
/// queries leaves `cfg_version` untouched.
fn assert_points_match_oracle(session: &mut EngineSession<'_>, module: &Module, label: &str) {
    for (id, func) in module.iter() {
        let version_before = func.cfg_version();
        let standalone = FunctionLiveness::compute(func);
        for v in func.values() {
            for b in func.blocks() {
                for p in func.block_points(b) {
                    let got = session
                        .is_live_at(module, id, v, p)
                        .expect("no detached definitions in generated modules");
                    let want = oracle::live_at_value(func, v, p);
                    assert_eq!(got, want, "{label}: {} {v} at {p}", func.name);
                    // The fast suffix scan and the retired chain-walk
                    // shim are the same function.
                    assert_eq!(
                        standalone.is_live_at_chain_walk(func, v, p),
                        Ok(want),
                        "{label}: chain walk diverged for {} {v} at {p}",
                        func.name
                    );
                }
            }
            assert_eq!(
                session.is_live_after_def(module, id, v),
                Ok(oracle::live_at_value(
                    func,
                    v,
                    func.def_point(v).expect("definition exists")
                )),
                "{label}: {} live-after-def {v}",
                func.name
            );
        }
        assert_eq!(
            func.cfg_version(),
            version_before,
            "{label}: point queries must never bump cfg_version"
        );
        assert_eq!(
            session.epoch(id),
            0,
            "{label}: point queries must never recompute"
        );
    }
}

#[test]
fn point_queries_match_oracle_across_threads_and_cache_states() {
    for seed in 0..3u64 {
        for per_mille in [0u32, 400] {
            // Odd seeds opt into the deep-live generator bias so point
            // queries sweep live-through-but-not-used blocks too.
            let deep = if seed % 2 == 1 { 700 } else { 0 };
            let module = test_module(seed * 37 + per_mille as u64, per_mille, deep);
            for threads in [1usize, 4] {
                for cache_capacity in [0usize, 64] {
                    let engine = AnalysisEngine::new(EngineConfig {
                        threads,
                        cache_capacity,
                        ..EngineConfig::default()
                    });
                    let mut cold = engine.analyze(&module);
                    assert_points_match_oracle(
                        &mut cold,
                        &module,
                        &format!("cold s={seed} irr={per_mille} t={threads} c={cache_capacity}"),
                    );
                    // Warm: the same engine re-analyzes; with caching
                    // on, every probe is a hit (or an in-flight dedup).
                    let misses_before = engine.cache_stats().misses;
                    let mut warm = engine.analyze(&module);
                    if cache_capacity > 0 {
                        assert_eq!(
                            engine.cache_stats().misses,
                            misses_before,
                            "warm analysis must not precompute"
                        );
                    }
                    assert_points_match_oracle(
                        &mut warm,
                        &module,
                        &format!("warm s={seed} irr={per_mille} t={threads} c={cache_capacity}"),
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random modules (reducibility mixed in by the seed), 4 threads,
    /// warm cache: full point sweep against the oracle, then an
    /// instruction-level edit, then a re-sweep of the edited function
    /// — the point answers must track the edit with zero
    /// recomputation.
    #[test]
    fn point_answers_track_instruction_edits(seed in 0u64..300, irr in 0u32..2) {
        let mut module = test_module(seed, if irr == 1 { 350 } else { 0 }, (seed % 2) as u32 * 600);
        let engine = AnalysisEngine::new(EngineConfig { threads: 4, cache_capacity: 64 , ..EngineConfig::default() });
        let mut session = engine.analyze(&module);
        assert_points_match_oracle(&mut session, &module, "pre-edit");

        // Sink a fresh use of a parameter into the last block of each
        // function (position 0 is always legal), then re-check.
        for id in 0..module.len() {
            let func = module.func_mut(id);
            let param = func.params()[0];
            let target = func.block_by_index(func.num_blocks() - 1);
            func.insert_inst(
                target,
                0,
                fastlive_ir::InstData::Unary { op: fastlive_ir::UnaryOp::Bnot, arg: param },
            );
        }
        assert_points_match_oracle(&mut session, &module, "post-edit");
    }
}
