//! Engine scaling: module-level analysis wall time across worker
//! thread counts, and the fingerprint-cache warm path. The committed
//! `BENCH_engine.json` (emitted by `--bin bench_engine_json`) reports
//! the same scenarios with machine metadata.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fastlive_engine::{AnalysisEngine, EngineConfig};
use fastlive_workload::{generate_module, ModuleParams};

fn bench_engine(c: &mut Criterion) {
    let module = generate_module(
        "bench",
        ModuleParams {
            functions: 64,
            min_blocks: 8,
            max_blocks: 48,
            irreducible_per_mille: 100,
            ..ModuleParams::default()
        },
        0xbead,
    );
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    group.throughput(Throughput::Elements(module.len() as u64));

    // Cold precompute throughput at several worker counts (cache off).
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("analyze_cold", threads),
            &module,
            |b, m| {
                b.iter(|| {
                    AnalysisEngine::new(EngineConfig {
                        threads,
                        cache_capacity: 0,
                        ..EngineConfig::default()
                    })
                    .analyze(m)
                    .num_functions()
                })
            },
        );
    }

    // Warm path: CFG-identical re-analysis through the cache.
    let engine = AnalysisEngine::new(EngineConfig {
        threads: 1,
        cache_capacity: 1024,
        ..EngineConfig::default()
    });
    let _ = engine.analyze(&module);
    group.bench_with_input(BenchmarkId::new("analyze_warm", 1), &module, |b, m| {
        b.iter(|| engine.analyze(m).num_functions())
    });
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
