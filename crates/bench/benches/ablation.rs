//! Ablations over the paper's design choices:
//!
//! * §4.1 dominance-ordered iteration with subtree skipping, on vs off
//!   (Theorem 2's practical payoff);
//! * bitset versus sorted-array storage for `R`/`T` (§6.1/§8);
//! * the loop-nesting-forest checker (§8 outlook) versus the `T` matrix;
//! * Cooper–Harvey–Kennedy versus Lengauer–Tarjan dominators (a §2
//!   prerequisite both engines share).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fastlive_cfg::{lengauer_tarjan, DfsTree, DomTree};
use fastlive_core::{LivenessChecker, LoopForestChecker, SortedLivenessChecker};
use fastlive_ir::Function;
use fastlive_workload::{generate_function, GenParams};

fn test_function() -> Function {
    let params = GenParams {
        target_blocks: 64,
        max_depth: 6,
        ..GenParams::default()
    };
    generate_function("ablate", params, 0xab1a7e).1
}

/// A deterministic batch of (def, use, q) probes over the CFG.
fn probes(func: &Function) -> Vec<(u32, u32, u32)> {
    let n = func.num_blocks() as u32;
    let mut out = Vec::new();
    let mut x = 0x12345678u32;
    for _ in 0..512 {
        x = x.wrapping_mul(1664525).wrapping_add(1013904223);
        let d = x % n;
        let u = (x >> 8) % n;
        let q = (x >> 16) % n;
        out.push((d, u, q));
    }
    out
}

fn bench_ablation(c: &mut Criterion) {
    let func = test_function();
    let probes = probes(&func);
    let mut group = c.benchmark_group("ablation");
    group.sample_size(30);

    // Subtree skipping on/off.
    let mut skipping = LivenessChecker::compute(&func);
    skipping.set_subtree_skipping(true);
    let mut linear = LivenessChecker::compute(&func);
    linear.set_subtree_skipping(false);
    group.bench_function("queries/subtree_skipping", |b| {
        b.iter(|| run_probes(&skipping, &probes))
    });
    group.bench_function("queries/no_skipping", |b| {
        b.iter(|| run_probes(&linear, &probes))
    });

    // Bitset vs sorted-array vs loop-forest query engines.
    let sorted = SortedLivenessChecker::compute(&func);
    group.bench_function("queries/sorted_arrays", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for &(d, u, q) in &probes {
                hits += sorted.is_live_in(d, &[u], q) as usize;
            }
            hits
        })
    });
    if let Some(forest) = LoopForestChecker::compute(&func) {
        group.bench_function("queries/loop_forest", |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for &(d, u, q) in &probes {
                    hits += forest.is_live_in(d, &[u], q) as usize;
                }
                hits
            })
        });
    }

    // Dominator construction: CHK vs LT.
    let dfs = DfsTree::compute(&func);
    group.bench_with_input(BenchmarkId::new("dominators", "chk"), &func, |b, f| {
        b.iter(|| DomTree::compute(f, &dfs))
    });
    group.bench_with_input(
        BenchmarkId::new("dominators", "lengauer_tarjan"),
        &func,
        |b, f| b.iter(|| lengauer_tarjan::immediate_dominators(f, &dfs)),
    );
    group.finish();
}

fn run_probes(live: &LivenessChecker, probes: &[(u32, u32, u32)]) -> usize {
    let mut hits = 0usize;
    for &(d, u, q) in probes {
        hits += live.is_live_in(d, &[u], q) as usize;
    }
    hits
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
