//! Query cost — the right half of Table 2: the recorded SSA-destruction
//! query stream replayed against the checker (Algorithm 3) and the
//! LAO-style binary-search lookup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fastlive_bench::{prepare_suite, replay_checker, replay_native, PreparedProc};
use fastlive_core::FunctionLiveness;
use fastlive_dataflow::{LaoLiveness, VarUniverse};
use fastlive_workload::{generate_suite, SPEC2000_INT};

fn prepared() -> Vec<PreparedProc> {
    // 256.bzip2 at small scale: a handful of mid-size procedures.
    let suite = generate_suite(&SPEC2000_INT[8], 40, 0xbe9c);
    prepare_suite(&suite)
}

fn bench_query(c: &mut Criterion) {
    let procs = prepared();
    let mut group = c.benchmark_group("query");
    group.sample_size(30);

    let with_queries: Vec<&PreparedProc> =
        procs.iter().filter(|p| !p.queries.is_empty()).collect();
    for (i, p) in with_queries.iter().take(3).enumerate() {
        let checker = FunctionLiveness::compute(&p.func);
        let lao = LaoLiveness::compute(&p.func, &VarUniverse::phi_related(&p.func));
        group.throughput(Throughput::Elements(p.queries.len() as u64));
        group.bench_with_input(BenchmarkId::new("new_checker", i), p, |b, p| {
            b.iter(|| replay_checker(&checker, &p.func, &p.queries))
        });
        group.bench_with_input(BenchmarkId::new("native_lookup", i), p, |b, p| {
            b.iter(|| replay_native(&lao, &p.queries))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_query);
criterion_main!(benches);
