//! Query cost — the right half of Table 2: the recorded SSA-destruction
//! query stream replayed against the checker (Algorithm 3) and the
//! LAO-style binary-search lookup. Plus two groups for this repo's own
//! optimizations: `query_loop` (the seed's scalar candidate loop vs.
//! the word-masked scan, widest on large CFGs whose `T_q` rows span
//! many words) and `batch` (one `BatchLiveness` matrix pass vs. the
//! scalar-query materialization vs. iterative data-flow).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fastlive_bench::{
    dominance_probes, prepare_suite, replay_checker, replay_native, run_probes, run_probes_scalar,
    sized_function, PreparedProc,
};
use fastlive_core::{FunctionLiveness, LivenessChecker};
use fastlive_dataflow::{IterativeLiveness, LaoLiveness, VarUniverse};
use fastlive_workload::{generate_suite, random_digraph, SPEC2000_INT};

fn prepared() -> Vec<PreparedProc> {
    // 256.bzip2 at small scale: a handful of mid-size procedures.
    let suite = generate_suite(&SPEC2000_INT[8], 40, 0xbe9c);
    prepare_suite(&suite)
}

fn bench_query(c: &mut Criterion) {
    let procs = prepared();
    let mut group = c.benchmark_group("query");
    group.sample_size(30);

    let with_queries: Vec<&PreparedProc> = procs.iter().filter(|p| !p.queries.is_empty()).collect();
    for (i, p) in with_queries.iter().take(3).enumerate() {
        let checker = FunctionLiveness::compute(&p.func);
        let lao = LaoLiveness::compute(&p.func, &VarUniverse::phi_related(&p.func));
        group.throughput(Throughput::Elements(p.queries.len() as u64));
        group.bench_with_input(BenchmarkId::new("new_checker", i), p, |b, p| {
            b.iter(|| replay_checker(&checker, &p.func, &p.queries))
        });
        group.bench_with_input(BenchmarkId::new("native_lookup", i), p, |b, p| {
            b.iter(|| replay_native(&lao, &p.func, &p.queries))
        });
    }
    group.finish();
}

/// Seed scalar loop vs. word-masked scan on the same probe stream:
/// structured CFGs (Theorem 2, ~1 candidate — the parity check) and
/// irreducible CFGs with dense retreating edges where negative queries
/// scan wide `T_q` candidate intervals (the word-masked win).
fn bench_query_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_loop");
    group.sample_size(30);
    for target in [64usize, 256, 1024] {
        let func = sized_function(target, 0xfeed + target as u64);
        let live = LivenessChecker::compute(&func);
        let probes = dominance_probes(&live, 512, 0x9e37);
        group.throughput(Throughput::Elements(probes.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("word_masked", live.dom().num_reachable()),
            &probes,
            |b, p| b.iter(|| run_probes(&live, p)),
        );
        group.bench_with_input(
            BenchmarkId::new("seed_scalar", live.dom().num_reachable()),
            &probes,
            |b, p| b.iter(|| run_probes_scalar(&live, p)),
        );
    }
    for n in [256u32, 1024] {
        let g = random_digraph(n, 0xabcd, n as usize * 10);
        let live = LivenessChecker::compute(&g);
        // use = def is unreachable from every candidate: full scans.
        let probes: Vec<(u32, u32, u32)> = dominance_probes(&live, 512, 0x9e37)
            .into_iter()
            .map(|(d, _, q)| (d, d, q))
            .collect();
        group.throughput(Throughput::Elements(probes.len() as u64));
        group.bench_with_input(BenchmarkId::new("word_masked_wide", n), &probes, |b, p| {
            b.iter(|| run_probes(&live, p))
        });
        group.bench_with_input(BenchmarkId::new("seed_scalar_wide", n), &probes, |b, p| {
            b.iter(|| run_probes_scalar(&live, p))
        });
    }
    group.finish();
}

/// Whole-function set materialization: one batched matrix pass vs. a
/// scalar query per (value, block) vs. the iterative solver.
fn bench_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch");
    group.sample_size(20);
    for target in [32usize, 128, 512] {
        let func = sized_function(target, 0xba7c + target as u64);
        let live = FunctionLiveness::compute(&func);
        let blocks = func.num_blocks();
        group.bench_with_input(BenchmarkId::new("batch_matrix", blocks), &func, |b, f| {
            b.iter(|| live.batch(f))
        });
        group.bench_with_input(BenchmarkId::new("scalar_queries", blocks), &func, |b, f| {
            b.iter(|| live.live_sets_scalar(f))
        });
        group.bench_with_input(
            BenchmarkId::new("iterative_dataflow", blocks),
            &func,
            |b, f| {
                let u = VarUniverse::all(f);
                b.iter(|| IterativeLiveness::compute(f, &u))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_query, bench_query_loop, bench_batch);
criterion_main!(benches);
