//! Precomputation cost of every liveness engine across procedure sizes
//! — the left half of Table 2, generalized into a Criterion sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fastlive_core::{FunctionLiveness, SortedLivenessChecker};
use fastlive_dataflow::{AppelLiveness, IterativeLiveness, LaoLiveness, VarUniverse};
use fastlive_ir::Function;
use fastlive_workload::{generate_function, GenParams};

fn function_of_size(target: usize) -> Function {
    let params = GenParams {
        target_blocks: target,
        max_depth: 3 + (target / 16).min(6) as u32,
        ..GenParams::default()
    };
    generate_function(&format!("p{target}"), params, 0x9000 + target as u64).1
}

fn bench_precompute(c: &mut Criterion) {
    let mut group = c.benchmark_group("precompute");
    group.sample_size(20);
    for target in [10usize, 36, 128, 512] {
        let func = function_of_size(target);
        let blocks = func.num_blocks();
        group.bench_with_input(BenchmarkId::new("new_checker", blocks), &func, |b, f| {
            b.iter(|| FunctionLiveness::compute(f))
        });
        group.bench_with_input(BenchmarkId::new("native_lao_phi", blocks), &func, |b, f| {
            let u = VarUniverse::phi_related(f);
            b.iter(|| LaoLiveness::compute(f, &u))
        });
        group.bench_with_input(
            BenchmarkId::new("native_lao_full", blocks),
            &func,
            |b, f| {
                let u = VarUniverse::all(f);
                b.iter(|| LaoLiveness::compute(f, &u))
            },
        );
        group.bench_with_input(BenchmarkId::new("bitvector_full", blocks), &func, |b, f| {
            let u = VarUniverse::all(f);
            b.iter(|| IterativeLiveness::compute(f, &u))
        });
        group.bench_with_input(BenchmarkId::new("appel_full", blocks), &func, |b, f| {
            let u = VarUniverse::all(f);
            b.iter(|| AppelLiveness::compute(f, &u))
        });
        group.bench_with_input(BenchmarkId::new("sorted_checker", blocks), &func, |b, f| {
            b.iter(|| SortedLivenessChecker::compute(f))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_precompute);
criterion_main!(benches);
