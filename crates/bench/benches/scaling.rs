//! Scaling of the checker's precomputation with procedure size — the
//! quadratic behaviour §6.1/§8 warn about for "procedures with some
//! thousand blocks", measured rather than asserted.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fastlive_core::LivenessChecker;
use fastlive_graph::Cfg as _;
use fastlive_workload::{generate_function, GenParams};

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling");
    group.sample_size(10);
    for target in [32usize, 128, 512, 2048] {
        let params = GenParams {
            target_blocks: target,
            max_depth: 3 + (target / 16).min(8) as u32,
            ..GenParams::default()
        };
        let (_, func) = generate_function(&format!("s{target}"), params, target as u64);
        let blocks = func.num_blocks();
        group.throughput(Throughput::Elements(func.num_edges() as u64));
        group.bench_with_input(
            BenchmarkId::new("checker_precompute", blocks),
            &func,
            |b, f| b.iter(|| LivenessChecker::compute(f)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
