//! Regenerates **Table 2** of the paper ("Results of the Runtime
//! Experiments"): per-benchmark precomputation and query times of the
//! reimplemented LAO baseline ("Native") versus the paper's checker
//! ("New"), with the three speedup columns, plus the §6.2 prose claims.
//!
//! ```text
//! FASTLIVE_SCALE=25 cargo run --release -p fastlive-bench --bin table2
//! ```
//!
//! Times are nanoseconds (the paper reports Pentium-M cycles; all
//! claims are ratios and unit-free). The query stream is the one the
//! Sreedhar III SSA-destruction pass actually issued, replayed
//! identically against both engines.

use fastlive_bench::{all_suites, measure_suite, prepare_suite, scale_from_env, total_row};

fn main() {
    let scale = scale_from_env(10);
    let reps: usize = std::env::var("FASTLIVE_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    println!("Table 2: runtime experiments (scale = {scale}%, median of {reps} reps)\n");
    println!(
        "{:<12} {:>6} | {:>12} {:>12} {:>6} | {:>9} {:>9} {:>9} {:>6} | {:>6}",
        "Benchmark",
        "#Proc",
        "Native pre",
        "New pre",
        "Spdup",
        "#Queries",
        "Native q",
        "New q",
        "Spdup",
        "Both"
    );
    println!("{}", "-".repeat(110));

    let suites = all_suites(scale, 0xfa57_11fe);
    let mut rows = Vec::new();
    for suite in &suites {
        let prepared = prepare_suite(suite);
        let row = measure_suite(&suite.profile, &prepared, reps);
        print_row(&row);
        rows.push(row);
    }
    let total = total_row(&rows);
    println!("{}", "-".repeat(110));
    print_row(&total);

    println!("\nSection 6.2 prose claims (paper values in brackets):");
    println!(
        "  precompute speedup (native/new):      {:>6.2}x   [paper: 2.94x]",
        total.pre_speedup()
    );
    println!(
        "  query speedup (native/new):           {:>6.2}x   [paper: 0.36x, i.e. ~2.8x slower]",
        total.query_speedup()
    );
    println!(
        "  combined speedup:                     {:>6.2}x   [paper: 1.16x]",
        total.both_speedup()
    );
    println!(
        "  full-universe dataflow vs new pre:    {:>6.2}x   [paper: ~4.7x slower than new]",
        total.full_pre_ns / total.new_pre_ns
    );
    println!(
        "  phi-related live-set fill:            {:>6.2}    [paper: 3.16]",
        total.fill_phi
    );
    println!(
        "  full-universe live-set fill:          {:>6.2}    [paper: 18.52]",
        total.fill_full
    );
    println!(
        "  queries per procedure:                {:>6.1}    [paper: 556 avg over 4823 procs]",
        total.queries as f64 / total.procs.max(1) as f64
    );
}

fn print_row(r: &fastlive_bench::Table2Row) {
    println!(
        "{:<12} {:>6} | {:>12.0} {:>12.0} {:>6.2} | {:>9} {:>9.1} {:>9.1} {:>6.2} | {:>6.2}",
        r.name,
        r.procs,
        r.native_pre_ns,
        r.new_pre_ns,
        r.pre_speedup(),
        r.queries,
        r.native_query_ns,
        r.new_query_ns,
        r.query_speedup(),
        r.both_speedup()
    );
}
