//! Emits `BENCH_obs.json`: what end-to-end telemetry costs, and what
//! it measures.
//!
//! Three arms per workload, all answering the same queries:
//!
//! * `raw` — the uninstrumented baseline: `QueryEngine` trait calls on
//!   a bare backend. The macro-generated trait path hands the planner
//!   a `NoopRecorder` statically, so this arm predates the telemetry
//!   seam entirely.
//! * `noop` — `FastliveSession` with the default no-op recorder. The
//!   seam's disabled half: one `enabled()` check per dispatch, no
//!   clock reads. The acceptance bar is ≈1.0× against `raw`.
//! * `telemetry` — `FastliveSession` with a live `Telemetry` hub:
//!   per-kind latency histograms, tier spans, planner counters. The
//!   bar is within a few percent of `noop` on batch paths (scalar
//!   dispatch pays two clock reads per query, so its overhead is
//!   reported per-query in ns, not hidden in a ratio).
//!
//! The file also records per-tier latency quantiles from an enabled
//! three-tier run (compute / disk write-through / warm-memory /
//! warm-disk) and a cross-thread exactness check: N threads × M
//! queries must leave the histograms summing to exactly N·M.
//!
//! ```text
//! cargo run --release -p fastlive-bench --bin bench_obs_json [--quick] [OUT.json]
//! ```

use std::fmt::Write as _;
use std::sync::Arc;

use fastlive::workload::{generate_module, ModuleParams};
use fastlive::{
    Block, Fastlive, Module, PointRef, Query, QueryEngine, Recorder, SessionBackend, Telemetry,
    Value,
};
use fastlive_bench::time_ns;

fn module_blocks(m: &Module) -> usize {
    m.functions().iter().map(|f| f.num_blocks()).sum()
}

/// `LiveIn` + `LiveOut` for every `(value, block)` pair — the planner's
/// grouped fast path.
fn dense_batch(module: &Module) -> Vec<Query> {
    let mut queries = Vec::new();
    for (id, func) in module.iter() {
        for v in func.values() {
            for b in func.blocks() {
                queries.push(Query::live_in(id, v, b));
                queries.push(Query::live_out(id, v, b));
            }
        }
    }
    queries
}

/// A deterministic mixed stream: block probes plus the `LiveAt` /
/// `Interfere` / `LiveSets` sprinkle — the scalar dispatch workload.
fn mixed_batch(module: &Module, n: usize, seed: u64) -> Vec<Query> {
    let mut state = seed | 1;
    let mut next = move |bound: usize| {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        (z ^ (z >> 31)) as usize % bound.max(1)
    };
    let mut queries = Vec::with_capacity(n);
    while queries.len() < n {
        let id = next(module.len());
        let func = module.func(id);
        let value = Value::from_index(next(func.num_values()));
        let block = Block::from_index(next(func.num_blocks()));
        let roll = next(1000);
        queries.push(if roll < 600 {
            if roll % 2 == 0 {
                Query::live_in(id, value, block)
            } else {
                Query::live_out(id, value, block)
            }
        } else if roll % 3 == 0 && func.num_values() >= 2 {
            let w = Value::from_index(next(func.num_values()));
            Query::interfere(id, value, w)
        } else if roll % 31 == 0 {
            Query::live_sets(id)
        } else {
            let len = func.block_insts(block).len();
            if len == 0 {
                Query::live_at(id, value, PointRef::entry(block))
            } else {
                Query::live_at(id, value, PointRef::after(block, next(len)))
            }
        });
    }
    queries
}

struct Arms {
    raw_ns: f64,
    noop_ns: f64,
    telemetry_ns: f64,
}

/// Times the three arms on one workload. `scalar` picks per-query
/// dispatch vs the planner. Samples are **interleaved** round-robin
/// (raw, noop, telemetry, raw, …) so slow host-frequency drift hits
/// every arm alike, and each arm reports its *minimum* — the
/// noise-robust statistic for CPU-bound work on a shared host, where
/// every disturbance only ever adds time.
fn run_arms(
    reps: usize,
    plain: &Fastlive,
    metered: &Fastlive,
    module: &Module,
    queries: &[Query],
    scalar: bool,
) -> Arms {
    let raw_arm = || {
        time_ns(1, || {
            let mut backend = SessionBackend::new(plain.engine().analyze(module));
            if scalar {
                queries
                    .iter()
                    .map(|q| backend.query(module, q).is_ok() as usize)
                    .sum::<usize>()
            } else {
                backend.run_queries(module, queries).len()
            }
        })
    };
    let facade_arm = |fl: &Fastlive| {
        time_ns(1, || {
            let mut session = fl.session(module);
            if scalar {
                queries
                    .iter()
                    .map(|q| session.query(module, q).is_ok() as usize)
                    .sum::<usize>()
            } else {
                session.run_queries(module, queries).len()
            }
        })
    };
    // One untimed warmup per arm, then interleaved samples.
    raw_arm();
    facade_arm(plain);
    facade_arm(metered);
    let mut samples: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for _ in 0..reps {
        samples[0].push(raw_arm());
        samples[1].push(facade_arm(plain));
        samples[2].push(facade_arm(metered));
    }
    let best = |v: &Vec<f64>| v.iter().copied().fold(f64::INFINITY, f64::min);
    Arms {
        raw_ns: best(&samples[0]),
        noop_ns: best(&samples[1]),
        telemetry_ns: best(&samples[2]),
    }
}

fn main() {
    let mut quick = false;
    let mut out_path = "BENCH_obs.json".to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else {
            out_path = arg;
        }
    }
    let reps = if quick { 3 } else { 25 };
    let host_cpus = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    let module = generate_module(
        "obs_bench",
        ModuleParams {
            functions: if quick { 3 } else { 6 },
            min_blocks: if quick { 12 } else { 48 },
            max_blocks: if quick { 24 } else { 96 },
            irreducible_per_mille: 500,
            deep_live_per_mille: 500,
        },
        0x00b5_e7ed,
    );
    let blocks = module_blocks(&module);
    eprintln!(
        "module: {} functions, {blocks} blocks total, host_cpus={host_cpus}",
        module.len()
    );

    let plain = Fastlive::builder().threads(1).build().expect("valid");
    let metered = Fastlive::builder()
        .threads(1)
        .telemetry(true)
        .build()
        .expect("valid");

    // Correctness gate before any timing: the metered stack answers
    // byte-identically to the plain one on every workload.
    let n = if quick { 512 } else { 4096 };
    // Cap the dense sweep so one sample stays a few ms: short reps
    // spread the interleaved rounds across a shared host's throttling
    // windows instead of landing whole arms inside one.
    let dense: Vec<Query> = {
        let full = dense_batch(&module);
        let stride = full.len().div_ceil(if quick { 8192 } else { 65536 }).max(1);
        full.into_iter().step_by(stride).collect()
    };
    let mixed = mixed_batch(&module, n, 0x0b5);
    for queries in [&dense, &mixed] {
        let a = plain.session(&module).run_queries(&module, queries);
        let b = metered.session(&module).run_queries(&module, queries);
        assert_eq!(a, b, "telemetry changed answers");
    }

    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"host_cpus\": {host_cpus},\n  \"functions\": {},\n  \"blocks_total\": {blocks},\n  \"quick\": {quick},",
        module.len()
    );

    // ---- Overhead arms -------------------------------------------------
    json.push_str("  \"overhead\": [\n");
    let rows: Vec<(&str, &Vec<Query>, bool)> = vec![
        ("grouped_dense", &dense, false),
        ("grouped_mixed", &mixed, false),
        ("scalar_mixed", &mixed, true),
    ];
    for (i, (workload, queries, scalar)) in rows.iter().enumerate() {
        let arms = run_arms(reps, &plain, &metered, &module, queries, *scalar);
        let n = queries.len() as f64;
        let noop_overhead = arms.noop_ns / arms.raw_ns;
        let telemetry_overhead = arms.telemetry_ns / arms.noop_ns;
        let telemetry_ns_per_query = (arms.telemetry_ns - arms.noop_ns) / n;
        let _ = write!(
            json,
            "{}    {{\"workload\": \"{workload}\", \"queries\": {}, \
             \"raw_ns\": {:.0}, \"noop_ns\": {:.0}, \"telemetry_ns\": {:.0}, \
             \"noop_overhead\": {noop_overhead:.3}, \
             \"telemetry_overhead\": {telemetry_overhead:.3}, \
             \"telemetry_ns_per_query\": {telemetry_ns_per_query:.1}}}",
            if i == 0 { "" } else { ",\n" },
            queries.len(),
            arms.raw_ns,
            arms.noop_ns,
            arms.telemetry_ns,
        );
        eprintln!(
            "{workload:<14} n={:>6}: raw {:>12.0} ns, noop {:>12.0} ns ({noop_overhead:.3}x), \
             telemetry {:>12.0} ns ({telemetry_overhead:.3}x)",
            queries.len(),
            arms.raw_ns,
            arms.noop_ns,
            arms.telemetry_ns,
        );
    }
    json.push_str("\n  ],\n");

    // ---- Per-tier latency quantiles ------------------------------------
    // A fresh three-tier lifecycle under one enabled hub: cold compute
    // + disk write-through, a warm-memory pass, then a cold-memory /
    // warm-disk engine over the same store.
    let dir = std::env::temp_dir().join(format!("fastlive-obs-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let tiered = |dir: &std::path::Path| {
        Fastlive::builder()
            .threads(1)
            .telemetry(true)
            .persist_dir(dir)
            .build()
            .expect("valid")
    };
    let first = tiered(&dir);
    let _ = first.session(&module); // cold: compute + disk_miss + write-through
    let _ = first.session(&module); // warm: memory_hit
    let second = tiered(&dir);
    let _ = second.session(&module); // warm disk: disk_hit
    json.push_str("  \"tiers\": [\n");
    let mut wrote = 0usize;
    let mut seen: Vec<&str> = Vec::new();
    for snap in [first.telemetry(), second.telemetry()] {
        for tier in &snap.tiers {
            if tier.hist.count == 0 || seen.contains(&tier.name) {
                continue;
            }
            seen.push(tier.name);
            let _ = write!(
                json,
                "{}    {{\"tier\": \"{}\", \"count\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}}}",
                if wrote == 0 { "" } else { ",\n" },
                tier.name,
                tier.hist.count,
                tier.hist.p50(),
                tier.hist.p99(),
                tier.hist.max,
            );
            wrote += 1;
        }
    }
    json.push_str("\n  ],\n");
    std::fs::remove_dir_all(&dir).ok();

    // ---- Cross-thread exactness ----------------------------------------
    let threads = if quick { 4 } else { 8 };
    let per_thread = if quick { 200 } else { 1000 };
    let telemetry = Arc::new(Telemetry::new());
    let storm = Fastlive::builder()
        .threads(1)
        .recorder(Arc::clone(&telemetry) as Arc<dyn Recorder>)
        .build()
        .expect("valid");
    let probe = mixed_batch(&module, per_thread, 0xeaac7);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let storm = &storm;
            let module = &module;
            let probe = &probe;
            scope.spawn(move || {
                let mut session = storm.session(module);
                for q in probe {
                    let _ = session.query(module, q);
                }
            });
        }
    });
    let snap = telemetry.snapshot_now();
    let expected = (threads * per_thread) as u64;
    let recorded = snap.total_queries();
    assert_eq!(
        recorded, expected,
        "histograms must be exact under contention"
    );
    let _ = writeln!(
        json,
        "  \"exactness\": {{\"threads\": {threads}, \"queries_per_thread\": {per_thread}, \
         \"expected\": {expected}, \"recorded\": {recorded}, \"exact\": true}}"
    );
    json.push('}');
    json.push('\n');

    std::fs::write(&out_path, &json).expect("write BENCH_obs.json");
    println!("wrote {out_path}");
}
