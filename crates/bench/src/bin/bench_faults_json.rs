//! Emits `BENCH_faults.json`: what the robustness layer costs when
//! nothing is wrong, and how fast it recovers when something is.
//!
//! * `vfs_overhead` — cold analyze (precompute + write-through) through
//!   the production `StdVfs` vs. a rule-free `FaultVfs`: the injection
//!   seam must be free on the happy path (ratio ≈ 1; compare the
//!   `cold` scenario of `BENCH_persist.json`).
//! * `recovery` — a scripted total-disk failure trips the breaker,
//!   the disk heals, and the half-open probe restores the tier: the
//!   measured trip→restore wall time tracks the configured backoff,
//!   not some hidden retry storm.
//! * `degraded` — analyze cost with the breaker open (memory-only) vs.
//!   a healthy disk-less engine: an open breaker must cost nothing over
//!   never having configured persistence.
//!
//! ```text
//! cargo run --release -p fastlive-bench --bin bench_faults_json [--quick] [OUT.json]
//! ```

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use fastlive::{
    AnalysisEngine, BreakerConfig, BreakerState, EngineConfig, Fault, FaultRule, FaultVfs, OpKind,
};
use fastlive_bench::time_ns;
use fastlive_workload::{generate_module, ModuleParams};

fn main() {
    let mut quick = false;
    let mut out_path = "BENCH_faults.json".to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else {
            out_path = arg;
        }
    }
    let (functions, reps) = if quick { (12, 3) } else { (64, 9) };
    let host_cpus = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let threads = 4.min(host_cpus.max(1));

    let module = generate_module(
        "faults_bench",
        ModuleParams {
            functions,
            min_blocks: 8,
            max_blocks: 48,
            irreducible_per_mille: 100,
            deep_live_per_mille: 300,
        },
        0xfa17,
    );
    let blocks: usize = module.functions().iter().map(|f| f.num_blocks()).sum();
    let dir = std::env::temp_dir().join(format!("fastlive-bench-faults-{}", std::process::id()));
    eprintln!(
        "module: {} functions, {blocks} blocks total, host_cpus={host_cpus}",
        module.len()
    );

    let cold_config = |persist: bool| EngineConfig {
        threads,
        persist_dir: persist.then(|| dir.clone()),
        ..EngineConfig::default()
    };

    // ---- vfs_overhead: cold analyze through StdVfs vs healthy
    // FaultVfs, directory wiped outside the timed region each rep.
    let measure_cold = |with_fault_vfs: bool| -> f64 {
        let mut samples: Vec<f64> = (0..reps)
            .map(|_| {
                let _ = std::fs::remove_dir_all(&dir);
                time_ns(1, || {
                    let engine = if with_fault_vfs {
                        AnalysisEngine::with_vfs(cold_config(true), Arc::new(FaultVfs::healthy()))
                    } else {
                        AnalysisEngine::new(cold_config(true))
                    };
                    engine.analyze(&module).num_functions()
                })
            })
            .collect();
        samples.sort_by(f64::total_cmp);
        samples[samples.len() / 2]
    };
    let std_ns = measure_cold(false);
    let fault_ns = measure_cold(true);
    let overhead = fault_ns / std_ns;
    eprintln!("vfs_overhead: std={std_ns:.0} ns, fault_vfs={fault_ns:.0} ns ({overhead:.3}x)");

    // ---- recovery: trip on a fully sick disk, heal, measure wall time
    // until health() reports Closed again (polling with re-analyzes of
    // fresh shapes is what drives the half-open probe).
    let backoff = Duration::from_millis(25);
    let mut recovery_samples: Vec<f64> = (0..reps)
        .map(|rep| {
            let _ = std::fs::remove_dir_all(&dir);
            let vfs = Arc::new(FaultVfs::new(vec![FaultRule::every(
                OpKind::Any,
                Fault::eio(),
            )]));
            let engine = AnalysisEngine::with_vfs(
                EngineConfig {
                    threads,
                    cache_capacity: 0, // every probe consults the disk tier
                    stripes: 0,
                    persist_dir: Some(dir.clone()),
                    disk_breaker: BreakerConfig {
                        trip_threshold: 3,
                        initial_backoff: backoff,
                        max_backoff: backoff * 8,
                        ..BreakerConfig::default()
                    },
                },
                vfs.clone(),
            );
            let _ = engine.analyze(&module);
            assert_eq!(
                engine.health().disk_state,
                BreakerState::Open,
                "rep {rep}: sick disk must trip the breaker"
            );
            vfs.set_rules(vec![]);
            let healed_at = Instant::now();
            while engine.health().disk_state != BreakerState::Closed {
                let _ = engine.analyze(&module);
                std::thread::sleep(Duration::from_millis(2));
            }
            healed_at.elapsed().as_nanos() as f64
        })
        .collect();
    recovery_samples.sort_by(f64::total_cmp);
    let recovery_ns = recovery_samples[recovery_samples.len() / 2];
    eprintln!(
        "recovery: trip->restore {recovery_ns:.0} ns (configured backoff {} ns)",
        backoff.as_nanos()
    );

    // ---- degraded: analyze with the breaker latched open vs a
    // disk-less engine. Open-breaker probes must cost ~nothing.
    let _ = std::fs::remove_dir_all(&dir);
    let sick = Arc::new(FaultVfs::new(vec![FaultRule::every(
        OpKind::Any,
        Fault::eio(),
    )]));
    let open_engine = AnalysisEngine::with_vfs(
        EngineConfig {
            threads,
            persist_dir: Some(dir.clone()),
            disk_breaker: BreakerConfig {
                trip_threshold: 1,
                initial_backoff: Duration::from_secs(3600), // stays open
                ..BreakerConfig::default()
            },
            ..EngineConfig::default()
        },
        sick,
    );
    let _ = open_engine.analyze(&module); // trip it
    let open_ns = time_ns(reps, || open_engine.analyze(&module).num_functions());
    let memory_engine = AnalysisEngine::new(EngineConfig {
        threads,
        ..EngineConfig::default()
    });
    let _ = memory_engine.analyze(&module); // warm, like open_engine
    let memory_ns = time_ns(reps, || memory_engine.analyze(&module).num_functions());
    let degraded_ratio = open_ns / memory_ns;
    eprintln!(
        "degraded: open-breaker={open_ns:.0} ns, memory-only={memory_ns:.0} ns \
         ({degraded_ratio:.3}x)"
    );
    let final_health = open_engine.health();

    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"host_cpus\": {host_cpus},\n  \"functions\": {},\n  \"blocks_total\": {blocks},",
        module.len()
    );
    let _ = writeln!(
        json,
        "  \"vfs_overhead\": {{\"std_cold_ns\": {std_ns:.0}, \"fault_vfs_cold_ns\": {fault_ns:.0}, \
         \"ratio\": {overhead:.3}}},"
    );
    let _ = writeln!(
        json,
        "  \"recovery\": {{\"trip_to_restore_ns\": {recovery_ns:.0}, \
         \"configured_backoff_ns\": {}, \"trip_threshold\": 3}},",
        backoff.as_nanos()
    );
    let _ = writeln!(
        json,
        "  \"degraded\": {{\"open_breaker_analyze_ns\": {open_ns:.0}, \
         \"memory_only_analyze_ns\": {memory_ns:.0}, \"ratio\": {degraded_ratio:.3}}},"
    );
    let _ = write!(
        json,
        "  \"health\": {{\"disk_state\": \"{:?}\", \"disk_trips\": {}, \"disk_restores\": {}, \
         \"disk_probes_skipped\": {}, \"disk_errors\": {}}}\n}}\n",
        final_health.disk_state,
        final_health.disk_trips,
        final_health.disk_restores,
        final_health.disk_probes_skipped,
        final_health.cache.disk_errors,
    );

    std::fs::write(&out_path, &json).expect("write BENCH_faults.json");
    let _ = std::fs::remove_dir_all(&dir);
    println!("wrote {out_path}");
}
