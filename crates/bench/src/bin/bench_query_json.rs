//! Emits `BENCH_query.json`: the before/after numbers for the
//! word-masked query loop and the batch-vs-query break-even analysis.
//!
//! * `query_loop` — ns per probe for the seed's scalar candidate loop
//!   (`is_live_in_scalar`: bit-at-a-time `next_set_bit`, use numbers
//!   re-resolved per candidate) against the word-masked loop
//!   (`is_live_in`: cursor-word interval scan, uses resolved once), on
//!   dominance-biased probe streams over growing CFGs. Wide CFGs have
//!   multi-word `T_q` rows, which is where the word scan pays.
//! * `batch_breakeven` — wall time to materialize live-in/live-out
//!   sets for *all* (value, block) pairs via one `BatchLiveness`
//!   matrix pass vs. a scalar query per pair vs. the iterative
//!   data-flow solver, plus the number of scalar queries a batch pass
//!   costs (the break-even point: ask fewer queries than that and the
//!   sparse path wins, more and the batch path wins).
//!
//! ```text
//! cargo run --release -p fastlive-bench --bin bench_query_json [OUT.json]
//! ```

use std::fmt::Write as _;

use fastlive_bench::{dominance_probes, run_probes, run_probes_scalar, sized_function, time_ns};
use fastlive_core::{FunctionLiveness, LivenessChecker};
use fastlive_dataflow::{IterativeLiveness, VarUniverse};
use fastlive_workload::random_digraph;

const PROBES: usize = 512;
const REPS: usize = 15;

/// One before/after row: scalar vs. word-masked ns/query on `probes`.
fn loop_row(
    json: &mut String,
    first: bool,
    shape: &str,
    live: &LivenessChecker,
    probes: &[(u32, u32, u32)],
) {
    let hits = run_probes(live, probes);
    assert_eq!(hits, run_probes_scalar(live, probes), "loops disagree");
    let avg_cands: f64 = probes
        .iter()
        .map(|&(d, _, q)| live.candidates(d, q).count())
        .sum::<usize>() as f64
        / probes.len() as f64;
    let scalar = time_ns(REPS, || run_probes_scalar(live, probes)) / probes.len() as f64;
    let word = time_ns(REPS, || run_probes(live, probes)) / probes.len() as f64;
    let blocks = live.dom().num_reachable();
    let _ = write!(
        json,
        "{}    {{\"shape\": \"{shape}\", \"blocks\": {blocks}, \"probes\": {}, \
         \"positive\": {hits}, \"avg_candidates\": {avg_cands:.1}, \
         \"seed_scalar_ns_per_query\": {scalar:.2}, \
         \"word_masked_ns_per_query\": {word:.2}, \"speedup\": {:.3}}}",
        if first { "" } else { ",\n" },
        probes.len(),
        scalar / word,
    );
    eprintln!(
        "query_loop {shape:<22} blocks={blocks:>5} cands={avg_cands:>6.1}: \
         scalar {scalar:>8.1} ns/q, word {word:>8.1} ns/q ({:.2}x)",
        scalar / word
    );
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_query.json".into());
    let mut json = String::from("{\n  \"query_loop\": [\n");

    // Structured (reducible) CFGs: Theorem 2 keeps candidate counts at
    // ~1, so this regime checks the "no slower than the seed" half of
    // the claim.
    let mut first = true;
    for target in [64usize, 256, 1024] {
        let func = sized_function(target, 0xfeed + target as u64);
        let live = LivenessChecker::compute(&func);
        let probes = dominance_probes(&live, PROBES, 0x9e37);
        loop_row(&mut json, first, "structured", &live, &probes);
        first = false;
    }

    // Irreducible CFGs with dense retreating edges: wide T_q rows. The
    // negative probes (use = def, provably unreachable from every
    // candidate) force full interval scans — the regime the word-masked
    // cursor is built for. The `_noskip` rows disable §4.1 subtree
    // skipping (the ablation mode), scanning every set bit.
    for n in [256u32, 1024] {
        let g = random_digraph(n, 0xabcd, n as usize * 10);
        let mut live = LivenessChecker::compute(&g);
        assert!(!live.is_reducible());
        let neg: Vec<(u32, u32, u32)> = dominance_probes(&live, PROBES, 0x9e37)
            .into_iter()
            .map(|(d, _, q)| (d, d, q))
            .collect();
        loop_row(&mut json, false, "irreducible_wide_neg", &live, &neg);
        live.set_subtree_skipping(false);
        loop_row(&mut json, false, "irreducible_wide_neg_noskip", &live, &neg);
    }

    json.push_str("\n  ],\n  \"batch_breakeven\": [\n");
    let mut first = true;
    for target in [32usize, 128, 512, 1024] {
        let func = sized_function(target, 0xba7c + target as u64);
        let live = FunctionLiveness::compute(&func);
        let universe = VarUniverse::all(&func);
        let blocks = func.num_blocks();
        let values = func.num_values();
        let batch_ns = time_ns(REPS, || live.batch(&func));
        // `live_sets` itself is batch-backed now; the scalar row keeps
        // measuring the per-(value, block) query loop it replaced.
        let scalar_ns = time_ns(REPS.min(5), || live.live_sets_scalar(&func));
        let iterative_ns = time_ns(REPS, || IterativeLiveness::compute(&func, &universe));
        // Per-query cost on this function's own shape, for the
        // break-even estimate.
        let checker = live.checker();
        let probes = dominance_probes(checker, PROBES, 0x517e);
        let per_query = time_ns(REPS, || run_probes(checker, &probes)) / PROBES as f64;
        let breakeven = batch_ns / per_query;
        let _ = write!(
            json,
            "{}    {{\"blocks\": {blocks}, \"values\": {values}, \
             \"batch_ns\": {batch_ns:.0}, \"scalar_all_pairs_ns\": {scalar_ns:.0}, \
             \"iterative_dataflow_ns\": {iterative_ns:.0}, \
             \"query_ns\": {per_query:.2}, \"breakeven_queries\": {breakeven:.0}, \
             \"batch_speedup_vs_scalar\": {:.1}}}",
            if first { "" } else { ",\n" },
            scalar_ns / batch_ns,
        );
        first = false;
        eprintln!(
            "batch blocks={blocks:>5} values={values:>5}: batch {batch_ns:>12.0} ns, \
             scalar-all-pairs {scalar_ns:>14.0} ns ({:.1}x), iterative {iterative_ns:>12.0} ns, \
             break-even ≈ {breakeven:.0} queries",
            scalar_ns / batch_ns
        );
    }
    json.push_str("\n  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_query.json");
    println!("wrote {out_path}");
}
