//! Regenerates **Table 1** of the paper ("Results of Quantitative
//! Evaluation"): structural statistics of the generated SPEC2000-int
//! workload suites, plus the §6.1 prose numbers (edges per block, back
//! edge share, irreducibility counts).
//!
//! ```text
//! FASTLIVE_SCALE=100 cargo run --release -p fastlive-bench --bin table1
//! ```

use fastlive_bench::{all_suites, scale_from_env};
use fastlive_workload::SuiteStats;

fn main() {
    let scale = scale_from_env(25);
    println!("Table 1: quantitative evaluation of the generated workload");
    println!("(scale = {scale}% of the paper's procedure counts; seed fixed)\n");
    println!(
        "{:<12} {:>7} {:>7} {:>7} {:>7} {:>8} {:>7} {:>7} {:>7} {:>7}",
        "Benchmark", "Avg", "Sum", "%<=32", "%<=64", "Max", "%<=1", "%<=2", "%<=3", "%<=4"
    );
    println!("{}", "-".repeat(96));

    let suites = all_suites(scale, 0xfa57_11fe);
    let mut all = Vec::new();
    let mut per_fn = Vec::new();
    for suite in &suites {
        let stats = suite.stats();
        println!("{}", stats.table1_row());
        per_fn.extend(
            suite
                .functions
                .iter()
                .map(fastlive_workload::FunctionStats::measure),
        );
        all.push(stats);
    }
    let total = SuiteStats::aggregate("Total", &per_fn);
    println!("{}", "-".repeat(96));
    println!("{}", total.table1_row());

    println!("\nSection 6.1 prose statistics (paper values in brackets):");
    println!(
        "  edges per block:          {:>8.2}   [paper: 1.3 avg, 1.9 max]",
        total.edges_per_block()
    );
    println!(
        "  total edges:              {:>8}   [paper: 238427 at full scale]",
        total.total_edges
    );
    println!(
        "  back edges:               {:>8}   ({:.2}% of edges) [paper: 8701 = 3.6%]",
        total.total_back_edges,
        total.back_edge_pct()
    );
    println!(
        "  irreducible back edges:   {:>8}   [paper: 60]",
        total.irreducible_back_edges
    );
    println!(
        "  irreducible procedures:   {:>8}   [paper: 7 of 4823]",
        total.irreducible_functions
    );
    println!(
        "  procedures:               {:>8}   [paper: 4823 at full scale]",
        total.procedures
    );
    println!(
        "  max uses of one variable: {:>8}   [paper: 620]",
        total.max_uses
    );
}
