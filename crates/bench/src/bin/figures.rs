//! Regenerates the paper's figures as Graphviz sources:
//!
//! * **Figure 1** — DFS edge classes (tree/back/forward/cross) on a CFG
//!   with all four kinds, back edges dashed like in the paper.
//! * **Figure 3** — the 11-node example CFG, annotated with the
//!   dominance-tree preorder numbering (§5.1) and the sets `T_q` for
//!   the narrated queries.
//!
//! Pipe any of the emitted `digraph` blocks into `dot -Tsvg`.
//!
//! ```text
//! cargo run -p fastlive-bench --bin figures
//! ```

use fastlive_cfg::{DfsTree, EdgeClass};
use fastlive_core::LivenessChecker;
use fastlive_graph::{dot, DiGraph};

fn main() {
    figure1();
    figure3();
}

/// A small graph exhibiting all four DFS edge classes.
fn figure1() {
    let g = DiGraph::from_edges(
        6,
        0,
        &[
            (0, 1),
            (1, 2),
            (2, 0),
            (0, 3),
            (3, 4),
            (4, 2),
            (0, 2),
            (4, 4),
        ],
    );
    let dfs = DfsTree::compute(&g);
    println!("// Figure 1: DFS edge classification (back edges dashed)");
    let style = dot::Style {
        node_label: Box::new(|n| format!("{n}")),
        node_attrs: Box::new(|_| String::new()),
        edge_attrs: Box::new(|u, i, _| match dfs.edge_class_at(u, i) {
            EdgeClass::Back => "style=dashed, color=red, label=\"back\"".into(),
            EdgeClass::Cross => "color=blue, label=\"cross\"".into(),
            EdgeClass::Forward => "color=darkgreen, label=\"forward\"".into(),
            EdgeClass::Tree => "penwidth=2".into(),
            EdgeClass::Unreachable => "color=gray".into(),
        }),
    };
    println!("{}", dot::render(&g, "figure1", &style));
}

/// The paper's example CFG (nodes printed 1-based like the paper).
fn figure3() {
    let g = DiGraph::from_edges(
        11,
        0,
        &[
            (0, 1),
            (1, 2),
            (1, 10),
            (2, 3),
            (2, 7),
            (3, 4),
            (4, 5),
            (5, 6),
            (5, 4),
            (6, 1),
            (7, 8),
            (8, 9),
            (8, 5),
            (9, 7),
            (9, 10),
        ],
    );
    let dfs = DfsTree::compute(&g);
    let live = LivenessChecker::compute(&g);
    println!("// Figure 3: the example CFG; labels show paper node / dom-preorder num");
    let style = dot::Style {
        node_label: Box::new(|n| format!("{} (num {})", n + 1, live.dom().num(n))),
        node_attrs: Box::new(|_| String::new()),
        edge_attrs: Box::new(|u, i, _| match dfs.edge_class_at(u, i) {
            EdgeClass::Back => "style=dashed".into(),
            _ => String::new(),
        }),
    };
    println!("{}", dot::render(&g, "figure3", &style));

    for (paper, q) in [(10u32, 9u32), (4, 3)] {
        let mut t: Vec<u32> = live.t_set(q).iter().map(|&x| x + 1).collect();
        t.sort_unstable();
        println!("// T_{paper} (paper numbering) = {t:?}");
    }
    println!("// narrated queries:");
    println!(
        "//   x (def 3, use 9) live-in at 10? {}",
        live.is_live_in(2, &[8], 9)
    );
    println!(
        "//   y (def 3, use 5) live-in at 10? {}",
        live.is_live_in(2, &[4], 9)
    );
    println!(
        "//   w (def 2, use 4) live-in at 10? {}",
        live.is_live_in(1, &[3], 9)
    );
    println!(
        "//   x (def 3, use 9) live-in at 4?  {}",
        live.is_live_in(2, &[8], 3)
    );
}
