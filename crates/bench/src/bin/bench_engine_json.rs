//! Emits `BENCH_engine.json`: thread-scaling and fingerprint-cache
//! numbers for the `fastlive-engine` analysis engine.
//!
//! * `thread_scaling` — wall time to precompute a whole module
//!   (caching disabled, so every function pays the full §5.2
//!   precomputation) at 1/2/4/8 worker threads, with the speedup over
//!   the single-thread run. `host_cpus` records the machine's
//!   available parallelism — scaling is physically bounded by it, so a
//!   1-core CI box reports ≈1× at every thread count while the same
//!   binary on a 4-core box reports the real fan-out.
//! * `fingerprint_cache` — the paper's JIT story measured: a cold
//!   analysis (every probe misses and precomputes), a warm re-analysis
//!   of the same module, and a warm analysis of a **recompiled**
//!   module (re-parsed from text: fresh `Function` objects, identical
//!   CFGs). Warm runs cost one cache probe per function; the speedup
//!   column is cold/warm.
//!
//! ```text
//! cargo run --release -p fastlive-bench --bin bench_engine_json [--quick] [OUT.json]
//! ```
//!
//! `--quick` shrinks the module and repetition counts for CI smoke
//! runs (the JSON schema is identical).

use std::fmt::Write as _;

use fastlive::Fastlive;
use fastlive_bench::time_ns;
use fastlive_ir::{parse_module, Module};
use fastlive_workload::{generate_module, ModuleParams};

struct Setup {
    functions: usize,
    reps: usize,
}

fn module_blocks(m: &Module) -> usize {
    m.functions().iter().map(|f| f.num_blocks()).sum()
}

fn main() {
    let mut quick = false;
    let mut out_path = "BENCH_engine.json".to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else {
            out_path = arg;
        }
    }
    let setup = if quick {
        Setup {
            functions: 16,
            reps: 3,
        }
    } else {
        Setup {
            functions: 96,
            reps: 9,
        }
    };
    let host_cpus = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    let module = generate_module(
        "engine_bench",
        ModuleParams {
            functions: setup.functions,
            min_blocks: 8,
            max_blocks: 64,
            irreducible_per_mille: 100,
            ..ModuleParams::default()
        },
        0xe61e,
    );
    let blocks = module_blocks(&module);
    eprintln!(
        "module: {} functions, {blocks} blocks total, host_cpus={host_cpus}",
        module.len()
    );

    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"host_cpus\": {host_cpus},\n  \"functions\": {},\n  \"blocks_total\": {blocks},",
        module.len()
    );

    // ---- Thread scaling: cold precompute throughput, cache disabled.
    json.push_str("  \"thread_scaling\": [\n");
    let mut base_ns = 0.0;
    for (i, threads) in [1usize, 2, 4, 8].into_iter().enumerate() {
        let ns = time_ns(setup.reps, || {
            Fastlive::builder()
                .threads(threads)
                .cache_capacity(0)
                .build()
                .expect("valid config")
                .engine()
                .analyze(&module)
                .num_functions()
        });
        if threads == 1 {
            base_ns = ns;
        }
        let speedup = base_ns / ns;
        let throughput = module.len() as f64 / (ns / 1e9);
        let _ = write!(
            json,
            "{}    {{\"threads\": {threads}, \"analyze_ns\": {ns:.0}, \
             \"functions_per_sec\": {throughput:.0}, \"speedup_vs_1\": {speedup:.2}}}",
            if i == 0 { "" } else { ",\n" },
        );
        eprintln!(
            "thread_scaling threads={threads}: {ns:>12.0} ns ({throughput:>7.0} funcs/s, {speedup:.2}x vs 1 thread)"
        );
    }

    // ---- Fingerprint cache: cold vs warm vs recompiled-warm.
    json.push_str("\n  ],\n  \"fingerprint_cache\": [\n");
    let threads = 4.min(host_cpus.max(1));
    // Cold: a fresh engine per repetition, so every probe misses.
    let cold_ns = time_ns(setup.reps, || {
        Fastlive::builder()
            .threads(threads)
            .cache_capacity(1024)
            .build()
            .expect("valid config")
            .engine()
            .analyze(&module)
            .num_functions()
    });
    // Warm: one facade, pre-warmed, re-analyzing the same module.
    let fl = Fastlive::builder()
        .threads(threads)
        .cache_capacity(1024)
        .build()
        .expect("valid config");
    let engine = fl.engine();
    let _ = engine.analyze(&module);
    let warm_ns = time_ns(setup.reps, || engine.analyze(&module).num_functions());
    // Recompiled: CFG-identical functions from a fresh parse.
    let recompiled = parse_module(&module.to_string()).expect("module round-trips");
    let pre_stats = engine.cache_stats();
    let recompiled_ns = time_ns(setup.reps, || engine.analyze(&recompiled).num_functions());
    let post_stats = engine.cache_stats();
    assert_eq!(
        pre_stats.misses, post_stats.misses,
        "recompiled analysis must be all cache hits"
    );
    for (i, (scenario, ns)) in [
        ("cold", cold_ns),
        ("warm_same_module", warm_ns),
        ("warm_recompiled", recompiled_ns),
    ]
    .into_iter()
    .enumerate()
    {
        let speedup = cold_ns / ns;
        let _ = write!(
            json,
            "{}    {{\"scenario\": \"{scenario}\", \"analyze_ns\": {ns:.0}, \
             \"speedup_vs_cold\": {speedup:.1}}}",
            if i == 0 { "" } else { ",\n" },
        );
        eprintln!("fingerprint_cache {scenario:<18}: {ns:>12.0} ns ({speedup:.1}x vs cold)");
    }
    let _ = write!(
        json,
        "\n  ],\n  \"cache_stats\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}}}\n}}\n",
        post_stats.hits, post_stats.misses, post_stats.evictions
    );

    std::fs::write(&out_path, &json).expect("write BENCH_engine.json");
    println!("wrote {out_path}");
}
