//! Emits `BENCH_persist.json`: the cost ladder of the engine's
//! two-tier cache, measured on one module —
//!
//! * `cold` — fresh engine, empty persist directory: every function
//!   pays the §5.2 precomputation *and* the write-through.
//! * `warm_disk` — fresh engine (empty memory) on the now-populated
//!   directory: every distinct fingerprint is decoded from disk, zero
//!   precomputations (`misses == disk_hits` is asserted).
//! * `warm_memory` — the same engine re-analyzing: every probe is an
//!   in-memory hit.
//!
//! `store` reports the on-disk footprint (entries, bytes) and
//! `format_version` pins the codec the numbers were taken with.
//!
//! ```text
//! cargo run --release -p fastlive-bench --bin bench_persist_json [--quick] [OUT.json]
//! ```
//!
//! `--quick` shrinks the module and repetition counts for CI smoke
//! runs (the JSON schema is identical).

use std::fmt::Write as _;

use fastlive::Fastlive;
use fastlive_bench::time_ns;
use fastlive_ir::Module;
use fastlive_workload::{generate_module, ModuleParams};

fn module_blocks(m: &Module) -> usize {
    m.functions().iter().map(|f| f.num_blocks()).sum()
}

fn main() {
    let mut quick = false;
    let mut out_path = "BENCH_persist.json".to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else {
            out_path = arg;
        }
    }
    let (functions, reps) = if quick { (16, 3) } else { (96, 9) };
    let host_cpus = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let threads = 4.min(host_cpus.max(1));

    let module = generate_module(
        "persist_bench",
        ModuleParams {
            functions,
            min_blocks: 8,
            max_blocks: 64,
            irreducible_per_mille: 100,
            deep_live_per_mille: 300,
        },
        0x9e51,
    );
    let blocks = module_blocks(&module);
    let dir = std::env::temp_dir().join(format!("fastlive-bench-persist-{}", std::process::id()));
    eprintln!(
        "module: {} functions, {blocks} blocks total, host_cpus={host_cpus}, store={}",
        module.len(),
        dir.display()
    );

    // ---- cold: fresh engine per rep, directory wiped per rep. The
    // wipe happens *outside* the timed region — cold measures
    // precompute + write-through, not the previous rep's teardown.
    let mut cold_samples: Vec<f64> = (0..reps)
        .map(|_| {
            let _ = std::fs::remove_dir_all(&dir);
            time_ns(1, || {
                Fastlive::builder()
                    .threads(threads)
                    .persist_dir(dir.clone())
                    .build()
                    .expect("valid config")
                    .engine()
                    .analyze(&module)
                    .num_functions()
            })
        })
        .collect();
    cold_samples.sort_by(f64::total_cmp);
    let cold_ns = cold_samples[cold_samples.len() / 2];

    // ---- warm_disk: the directory stays (last cold rep populated
    // it); a fresh engine per rep has cold memory but a warm store.
    let warm_disk_ns = time_ns(reps, || {
        Fastlive::builder()
            .threads(threads)
            .persist_dir(dir.clone())
            .build()
            .expect("valid config")
            .engine()
            .analyze(&module)
            .num_functions()
    });
    // Invariant behind the scenario label: zero precomputations.
    let fl = Fastlive::builder()
        .threads(threads)
        .persist_dir(dir.clone())
        .build()
        .expect("valid config");
    let probe = fl.engine();
    let _ = probe.analyze(&module);
    let disk_stats = probe.cache_stats();
    assert_eq!(
        disk_stats.misses, disk_stats.disk_hits,
        "warm-disk analysis must not precompute: {disk_stats:?}"
    );
    assert_eq!(disk_stats.disk_rejects, 0, "{disk_stats:?}");

    // ---- warm_memory: the probe engine is now fully warm in memory.
    let warm_mem_ns = time_ns(reps, || probe.analyze(&module).num_functions());
    let final_stats = probe.cache_stats();

    // ---- store footprint.
    let (entries, bytes) = std::fs::read_dir(&dir)
        .map(|rd| {
            rd.flatten()
                .filter_map(|e| e.metadata().ok().map(|m| m.len()))
                .fold((0u64, 0u64), |(n, b), len| (n + 1, b + len))
        })
        .unwrap_or((0, 0));

    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"host_cpus\": {host_cpus},\n  \"functions\": {},\n  \"blocks_total\": {blocks},\n  \
         \"format_version\": {},",
        module.len(),
        fastlive::engine::persist::FORMAT_VERSION
    );
    json.push_str("  \"persist\": [\n");
    for (i, (scenario, ns)) in [
        ("cold", cold_ns),
        ("warm_disk", warm_disk_ns),
        ("warm_memory", warm_mem_ns),
    ]
    .into_iter()
    .enumerate()
    {
        let speedup = cold_ns / ns;
        let _ = write!(
            json,
            "{}    {{\"scenario\": \"{scenario}\", \"analyze_ns\": {ns:.0}, \
             \"speedup_vs_cold\": {speedup:.1}}}",
            if i == 0 { "" } else { ",\n" },
        );
        eprintln!("persist {scenario:<12}: {ns:>12.0} ns ({speedup:.1}x vs cold)");
    }
    let _ = write!(
        json,
        "\n  ],\n  \"store\": {{\"entries\": {entries}, \"bytes\": {bytes}}},\n  \
         \"cache_stats\": {{\"hits\": {}, \"misses\": {}, \"dedup_hits\": {}, \
         \"disk_hits\": {}, \"disk_misses\": {}, \"disk_rejects\": {}}}\n}}\n",
        final_stats.hits,
        final_stats.misses,
        final_stats.dedup_hits,
        final_stats.disk_hits,
        final_stats.disk_misses,
        final_stats.disk_rejects,
    );

    std::fs::write(&out_path, &json).expect("write BENCH_persist.json");
    let _ = std::fs::remove_dir_all(&dir);
    println!("wrote {out_path}");
}
