//! Emits `BENCH_point.json`: program-point query and module-destruction
//! numbers for the point-precise liveness API.
//!
//! * `point_replay` — the `live_at` records of real SSA-destruction
//!   query streams (the Budimlić interference tests the pass issued),
//!   replayed per suite against two implementations of the same
//!   query: the core **fast path**
//!   (`FunctionLiveness::is_live_at`, suffix membership scan) and the
//!   **chain-walk shim** it replaced
//!   (`is_live_at_chain_walk`, the destruct-private per-use
//!   `inst_position` walk that used to live in
//!   `crates/destruct/src/interference.rs`). Answers are asserted
//!   equal before timing; `speedup` is shim/fast, so ≥ 1.0 means the
//!   refactor did not regress the query.
//! * `destruct_module` — whole-module SSA destruction through
//!   `AnalysisEngine::destruct_module`: a cold run (every post-split
//!   shape precomputes) vs a warm rerun on the same engine (every
//!   probe hits the fingerprint cache — the JIT recompilation story),
//!   with the final cache counters including `dedup_hits`.
//!
//! ```text
//! cargo run --release -p fastlive-bench --bin bench_point_json [--quick] [OUT.json]
//! ```
//!
//! `--quick` shrinks workloads and repetition counts for CI smoke runs
//! (the JSON schema is identical).

use std::fmt::Write as _;

use fastlive_bench::{prepare_suite, time_ns, PreparedProc};
use fastlive_core::FunctionLiveness;
use fastlive_engine::{AnalysisEngine, EngineConfig};
use fastlive_ir::{Function, ProgramPoint};
use fastlive_workload::{generate_module, generate_suite, ModuleParams};

/// One function's point-query stream: the `LiveAt` records of its
/// destruction run, resolved to points.
struct PointStream {
    func: Function,
    points: Vec<(fastlive_ir::Value, ProgramPoint)>,
}

fn point_streams(prepared: Vec<PreparedProc>) -> Vec<PointStream> {
    prepared
        .into_iter()
        .map(|p| {
            let points = p
                .queries
                .iter()
                .filter_map(|q| q.point().map(|point| (q.value, point)))
                .collect();
            PointStream {
                func: p.func,
                points,
            }
        })
        .filter(|s| !s.points.is_empty())
        .collect()
}

fn replay_fast(live: &FunctionLiveness, s: &PointStream) -> usize {
    s.points
        .iter()
        .map(|&(v, p)| live.is_live_at(&s.func, v, p).expect("def exists") as usize)
        .sum()
}

fn replay_shim(live: &FunctionLiveness, s: &PointStream) -> usize {
    s.points
        .iter()
        .map(|&(v, p)| {
            live.is_live_at_chain_walk(&s.func, v, p)
                .expect("def exists") as usize
        })
        .sum()
}

fn main() {
    let mut quick = false;
    let mut out_path = "BENCH_point.json".to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else {
            out_path = arg;
        }
    }
    let (scale, reps, module_functions) = if quick { (10, 3, 12) } else { (60, 9, 64) };
    let host_cpus = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");

    // ---- Point-query replay: fast path vs the retired chain-walk shim.
    json.push_str("  \"point_replay\": [\n");
    let suite_picks = [1usize, 4, 8]; // small, medium, large Table-1 profiles
    for (row, &pi) in suite_picks.iter().enumerate() {
        let profile = &fastlive_workload::SPEC2000_INT[pi];
        let suite = generate_suite(profile, scale, 0x9015 + pi as u64);
        let streams = point_streams(prepare_suite(&suite));
        let total: usize = streams.iter().map(|s| s.points.len()).sum();
        assert!(total > 0, "destruction must issue point queries");

        let analyses: Vec<FunctionLiveness> = streams
            .iter()
            .map(|s| FunctionLiveness::compute(&s.func))
            .collect();
        // The two paths are the same function — assert before timing.
        for (live, s) in analyses.iter().zip(&streams) {
            assert_eq!(
                replay_fast(live, s),
                replay_shim(live, s),
                "{}",
                s.func.name
            );
        }
        // Interleaved A/B samples (fast, shim, fast, shim, …) so slow
        // drift in machine state biases neither side; small streams
        // loop several replays per sample to rise above timer noise.
        let iters = (100_000 / total).max(1);
        let mut fast_samples = Vec::with_capacity(reps);
        let mut shim_samples = Vec::with_capacity(reps);
        for _ in 0..reps {
            fast_samples.push(time_ns(1, || {
                (0..iters)
                    .map(|_| {
                        analyses
                            .iter()
                            .zip(&streams)
                            .map(|(live, s)| replay_fast(live, s))
                            .sum::<usize>()
                    })
                    .sum::<usize>()
            }));
            shim_samples.push(time_ns(1, || {
                (0..iters)
                    .map(|_| {
                        analyses
                            .iter()
                            .zip(&streams)
                            .map(|(live, s)| replay_shim(live, s))
                            .sum::<usize>()
                    })
                    .sum::<usize>()
            }));
        }
        let median = |mut v: Vec<f64>| {
            v.sort_by(f64::total_cmp);
            v[v.len() / 2]
        };
        let fast_ns = median(fast_samples) / iters as f64;
        let shim_ns = median(shim_samples) / iters as f64;
        let speedup = shim_ns / fast_ns;
        let _ = write!(
            json,
            "{}    {{\"suite\": \"{}\", \"procs\": {}, \"point_queries\": {total}, \
             \"fast_ns_per_query\": {:.1}, \"shim_ns_per_query\": {:.1}, \"speedup\": {speedup:.2}}}",
            if row == 0 { "" } else { ",\n" },
            profile.name,
            streams.len(),
            fast_ns / total as f64,
            shim_ns / total as f64,
        );
        eprintln!(
            "point_replay {:<12} {total:>6} queries: fast {:>7.1} ns/q, shim {:>7.1} ns/q ({speedup:.2}x)",
            profile.name,
            fast_ns / total as f64,
            shim_ns / total as f64,
        );
    }

    // ---- Whole-module destruction: engine-cold vs engine-warm.
    let module = generate_module(
        "point_bench",
        ModuleParams {
            functions: module_functions,
            min_blocks: 6,
            max_blocks: 48,
            irreducible_per_mille: 100,
            ..ModuleParams::default()
        },
        0xbeef,
    );
    let threads = 4.min(host_cpus.max(1));
    // Cold: a fresh engine per repetition (every shape precomputes).
    let cold_ns = time_ns(reps, || {
        AnalysisEngine::new(EngineConfig {
            threads,
            cache_capacity: 1024,
            ..EngineConfig::default()
        })
        .destruct_module(&module)
        .len()
    });
    // Warm: one pre-warmed engine, rerunning the whole-module pass.
    let engine = AnalysisEngine::new(EngineConfig {
        threads,
        cache_capacity: 1024,
        ..EngineConfig::default()
    });
    let _ = engine.destruct_module(&module);
    let misses_before = engine.cache_stats().misses;
    let warm_ns = time_ns(reps, || engine.destruct_module(&module).len());
    let stats = engine.cache_stats();
    assert_eq!(
        stats.misses, misses_before,
        "warm module destruction must not precompute"
    );
    let speedup = cold_ns / warm_ns;
    let _ = write!(
        json,
        "\n  ],\n  \"destruct_module\": {{\"functions\": {}, \"threads\": {threads}, \
         \"cold_ns\": {cold_ns:.0}, \"warm_ns\": {warm_ns:.0}, \"speedup\": {speedup:.2}, \
         \"cache_stats\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \"dedup_hits\": {}}}}}\n}}\n",
        module.len(),
        stats.hits,
        stats.misses,
        stats.evictions,
        stats.dedup_hits
    );
    eprintln!(
        "destruct_module {n} functions: cold {cold_ns:.0} ns, warm {warm_ns:.0} ns \
         ({speedup:.2}x), {stats:?}",
        n = module.len()
    );

    std::fs::write(&out_path, &json).expect("write BENCH_point.json");
    println!("wrote {out_path}");
}
