//! Reproduces the §6.1 **memory break-even analysis**: "there is a
//! point where our algorithm needs more memory than the native liveness
//! algorithm ... this break-even point is reached if the number of
//! basic blocks is larger than the size of such an array".
//!
//! For a sweep of procedure sizes this binary reports the bytes used by
//!
//! * the checker's `R`+`T` bit matrices (quadratic in blocks),
//! * the same closures as sorted arrays (§6.1/§8 alternative),
//! * the loop-forest variant (no `T` matrix at all),
//! * the LAO baseline's sorted live-in/live-out arrays, for the
//!   φ-related and the full universe.
//!
//! ```text
//! cargo run --release -p fastlive-bench --bin memory_breakeven
//! ```

use fastlive_core::{LivenessChecker, LoopForestChecker, SortedLivenessChecker};
use fastlive_dataflow::{LaoLiveness, VarUniverse};
use fastlive_workload::{generate_function, GenParams};

fn main() {
    println!("Memory break-even (bytes of analysis storage per procedure)\n");
    println!(
        "{:>7} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "blocks", "bitset R+T", "sorted R+T", "loop-forest", "LAO phi", "LAO full"
    );
    println!("{}", "-".repeat(74));

    for target in [8usize, 16, 32, 64, 128, 256, 512, 1024, 2048] {
        let params = GenParams {
            target_blocks: target,
            max_depth: 3 + (target / 16).min(6) as u32,
            ..GenParams::default()
        };
        let (_, func) = generate_function(&format!("m{target}"), params, target as u64);
        let checker = LivenessChecker::compute(&func);
        let sorted = SortedLivenessChecker::compute(&func);
        let forest = LoopForestChecker::compute(&func);
        let lao_phi = LaoLiveness::compute(&func, &VarUniverse::phi_related(&func));
        let lao_full = LaoLiveness::compute(&func, &VarUniverse::all(&func));
        println!(
            "{:>7} {:>12} {:>12} {:>12} {:>12} {:>12}",
            func.num_blocks(),
            checker.matrix_heap_bytes(),
            sorted.set_heap_bytes(),
            forest
                .map(|f| f.matrix_heap_bytes().to_string())
                .unwrap_or_else(|| "irreducible".to_string()),
            lao_phi.set_heap_bytes(),
            lao_full.set_heap_bytes(),
        );
    }

    println!(
        "\nPaper's model: with 32-variable live arrays on 32-bit, arrays win \
         above ~1024 blocks;\nthe bitset columns grow quadratically while the \
         LAO columns grow with live-set mass."
    );
}
