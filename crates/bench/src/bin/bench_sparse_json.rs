//! Emits `BENCH_sparse.json`: the two-tier cost ladder measured **per
//! analysis kind** now that the engine is a generic sparse-analysis
//! platform —
//!
//! * `cold` — fresh engine, empty persist directory: every function
//!   pays the kind's precomputation *and* the write-through.
//! * `warm_disk` — fresh engine (empty memory) on the now-populated
//!   directory: every distinct fingerprint is decoded from disk, zero
//!   precomputations (`misses == disk_hits` is asserted).
//! * `warm_memory` — the same engine re-driving the kind: every probe
//!   is an in-memory hit.
//!
//! Both [`AnalysisKind`]s are driven through the same engine entry
//! point ([`prefetch`](fastlive::AnalysisEngine::prefetch), the worker
//! pool the batch planner uses), so the ladder compares kinds on equal
//! machinery.
//!
//! `no_regression` is the liveness guard: warm-memory liveness on an
//! engine whose cache also carries every nullness artifact, versus a
//! liveness-only engine. Generalizing the cache must not have taxed
//! the original analysis — the ratio sits at ~1.0.
//!
//! ```text
//! cargo run --release -p fastlive-bench --bin bench_sparse_json [--quick] [OUT.json]
//! ```
//!
//! `--quick` shrinks the module and repetition counts for CI smoke
//! runs (the JSON schema is identical).

use std::fmt::Write as _;

use fastlive::{AnalysisKind, Fastlive};
use fastlive_bench::time_ns;
use fastlive_ir::{FuncId, Module};
use fastlive_workload::{generate_module, ModuleParams};

fn module_blocks(m: &Module) -> usize {
    m.functions().iter().map(|f| f.num_blocks()).sum()
}

fn requests_for(module: &Module, kind: AnalysisKind) -> Vec<(FuncId, AnalysisKind)> {
    (0..module.len()).map(|id| (id, kind)).collect()
}

fn builder(threads: usize, dir: &std::path::Path) -> Fastlive {
    Fastlive::builder()
        .threads(threads)
        .persist_dir(dir.to_path_buf())
        .build()
        .expect("valid config")
}

fn main() {
    let mut quick = false;
    let mut out_path = "BENCH_sparse.json".to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else {
            out_path = arg;
        }
    }
    let (functions, reps) = if quick { (16, 3) } else { (96, 9) };
    let host_cpus = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let threads = 4.min(host_cpus.max(1));

    let module = generate_module(
        "sparse_bench",
        ModuleParams {
            functions,
            min_blocks: 8,
            max_blocks: 64,
            irreducible_per_mille: 100,
            deep_live_per_mille: 300,
        },
        0x5a21,
    );
    let blocks = module_blocks(&module);
    let dir = std::env::temp_dir().join(format!("fastlive-bench-sparse-{}", std::process::id()));
    eprintln!(
        "module: {} functions, {blocks} blocks total, host_cpus={host_cpus}, store={}",
        module.len(),
        dir.display()
    );

    let mut rows: Vec<(AnalysisKind, &str, f64, f64)> = Vec::new();
    for kind in AnalysisKind::ALL {
        let requests = requests_for(&module, kind);

        // ---- cold: fresh engine per rep, directory wiped per rep
        // (outside the timed region).
        let mut cold_samples: Vec<f64> = (0..reps)
            .map(|_| {
                let _ = std::fs::remove_dir_all(&dir);
                time_ns(1, || {
                    builder(threads, &dir).engine().prefetch(&module, &requests);
                    requests.len()
                })
            })
            .collect();
        cold_samples.sort_by(f64::total_cmp);
        let cold_ns = cold_samples[cold_samples.len() / 2];

        // ---- warm_disk: fresh engine per rep over the populated
        // store (the last cold rep filled it).
        let warm_disk_ns = time_ns(reps, || {
            builder(threads, &dir).engine().prefetch(&module, &requests);
            requests.len()
        });
        // Invariant behind the scenario label: zero precomputations,
        // zero rejects, for this kind like any other.
        let fl = builder(threads, &dir);
        let probe = fl.engine();
        probe.prefetch(&module, &requests);
        let stats = probe.cache_stats();
        assert_eq!(
            stats.misses, stats.disk_hits,
            "[{kind}] warm-disk must not precompute: {stats:?}"
        );
        assert_eq!(stats.disk_rejects, 0, "[{kind}] {stats:?}");

        // ---- warm_memory: the probe engine is now fully warm.
        let warm_mem_ns = time_ns(reps, || {
            probe.prefetch(&module, &requests);
            requests.len()
        });

        for (scenario, ns) in [
            ("cold", cold_ns),
            ("warm_disk", warm_disk_ns),
            ("warm_memory", warm_mem_ns),
        ] {
            let speedup = cold_ns / ns;
            eprintln!("{kind:<9} {scenario:<12}: {ns:>12.0} ns ({speedup:.1}x vs cold)");
            rows.push((kind, scenario, ns, speedup));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    // ---- no_regression: warm-memory liveness with the cache shared
    // by both kinds vs a liveness-only engine. Same capacity, same
    // module — the second analysis must not tax the first.
    let live = requests_for(&module, AnalysisKind::Liveness);
    let null = requests_for(&module, AnalysisKind::Nullness);
    let solo_fl = Fastlive::builder().threads(threads).build().expect("valid");
    let solo = solo_fl.engine();
    solo.prefetch(&module, &live);
    let solo_ns = time_ns(reps, || {
        solo.prefetch(&module, &live);
        live.len()
    });
    let shared_fl = Fastlive::builder().threads(threads).build().expect("valid");
    let shared = shared_fl.engine();
    shared.prefetch(&module, &live);
    shared.prefetch(&module, &null);
    let shared_ns = time_ns(reps, || {
        shared.prefetch(&module, &live);
        live.len()
    });
    let ratio = shared_ns / solo_ns;
    eprintln!("liveness warm-memory: solo {solo_ns:.0} ns, shared cache {shared_ns:.0} ns (ratio {ratio:.2})");

    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"host_cpus\": {host_cpus},\n  \"functions\": {},\n  \"blocks_total\": {blocks},\n  \
         \"format_version\": {},",
        module.len(),
        fastlive::engine::persist::FORMAT_VERSION
    );
    json.push_str("  \"sparse\": [\n");
    for (i, (kind, scenario, ns, speedup)) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "{}    {{\"kind\": \"{kind}\", \"scenario\": \"{scenario}\", \"analyze_ns\": {ns:.0}, \
             \"speedup_vs_cold\": {speedup:.1}}}",
            if i == 0 { "" } else { ",\n" },
        );
    }
    let _ = write!(
        json,
        "\n  ],\n  \"no_regression\": {{\"liveness_solo_ns\": {solo_ns:.0}, \
         \"liveness_shared_cache_ns\": {shared_ns:.0}, \"ratio\": {ratio:.2}}}\n}}\n"
    );

    std::fs::write(&out_path, &json).expect("write BENCH_sparse.json");
    let _ = std::fs::remove_dir_all(&dir);
    println!("wrote {out_path}");
}
