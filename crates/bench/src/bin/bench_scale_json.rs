//! Emits `BENCH_scale.json`: the striped-cache contention grid — warm
//! `analyze` throughput swept over lock-stripe counts × concurrent
//! client threads.
//!
//! Every cell pre-warms one facade (so the measured phase is pure cache
//! probing, zero precomputations — asserted via the engine's
//! `CacheStats`) and
//! then times `threads` OS threads each re-analyzing the same module
//! through the shared engine. With one stripe every probe serializes on
//! a single mutex; with more stripes probes of different fingerprints
//! proceed in parallel. `host_cpus` records the machine's available
//! parallelism honestly: on a 1-core box every thread count collapses
//! to ≈1× and the grid mostly measures lock overhead, while a real
//! multi-core host shows the stripe sweep separating.
//!
//! ```text
//! cargo run --release -p fastlive-bench --bin bench_scale_json [--quick] [OUT.json]
//! ```
//!
//! `--quick` shrinks the module and repetition counts for CI smoke
//! runs (the JSON schema is identical).

use std::fmt::Write as _;

use fastlive::Fastlive;
use fastlive_bench::time_ns;
use fastlive_workload::{generate_module, ModuleParams};

struct Setup {
    functions: usize,
    reps: usize,
}

const STRIPE_SWEEP: [usize; 4] = [1, 2, 4, 8];
const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let mut quick = false;
    let mut out_path = "BENCH_scale.json".to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else {
            out_path = arg;
        }
    }
    let setup = if quick {
        Setup {
            functions: 12,
            reps: 3,
        }
    } else {
        Setup {
            functions: 64,
            reps: 9,
        }
    };
    let host_cpus = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    let module = generate_module(
        "scale_bench",
        ModuleParams {
            functions: setup.functions,
            min_blocks: 8,
            max_blocks: 64,
            irreducible_per_mille: 100,
            ..ModuleParams::default()
        },
        0x5ca1e,
    );
    let blocks: usize = module.functions().iter().map(|f| f.num_blocks()).sum();
    eprintln!(
        "module: {} functions, {blocks} blocks total, host_cpus={host_cpus}",
        module.len()
    );

    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"host_cpus\": {host_cpus},\n  \"functions\": {},\n  \"blocks_total\": {blocks},\n  \"reps\": {},",
        module.len(),
        setup.reps
    );
    json.push_str("  \"grid\": [\n");

    let mut first = true;
    for stripes in STRIPE_SWEEP {
        let mut base_ns = 0.0;
        for threads in THREAD_SWEEP {
            // Warm analysis goes through the in-memory tier only; the
            // engine's own worker pool is pinned to 1 so the measured
            // concurrency is exactly the `threads` client threads.
            let fl = Fastlive::builder()
                .threads(1)
                .cache_capacity(1024)
                .stripes(stripes)
                .build()
                .expect("valid config");
            let engine = fl.engine();
            let _ = engine.analyze(&module);
            let warm = engine.cache_stats();
            let ns = time_ns(setup.reps, || {
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..threads)
                        .map(|_| scope.spawn(|| engine.analyze(&module).num_functions()))
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("no panics"))
                        .sum::<usize>()
                })
            });
            let after = engine.cache_stats();
            assert_eq!(
                warm.misses, after.misses,
                "measured phase must be all cache hits"
            );
            if threads == 1 {
                base_ns = ns;
            }
            // Total warm probes per second across all client threads.
            let probes = (threads * module.len()) as f64 / (ns / 1e9);
            let speedup = base_ns / ns * threads as f64;
            let _ = write!(
                json,
                "{}    {{\"stripes\": {stripes}, \"threads\": {threads}, \"analyze_ns\": {ns:.0}, \
                 \"probes_per_sec\": {probes:.0}, \"scaling_vs_1_thread\": {speedup:.2}}}",
                if first { "" } else { ",\n" },
            );
            first = false;
            eprintln!(
                "stripes={stripes} threads={threads}: {ns:>12.0} ns ({probes:>9.0} probes/s, {speedup:.2}x vs 1 thread)"
            );
        }
    }
    json.push_str("\n  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_scale.json");
    println!("wrote {out_path}");
}
