//! Emits `BENCH_facade.json`: scalar-vs-planned execution of typed
//! query batches through the `fastlive` facade.
//!
//! Each row runs one batch against one backend twice — a scalar loop
//! (`session.query` per query: every block probe pays its own
//! candidate scan, every `Direct` query its own precomputation) and
//! the planner (`session.run_queries`: grouped per function, uses
//! resolved once, grouped `LiveIn`/`LiveOut` served from
//! `BatchLiveness` rows) — asserts the answers are **identical**, and
//! reports the ratio. Batch mixes:
//!
//! * `block_heavy` — 90% `LiveIn`/`LiveOut` probes plus the
//!   `Interfere`/`LiveAt` sprinkle every real consumer carries. The
//!   ≥2× facade win: one resolution (analysis handle, dominator tree,
//!   batch rows) per function instead of per query.
//! * `block_dense` — `LiveIn` + `LiveOut` for every `(value, block)`
//!   pair (interference-graph construction). On the session backend
//!   this records the honest floor: warm scalar probes already cost
//!   ~tens of ns through the fused interval kernel, so grouped
//!   execution ≈ parity there — the planner's break-even guard exists
//!   precisely so dense batches never *regress*. The direct backend
//!   shows the checker-reuse win (one precomputation per function vs
//!   one per query).
//! * `mixed` — 60% block probes with `LiveAt`, `Interfere` and
//!   `LiveSets`, the everything-at-once shape.
//!
//! ```text
//! cargo run --release -p fastlive-bench --bin bench_facade_json [--quick] [OUT.json]
//! ```
//!
//! `--quick` shrinks the module and repetitions for CI smoke runs
//! (the JSON schema is identical).

use std::fmt::Write as _;

use fastlive::workload::{generate_module, ModuleParams};
use fastlive::{BackendKind, Block, Fastlive, Module, PointRef, Query, Value};
use fastlive_bench::time_ns;

fn module_blocks(m: &Module) -> usize {
    m.functions().iter().map(|f| f.num_blocks()).sum()
}

/// `LiveIn` + `LiveOut` for every `(value, block)` pair — the dense
/// consumer's query stream, id-addressed.
fn dense_batch(module: &Module) -> Vec<Query> {
    let mut queries = Vec::new();
    for (id, func) in module.iter() {
        for v in func.values() {
            for b in func.blocks() {
                queries.push(Query::live_in(id, v, b));
                queries.push(Query::live_out(id, v, b));
            }
        }
    }
    queries
}

/// A deterministic randomized batch of `n` queries:
/// `block_per_mille`‰ `LiveIn`/`LiveOut` probes, the rest `LiveAt` /
/// `Interfere` (and, when `with_sets`, sparse `LiveSets`).
fn mixed_batch(
    module: &Module,
    n: usize,
    block_per_mille: usize,
    with_sets: bool,
    seed: u64,
) -> Vec<Query> {
    let mut state = seed | 1;
    let mut next = move |bound: usize| {
        // SplitMix64 step — deterministic, dependency-free.
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        (z ^ (z >> 31)) as usize % bound.max(1)
    };
    let mut queries = Vec::with_capacity(n);
    while queries.len() < n {
        let id = next(module.len());
        let func = module.func(id);
        let value = Value::from_index(next(func.num_values()));
        let block = Block::from_index(next(func.num_blocks()));
        let roll = next(1000);
        queries.push(if roll < block_per_mille {
            if roll % 2 == 0 {
                Query::live_in(id, value, block)
            } else {
                Query::live_out(id, value, block)
            }
        } else if roll % 3 == 0 && func.num_values() >= 2 {
            let w = Value::from_index(next(func.num_values()));
            Query::interfere(id, value, w)
        } else if with_sets && roll % 31 == 0 {
            Query::live_sets(id)
        } else {
            let len = func.block_insts(block).len();
            if len == 0 {
                Query::live_at(id, value, PointRef::entry(block))
            } else {
                Query::live_at(id, value, PointRef::after(block, next(len)))
            }
        });
    }
    queries
}

/// Every `stride`-th query — used to cap the direct backend's scalar
/// arm, which pays one precomputation per query.
fn subsample(queries: &[Query], cap: usize) -> Vec<Query> {
    let stride = queries.len().div_ceil(cap).max(1);
    queries.iter().step_by(stride).cloned().collect()
}

fn main() {
    let mut quick = false;
    let mut out_path = "BENCH_facade.json".to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else {
            out_path = arg;
        }
    }
    let reps = if quick { 3 } else { 7 };
    let host_cpus = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    // Irreducible + deep-live: long live ranges and wide `T_q` rows,
    // i.e. realistic non-trivial probe costs.
    let module = generate_module(
        "facade_bench",
        ModuleParams {
            functions: if quick { 3 } else { 6 },
            min_blocks: if quick { 12 } else { 64 },
            max_blocks: if quick { 32 } else { 128 },
            irreducible_per_mille: 600,
            deep_live_per_mille: 600,
        },
        0x00fa_cade,
    );
    let blocks = module_blocks(&module);
    eprintln!(
        "module: {} functions, {blocks} blocks total, host_cpus={host_cpus}",
        module.len()
    );

    let fl = Fastlive::builder()
        .threads(1)
        .build()
        .expect("valid config");

    let n = if quick { 512 } else { 4096 };
    let dense = dense_batch(&module);
    let heavy = mixed_batch(&module, n, 900, false, 0x5eed);
    let mixed = mixed_batch(&module, n, 600, true, 0x5eed);
    let direct_cap = if quick { 256 } else { 1024 };
    // (mix, backend, batch): the direct backend's scalar arm pays a
    // full precomputation per query, so it runs on capped subsamples.
    let rows: Vec<(&str, BackendKind, Vec<Query>)> = vec![
        ("block_heavy", BackendKind::Session, heavy.clone()),
        (
            "block_heavy",
            BackendKind::Direct,
            subsample(&heavy, direct_cap),
        ),
        ("block_dense", BackendKind::Session, dense.clone()),
        (
            "block_dense",
            BackendKind::Direct,
            subsample(&dense, direct_cap),
        ),
        ("mixed", BackendKind::Session, mixed.clone()),
        ("mixed", BackendKind::Direct, subsample(&mixed, direct_cap)),
    ];

    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"host_cpus\": {host_cpus},\n  \"functions\": {},\n  \"blocks_total\": {blocks},",
        module.len()
    );
    json.push_str("  \"batches\": [\n");

    for (i, (mix, backend, queries)) in rows.iter().enumerate() {
        // Correctness gate first: planned == scalar, always.
        let mut session = fl.session_with(&module, *backend);
        let planned = session.run_queries(&module, queries);
        let scalar: Vec<_> = queries.iter().map(|q| session.query(&module, q)).collect();
        assert_eq!(
            planned, scalar,
            "planner changed answers ({mix}/{backend:?})"
        );
        assert!(
            planned.iter().all(Result::is_ok),
            "batch has no resolution errors"
        );

        let scalar_ns = time_ns(reps, || {
            let mut s = fl.session_with(&module, *backend);
            queries
                .iter()
                .map(|q| s.query(&module, q).is_ok() as usize)
                .sum::<usize>()
        });
        let grouped_ns = time_ns(reps, || {
            let mut s = fl.session_with(&module, *backend);
            s.run_queries(&module, queries).len()
        });
        let name = match backend {
            BackendKind::Session => "session",
            BackendKind::Direct => "direct",
            BackendKind::Oracle => "oracle",
        };
        let n = queries.len();
        let speedup = scalar_ns / grouped_ns;
        let _ = write!(
            json,
            "{}    {{\"mix\": \"{mix}\", \"backend\": \"{name}\", \"queries\": {n}, \
             \"scalar_ns\": {scalar_ns:.0}, \"grouped_ns\": {grouped_ns:.0}, \
             \"scalar_ns_per_query\": {:.1}, \"grouped_ns_per_query\": {:.1}, \
             \"identical\": true, \"speedup\": {speedup:.2}}}",
            if i == 0 { "" } else { ",\n" },
            scalar_ns / n as f64,
            grouped_ns / n as f64,
        );
        eprintln!(
            "{mix:<12} {name:<7} n={n:>6}: scalar {scalar_ns:>12.0} ns, \
             grouped {grouped_ns:>12.0} ns ({speedup:.2}x)"
        );
    }
    json.push_str("\n  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_facade.json");
    println!("wrote {out_path}");
}
