//! Shared harness code for the `fastlive` benchmark suite: everything
//! the table-regeneration binaries and the Criterion benches have in
//! common.
//!
//! The measurement methodology follows §6.2 of the paper:
//!
//! * **Precomputation time** — per procedure: for the "native" engine,
//!   solving the data-flow equations over the φ-related universe (and,
//!   for the §6.2 side claim, the full universe); for the "new" engine,
//!   computing the `R`/`T` matrices (plus DFS and dominators).
//! * **Query time** — per query: the exact query stream recorded while
//!   Sreedhar III SSA destruction ran is replayed against each engine
//!   on the post-destruction function, so both engines answer the same
//!   questions about the same program.
//! * Times come from [`std::time::Instant`]; the paper used rdtsc
//!   cycles on a 1.4 GHz Pentium M (1000 cycles = 714 ns). We report
//!   nanoseconds; all of the paper's *claims* are ratios, which are
//!   unit-free.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

use fastlive_core::{FunctionLiveness, LivenessChecker};
use fastlive_dataflow::{LaoLiveness, VarUniverse};
use fastlive_destruct::{destruct_ssa, CheckerEngine, DestructResult, QueryKind, QueryRecord};
use fastlive_ir::Function;
use fastlive_workload::{generate_suite, BenchProfile, Suite};

/// Scale (percent of the paper's procedure counts) read from
/// `FASTLIVE_SCALE`, defaulting to `dflt`.
pub fn scale_from_env(dflt: u32) -> u32 {
    std::env::var("FASTLIVE_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(dflt)
        .clamp(1, 400)
}

/// Generates all ten suites at the given scale.
pub fn all_suites(scale: u32, seed: u64) -> Vec<Suite> {
    fastlive_workload::SPEC2000_INT
        .iter()
        .map(|p| generate_suite(p, scale, seed))
        .collect()
}

/// One prepared procedure: the post-destruction function plus the query
/// stream its destruction issued.
pub struct PreparedProc {
    /// The function after edge splitting and copy insertion.
    pub func: Function,
    /// The recorded liveness queries of the destruction pass.
    pub queries: Vec<QueryRecord>,
}

/// Runs SSA destruction (with the checker engine) on every function of
/// a suite, collecting the per-procedure query streams.
pub fn prepare_suite(suite: &Suite) -> Vec<PreparedProc> {
    suite
        .functions
        .iter()
        .map(|f| {
            let DestructResult { func, stats, .. } =
                destruct_ssa(f.clone(), CheckerEngine::compute);
            PreparedProc {
                func,
                queries: stats.queries,
            }
        })
        .collect()
}

/// Median-of-`reps` wall time of `work`, in nanoseconds. A `black_box`
/// on the closure result keeps the optimizer honest.
pub fn time_ns<T>(reps: usize, mut work: impl FnMut() -> T) -> f64 {
    assert!(reps >= 1);
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        let out = work();
        samples.push(t0.elapsed().as_nanos() as f64);
        std::hint::black_box(out);
    }
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Replays a query stream against the paper's checker; returns the
/// number of positive answers (and keeps the loop from being optimized
/// away). Point queries ([`QueryKind::LiveAt`]) go through
/// [`FunctionLiveness::is_live_at`].
pub fn replay_checker(live: &FunctionLiveness, func: &Function, queries: &[QueryRecord]) -> usize {
    let mut hits = 0;
    for q in queries {
        let ans = match q.kind {
            QueryKind::LiveIn => live.is_live_in(func, q.value, q.block),
            QueryKind::LiveOut => live.is_live_out(func, q.value, q.block),
            QueryKind::LiveAt { .. } => {
                let p = q.point().expect("LiveAt record carries a point");
                live.is_live_at(func, q.value, p)
                    .expect("recorded streams never query detached definitions")
            }
        };
        hits += ans as usize;
    }
    hits
}

/// Replays a query stream against the LAO-style baseline (binary-search
/// lookups in sorted arrays). Point queries use the block-query
/// decomposition — exactly what a block-granularity engine must do —
/// over `func`'s current def-use chains.
pub fn replay_native(live: &LaoLiveness, func: &Function, queries: &[QueryRecord]) -> usize {
    let mut hits = 0;
    for q in queries {
        let ans = match q.kind {
            QueryKind::LiveIn => live.is_live_in(q.value, q.block),
            QueryKind::LiveOut => live.is_live_out(q.value, q.block),
            QueryKind::LiveAt { .. } => {
                let p = q.point().expect("LiveAt record carries a point");
                match func.is_defined_at(q.value, p) {
                    Some(true) => {
                        func.has_use_after(q.value, p) || live.is_live_out(q.value, p.block())
                    }
                    _ => false,
                }
            }
        };
        hits += ans as usize;
    }
    hits
}

/// A structured function of roughly `target` blocks with a nesting
/// depth that grows with size — the shared workload shape for the
/// query-loop and batch benchmarks, so `benches/query.rs` and the
/// committed `BENCH_query.json` measure the same programs.
pub fn sized_function(target: usize, seed: u64) -> Function {
    let params = fastlive_workload::GenParams {
        target_blocks: target,
        max_depth: 3 + (target / 16).min(8) as u32,
        ..fastlive_workload::GenParams::default()
    };
    fastlive_workload::generate_function(&format!("q{target}"), params, seed).1
}

/// Deterministic `(def, use, q)` probe triples biased toward
/// non-trivial candidate scans: `def` is reachable and both the query
/// block and the use block lie inside `def`'s dominance subtree, so
/// the Algorithm 3 interval `[num(def)+1, maxnum(def)]` is non-empty
/// for most probes. This is the workload where the query loop's cost
/// actually lives; uniformly random triples mostly die at the
/// `q ∉ sdom(def)` precheck.
pub fn dominance_probes(live: &LivenessChecker, count: usize, seed: u64) -> Vec<(u32, u32, u32)> {
    let dom = live.dom();
    let n = dom.num_reachable() as u32;
    // With < 2 reachable blocks no definition strictly dominates
    // anything, so no non-trivial probe exists and the draw loop below
    // could never terminate.
    assert!(
        n > 1,
        "dominance_probes needs at least two reachable blocks"
    );
    let mut x = seed | 1;
    let mut step = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        let defn = step() as u32 % n;
        let def = dom.node_at_num(defn);
        let mx = dom.maxnum(def);
        if mx == defn {
            continue; // dominates nothing: the probe would be trivial
        }
        let span = mx - defn;
        let qn = defn + 1 + step() as u32 % span;
        let un = defn + step() as u32 % (span + 1);
        out.push((def, dom.node_at_num(un), dom.node_at_num(qn)));
    }
    out
}

/// Replays graph-level probes against the word-masked query loop;
/// returns the positive-answer count.
pub fn run_probes(live: &LivenessChecker, probes: &[(u32, u32, u32)]) -> usize {
    probes
        .iter()
        .map(|&(d, u, q)| live.is_live_in(d, &[u], q) as usize)
        .sum()
}

/// Replays the same probes against the seed's scalar loop
/// ([`LivenessChecker::is_live_in_scalar`]) for the before/after
/// comparison.
pub fn run_probes_scalar(live: &LivenessChecker, probes: &[(u32, u32, u32)]) -> usize {
    probes
        .iter()
        .map(|&(d, u, q)| live.is_live_in_scalar(d, &[u], q) as usize)
        .sum()
}

/// The per-benchmark measurements backing one Table 2 row.
#[derive(Clone, Debug)]
pub struct Table2Row {
    /// Benchmark name.
    pub name: String,
    /// Procedures measured.
    pub procs: usize,
    /// Mean native (LAO φ-related) precompute ns per procedure.
    pub native_pre_ns: f64,
    /// Mean checker precompute ns per procedure.
    pub new_pre_ns: f64,
    /// Total queries replayed.
    pub queries: usize,
    /// Mean native ns per query.
    pub native_query_ns: f64,
    /// Mean checker ns per query.
    pub new_query_ns: f64,
    /// Mean full-universe data-flow precompute ns per procedure
    /// (the §6.2 "full liveness" variant).
    pub full_pre_ns: f64,
    /// Mean φ-related live-in set cardinality (paper: 3.16).
    pub fill_phi: f64,
    /// Mean full-universe live-in set cardinality (paper: 18.52).
    pub fill_full: f64,
}

impl Table2Row {
    /// Precomputation speedup (native / new), Table 2 "Spdup".
    pub fn pre_speedup(&self) -> f64 {
        self.native_pre_ns / self.new_pre_ns
    }
    /// Query speedup (native / new; below 1 means the checker's query
    /// is slower, as the paper reports).
    pub fn query_speedup(&self) -> f64 {
        self.native_query_ns / self.new_query_ns
    }
    /// Combined speedup per the paper's formula:
    /// `#proc×pre + #queries×query` for each engine, then the ratio.
    pub fn both_speedup(&self) -> f64 {
        let native =
            self.procs as f64 * self.native_pre_ns + self.queries as f64 * self.native_query_ns;
        let new = self.procs as f64 * self.new_pre_ns + self.queries as f64 * self.new_query_ns;
        native / new
    }
}

/// Measures one suite into a [`Table2Row`]. `reps` controls the
/// median-of-N timing.
pub fn measure_suite(profile: &BenchProfile, prepared: &[PreparedProc], reps: usize) -> Table2Row {
    let mut native_pre = 0.0;
    let mut new_pre = 0.0;
    let mut full_pre = 0.0;
    let mut native_q = 0.0;
    let mut new_q = 0.0;
    let mut queries = 0usize;
    let mut fill_phi = 0.0;
    let mut fill_full = 0.0;

    for p in prepared {
        let phi = VarUniverse::phi_related(&p.func);
        let all = VarUniverse::all(&p.func);
        native_pre += time_ns(reps, || LaoLiveness::compute(&p.func, &phi));
        new_pre += time_ns(reps, || FunctionLiveness::compute(&p.func));
        full_pre += time_ns(reps, || LaoLiveness::compute(&p.func, &all));

        let lao = LaoLiveness::compute(&p.func, &phi);
        let checker = FunctionLiveness::compute(&p.func);
        fill_phi += lao.average_fill();
        fill_full += LaoLiveness::compute(&p.func, &all).average_fill();
        if !p.queries.is_empty() {
            queries += p.queries.len();
            native_q += time_ns(reps, || replay_native(&lao, &p.func, &p.queries));
            new_q += time_ns(reps, || replay_checker(&checker, &p.func, &p.queries));
        }
    }

    let n = prepared.len().max(1) as f64;
    Table2Row {
        name: profile.name.to_string(),
        procs: prepared.len(),
        native_pre_ns: native_pre / n,
        new_pre_ns: new_pre / n,
        queries,
        native_query_ns: if queries == 0 {
            0.0
        } else {
            native_q / queries as f64
        },
        new_query_ns: if queries == 0 {
            0.0
        } else {
            new_q / queries as f64
        },
        full_pre_ns: full_pre / n,
        fill_phi: fill_phi / n,
        fill_full: fill_full / n,
    }
}

/// Aggregates rows into the paper's "Total" line (procedure- and
/// query-weighted means).
pub fn total_row(rows: &[Table2Row]) -> Table2Row {
    let procs: usize = rows.iter().map(|r| r.procs).sum();
    let queries: usize = rows.iter().map(|r| r.queries).sum();
    let wavg_p = |f: &dyn Fn(&Table2Row) -> f64| {
        rows.iter().map(|r| f(r) * r.procs as f64).sum::<f64>() / procs.max(1) as f64
    };
    let wavg_q = |f: &dyn Fn(&Table2Row) -> f64| {
        rows.iter().map(|r| f(r) * r.queries as f64).sum::<f64>() / queries.max(1) as f64
    };
    Table2Row {
        name: "Total".to_string(),
        procs,
        native_pre_ns: wavg_p(&|r| r.native_pre_ns),
        new_pre_ns: wavg_p(&|r| r.new_pre_ns),
        queries,
        native_query_ns: wavg_q(&|r| r.native_query_ns),
        new_query_ns: wavg_q(&|r| r.new_query_ns),
        full_pre_ns: wavg_p(&|r| r.full_pre_ns),
        fill_phi: wavg_p(&|r| r.fill_phi),
        fill_full: wavg_p(&|r| r.fill_full),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepared_suite_has_queries() {
        let suite = generate_suite(&fastlive_workload::SPEC2000_INT[3], 20, 5);
        let prepared = prepare_suite(&suite);
        assert_eq!(prepared.len(), suite.functions.len());
        let total: usize = prepared.iter().map(|p| p.queries.len()).sum();
        assert!(total > 0, "destruction must issue queries");
    }

    #[test]
    fn replay_engines_agree_on_answers() {
        let suite = generate_suite(&fastlive_workload::SPEC2000_INT[3], 20, 6);
        for p in prepare_suite(&suite) {
            let phi = VarUniverse::phi_related(&p.func);
            let lao = LaoLiveness::compute(&p.func, &phi);
            let checker = FunctionLiveness::compute(&p.func);
            for q in &p.queries {
                // Replay only φ-universe values: the destruct stream may
                // mention non-φ class members, which LAO cannot answer.
                if phi.index_of(q.value).is_none() {
                    continue;
                }
                let (a, b) = match q.kind {
                    QueryKind::LiveIn => (
                        checker.is_live_in(&p.func, q.value, q.block),
                        lao.is_live_in(q.value, q.block),
                    ),
                    QueryKind::LiveOut => (
                        checker.is_live_out(&p.func, q.value, q.block),
                        lao.is_live_out(q.value, q.block),
                    ),
                    QueryKind::LiveAt { .. } => {
                        let point = q.point().unwrap();
                        (
                            checker.is_live_at(&p.func, q.value, point).unwrap(),
                            replay_native(&lao, &p.func, std::slice::from_ref(q)) == 1,
                        )
                    }
                };
                assert_eq!(a, b, "{:?} on {}", q, p.func.name);
            }
        }
    }

    #[test]
    fn probe_replays_agree_between_loops() {
        let params = fastlive_workload::GenParams {
            target_blocks: 96,
            ..fastlive_workload::GenParams::default()
        };
        let (_, func) = fastlive_workload::generate_function("probe", params, 0x5eed);
        let live = LivenessChecker::compute(&func);
        let probes = dominance_probes(&live, 512, 42);
        assert_eq!(probes.len(), 512);
        let hits = run_probes(&live, &probes);
        assert_eq!(hits, run_probes_scalar(&live, &probes));
        assert!(hits > 0, "dominance-biased probes should find live values");
        // The probes honor the dominance bias they promise.
        for &(d, u, q) in &probes {
            assert!(live.dom().dominates(d, u));
            assert!(live.dom().strictly_dominates(d, q));
        }
    }

    #[test]
    fn measurement_produces_sane_ratios() {
        let suite = generate_suite(&fastlive_workload::SPEC2000_INT[8], 30, 7);
        let prepared = prepare_suite(&suite);
        let row = measure_suite(&suite.profile, &prepared, 3);
        assert!(row.native_pre_ns > 0.0);
        assert!(row.new_pre_ns > 0.0);
        assert!(row.pre_speedup() > 0.0);
        assert!(row.both_speedup() > 0.0);
        let total = total_row(&[row.clone(), row]);
        assert_eq!(total.procs, 2 * suite.functions.len());
    }
}
