//! Property tests over the CFG analyses: randomized graphs, shrunk
//! counterexamples.

use fastlive_cfg::{
    lengauer_tarjan, DfsTree, DomTree, DominanceFrontiers, LoopForest, Reducibility,
};
use fastlive_graph::{Cfg as _, DiGraph};
use proptest::prelude::*;

fn digraphs() -> impl Strategy<Value = DiGraph> {
    (2usize..14).prop_flat_map(|n| {
        let backbone = proptest::collection::vec(0u32..(n as u32), n - 1);
        let extras = proptest::collection::vec((0u32..(n as u32), 0u32..(n as u32)), 0..2 * n);
        (Just(n), backbone, extras).prop_map(|(n, parents, extras)| {
            let mut g = DiGraph::new(n, 0);
            for (i, &p) in parents.iter().enumerate() {
                let v = (i + 1) as u32;
                g.add_edge(p % v, v);
            }
            for (u, v) in extras {
                g.add_edge(u, v);
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The two dominator algorithms agree on every node.
    #[test]
    fn chk_equals_lengauer_tarjan(g in digraphs()) {
        let dfs = DfsTree::compute(&g);
        let chk = DomTree::compute(&g, &dfs);
        let lt = lengauer_tarjan::immediate_dominators(&g, &dfs);
        for v in 0..g.num_nodes() as u32 {
            let a = if chk.is_reachable(v) { chk.idom(v) } else { None };
            prop_assert_eq!(a, lt[v as usize], "node {}", v);
        }
    }

    /// Cytron's characterisation of dominance frontiers holds exactly.
    #[test]
    fn dominance_frontier_characterisation(g in digraphs()) {
        let dfs = DfsTree::compute(&g);
        let dom = DomTree::compute(&g, &dfs);
        let df = DominanceFrontiers::compute(&g, &dom);
        let n = g.num_nodes() as u32;
        for x in 0..n {
            if !dfs.is_reachable(x) {
                continue;
            }
            for y in 0..n {
                if !dfs.is_reachable(y) {
                    continue;
                }
                let expect = g
                    .preds(y)
                    .iter()
                    .any(|&p| dfs.is_reachable(p) && dom.dominates(x, p))
                    && !dom.strictly_dominates(x, y);
                prop_assert_eq!(
                    df.of(x).contains(&y),
                    expect,
                    "DF({}) vs {}", x, y
                );
            }
        }
    }

    /// Loop-forest sanity: headers are exactly the back-edge targets,
    /// nesting depths are consistent, and on reducible graphs every
    /// header dominates its loop's nodes.
    #[test]
    fn loop_forest_invariants(g in digraphs()) {
        let dfs = DfsTree::compute(&g);
        let dom = DomTree::compute(&g, &dfs);
        let forest = LoopForest::compute(&g, &dfs);
        let red = Reducibility::compute(&dfs, &dom);

        let mut headers: Vec<u32> = forest.loops().iter().map(|l| l.header).collect();
        headers.sort_unstable();
        headers.dedup();
        let mut targets: Vec<u32> = dfs.back_edges().iter().map(|&(_, t)| t).collect();
        targets.sort_unstable();
        targets.dedup();
        prop_assert_eq!(headers, targets);

        for (i, l) in forest.loops().iter().enumerate() {
            match l.parent {
                Some(p) => {
                    prop_assert_eq!(l.depth, forest.loop_ref(p).depth + 1);
                    // A loop is inside its parent.
                    prop_assert!(forest.loop_contains(p, l.header));
                }
                None => prop_assert_eq!(l.depth, 1),
            }
            if red.is_reducible() {
                for &n in &l.nodes {
                    prop_assert!(
                        dom.dominates(l.header, n),
                        "loop {} header {} vs node {}", i, l.header, n
                    );
                }
            }
        }
    }

    /// The reducibility flag agrees between the dominance criterion and
    /// Havlak's per-loop marking.
    #[test]
    fn reducibility_flags_agree(g in digraphs()) {
        let dfs = DfsTree::compute(&g);
        let dom = DomTree::compute(&g, &dfs);
        let forest = LoopForest::compute(&g, &dfs);
        let red = Reducibility::compute(&dfs, &dom);
        let havlak_irreducible = forest.loops().iter().any(|l| !l.reducible);
        // Dominance-irreducible implies Havlak finds an irreducible
        // loop; (the converse can differ on exotic shapes, so only this
        // direction is asserted).
        if !red.is_reducible() {
            prop_assert!(havlak_irreducible, "dominance says irreducible, Havlak disagrees");
        }
    }
}
