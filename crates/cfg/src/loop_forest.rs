use fastlive_graph::{Cfg, NodeId};

use crate::DfsTree;

/// Identifier of a loop in a [`LoopForest`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LoopId(pub u32);

/// A single loop discovered by Havlak's analysis.
#[derive(Clone, Debug)]
pub struct Loop {
    /// The loop header (target of the loop's back edges).
    pub header: NodeId,
    /// The enclosing loop, if any.
    pub parent: Option<LoopId>,
    /// `false` if the loop has an entry besides its header (irreducible).
    pub reducible: bool,
    /// Nodes whose *innermost* loop this is (the header included).
    /// Nodes of nested loops are not repeated here.
    pub nodes: Vec<NodeId>,
    /// Nesting depth: outermost loops have depth 1.
    pub depth: u32,
}

/// The loop nesting forest of a CFG, computed with Havlak's algorithm
/// ("Nesting of Reducible and Irreducible Loops", TOPLAS 1997) — one of
/// the two loop-forest constructions the paper's outlook (§8) cites as
/// the structure its algorithm "could take advantage of".
///
/// The forest maps every node to its innermost enclosing loop; loops form
/// a tree via [`Loop::parent`]. Loop headers count as members of the loop
/// they head. On reducible CFGs the headers are exactly the back-edge
/// targets, which is what connects this structure to the sets `T_q`
/// (Definition 5): for a node `q` of a reducible CFG, `T_q` is `{q}` plus
/// the headers of the loops containing `q` — the property the
/// `fastlive-core` loop-forest checker exploits and the test suite
/// verifies.
///
/// # Examples
///
/// ```
/// use fastlive_cfg::{DfsTree, LoopForest};
/// use fastlive_graph::DiGraph;
///
/// // 0 -> 1 -> 2 -> 1 (loop), 2 -> 3.
/// let g = DiGraph::from_edges(4, 0, &[(0, 1), (1, 2), (2, 1), (2, 3)]);
/// let dfs = DfsTree::compute(&g);
/// let forest = LoopForest::compute(&g, &dfs);
/// let l = forest.innermost(1).unwrap();
/// assert_eq!(forest.loop_ref(l).header, 1);
/// assert_eq!(forest.innermost(1), forest.innermost(2));
/// assert_eq!(forest.innermost(3), None);
/// assert_eq!(forest.loop_depth(2), 1);
/// ```
#[derive(Clone, Debug)]
pub struct LoopForest {
    loops: Vec<Loop>,
    /// Innermost loop containing each node (headers map to the loop they
    /// head); `None` for nodes outside all loops or unreachable.
    innermost: Vec<Option<LoopId>>,
}

impl LoopForest {
    /// Runs Havlak's loop analysis over `g`.
    pub fn compute<G: Cfg>(g: &G, dfs: &DfsTree) -> Self {
        Havlak::new(g, dfs).run()
    }

    /// The innermost loop containing `v` (for a header: the loop it
    /// heads); `None` if `v` is in no loop.
    pub fn innermost(&self, v: NodeId) -> Option<LoopId> {
        self.innermost[v as usize]
    }

    /// Loop data for `id`.
    pub fn loop_ref(&self, id: LoopId) -> &Loop {
        &self.loops[id.0 as usize]
    }

    /// All loops, in discovery order (inner loops before the loops that
    /// enclose them).
    pub fn loops(&self) -> &[Loop] {
        &self.loops
    }

    /// Number of loops in the forest.
    pub fn num_loops(&self) -> usize {
        self.loops.len()
    }

    /// If `v` heads a loop, that loop.
    pub fn loop_headed_by(&self, v: NodeId) -> Option<LoopId> {
        self.innermost(v).filter(|&l| self.loop_ref(l).header == v)
    }

    /// Nesting depth of `v`: 0 outside loops, 1 in an outermost loop, ...
    pub fn loop_depth(&self, v: NodeId) -> u32 {
        self.innermost(v).map_or(0, |l| self.loop_ref(l).depth)
    }

    /// Iterates the loops containing `v`, innermost first.
    pub fn containing_loops(&self, v: NodeId) -> ContainingLoops<'_> {
        ContainingLoops {
            forest: self,
            cur: self.innermost(v),
        }
    }

    /// `true` if loop `id` (transitively) contains node `v`.
    pub fn loop_contains(&self, id: LoopId, v: NodeId) -> bool {
        self.containing_loops(v).any(|l| l == id)
    }
}

/// Iterator over the loops enclosing a node, innermost first. Created by
/// [`LoopForest::containing_loops`].
#[derive(Clone, Debug)]
pub struct ContainingLoops<'a> {
    forest: &'a LoopForest,
    cur: Option<LoopId>,
}

impl Iterator for ContainingLoops<'_> {
    type Item = LoopId;
    fn next(&mut self) -> Option<LoopId> {
        let l = self.cur?;
        self.cur = self.forest.loop_ref(l).parent;
        Some(l)
    }
}

/// Internal state of Havlak's algorithm. Works in DFS-preorder index
/// space (`w` below is a preorder number).
struct Havlak<'a, G: Cfg> {
    g: &'a G,
    dfs: &'a DfsTree,
    n: usize,
    /// Union-find parent for collapsing discovered loop bodies.
    uf: Vec<u32>,
    /// Extra non-back predecessors added for irreducible regions.
    extra_non_back: Vec<Vec<u32>>,
    /// Loop (if any) currently headed by each preorder index.
    loop_of_header: Vec<Option<LoopId>>,
    /// Innermost loop assignment per preorder index.
    innermost: Vec<Option<LoopId>>,
    loops: Vec<Loop>,
}

impl<'a, G: Cfg> Havlak<'a, G> {
    fn new(g: &'a G, dfs: &'a DfsTree) -> Self {
        let n = dfs.num_reached();
        Havlak {
            g,
            dfs,
            n,
            uf: (0..n as u32).collect(),
            extra_non_back: vec![Vec::new(); n],
            loop_of_header: vec![None; n],
            innermost: vec![None; n],
            loops: Vec::new(),
        }
    }

    fn find(&mut self, x: u32) -> u32 {
        if self.uf[x as usize] != x {
            let root = self.find(self.uf[x as usize]);
            self.uf[x as usize] = root;
            root
        } else {
            x
        }
    }

    fn run(mut self) -> LoopForest {
        let preorder = self.dfs.preorder().to_vec();
        // Process headers from the deepest preorder number upwards so
        // inner loops are discovered before outer ones.
        for w in (0..self.n as u32).rev() {
            let node_w = preorder[w as usize];

            // Partition incoming edges (in preorder space).
            let mut body_seeds: Vec<u32> = Vec::new(); // FIND of back-edge sources
            let mut self_loop = false;
            for &p in self.g.preds(node_w) {
                if !self.dfs.is_reachable(p) {
                    continue;
                }
                let vp = self.dfs.pre(p);
                if self.dfs.is_ancestor(node_w, p) {
                    // (p, node_w) is a back edge.
                    if vp == w {
                        self_loop = true;
                    } else {
                        let f = self.find(vp);
                        if f != w && !body_seeds.contains(&f) {
                            body_seeds.push(f);
                        }
                    }
                }
            }

            if body_seeds.is_empty() && !self_loop {
                continue;
            }

            // Grow the body: walk non-back predecessors of body members.
            let mut reducible = true;
            let mut body = body_seeds.clone();
            let mut worklist = body_seeds;
            while let Some(x) = worklist.pop() {
                let node_x = preorder[x as usize];
                let mut incoming: Vec<u32> = Vec::new();
                for &p in self.g.preds(node_x) {
                    if !self.dfs.is_reachable(p) {
                        continue;
                    }
                    // Only non-back predecessors grow the body.
                    if !self.dfs.is_ancestor(node_x, p) {
                        incoming.push(self.dfs.pre(p));
                    }
                }
                incoming.extend(self.extra_non_back[x as usize].iter().copied());
                for vp in incoming {
                    let y = self.find(vp);
                    if !self.dfs.is_ancestor(node_w, preorder[y as usize]) {
                        // Entry into the loop that bypasses the header:
                        // the region is irreducible. Defer the offending
                        // predecessor to the enclosing header, as Havlak
                        // does, so outer loops still see it.
                        reducible = false;
                        self.extra_non_back[w as usize].push(y);
                    } else if y != w && !body.contains(&y) {
                        body.push(y);
                        worklist.push(y);
                    }
                }
            }

            // Materialize the loop.
            let id = LoopId(self.loops.len() as u32);
            let mut nodes = vec![node_w];
            for &x in &body {
                self.uf[x as usize] = w;
                if let Some(inner) = self.loop_of_header[x as usize] {
                    // x is the (collapsed) header of an inner loop.
                    self.loops[inner.0 as usize].parent = Some(id);
                } else {
                    nodes.push(preorder[x as usize]);
                    self.innermost[x as usize] = Some(id);
                }
            }
            self.innermost[w as usize] = Some(id);
            self.loop_of_header[w as usize] = Some(id);
            self.loops.push(Loop {
                header: node_w,
                parent: None,
                reducible,
                nodes,
                depth: 0,
            });
        }

        self.finish(&preorder)
    }

    fn finish(mut self, preorder: &[NodeId]) -> LoopForest {
        // Depths: loops were created inner-first, so parents come later;
        // walk in reverse creation order to set depths top-down.
        for i in (0..self.loops.len()).rev() {
            let depth = match self.loops[i].parent {
                Some(p) => self.loops[p.0 as usize].depth + 1,
                None => 1,
            };
            self.loops[i].depth = depth;
        }

        // Translate the innermost table from preorder space to node space.
        let num_nodes = self.g.num_nodes();
        let mut innermost = vec![None; num_nodes];
        for (w, l) in self.innermost.iter().enumerate() {
            innermost[preorder[w] as usize] = *l;
        }
        LoopForest {
            loops: self.loops,
            innermost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastlive_graph::DiGraph;

    fn forest(g: &DiGraph) -> LoopForest {
        LoopForest::compute(g, &DfsTree::compute(g))
    }

    #[test]
    fn acyclic_graph_has_no_loops() {
        let f = forest(&DiGraph::from_edges(
            4,
            0,
            &[(0, 1), (0, 2), (1, 3), (2, 3)],
        ));
        assert_eq!(f.num_loops(), 0);
        for v in 0..4 {
            assert_eq!(f.innermost(v), None);
            assert_eq!(f.loop_depth(v), 0);
        }
    }

    #[test]
    fn single_natural_loop() {
        let g = DiGraph::from_edges(4, 0, &[(0, 1), (1, 2), (2, 1), (2, 3)]);
        let f = forest(&g);
        assert_eq!(f.num_loops(), 1);
        let l = f.loops()[0].clone();
        assert_eq!(l.header, 1);
        assert!(l.reducible);
        let mut nodes = l.nodes.clone();
        nodes.sort_unstable();
        assert_eq!(nodes, vec![1, 2]);
        assert_eq!(f.loop_depth(1), 1);
        assert_eq!(f.loop_depth(3), 0);
        assert_eq!(f.loop_headed_by(1), Some(LoopId(0)));
        assert_eq!(f.loop_headed_by(2), None);
    }

    #[test]
    fn self_loop() {
        let g = DiGraph::from_edges(3, 0, &[(0, 1), (1, 1), (1, 2)]);
        let f = forest(&g);
        assert_eq!(f.num_loops(), 1);
        assert_eq!(f.loops()[0].header, 1);
        assert!(f.loops()[0].reducible);
        assert_eq!(f.loops()[0].nodes, vec![1]);
    }

    #[test]
    fn nested_loops() {
        // outer: 1..4 (back edge 4->1); inner: 2..3 (back edge 3->2).
        let g = DiGraph::from_edges(
            6,
            0,
            &[(0, 1), (1, 2), (2, 3), (3, 2), (3, 4), (4, 1), (4, 5)],
        );
        let f = forest(&g);
        assert_eq!(f.num_loops(), 2);
        let inner = f.loop_headed_by(2).expect("inner loop at 2");
        let outer = f.loop_headed_by(1).expect("outer loop at 1");
        assert_eq!(f.loop_ref(inner).parent, Some(outer));
        assert_eq!(f.loop_ref(outer).parent, None);
        assert_eq!(f.loop_ref(inner).depth, 2);
        assert_eq!(f.loop_ref(outer).depth, 1);
        assert_eq!(f.loop_depth(3), 2);
        assert_eq!(f.loop_depth(4), 1);
        assert!(f.loop_contains(outer, 3));
        assert!(!f.loop_contains(inner, 4));
        let chain: Vec<_> = f.containing_loops(3).collect();
        assert_eq!(chain, vec![inner, outer]);
    }

    #[test]
    fn irreducible_region_flagged() {
        // Entry reaches both 1 and 2; cycle 1<->2 has two entries.
        let g = DiGraph::from_edges(3, 0, &[(0, 1), (0, 2), (1, 2), (2, 1)]);
        let f = forest(&g);
        assert_eq!(f.num_loops(), 1);
        assert!(!f.loops()[0].reducible);
    }

    #[test]
    fn two_sibling_loops() {
        let g = DiGraph::from_edges(5, 0, &[(0, 1), (1, 1), (1, 2), (2, 3), (3, 2), (3, 4)]);
        let f = forest(&g);
        assert_eq!(f.num_loops(), 2);
        let a = f.loop_headed_by(1).unwrap();
        let b = f.loop_headed_by(2).unwrap();
        assert_eq!(f.loop_ref(a).parent, None);
        assert_eq!(f.loop_ref(b).parent, None);
        assert_eq!(f.loop_depth(3), 1);
    }

    #[test]
    fn reducible_headers_are_back_edge_targets() {
        // On a reducible CFG the loop headers and the back-edge targets
        // coincide — the bridge between loop forests and the sets T_q.
        let g = DiGraph::from_edges(
            8,
            0,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 1),
                (1, 4),
                (4, 5),
                (5, 4),
                (5, 6),
                (6, 1),
                (1, 7),
            ],
        );
        let dfs = DfsTree::compute(&g);
        let f = LoopForest::compute(&g, &dfs);
        let mut headers: Vec<NodeId> = f.loops().iter().map(|l| l.header).collect();
        headers.sort_unstable();
        headers.dedup();
        let mut targets: Vec<NodeId> = dfs.back_edges().iter().map(|&(_, t)| t).collect();
        targets.sort_unstable();
        targets.dedup();
        assert_eq!(headers, targets);
    }

    #[test]
    fn figure3_loop_structure() {
        // The paper's Figure 3 (0-based). Three back-edge targets: 1, 4, 7.
        let g = DiGraph::from_edges(
            11,
            0,
            &[
                (0, 1),
                (1, 2),
                (1, 10),
                (2, 3),
                (2, 7),
                (3, 4),
                (4, 5),
                (5, 6),
                (5, 4),
                (6, 1),
                (7, 8),
                (8, 9),
                (8, 5),
                (9, 7),
                (9, 10),
            ],
        );
        let f = forest(&g);
        let mut headers: Vec<NodeId> = f.loops().iter().map(|l| l.header).collect();
        headers.sort_unstable();
        assert_eq!(headers, vec![1, 4, 7]);
        // The {4,5} loop is entered from 8 without passing 4: irreducible.
        let l4 = f.loop_headed_by(4).unwrap();
        assert!(!f.loop_ref(l4).reducible);
    }
}
