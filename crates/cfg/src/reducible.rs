use fastlive_graph::NodeId;

use crate::{DfsTree, DomTree};

/// Result of the reducibility test of §2.1: a CFG is *reducible* iff for
/// each back edge `(s, t)` the target `t` dominates the source `s`
/// (Hecht & Ullman 1974).
///
/// Reducibility matters to the paper twice: Theorem 2 shows that on
/// reducible CFGs a liveness query needs to inspect only a single element
/// of `T_(q,a)` (the one dominating all others), and §6.1 reports that
/// irreducibility is rare in practice (7 of 4823 SPEC2000 procedures,
/// 60 of 8701 back edges).
///
/// # Examples
///
/// ```
/// use fastlive_cfg::{DfsTree, DomTree, Reducibility};
/// use fastlive_graph::DiGraph;
///
/// // A natural loop is reducible ...
/// let g = DiGraph::from_edges(3, 0, &[(0, 1), (1, 2), (2, 1)]);
/// let dfs = DfsTree::compute(&g);
/// let dom = DomTree::compute(&g, &dfs);
/// assert!(Reducibility::compute(&dfs, &dom).is_reducible());
///
/// // ... a two-entry cycle is not.
/// let g = DiGraph::from_edges(3, 0, &[(0, 1), (0, 2), (1, 2), (2, 1)]);
/// let dfs = DfsTree::compute(&g);
/// let dom = DomTree::compute(&g, &dfs);
/// let red = Reducibility::compute(&dfs, &dom);
/// assert!(!red.is_reducible());
/// assert_eq!(red.irreducible_back_edges(), &[(2, 1)]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Reducibility {
    irreducible_back_edges: Vec<(NodeId, NodeId)>,
    num_back_edges: usize,
}

impl Reducibility {
    /// Classifies every back edge of `dfs` by the dominance criterion.
    pub fn compute(dfs: &DfsTree, dom: &DomTree) -> Self {
        let irreducible_back_edges = dfs
            .back_edges()
            .iter()
            .copied()
            .filter(|&(s, t)| !dom.dominates(t, s))
            .collect();
        Reducibility {
            irreducible_back_edges,
            num_back_edges: dfs.back_edges().len(),
        }
    }

    /// `true` if every back-edge target dominates its source.
    pub fn is_reducible(&self) -> bool {
        self.irreducible_back_edges.is_empty()
    }

    /// The back edges whose target does **not** dominate their source —
    /// the edges "contributing to irreducible control flow" counted in
    /// §6.1.
    pub fn irreducible_back_edges(&self) -> &[(NodeId, NodeId)] {
        &self.irreducible_back_edges
    }

    /// Total number of back edges examined.
    pub fn num_back_edges(&self) -> usize {
        self.num_back_edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastlive_graph::DiGraph;

    fn reducibility(g: &DiGraph) -> Reducibility {
        let dfs = DfsTree::compute(g);
        let dom = DomTree::compute(g, &dfs);
        Reducibility::compute(&dfs, &dom)
    }

    #[test]
    fn acyclic_graph_is_reducible() {
        let r = reducibility(&DiGraph::from_edges(
            4,
            0,
            &[(0, 1), (0, 2), (1, 3), (2, 3)],
        ));
        assert!(r.is_reducible());
        assert_eq!(r.num_back_edges(), 0);
    }

    #[test]
    fn natural_nested_loops_are_reducible() {
        let g = DiGraph::from_edges(5, 0, &[(0, 1), (1, 2), (2, 3), (3, 2), (3, 1), (1, 4)]);
        let r = reducibility(&g);
        assert!(r.is_reducible());
        assert_eq!(r.num_back_edges(), 2);
    }

    #[test]
    fn self_loop_is_reducible() {
        let r = reducibility(&DiGraph::from_edges(2, 0, &[(0, 1), (1, 1)]));
        assert!(r.is_reducible());
        assert_eq!(r.num_back_edges(), 1);
    }

    #[test]
    fn multi_entry_loop_is_irreducible() {
        let g = DiGraph::from_edges(3, 0, &[(0, 1), (0, 2), (1, 2), (2, 1)]);
        let r = reducibility(&g);
        assert!(!r.is_reducible());
        assert_eq!(r.irreducible_back_edges().len(), 1);
        assert_eq!(r.num_back_edges(), 1);
    }

    #[test]
    fn figure3_of_the_paper_is_irreducible() {
        // The paper's example CFG contains the loop {5,6} entered both
        // from 4 and (via the cross edge from 9) from 6 — a multi-entry
        // loop. Nodes here are 0-based (paper node k = node k-1).
        let g = DiGraph::from_edges(
            11,
            0,
            &[
                (0, 1),
                (1, 2),
                (1, 10),
                (2, 3),
                (2, 7),
                (3, 4),
                (4, 5),
                (5, 6),
                (5, 4),
                (6, 1),
                (7, 8),
                (8, 9),
                (8, 5),
                (9, 7),
                (9, 10),
            ],
        );
        let r = reducibility(&g);
        assert!(!r.is_reducible());
        // Exactly one back edge is irreducible: (5,4) — paper edge (6,5),
        // whose target 5 does not dominate 6 (node 6 is reachable through
        // the cross edge 9→6 without passing 5).
        assert_eq!(r.irreducible_back_edges(), &[(5, 4)]);
        assert_eq!(r.num_back_edges(), 3);
    }
}
