use fastlive_graph::{Cfg, NodeId, NO_NODE};

/// Classification of a CFG edge relative to a depth-first search tree
/// (Figure 1 of the paper, following Tarjan 1972).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum EdgeClass {
    /// An edge of the DFS spanning tree.
    Tree,
    /// `(u, v)` where `v` is an ancestor of `u` in the DFS tree (the set
    /// `E↑`; self-loops are back edges). Drawn dashed in the paper.
    Back,
    /// `(u, v)` where `u` is a proper ancestor of `v` but the edge is not
    /// the tree edge that discovered `v`.
    Forward,
    /// Every other edge; always points from larger to smaller preorder
    /// number ("cross edges always point in the same direction").
    Cross,
    /// Edge whose source is unreachable from the entry node.
    Unreachable,
}

impl std::fmt::Display for EdgeClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            EdgeClass::Tree => "tree",
            EdgeClass::Back => "back",
            EdgeClass::Forward => "forward",
            EdgeClass::Cross => "cross",
            EdgeClass::Unreachable => "unreachable",
        };
        f.write_str(s)
    }
}

/// A depth-first search spanning tree of a CFG, with preorder/postorder
/// numberings and the edge classification of §2.1.
///
/// The traversal is iterative (no recursion, safe for deep graphs) and
/// deterministic: children are visited in [`Cfg::succs`] order, so two
/// runs over the same graph yield identical numberings — a property the
/// test suite and the deterministic benchmarks rely on.
///
/// # Examples
///
/// ```
/// use fastlive_cfg::{DfsTree, EdgeClass};
/// use fastlive_graph::DiGraph;
///
/// let g = DiGraph::from_edges(3, 0, &[(0, 1), (1, 2), (2, 0)]);
/// let dfs = DfsTree::compute(&g);
/// assert_eq!(dfs.pre(0), 0);
/// assert!(dfs.is_ancestor(0, 2));
/// assert_eq!(dfs.back_edges(), &[(2, 0)]);
/// assert_eq!(dfs.edge_class(2, 0), EdgeClass::Back);
/// ```
#[derive(Clone, Debug)]
pub struct DfsTree {
    /// Nodes in preorder (discovery order). `preorder[0]` is the entry.
    preorder: Vec<NodeId>,
    /// Nodes in postorder (finish order).
    postorder: Vec<NodeId>,
    /// `pre_num[v]` = preorder number of `v`, `NO_NODE` if unreachable.
    pre_num: Vec<u32>,
    /// `post_num[v]` = postorder number of `v`, `NO_NODE` if unreachable.
    post_num: Vec<u32>,
    /// DFS-tree parent; `NO_NODE` for the root and unreachable nodes.
    parent: Vec<NodeId>,
    /// Back edges `(source, target)` in source-major order, i.e. `E↑`.
    back_edges: Vec<(NodeId, NodeId)>,
    /// Per-source `(target, class)` pairs, aligned with `Cfg::succs`.
    classified: Vec<Vec<(NodeId, EdgeClass)>>,
}

impl DfsTree {
    /// Runs a depth-first search over `g` from its entry node.
    pub fn compute<G: Cfg>(g: &G) -> Self {
        let n = g.num_nodes();
        let mut pre_num = vec![NO_NODE; n];
        let mut post_num = vec![NO_NODE; n];
        let mut parent = vec![NO_NODE; n];
        let mut preorder = Vec::with_capacity(n);
        let mut postorder = Vec::with_capacity(n);

        // Iterative DFS: the stack holds (node, index of next successor).
        let root = g.entry();
        pre_num[root as usize] = 0;
        preorder.push(root);
        let mut stack: Vec<(NodeId, usize)> = vec![(root, 0)];
        while let Some(&mut (u, ref mut next)) = stack.last_mut() {
            let succs = g.succs(u);
            if *next < succs.len() {
                let v = succs[*next];
                *next += 1;
                if pre_num[v as usize] == NO_NODE {
                    pre_num[v as usize] = preorder.len() as u32;
                    preorder.push(v);
                    parent[v as usize] = u;
                    stack.push((v, 0));
                }
            } else {
                stack.pop();
                post_num[u as usize] = postorder.len() as u32;
                postorder.push(u);
            }
        }

        // Classify all edges now that both numberings exist. Only back/non-
        // back matters for liveness, but figures and diagnostics want the
        // full four-way split.
        let mut back_edges = Vec::new();
        let mut classified = Vec::with_capacity(n);
        let mut tree_edge_taken = vec![false; n];
        for u in 0..n as NodeId {
            let succs = g.succs(u);
            let mut row = Vec::with_capacity(succs.len());
            if pre_num[u as usize] == NO_NODE {
                row.extend(succs.iter().map(|&v| (v, EdgeClass::Unreachable)));
                classified.push(row);
                continue;
            }
            for &v in succs {
                let class = if ancestor(&pre_num, &post_num, v, u) {
                    // v ancestor of u (v == u means a self-loop): back edge.
                    EdgeClass::Back
                } else if ancestor(&pre_num, &post_num, u, v) {
                    // u proper ancestor of v: the one instance that is the
                    // actual discovery edge is a tree edge, parallel
                    // duplicates are forward edges.
                    if parent[v as usize] == u && !tree_edge_taken[v as usize] {
                        tree_edge_taken[v as usize] = true;
                        EdgeClass::Tree
                    } else {
                        EdgeClass::Forward
                    }
                } else {
                    EdgeClass::Cross
                };
                if class == EdgeClass::Back {
                    back_edges.push((u, v));
                }
                row.push((v, class));
            }
            classified.push(row);
        }

        DfsTree {
            preorder,
            postorder,
            pre_num,
            post_num,
            parent,
            back_edges,
            classified,
        }
    }

    /// Preorder (discovery) number of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is unreachable from the entry.
    pub fn pre(&self, v: NodeId) -> u32 {
        let p = self.pre_num[v as usize];
        assert_ne!(p, NO_NODE, "node {v} is unreachable");
        p
    }

    /// Postorder (finish) number of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is unreachable from the entry.
    pub fn post(&self, v: NodeId) -> u32 {
        let p = self.post_num[v as usize];
        assert_ne!(p, NO_NODE, "node {v} is unreachable");
        p
    }

    /// Returns `true` if `v` was reached by the search.
    pub fn is_reachable(&self, v: NodeId) -> bool {
        self.pre_num[v as usize] != NO_NODE
    }

    /// Returns `true` if every node of the graph is reachable.
    pub fn all_reachable(&self) -> bool {
        self.preorder.len() == self.pre_num.len()
    }

    /// Number of nodes reached by the search.
    pub fn num_reached(&self) -> usize {
        self.preorder.len()
    }

    /// Total number of nodes of the graph the search ran on (reachable
    /// or not) — used to detect stale analyses after CFG edits.
    pub fn num_nodes(&self) -> usize {
        self.pre_num.len()
    }

    /// DFS-tree parent of `v`; `None` for the root or unreachable nodes.
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        match self.parent[v as usize] {
            NO_NODE => None,
            p => Some(p),
        }
    }

    /// Nodes in preorder.
    pub fn preorder(&self) -> &[NodeId] {
        &self.preorder
    }

    /// Nodes in postorder. Restricted to non-back edges this is a reverse
    /// topological order of the *reduced graph* — the order §5.2 uses to
    /// propagate the `R_v` sets.
    pub fn postorder(&self) -> &[NodeId] {
        &self.postorder
    }

    /// Nodes in reverse postorder (a topological order of the reduced
    /// graph, and the iteration order for the dominator fixpoint).
    pub fn reverse_postorder(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.postorder.iter().rev().copied()
    }

    /// `true` if `a` is an ancestor of `b` in the DFS tree (`a == b`
    /// counts).
    ///
    /// Uses the interval characterisation: `a` is an ancestor of `b` iff
    /// `pre(a) <= pre(b)` and `post(a) >= post(b)`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if either node is unreachable.
    pub fn is_ancestor(&self, a: NodeId, b: NodeId) -> bool {
        ancestor(&self.pre_num, &self.post_num, a, b)
    }

    /// The back edges `E↑ = {(s, t) ∈ E | t ancestor of s}` in
    /// source-major order, with multiplicity.
    pub fn back_edges(&self) -> &[(NodeId, NodeId)] {
        &self.back_edges
    }

    /// Class of the `i`-th outgoing edge of `u` (aligned with
    /// [`Cfg::succs`]).
    ///
    /// # Panics
    ///
    /// Panics if `u` has fewer than `i + 1` successors.
    pub fn edge_class_at(&self, u: NodeId, i: usize) -> EdgeClass {
        self.classified[u as usize][i].1
    }

    /// Class of edge `(u, v)`. With parallel edges, returns the class of
    /// the first instance.
    ///
    /// # Panics
    ///
    /// Panics if no edge `(u, v)` exists.
    pub fn edge_class(&self, u: NodeId, v: NodeId) -> EdgeClass {
        self.classified[u as usize]
            .iter()
            .find(|&&(t, _)| t == v)
            .map(|&(_, c)| c)
            .unwrap_or_else(|| panic!("no edge ({u}, {v})"))
    }

    /// Iterates all classified edges `(u, v, class)` in source-major order.
    pub fn classified_edges(&self) -> impl Iterator<Item = (NodeId, NodeId, EdgeClass)> + '_ {
        self.classified
            .iter()
            .enumerate()
            .flat_map(|(u, row)| row.iter().map(move |&(v, c)| (u as NodeId, v, c)))
    }
}

/// Interval ancestor test shared by `DfsTree` methods.
fn ancestor(pre: &[u32], post: &[u32], a: NodeId, b: NodeId) -> bool {
    let (pa, pb) = (pre[a as usize], pre[b as usize]);
    let (qa, qb) = (post[a as usize], post[b as usize]);
    debug_assert!(
        pa != NO_NODE && pb != NO_NODE,
        "ancestor test on unreachable node"
    );
    pa <= pb && qa >= qb
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastlive_graph::DiGraph;

    /// A diamond with a loop on the join node:
    /// 0 -> {1,2}; 1 -> 3; 2 -> 3; 3 -> 1 (back for DFS order 0,1,3).
    fn diamond_loop() -> DiGraph {
        DiGraph::from_edges(4, 0, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 1)])
    }

    #[test]
    fn preorder_starts_at_entry() {
        let dfs = DfsTree::compute(&diamond_loop());
        assert_eq!(dfs.preorder()[0], 0);
        assert_eq!(dfs.pre(0), 0);
        assert_eq!(dfs.num_reached(), 4);
        assert!(dfs.all_reachable());
    }

    #[test]
    fn deterministic_numbering_follows_succ_order() {
        let dfs = DfsTree::compute(&diamond_loop());
        // DFS visits 0, then succ order: 1, then 3, then back to 0's
        // second successor 2.
        assert_eq!(dfs.preorder(), &[0, 1, 3, 2]);
        assert_eq!(dfs.postorder(), &[3, 1, 2, 0]);
        let rpo: Vec<_> = dfs.reverse_postorder().collect();
        assert_eq!(rpo, vec![0, 2, 1, 3]);
    }

    #[test]
    fn parents_follow_tree() {
        let dfs = DfsTree::compute(&diamond_loop());
        assert_eq!(dfs.parent(0), None);
        assert_eq!(dfs.parent(1), Some(0));
        assert_eq!(dfs.parent(3), Some(1));
        assert_eq!(dfs.parent(2), Some(0));
    }

    #[test]
    fn edge_classes_of_diamond_loop() {
        let dfs = DfsTree::compute(&diamond_loop());
        assert_eq!(dfs.edge_class(0, 1), EdgeClass::Tree);
        assert_eq!(dfs.edge_class(0, 2), EdgeClass::Tree);
        assert_eq!(dfs.edge_class(1, 3), EdgeClass::Tree);
        assert_eq!(dfs.edge_class(2, 3), EdgeClass::Cross);
        assert_eq!(dfs.edge_class(3, 1), EdgeClass::Back);
        assert_eq!(dfs.back_edges(), &[(3, 1)]);
    }

    #[test]
    fn ancestor_intervals() {
        let dfs = DfsTree::compute(&diamond_loop());
        assert!(dfs.is_ancestor(0, 3));
        assert!(dfs.is_ancestor(1, 3));
        assert!(dfs.is_ancestor(2, 2)); // reflexive
        assert!(!dfs.is_ancestor(2, 3));
        assert!(!dfs.is_ancestor(3, 1));
    }

    #[test]
    fn self_loop_is_back_edge() {
        let g = DiGraph::from_edges(2, 0, &[(0, 1), (1, 1)]);
        let dfs = DfsTree::compute(&g);
        assert_eq!(dfs.edge_class(1, 1), EdgeClass::Back);
        assert_eq!(dfs.back_edges(), &[(1, 1)]);
    }

    #[test]
    fn forward_edge_detected() {
        // 0 -> 1 -> 2 and a skip edge 0 -> 2 visited after the tree path.
        let g = DiGraph::from_edges(3, 0, &[(0, 1), (1, 2), (0, 2)]);
        let dfs = DfsTree::compute(&g);
        assert_eq!(dfs.edge_class(0, 1), EdgeClass::Tree);
        assert_eq!(dfs.edge_class(1, 2), EdgeClass::Tree);
        assert_eq!(dfs.edge_class_at(0, 1), EdgeClass::Forward);
    }

    #[test]
    fn parallel_tree_edges_second_is_forward() {
        let g = DiGraph::from_edges(2, 0, &[(0, 1), (0, 1)]);
        let dfs = DfsTree::compute(&g);
        assert_eq!(dfs.edge_class_at(0, 0), EdgeClass::Tree);
        assert_eq!(dfs.edge_class_at(0, 1), EdgeClass::Forward);
    }

    #[test]
    fn cross_edges_point_backwards_in_preorder() {
        // Theorem 3's foundation: cross edges lead to smaller preorder.
        let g = DiGraph::from_edges(5, 0, &[(0, 1), (1, 2), (0, 3), (3, 4), (4, 2), (3, 1)]);
        let dfs = DfsTree::compute(&g);
        for (u, v, c) in dfs.classified_edges() {
            if c == EdgeClass::Cross {
                assert!(
                    dfs.pre(v) < dfs.pre(u),
                    "cross edge ({u},{v}) points forward"
                );
            }
        }
    }

    #[test]
    fn unreachable_nodes_marked() {
        let g = DiGraph::from_edges(3, 0, &[(0, 1), (2, 1)]);
        let dfs = DfsTree::compute(&g);
        assert!(!dfs.is_reachable(2));
        assert!(!dfs.all_reachable());
        assert_eq!(dfs.num_reached(), 2);
        assert_eq!(dfs.edge_class(2, 1), EdgeClass::Unreachable);
        assert_eq!(dfs.parent(2), None);
    }

    #[test]
    #[should_panic(expected = "unreachable")]
    fn pre_of_unreachable_panics() {
        let g = DiGraph::from_edges(2, 0, &[]);
        DfsTree::compute(&g).pre(1);
    }

    #[test]
    fn single_node_graph() {
        let g = DiGraph::new(1, 0);
        let dfs = DfsTree::compute(&g);
        assert_eq!(dfs.preorder(), &[0]);
        assert_eq!(dfs.postorder(), &[0]);
        assert!(dfs.back_edges().is_empty());
    }

    #[test]
    fn postorder_is_reverse_topological_on_reduced_graph() {
        // For every non-back edge (u, v): post(u) > post(v). This is the
        // property §5.2 relies on to propagate R_v in one postorder pass.
        let g = DiGraph::from_edges(
            6,
            0,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 1),
                (1, 4),
                (4, 5),
                (5, 2),
                (2, 5),
                (5, 0),
            ],
        );
        let dfs = DfsTree::compute(&g);
        for (u, v, c) in dfs.classified_edges() {
            if !matches!(c, EdgeClass::Back | EdgeClass::Unreachable) {
                assert!(
                    dfs.post(u) > dfs.post(v),
                    "edge ({u},{v}) class {c} violates order"
                );
            }
        }
    }

    #[test]
    fn display_for_edge_class() {
        assert_eq!(EdgeClass::Back.to_string(), "back");
        assert_eq!(EdgeClass::Tree.to_string(), "tree");
    }
}
