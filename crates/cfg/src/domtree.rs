use fastlive_graph::{Cfg, NodeId, NO_NODE};

use crate::DfsTree;

/// The dominator tree of a CFG, with the dominance-tree preorder
/// numbering of §5.1.
///
/// Immediate dominators are computed with the iterative algorithm of
/// Cooper, Harvey & Kennedy ("A Simple, Fast Dominance Algorithm"),
/// which iterates to a fixed point over reverse postorder. An independent
/// Lengauer–Tarjan implementation lives in
/// [`lengauer_tarjan`](crate::lengauer_tarjan) and the two are
/// cross-checked in tests.
///
/// §5.1 of the paper numbers blocks in a *preorder of the dominance tree*
/// "such that if a node dominates another, it has a smaller number", and
/// represents each dominance subtree as the interval
/// `[num(q), maxnum(q)]`. [`DomTree::num`] and [`DomTree::maxnum`] expose
/// exactly this numbering; the whole of Algorithm 3 is built on it.
///
/// # Examples
///
/// ```
/// use fastlive_cfg::{DfsTree, DomTree};
/// use fastlive_graph::DiGraph;
///
/// let g = DiGraph::from_edges(4, 0, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
/// let dfs = DfsTree::compute(&g);
/// let dom = DomTree::compute(&g, &dfs);
/// assert_eq!(dom.idom(3), Some(0)); // the join is dominated by the split
/// assert!(dom.strictly_dominates(0, 3));
/// assert!(!dom.dominates(1, 3));
/// // Dominance is an interval query on the preorder numbering:
/// assert!(dom.num(0) < dom.num(3));
/// assert!(dom.maxnum(0) >= dom.num(3));
/// ```
#[derive(Clone, Debug)]
pub struct DomTree {
    /// Immediate dominator; the entry maps to itself, unreachable nodes to
    /// `NO_NODE`.
    idom: Vec<NodeId>,
    /// Children in the dominance tree, ordered by DFS preorder.
    children: Vec<Vec<NodeId>>,
    /// `num[v]`: dominance-tree preorder number (the paper's `num(v)`).
    num: Vec<u32>,
    /// `maxnum[v]`: largest preorder number in `v`'s dominance subtree.
    maxnum: Vec<u32>,
    /// Inverse of `num`: `by_num[n]` is the node with preorder number `n`.
    by_num: Vec<NodeId>,
    /// Depth in the dominance tree (entry = 0).
    depth: Vec<u32>,
}

impl DomTree {
    /// Computes the dominator tree of `g` using the DFS tree `dfs`
    /// (which supplies the reverse-postorder iteration order).
    ///
    /// Unreachable nodes get no dominator and number; queries on them
    /// panic.
    pub fn compute<G: Cfg>(g: &G, dfs: &DfsTree) -> Self {
        let n = g.num_nodes();
        let root = g.entry();
        let mut idom = vec![NO_NODE; n];
        idom[root as usize] = root;

        // post[v] for the intersect walk; unreachable nodes keep NO_NODE
        // and are skipped as predecessors.
        let post = |v: NodeId| dfs.post(v);

        let mut changed = true;
        while changed {
            changed = false;
            for b in dfs.reverse_postorder() {
                if b == root {
                    continue;
                }
                // First processed predecessor seeds the intersection.
                let mut new_idom = NO_NODE;
                for &p in g.preds(b) {
                    if !dfs.is_reachable(p) || idom[p as usize] == NO_NODE {
                        continue;
                    }
                    new_idom = if new_idom == NO_NODE {
                        p
                    } else {
                        intersect(&idom, &post, p, new_idom)
                    };
                }
                debug_assert_ne!(
                    new_idom, NO_NODE,
                    "reachable node {b} has no processed pred"
                );
                if idom[b as usize] != new_idom {
                    idom[b as usize] = new_idom;
                    changed = true;
                }
            }
        }

        // Children lists ordered by DFS preorder => deterministic preorder
        // numbering that follows discovery order (like the paper's Fig. 3).
        let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for &v in dfs.preorder() {
            if v != root {
                children[idom[v as usize] as usize].push(v);
            }
        }

        // Dominance-tree preorder numbering with subtree max (num/maxnum).
        let mut num = vec![NO_NODE; n];
        let mut maxnum = vec![NO_NODE; n];
        let mut by_num = vec![NO_NODE; dfs.num_reached()];
        let mut depth = vec![0u32; n];
        let mut counter = 0u32;
        // Iterative preorder walk; entries are (node, child index).
        let mut stack: Vec<(NodeId, usize)> = vec![(root, 0)];
        num[root as usize] = 0;
        by_num[0] = root;
        counter += 1;
        while let Some(&mut (v, ref mut ci)) = stack.last_mut() {
            let kids = &children[v as usize];
            if *ci < kids.len() {
                let c = kids[*ci];
                *ci += 1;
                num[c as usize] = counter;
                by_num[counter as usize] = c;
                depth[c as usize] = depth[v as usize] + 1;
                counter += 1;
                stack.push((c, 0));
            } else {
                maxnum[v as usize] = counter - 1;
                stack.pop();
            }
        }
        debug_assert_eq!(counter as usize, dfs.num_reached());

        DomTree {
            idom,
            children,
            num,
            maxnum,
            by_num,
            depth,
        }
    }

    /// Immediate dominator of `v`; `None` for the entry node.
    ///
    /// # Panics
    ///
    /// Panics if `v` is unreachable.
    pub fn idom(&self, v: NodeId) -> Option<NodeId> {
        let d = self.idom[v as usize];
        assert_ne!(d, NO_NODE, "node {v} is unreachable");
        if d == v && self.num[v as usize] == 0 {
            None
        } else {
            Some(d)
        }
    }

    /// Returns `true` if `v` is reachable (has a dominator-tree slot).
    pub fn is_reachable(&self, v: NodeId) -> bool {
        self.idom[v as usize] != NO_NODE
    }

    /// `a dom b`: every path from the entry to `b` contains `a`
    /// (reflexive). O(1) via the preorder interval.
    ///
    /// # Panics
    ///
    /// Panics if either node is unreachable.
    pub fn dominates(&self, a: NodeId, b: NodeId) -> bool {
        self.num(b) >= self.num(a) && self.num(b) <= self.maxnum(a)
    }

    /// `a sdom b`: dominates and `a != b`.
    ///
    /// # Panics
    ///
    /// Panics if either node is unreachable.
    pub fn strictly_dominates(&self, a: NodeId, b: NodeId) -> bool {
        a != b && self.dominates(a, b)
    }

    /// The paper's `num(v)`: preorder number of `v` in the dominance tree.
    /// Dominators always have smaller numbers than the nodes they
    /// dominate.
    ///
    /// # Panics
    ///
    /// Panics if `v` is unreachable.
    pub fn num(&self, v: NodeId) -> u32 {
        let x = self.num[v as usize];
        assert_ne!(x, NO_NODE, "node {v} is unreachable");
        x
    }

    /// The paper's `maxnum(v)` (`get_max_num` in Algorithm 3): the largest
    /// preorder number inside `v`'s dominance subtree. The numbers of the
    /// nodes strictly dominated by `v` are exactly
    /// `num(v) + 1 ..= maxnum(v)`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is unreachable.
    pub fn maxnum(&self, v: NodeId) -> u32 {
        let x = self.maxnum[v as usize];
        assert_ne!(x, NO_NODE, "node {v} is unreachable");
        x
    }

    /// Node carrying preorder number `n` (inverse of [`num`](Self::num)).
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a valid number.
    pub fn node_at_num(&self, n: u32) -> NodeId {
        self.by_num[n as usize]
    }

    /// Number of reachable nodes (== number of preorder numbers).
    pub fn num_reachable(&self) -> usize {
        self.by_num.len()
    }

    /// Children of `v` in the dominance tree, ordered by DFS preorder.
    pub fn children(&self, v: NodeId) -> &[NodeId] {
        &self.children[v as usize]
    }

    /// Depth of `v` in the dominance tree; the entry has depth 0.
    ///
    /// # Panics
    ///
    /// Panics if `v` is unreachable.
    pub fn depth(&self, v: NodeId) -> u32 {
        assert!(self.is_reachable(v), "node {v} is unreachable");
        self.depth[v as usize]
    }

    /// Reachable nodes in dominance-tree preorder.
    pub fn preorder(&self) -> &[NodeId] {
        &self.by_num
    }

    /// Iterates `v` and all its dominators up to the entry, innermost
    /// first.
    pub fn dominators(&self, v: NodeId) -> Dominators<'_> {
        assert!(self.is_reachable(v), "node {v} is unreachable");
        Dominators {
            tree: self,
            cur: Some(v),
        }
    }
}

/// Iterator over a node's dominators, from the node itself to the entry.
/// Created by [`DomTree::dominators`].
#[derive(Clone, Debug)]
pub struct Dominators<'a> {
    tree: &'a DomTree,
    cur: Option<NodeId>,
}

impl Iterator for Dominators<'_> {
    type Item = NodeId;
    fn next(&mut self) -> Option<NodeId> {
        let v = self.cur?;
        self.cur = self.tree.idom(v);
        Some(v)
    }
}

/// The two-finger intersection walk of Cooper–Harvey–Kennedy, climbing by
/// postorder number.
fn intersect(
    idom: &[NodeId],
    post: &impl Fn(NodeId) -> u32,
    mut a: NodeId,
    mut b: NodeId,
) -> NodeId {
    while a != b {
        while post(a) < post(b) {
            a = idom[a as usize];
        }
        while post(b) < post(a) {
            b = idom[b as usize];
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastlive_graph::DiGraph;

    fn dom_of(g: &DiGraph) -> DomTree {
        DomTree::compute(g, &DfsTree::compute(g))
    }

    #[test]
    fn straight_line() {
        let g = DiGraph::from_edges(3, 0, &[(0, 1), (1, 2)]);
        let d = dom_of(&g);
        assert_eq!(d.idom(0), None);
        assert_eq!(d.idom(1), Some(0));
        assert_eq!(d.idom(2), Some(1));
        assert!(d.dominates(0, 2));
        assert!(d.strictly_dominates(0, 2));
        assert!(d.dominates(2, 2));
        assert!(!d.strictly_dominates(2, 2));
    }

    #[test]
    fn diamond_join_dominated_by_split() {
        let g = DiGraph::from_edges(4, 0, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let d = dom_of(&g);
        assert_eq!(d.idom(3), Some(0));
        assert!(!d.dominates(1, 3));
        assert!(!d.dominates(2, 3));
    }

    #[test]
    fn loop_header_dominates_body() {
        let g = DiGraph::from_edges(4, 0, &[(0, 1), (1, 2), (2, 1), (1, 3)]);
        let d = dom_of(&g);
        assert_eq!(d.idom(2), Some(1));
        assert!(d.dominates(1, 2));
        assert!(!d.dominates(2, 3));
    }

    /// The classic irreducible example: entry branches to both members of
    /// a two-node cycle, so neither member dominates the other.
    #[test]
    fn irreducible_pair() {
        let g = DiGraph::from_edges(3, 0, &[(0, 1), (0, 2), (1, 2), (2, 1)]);
        let d = dom_of(&g);
        assert_eq!(d.idom(1), Some(0));
        assert_eq!(d.idom(2), Some(0));
        assert!(!d.dominates(1, 2));
        assert!(!d.dominates(2, 1));
    }

    #[test]
    fn numbering_orders_dominators_first() {
        let g = DiGraph::from_edges(6, 0, &[(0, 1), (1, 2), (1, 3), (2, 4), (3, 4), (4, 5)]);
        let d = dom_of(&g);
        // num is a preorder: every node's dominator has a smaller number.
        for v in 0..6u32 {
            if let Some(i) = d.idom(v) {
                assert!(d.num(i) < d.num(v), "idom({v}) = {i} numbered after");
            }
        }
        // The strict-dominance interval is exactly [num+1, maxnum].
        for a in 0..6u32 {
            for b in 0..6u32 {
                let in_interval = d.num(b) > d.num(a) && d.num(b) <= d.maxnum(a);
                assert_eq!(in_interval, d.strictly_dominates(a, b), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn node_at_num_inverts_num() {
        let g = DiGraph::from_edges(5, 0, &[(0, 1), (1, 2), (0, 3), (3, 4)]);
        let d = dom_of(&g);
        for v in 0..5u32 {
            assert_eq!(d.node_at_num(d.num(v)), v);
        }
        assert_eq!(d.num_reachable(), 5);
    }

    #[test]
    fn children_and_depth() {
        let g = DiGraph::from_edges(4, 0, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let d = dom_of(&g);
        let mut kids = d.children(0).to_vec();
        kids.sort_unstable();
        assert_eq!(kids, vec![1, 2, 3]);
        assert_eq!(d.depth(0), 0);
        assert_eq!(d.depth(3), 1);
    }

    #[test]
    fn dominators_iterator_walks_to_entry() {
        let g = DiGraph::from_edges(4, 0, &[(0, 1), (1, 2), (2, 3)]);
        let d = dom_of(&g);
        let doms: Vec<_> = d.dominators(3).collect();
        assert_eq!(doms, vec![3, 2, 1, 0]);
    }

    #[test]
    fn unreachable_nodes_are_flagged() {
        let g = DiGraph::from_edges(3, 0, &[(0, 1)]);
        let d = dom_of(&g);
        assert!(d.is_reachable(1));
        assert!(!d.is_reachable(2));
        assert_eq!(d.num_reachable(), 2);
    }

    #[test]
    #[should_panic(expected = "unreachable")]
    fn num_of_unreachable_panics() {
        let g = DiGraph::from_edges(2, 0, &[]);
        dom_of(&g).num(1);
    }

    #[test]
    fn entry_with_incoming_edge() {
        // A back edge into the entry node must not disturb idom(entry).
        let g = DiGraph::from_edges(2, 0, &[(0, 1), (1, 0)]);
        let d = dom_of(&g);
        assert_eq!(d.idom(0), None);
        assert_eq!(d.idom(1), Some(0));
    }

    #[test]
    fn matches_purely_iterative_definition_on_small_graph() {
        // Brute force: a dom b iff removing a disconnects b from entry.
        let g = DiGraph::from_edges(
            7,
            0,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 1),
                (1, 4),
                (4, 5),
                (5, 6),
                (6, 4),
                (2, 6),
            ],
        );
        let d = dom_of(&g);
        let n = 7u32;
        for a in 0..n {
            for b in 0..n {
                let brute = brute_dominates(&g, a, b);
                assert_eq!(d.dominates(a, b), brute, "a={a} b={b}");
            }
        }
    }

    /// Reference dominance: `a dom b` iff every entry→b path contains `a`,
    /// checked by deleting `a` and testing reachability of `b`.
    fn brute_dominates(g: &DiGraph, a: NodeId, b: NodeId) -> bool {
        use fastlive_graph::Cfg as _;
        if a == b {
            return true;
        }
        if g.entry() == a {
            return true;
        }
        let mut seen = vec![false; g.num_nodes()];
        let mut stack = vec![g.entry()];
        seen[g.entry() as usize] = true;
        while let Some(u) = stack.pop() {
            if u == a {
                continue; // never walk *through* a (mark it seen but stop)
            }
            for &v in g.succs(u) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    stack.push(v);
                }
            }
        }
        !seen[b as usize]
    }
}
