use fastlive_graph::{Cfg, NodeId};

use crate::DomTree;

/// Dominance frontiers of every node, computed with the algorithm of
/// Cytron et al. (TOPLAS 1991) as refined by Cooper–Harvey–Kennedy:
/// for each join node `b`, walk each predecessor's dominator chain up to
/// (but excluding) `idom(b)`, adding `b` to the frontier of every node on
/// the way.
///
/// The *iterated* dominance frontier ([`DominanceFrontiers::iterated`]) of
/// a variable's definition blocks is exactly the set of blocks that need a
/// φ-function (Figure 2 of the paper); SSA construction in
/// `fastlive-construct` is built on it.
///
/// # Examples
///
/// ```
/// use fastlive_cfg::{DfsTree, DomTree, DominanceFrontiers};
/// use fastlive_graph::DiGraph;
///
/// // Diamond: the join node 3 is in the frontier of both branches.
/// let g = DiGraph::from_edges(4, 0, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
/// let dfs = DfsTree::compute(&g);
/// let dom = DomTree::compute(&g, &dfs);
/// let df = DominanceFrontiers::compute(&g, &dom);
/// assert_eq!(df.of(1), &[3]);
/// assert_eq!(df.of(2), &[3]);
/// assert_eq!(df.of(0), &[] as &[u32]);
/// ```
#[derive(Clone, Debug)]
pub struct DominanceFrontiers {
    /// `df[v]` sorted ascending, deduplicated.
    df: Vec<Vec<NodeId>>,
}

impl DominanceFrontiers {
    /// Computes all dominance frontiers. Unreachable nodes get empty
    /// frontiers and are skipped as predecessors.
    pub fn compute<G: Cfg>(g: &G, dom: &DomTree) -> Self {
        let n = g.num_nodes();
        let mut df: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for b in 0..n as NodeId {
            if !dom.is_reachable(b) || g.preds(b).is_empty() {
                continue;
            }
            match dom.idom(b) {
                // The entry node with predecessors (back edges into the
                // entry): nothing strictly dominates the entry, so *every*
                // dominator of a predecessor has the entry in its
                // frontier; the walk runs through the root inclusive.
                None => {
                    for &p in g.preds(b) {
                        if !dom.is_reachable(p) {
                            continue;
                        }
                        let mut runner = p;
                        loop {
                            push_unique(&mut df[runner as usize], b);
                            match dom.idom(runner) {
                                Some(next) => runner = next,
                                None => break,
                            }
                        }
                    }
                }
                Some(idom_b) => {
                    // With a single predecessor the walk is empty (the
                    // pred *is* the idom); the ≥2-predecessor check of
                    // the textbook version is just this short-circuit.
                    if g.preds(b).len() < 2 {
                        continue;
                    }
                    for &p in g.preds(b) {
                        if !dom.is_reachable(p) {
                            continue;
                        }
                        let mut runner = p;
                        while runner != idom_b {
                            push_unique(&mut df[runner as usize], b);
                            runner = dom.idom(runner).expect(
                                "walk from a predecessor must reach idom(b) before the root",
                            );
                        }
                    }
                }
            }
        }
        for row in &mut df {
            row.sort_unstable();
        }
        DominanceFrontiers { df }
    }

    /// The dominance frontier of `v`, sorted ascending.
    pub fn of(&self, v: NodeId) -> &[NodeId] {
        &self.df[v as usize]
    }

    /// The iterated dominance frontier `DF⁺(defs)`: the least set `S` with
    /// `DF(defs ∪ S) ⊆ S`, computed with a worklist. This is the
    /// φ-placement set of Cytron et al.
    ///
    /// # Examples
    ///
    /// ```
    /// use fastlive_cfg::{DfsTree, DomTree, DominanceFrontiers};
    /// use fastlive_graph::DiGraph;
    ///
    /// // Two defs in the branches of a diamond need one φ at the join.
    /// let g = DiGraph::from_edges(4, 0, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
    /// let dfs = DfsTree::compute(&g);
    /// let dom = DomTree::compute(&g, &dfs);
    /// let df = DominanceFrontiers::compute(&g, &dom);
    /// assert_eq!(df.iterated(&[1, 2]), vec![3]);
    /// ```
    pub fn iterated(&self, defs: &[NodeId]) -> Vec<NodeId> {
        let mut in_set = vec![false; self.df.len()];
        let mut out = Vec::new();
        let mut work: Vec<NodeId> = defs.to_vec();
        let mut queued = vec![false; self.df.len()];
        for &d in defs {
            queued[d as usize] = true;
        }
        while let Some(v) = work.pop() {
            for &f in self.of(v) {
                if !in_set[f as usize] {
                    in_set[f as usize] = true;
                    out.push(f);
                    if !queued[f as usize] {
                        queued[f as usize] = true;
                        work.push(f);
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }
}

fn push_unique(v: &mut Vec<NodeId>, x: NodeId) {
    if !v.contains(&x) {
        v.push(x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DfsTree;
    use fastlive_graph::DiGraph;

    fn frontiers(g: &DiGraph) -> DominanceFrontiers {
        let dfs = DfsTree::compute(g);
        let dom = DomTree::compute(g, &dfs);
        DominanceFrontiers::compute(g, &dom)
    }

    #[test]
    fn straight_line_has_empty_frontiers() {
        let df = frontiers(&DiGraph::from_edges(3, 0, &[(0, 1), (1, 2)]));
        for v in 0..3 {
            assert!(df.of(v).is_empty());
        }
    }

    #[test]
    fn loop_header_is_its_own_frontier() {
        // 0 -> 1 -> 2 -> 1; 2 -> 3. The header 1 has two preds, and the
        // body 2 (and header itself, via the back edge walk) get DF {1}.
        let g = DiGraph::from_edges(4, 0, &[(0, 1), (1, 2), (2, 1), (2, 3)]);
        let df = frontiers(&g);
        assert_eq!(df.of(2), &[1]);
        assert_eq!(df.of(1), &[1]); // a loop header is in its own DF
        assert!(df.of(0).is_empty());
        assert!(df.of(3).is_empty());
    }

    #[test]
    fn cytron_definition_holds() {
        // DF(x) = { y : x dominates a pred of y, but not strictly y }.
        let g = DiGraph::from_edges(
            8,
            0,
            &[
                (0, 1),
                (1, 2),
                (1, 3),
                (2, 4),
                (3, 4),
                (4, 5),
                (5, 1),
                (5, 6),
                (0, 7),
                (7, 6),
            ],
        );
        let dfs = DfsTree::compute(&g);
        let dom = DomTree::compute(&g, &dfs);
        let df = DominanceFrontiers::compute(&g, &dom);
        use fastlive_graph::Cfg as _;
        for x in 0..8u32 {
            let mut expect: Vec<u32> = (0..8u32)
                .filter(|&y| {
                    g.preds(y).iter().any(|&p| dom.dominates(x, p)) && !dom.strictly_dominates(x, y)
                })
                .collect();
            expect.sort_unstable();
            assert_eq!(df.of(x), expect.as_slice(), "DF({x})");
        }
    }

    #[test]
    fn iterated_frontier_reaches_fixpoint() {
        // Nested loops: defs inside the inner loop propagate φs to both
        // headers.
        let g = DiGraph::from_edges(
            6,
            0,
            &[(0, 1), (1, 2), (2, 3), (3, 2), (3, 4), (4, 1), (4, 5)],
        );
        let df = frontiers(&g);
        let idf = df.iterated(&[3]);
        assert_eq!(idf, vec![1, 2]);
        // A def at the entry alone never needs φs.
        assert!(df.iterated(&[0]).is_empty());
        assert!(df.iterated(&[]).is_empty());
    }

    #[test]
    fn diamond_needs_phi_only_at_join() {
        let g = DiGraph::from_edges(4, 0, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let df = frontiers(&g);
        assert_eq!(df.iterated(&[1]), vec![3]);
        assert_eq!(df.iterated(&[1, 2]), vec![3]);
        assert_eq!(df.iterated(&[0]), Vec::<u32>::new());
    }

    #[test]
    fn unreachable_preds_ignored() {
        let g = DiGraph::from_edges(4, 0, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 3)]);
        // Node 3 has a self-loop: its own frontier contains itself.
        let df = frontiers(&g);
        assert_eq!(df.of(3), &[3]);
    }
}
