//! The Lengauer–Tarjan dominator algorithm (simple `O(E log V)` variant
//! with path compression).
//!
//! The main dominator interface of this crate is [`DomTree`](crate::DomTree)
//! (Cooper–Harvey–Kennedy). This module is an *independent* second
//! implementation used for two purposes:
//!
//! 1. **Cross-validation** — the test suite checks that both algorithms
//!    produce identical immediate-dominator arrays on every generated CFG,
//!    which guards the foundation the entire liveness checker stands on.
//! 2. **Ablation benchmarks** — the paper's precomputation cost includes
//!    building the dominance tree (§2 "computable in O(|V|)"); the
//!    `ablation` bench compares the two dominator algorithms on the
//!    generated SPEC-like workloads.
//!
//! # Examples
//!
//! ```
//! use fastlive_cfg::{lengauer_tarjan, DfsTree};
//! use fastlive_graph::DiGraph;
//!
//! let g = DiGraph::from_edges(4, 0, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
//! let dfs = DfsTree::compute(&g);
//! let idom = lengauer_tarjan::immediate_dominators(&g, &dfs);
//! assert_eq!(idom[3], Some(0));
//! assert_eq!(idom[0], None);
//! ```

use fastlive_graph::{Cfg, NodeId};

use crate::DfsTree;

/// Computes immediate dominators with Lengauer–Tarjan.
///
/// Returns one entry per node: `None` for the entry node and for nodes
/// unreachable from it, `Some(idom)` otherwise.
pub fn immediate_dominators<G: Cfg>(g: &G, dfs: &DfsTree) -> Vec<Option<NodeId>> {
    let n_all = g.num_nodes();
    let n = dfs.num_reached();

    // Work entirely in DFS-preorder index space: node `v` <-> index pre(v).
    // vertex[i] is the node with preorder number i.
    let vertex: &[NodeId] = dfs.preorder();
    let pre = |v: NodeId| dfs.pre(v) as usize;

    // parent in the DFS tree, in index space.
    let mut parent = vec![usize::MAX; n];
    for &v in vertex.iter().skip(1) {
        parent[pre(v)] = pre(dfs.parent(v).expect("non-root reachable node has a parent"));
    }

    let mut semi: Vec<usize> = (0..n).collect();
    let mut idom = vec![usize::MAX; n];
    let mut bucket: Vec<Vec<usize>> = vec![Vec::new(); n];

    // Union-find forest with path compression keyed by semidominator.
    let mut ancestor = vec![usize::MAX; n];
    let mut label: Vec<usize> = (0..n).collect();

    // eval(v): the vertex u with minimal semi[u] on the forest path to v.
    // Iterative path compression to stay recursion-free on deep CFGs.
    fn eval(v: usize, ancestor: &mut [usize], label: &mut [usize], semi: &[usize]) -> usize {
        if ancestor[v] == usize::MAX {
            return label[v];
        }
        // Collect the path to the forest root.
        let mut path = vec![v];
        let mut a = ancestor[v];
        while ancestor[a] != usize::MAX {
            path.push(a);
            a = ancestor[a];
        }
        // Compress from the top down, propagating minimal labels.
        for &u in path.iter().rev() {
            let au = ancestor[u];
            if ancestor[au] != usize::MAX {
                if semi[label[au]] < semi[label[u]] {
                    label[u] = label[au];
                }
                ancestor[u] = ancestor[au];
            }
        }
        label[v]
    }

    // Pass 1: semidominators, processed in reverse preorder.
    for w in (1..n).rev() {
        let node_w = vertex[w];
        for &p in g.preds(node_w) {
            if !dfs.is_reachable(p) {
                continue;
            }
            let v = pre(p);
            let u = eval(v, &mut ancestor, &mut label, &semi);
            if semi[u] < semi[w] {
                semi[w] = semi[u];
            }
        }
        bucket[semi[w]].push(w);
        ancestor[w] = parent[w]; // LINK(parent(w), w)

        // Implicitly compute idoms for vertices in bucket(parent(w)).
        let pw = parent[w];
        let drained = std::mem::take(&mut bucket[pw]);
        for v in drained {
            let u = eval(v, &mut ancestor, &mut label, &semi);
            idom[v] = if semi[u] < semi[v] { u } else { pw };
        }
    }

    // Pass 2: finalize idoms in preorder.
    for w in 1..n {
        if idom[w] != semi[w] {
            idom[w] = idom[idom[w]];
        }
    }

    // Translate back to node-id space.
    let mut out = vec![None; n_all];
    for w in 1..n {
        out[vertex[w] as usize] = Some(vertex[idom[w]]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DomTree;
    use fastlive_graph::DiGraph;

    fn lt(g: &DiGraph) -> Vec<Option<NodeId>> {
        immediate_dominators(g, &DfsTree::compute(g))
    }

    #[test]
    fn straight_line() {
        let g = DiGraph::from_edges(3, 0, &[(0, 1), (1, 2)]);
        assert_eq!(lt(&g), vec![None, Some(0), Some(1)]);
    }

    #[test]
    fn diamond() {
        let g = DiGraph::from_edges(4, 0, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        assert_eq!(lt(&g)[3], Some(0));
    }

    #[test]
    fn unreachable_nodes_get_none() {
        let g = DiGraph::from_edges(3, 0, &[(0, 1)]);
        assert_eq!(lt(&g), vec![None, Some(0), None]);
    }

    #[test]
    fn lengauer_tarjan_example_from_the_original_paper() {
        // The 13-node example of Lengauer & Tarjan (1979), Fig. 1.
        // Nodes: R=0 A=1 B=2 C=3 D=4 E=5 F=6 G=7 H=8 I=9 J=10 K=11 L=12.
        let g = DiGraph::from_edges(
            13,
            0,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 4),
                (2, 1),
                (2, 4),
                (2, 5),
                (3, 6),
                (3, 7),
                (4, 12),
                (5, 8),
                (6, 9),
                (7, 9),
                (7, 10),
                (8, 5),
                (8, 9),
                (9, 11),
                (10, 9),
                (11, 9),
                (11, 0),
                (12, 8),
            ],
        );
        let idom = lt(&g);
        assert_eq!(
            idom,
            brute_idoms(&g),
            "LT disagrees with brute-force dominators"
        );
    }

    /// Reference immediate dominators computed from first principles:
    /// `a dom b` iff deleting `a` makes `b` unreachable; the immediate
    /// dominator is the strict dominator dominated by all others.
    fn brute_idoms(g: &DiGraph) -> Vec<Option<NodeId>> {
        let n = g.num_nodes() as NodeId;
        let reach_without = |blocked: Option<NodeId>| {
            let mut seen = vec![false; n as usize];
            if Some(g.entry()) == blocked {
                return seen;
            }
            let mut stack = vec![g.entry()];
            seen[g.entry() as usize] = true;
            while let Some(u) = stack.pop() {
                for &v in g.succs(u) {
                    if Some(v) != blocked && !seen[v as usize] {
                        seen[v as usize] = true;
                        stack.push(v);
                    }
                }
            }
            seen
        };
        let base = reach_without(None);
        let dominates = |a: NodeId, b: NodeId| a == b || !reach_without(Some(a))[b as usize];
        (0..n)
            .map(|b| {
                if !base[b as usize] || b == g.entry() {
                    return None;
                }
                let sdoms: Vec<NodeId> = (0..n)
                    .filter(|&a| a != b && base[a as usize] && dominates(a, b))
                    .collect();
                // The idom is the strict dominator that every other strict
                // dominator dominates.
                sdoms
                    .iter()
                    .copied()
                    .find(|&d| sdoms.iter().all(|&o| dominates(o, d)))
            })
            .collect()
    }

    #[test]
    fn agrees_with_cooper_harvey_kennedy_on_dense_cases() {
        // A pile of hand graphs including loops, self-loops, parallel
        // edges and irreducible regions.
        let graphs = [
            DiGraph::from_edges(2, 0, &[(0, 1), (1, 1)]),
            DiGraph::from_edges(3, 0, &[(0, 1), (0, 2), (1, 2), (2, 1)]),
            DiGraph::from_edges(4, 0, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (1, 3)]),
            DiGraph::from_edges(
                5,
                0,
                &[(0, 1), (1, 2), (2, 1), (1, 3), (3, 4), (4, 3), (4, 1)],
            ),
            DiGraph::from_edges(2, 0, &[(0, 1), (0, 1)]),
        ];
        for (i, g) in graphs.iter().enumerate() {
            assert_chk_matches(g, i);
        }
    }

    #[test]
    fn agrees_with_cooper_harvey_kennedy_on_random_graphs() {
        // Deterministic xorshift-seeded random digraphs.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for case in 0..200 {
            let n = 2 + (next() % 24) as usize;
            let mut g = DiGraph::new(n, 0);
            // A random tree backbone keeps everything reachable...
            for v in 1..n as NodeId {
                let p = (next() % v as u64) as NodeId;
                g.add_edge(p, v);
            }
            // ...plus random extra edges (possibly loops/parallel).
            for _ in 0..(next() % (2 * n as u64)) {
                let u = (next() % n as u64) as NodeId;
                let v = (next() % n as u64) as NodeId;
                g.add_edge(u, v);
            }
            assert_chk_matches(&g, case);
        }
    }

    fn assert_chk_matches(g: &DiGraph, case: usize) {
        let dfs = DfsTree::compute(g);
        let chk = DomTree::compute(g, &dfs);
        let lt = immediate_dominators(g, &dfs);
        for v in 0..g.num_nodes() as NodeId {
            let chk_idom = if chk.is_reachable(v) {
                chk.idom(v)
            } else {
                None
            };
            assert_eq!(
                chk_idom, lt[v as usize],
                "case {case}: idom mismatch at node {v} (CHK vs LT)"
            );
        }
    }
}
