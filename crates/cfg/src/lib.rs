//! Structural control-flow-graph analyses for the `fastlive` liveness
//! library.
//!
//! §2 of Boissinot et al. (CGO 2008) lists the prerequisites of the fast
//! liveness check; this crate provides each of them, generic over any
//! [`Cfg`](fastlive_graph::Cfg):
//!
//! * [`DfsTree`] — depth-first search spanning tree with pre/postorder
//!   numbering and the edge classification of Figure 1 (tree, back,
//!   forward, cross). The back-edge set `E↑` drives the whole paper.
//! * [`DomTree`] — dominator tree via the iterative algorithm of Cooper,
//!   Harvey & Kennedy, with the dominance-tree *preorder numbering*
//!   (`num`/`maxnum`) that §5.1 uses to iterate `T_q ∩ sdom(def(a))` as a
//!   bitset interval. A second, independent implementation
//!   ([`lengauer_tarjan`]) exists for cross-validation and benchmarking.
//! * [`DominanceFrontiers`] — Cytron et al. dominance frontiers and their
//!   iterated form, needed by SSA construction.
//! * [`Reducibility`] — the §2.1 test: a CFG is reducible iff every back
//!   edge's target dominates its source.
//! * [`LoopForest`] — Havlak's loop nesting forest, the structure the §8
//!   outlook proposes to exploit.
//!
//! # Examples
//!
//! ```
//! use fastlive_cfg::{DfsTree, DomTree};
//! use fastlive_graph::DiGraph;
//!
//! // A simple loop: 0 -> 1 -> 2 -> 1, 2 -> 3.
//! let g = DiGraph::from_edges(4, 0, &[(0, 1), (1, 2), (2, 1), (2, 3)]);
//! let dfs = DfsTree::compute(&g);
//! assert_eq!(dfs.back_edges(), &[(2, 1)]);
//!
//! let dom = DomTree::compute(&g, &dfs);
//! assert!(dom.dominates(1, 3));
//! assert!(!dom.dominates(2, 1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dfs;
mod domfront;
mod domtree;
pub mod lengauer_tarjan;
mod loop_forest;
mod reducible;

pub use dfs::{DfsTree, EdgeClass};
pub use domfront::DominanceFrontiers;
pub use domtree::DomTree;
pub use loop_forest::{Loop, LoopForest, LoopId};
pub use reducible::Reducibility;
