//! The structured-program generator: random (but always terminating and
//! definitely-assigned) functions with realistic control flow.

use fastlive_construct::{construct_ssa, PreFunction, PreRvalue, PreTerm, Var};
use fastlive_graph::NodeId;
use fastlive_ir::{BinaryOp, Function, UnaryOp};

use crate::rng::SplitMix64;

/// Tuning knobs of the generator. The defaults approximate the
/// SPEC2000-int shape of Table 1 (short def-use chains, ~1.3 edges per
/// block, moderate loop nesting).
#[derive(Copy, Clone, Debug)]
pub struct GenParams {
    /// Stop opening new control-flow constructs once this many blocks
    /// exist (the final count overshoots slightly; see the calibration
    /// test).
    pub target_blocks: usize,
    /// Maximum nesting depth of ifs/loops.
    pub max_depth: u32,
    /// Percent chance that a construct is a loop rather than an if.
    pub loop_percent: u64,
    /// Percent chance of a conditional early exit inside a loop body.
    pub break_percent: u64,
    /// Straight-line statements emitted per block, 1..=this.
    pub max_straightline: u64,
    /// Number of function parameters (1..=8 sensible).
    pub num_params: u32,
    /// Liveness-driven bias (à la Barany, arXiv:1709.04421): percent
    /// chance, per control-flow construct, that an *old* variable is
    /// carried across the whole construct — picked before a loop or
    /// if, used only after the exit/join. `0` (the default) disables
    /// the bias and reproduces the classic generator bit-for-bit;
    /// higher values produce deep live ranges that cross loop headers
    /// and back edges, including blocks a value is live *through*
    /// without being used in — the sparse-set edge case the oracle
    /// suites want exercised.
    pub deep_live_percent: u64,
}

impl Default for GenParams {
    fn default() -> Self {
        GenParams {
            target_blocks: 30,
            max_depth: 4,
            loop_percent: 22,
            break_percent: 20,
            max_straightline: 4,
            num_params: 3,
            deep_live_percent: 0,
        }
    }
}

/// Generates a non-SSA [`PreFunction`]. Guaranteed properties:
///
/// * every loop is bounded by a fresh counter that nothing else ever
///   assigns — the program terminates on all inputs;
/// * every variable is definitely assigned before use
///   (`verify_definite_assignment` holds by construction);
/// * same `(params, seed)` always produces the same program.
pub fn generate_pre(name: &str, params: GenParams, seed: u64) -> PreFunction {
    let mut g = Gen {
        rng: SplitMix64::new(seed ^ 0xfeed_5eed_c0de_0001),
        pre: PreFunction::new(name, params.num_params),
        params,
        avail: Vec::new(),
        reassign: Vec::new(),
    };
    let entry = g.pre.entry();
    for i in 0..params.num_params {
        let p = g.pre.param(i);
        g.avail.push(p);
        g.reassign.push(p); // reassigning parameters is fine and φ-rich
    }
    // Seed a couple of locals so expression depth exists immediately.
    let mut cur = entry;
    for _ in 0..2 {
        let rv = g.rvalue();
        let v = g.pre.fresh_var();
        g.pre.assign(cur, v, rv);
        g.avail.push(v);
        g.reassign.push(v);
    }
    cur = g.seq(cur, 0);
    // Return 1..=2 live variables.
    let mut rets = vec![*g.rng.pick(&g.avail)];
    if g.rng.chance(50) {
        rets.push(*g.rng.pick(&g.avail));
    }
    g.pre.set_term(cur, PreTerm::Return(rets));
    g.pre
}

/// Generates a pre-IR function and its SSA construction.
///
/// # Panics
///
/// Panics if SSA construction rejects the generated program (that would
/// be a generator bug; the property tests keep it honest).
pub fn generate_function(name: &str, params: GenParams, seed: u64) -> (PreFunction, Function) {
    let pre = generate_pre(name, params, seed);
    let ssa = construct_ssa(&pre).expect("generated programs are strict by construction");
    (pre, ssa)
}

struct Gen {
    rng: SplitMix64,
    pre: PreFunction,
    params: GenParams,
    /// Variables readable at the current point (definitely assigned).
    avail: Vec<Var>,
    /// Subset of `avail` that may be *reassigned* (never loop counters
    /// or bounds — that would break guaranteed termination).
    reassign: Vec<Var>,
}

impl Gen {
    /// With the deep-live knob on, sometimes picks an *old* variable
    /// (parameters, early locals) to carry across the control-flow
    /// construct about to be generated: its next use will sit after
    /// the construct's exit/join, so its live range spans every block
    /// in between. All draws are guarded so a knob of 0 consumes no
    /// RNG state: classic seeds keep producing byte-identical
    /// programs.
    fn pick_carried(&mut self) -> Option<Var> {
        if self.params.deep_live_percent > 0 && self.rng.chance(self.params.deep_live_percent) {
            Some(self.avail[self.rng.index((self.avail.len() / 2).max(1))])
        } else {
            None
        }
    }

    /// Emits the delayed use of a carried variable at `b` (the block
    /// where control continues after the construct it crossed).
    fn use_carried(&mut self, b: NodeId, carried: Option<Var>) {
        if let Some(old) = carried {
            let sink = self.pre.fresh_var();
            self.pre
                .assign(b, sink, PreRvalue::Unary(UnaryOp::Copy, old));
            self.avail.push(sink);
            self.reassign.push(sink);
        }
    }

    /// A random right-hand side over available variables, biased toward
    /// recently created ones (short def-use chains, like real code).
    fn rvalue(&mut self) -> PreRvalue {
        let pick_biased = |g: &mut Gen| -> Var {
            let n = g.avail.len();
            if n == 1 || g.rng.chance(60) {
                let lo = n - (n / 3).max(1);
                g.avail[lo + g.rng.index(n - lo)]
            } else {
                g.avail[g.rng.index(n)]
            }
        };
        match self.rng.range(10) {
            0..=2 => PreRvalue::Const(self.rng.range(200) as i64 - 100),
            3..=4 => {
                let a = pick_biased(self);
                let ops = [UnaryOp::Ineg, UnaryOp::Bnot, UnaryOp::Copy];
                PreRvalue::Unary(*self.rng.pick(&ops), a)
            }
            _ => {
                let a = pick_biased(self);
                let b = pick_biased(self);
                let ops = [
                    BinaryOp::Iadd,
                    BinaryOp::Iadd,
                    BinaryOp::Isub,
                    BinaryOp::Imul,
                    BinaryOp::Band,
                    BinaryOp::Bxor,
                    BinaryOp::IcmpEq,
                    BinaryOp::IcmpSlt,
                ];
                PreRvalue::Binary(*self.rng.pick(&ops), a, b)
            }
        }
    }

    /// Emits 1..=max straight-line statements into `b`.
    fn straightline(&mut self, b: NodeId) {
        let n = 1 + self.rng.range(self.params.max_straightline);
        for _ in 0..n {
            let rv = self.rvalue();
            if self.rng.chance(25) && !self.reassign.is_empty() {
                let dst = *self.rng.pick(&self.reassign);
                self.pre.assign(b, dst, rv);
            } else {
                let dst = self.pre.fresh_var();
                self.pre.assign(b, dst, rv);
                self.avail.push(dst);
                self.reassign.push(dst);
            }
        }
    }

    /// Generates a statement sequence starting in `cur`; returns the
    /// block where control continues. Variables born inside are
    /// forgotten on exit (they are not definitely assigned on all
    /// outer paths).
    fn seq(&mut self, mut cur: NodeId, depth: u32) -> NodeId {
        self.straightline(cur);
        loop {
            let enough_blocks = self.pre.num_blocks() >= self.params.target_blocks;
            // The top-level sequence keeps going until the block target
            // is met; nested regions end with 30% probability per step.
            if enough_blocks || depth >= self.params.max_depth || (depth > 0 && self.rng.chance(30))
            {
                return cur;
            }
            cur = if self.rng.chance(self.params.loop_percent) {
                self.gen_loop(cur, depth)
            } else {
                self.gen_if(cur, depth)
            };
            self.straightline(cur);
        }
    }

    /// `if (c) { .. } else { .. }` (the else arm is sometimes empty,
    /// producing the diamond-with-shortcut shape). With the deep-live
    /// knob, an old variable may be carried across the whole diamond:
    /// live through both arms, used in neither.
    fn gen_if(&mut self, cur: NodeId, depth: u32) -> NodeId {
        let carried = self.pick_carried();
        let cond = self.condition(cur);
        let then_b = self.pre.add_block();
        let join = self.pre.add_block();
        let (snap_a, snap_r) = (self.avail.len(), self.reassign.len());

        if self.rng.chance(70) {
            let else_b = self.pre.add_block();
            self.pre.set_term(
                cur,
                PreTerm::Brif {
                    cond,
                    then_dest: then_b,
                    else_dest: else_b,
                },
            );
            let t_end = self.seq(then_b, depth + 1);
            self.pre.set_term(t_end, PreTerm::Jump(join));
            self.avail.truncate(snap_a);
            self.reassign.truncate(snap_r);
            let e_end = self.seq(else_b, depth + 1);
            self.pre.set_term(e_end, PreTerm::Jump(join));
        } else {
            // if-without-else: the shortcut edge cur -> join.
            self.pre.set_term(
                cur,
                PreTerm::Brif {
                    cond,
                    then_dest: then_b,
                    else_dest: join,
                },
            );
            let t_end = self.seq(then_b, depth + 1);
            self.pre.set_term(t_end, PreTerm::Jump(join));
        }
        self.avail.truncate(snap_a);
        self.reassign.truncate(snap_r);
        self.use_carried(join, carried);
        join
    }

    /// A bounded counting loop, optionally with a conditional early
    /// exit (`break`). The counter, bound and step are fresh variables
    /// that never enter the reassignable set, so nested code cannot
    /// destroy the termination guarantee.
    ///
    /// With the deep-live knob on, a loop sometimes *carries* an old
    /// variable: it is picked before the loop and used only after the
    /// exit, so it is live **through** every loop block (header, body,
    /// back edge) while appearing in none of them — exactly the
    /// live-through-but-not-used shape sparse liveness analyses get
    /// wrong first.
    fn gen_loop(&mut self, cur: NodeId, depth: u32) -> NodeId {
        let carried = self.pick_carried();
        let (snap_a, snap_r) = (self.avail.len(), self.reassign.len());
        let i = self.pre.fresh_var();
        let bound = self.pre.fresh_var();
        let one = self.pre.fresh_var();
        self.pre.assign(cur, i, PreRvalue::Const(0));
        self.pre
            .assign(cur, bound, PreRvalue::Const(1 + self.rng.range(6) as i64));
        self.pre.assign(cur, one, PreRvalue::Const(1));
        self.avail.extend([i, bound, one]);

        let header = self.pre.add_block();
        let body = self.pre.add_block();
        let exit = self.pre.add_block();
        self.pre.set_term(cur, PreTerm::Jump(header));
        let c = self.pre.fresh_var();
        self.pre
            .assign(header, c, PreRvalue::Binary(BinaryOp::IcmpSlt, i, bound));
        self.pre.set_term(
            header,
            PreTerm::Brif {
                cond: c,
                then_dest: body,
                else_dest: exit,
            },
        );

        let mut body_end = self.seq(body, depth + 1);
        if self.rng.chance(self.params.break_percent) {
            // if (c2) break;
            let c2 = self.condition(body_end);
            let cont = self.pre.add_block();
            self.pre.set_term(
                body_end,
                PreTerm::Brif {
                    cond: c2,
                    then_dest: exit,
                    else_dest: cont,
                },
            );
            body_end = cont;
        }
        self.pre
            .assign(body_end, i, PreRvalue::Binary(BinaryOp::Iadd, i, one));
        self.pre.set_term(body_end, PreTerm::Jump(header));

        // i, bound, one survive the loop (assigned before it); anything
        // born inside does not.
        self.avail.truncate(snap_a + 3);
        self.reassign.truncate(snap_r);
        // The carried variable's delayed use: defined before the loop,
        // untouched inside it, consumed here in the exit block — live
        // across the header, the body and the back edge.
        self.use_carried(exit, carried);
        exit
    }

    /// A fresh condition variable computed in `b`.
    fn condition(&mut self, b: NodeId) -> Var {
        let a = *self.rng.pick(&self.avail);
        let d = *self.rng.pick(&self.avail);
        let c = self.pre.fresh_var();
        let op = if self.rng.chance(50) {
            BinaryOp::IcmpSlt
        } else {
            BinaryOp::IcmpEq
        };
        self.pre.assign(b, c, PreRvalue::Binary(op, a, d));
        self.avail.push(c);
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastlive_construct::{run_pre, verify_definite_assignment};
    use fastlive_core::verify_strict_ssa;
    use fastlive_ir::interp;

    #[test]
    fn generated_programs_are_strict() {
        for seed in 0..40 {
            let pre = generate_pre("t", GenParams::default(), seed);
            verify_definite_assignment(&pre).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn construction_round_trips_semantically() {
        for seed in 0..30 {
            let (pre, ssa) = generate_function("t", GenParams::default(), seed);
            verify_strict_ssa(&ssa).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{ssa}"));
            let mut rng = SplitMix64::new(seed * 77 + 1);
            for _ in 0..4 {
                let args: Vec<i64> = (0..pre.num_params())
                    .map(|_| rng.range(40) as i64 - 20)
                    .collect();
                let want = run_pre(&pre, &args, 2_000_000)
                    .unwrap_or_else(|e| panic!("seed {seed}, args {args:?}: {e}"));
                let got = interp::run(&ssa, &args, 2_000_000)
                    .unwrap_or_else(|e| panic!("seed {seed}, args {args:?}: {e}"));
                assert_eq!(got.returned, want.returned, "seed {seed}, args {args:?}");
            }
        }
    }

    #[test]
    fn terminates_on_all_inputs() {
        // Loops are counter-bounded: generous fuel never runs out.
        for seed in 100..110 {
            let pre = generate_pre("t", GenParams::default(), seed);
            for probe in [-100i64, -1, 0, 1, 99] {
                let args = vec![probe; pre.num_params() as usize];
                run_pre(&pre, &args, 5_000_000).expect("terminates");
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let p = GenParams::default();
        let (_, a) = generate_function("t", p, 7);
        let (_, b) = generate_function("t", p, 7);
        assert_eq!(a.to_string(), b.to_string());
        let (_, c) = generate_function("t", p, 8);
        assert_ne!(a.to_string(), c.to_string());
    }

    #[test]
    fn target_blocks_is_roughly_respected() {
        for (target, seed) in [(8usize, 1u64), (30, 2), (80, 3)] {
            let params = GenParams {
                target_blocks: target,
                ..GenParams::default()
            };
            let pre = generate_pre("t", params, seed);
            let n = pre.num_blocks();
            assert!(n >= target / 2, "target {target}, got {n}");
            assert!(n <= target * 3, "target {target}, got {n}");
        }
    }

    #[test]
    fn deep_live_knob_keeps_programs_strict_and_deterministic() {
        let params = GenParams {
            deep_live_percent: 60,
            ..GenParams::default()
        };
        for seed in 0..25 {
            let pre = generate_pre("deep", params, seed);
            verify_definite_assignment(&pre).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            let (pre2, ssa) = generate_function("deep", params, seed);
            verify_strict_ssa(&ssa).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{ssa}"));
            // Still semantically faithful to the pre-IR.
            let args = vec![seed as i64 % 17 - 8; pre2.num_params() as usize];
            let want = run_pre(&pre2, &args, 5_000_000).expect("terminates");
            let got = interp::run(&ssa, &args, 5_000_000).expect("terminates");
            assert_eq!(got.returned, want.returned, "seed {seed}");
        }
        let (_, a) = generate_function("deep", params, 3);
        let (_, b) = generate_function("deep", params, 3);
        assert_eq!(a.to_string(), b.to_string());
    }

    #[test]
    fn deep_live_knob_stretches_live_ranges() {
        use fastlive_core::FunctionLiveness;
        // Count (value, block) pairs where the value is live *through*
        // the block without a def or use in it — the sparse-set edge
        // case the knob exists to mass-produce.
        let live_through_unused = |f: &fastlive_ir::Function| -> usize {
            let live = FunctionLiveness::compute(f);
            let mut count = 0;
            for v in f.values() {
                for b in f.blocks() {
                    if f.def_block(v) != b
                        && live.is_live_in(f, v, b)
                        && live.is_live_out(f, v, b)
                        && !f.uses(v).iter().any(|&i| f.inst_block(i) == Some(b))
                    {
                        count += 1;
                    }
                }
            }
            count
        };
        let mut classic = 0;
        let mut deep = 0;
        for seed in 0..40u64 {
            let base = GenParams {
                target_blocks: 24,
                ..GenParams::default()
            };
            let (_, a) = generate_function("c", base, seed);
            classic += live_through_unused(&a);
            let (_, b) = generate_function(
                "d",
                GenParams {
                    deep_live_percent: 60,
                    ..base
                },
                seed,
            );
            deep += live_through_unused(&b);
        }
        // Aggregated over 40 seeds the carried ranges dominate the
        // program-to-program noise (the knob shifts the RNG stream, so
        // same-seed programs are not otherwise comparable).
        assert!(
            deep > classic,
            "deep-live bias should create more live-through-unused pairs: {deep} vs {classic}"
        );
    }

    #[test]
    fn depth_zero_stays_single_block() {
        let params = GenParams {
            num_params: 1,
            max_depth: 0,
            ..GenParams::default()
        };
        let (pre, ssa) = generate_function("flat", params, 5);
        assert_eq!(pre.num_blocks(), 1);
        let out = interp::run(&ssa, &[3], 10_000).expect("runs");
        let want = run_pre(&pre, &[3], 10_000).expect("runs");
        assert_eq!(out.returned, want.returned);
    }
}
