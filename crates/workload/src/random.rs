//! Raw pseudo-random digraphs — not SSA programs, just CFG shapes.
//!
//! The structured generator ([`generate_function`](crate::generate_function))
//! only emits reducible CFGs, and [`inject_gotos`](crate::inject_gotos)
//! bends real programs into irreducibility. When a test or benchmark
//! needs *arbitrary* graph shapes — dense retreating edges, wide
//! `T_q` rows, cross-edge tangles — this generator is the shared
//! source, so the checker tests and the query benchmarks draw from
//! the same distribution.

use fastlive_graph::DiGraph;

/// A deterministic pseudo-random digraph with `n` nodes: a parent
/// backbone (`parent < child`) keeps every node reachable from the
/// entry `0`, and `extra` uniformly random edges — roughly half of
/// them retreating — create loops, cross edges and, almost always for
/// `extra ≳ n`, irreducible regions.
///
/// The generator is a fixed xorshift64 stream: the same `(n, seed,
/// extra)` triple always yields the same graph, across runs and
/// call sites.
pub fn random_digraph(n: u32, seed: u64, extra: usize) -> DiGraph {
    assert!(n > 0, "random_digraph needs at least one node");
    let mut x = seed | 1;
    let mut step = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    let mut edges = Vec::with_capacity(n as usize - 1 + extra);
    for v in 1..n {
        edges.push((step() as u32 % v, v));
    }
    for _ in 0..extra {
        edges.push((step() as u32 % n, step() as u32 % n));
    }
    DiGraph::from_edges(n as usize, 0, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastlive_cfg::{DfsTree, DomTree, Reducibility};
    use fastlive_graph::Cfg as _;

    #[test]
    fn deterministic_and_fully_reachable() {
        let a = random_digraph(40, 7, 80);
        let b = random_digraph(40, 7, 80);
        assert_eq!(a.num_edges(), b.num_edges());
        let dfs = DfsTree::compute(&a);
        assert!(dfs.all_reachable(), "backbone keeps every node reachable");
        assert_eq!(a.num_edges(), 39 + 80);
    }

    #[test]
    fn dense_extras_produce_irreducible_graphs() {
        let g = random_digraph(64, 0xabcd, 64 * 10);
        let dfs = DfsTree::compute(&g);
        let dom = DomTree::compute(&g, &dfs);
        assert!(!Reducibility::compute(&dfs, &dom).is_reducible());
    }

    #[test]
    fn single_node_graph_is_fine() {
        let g = random_digraph(1, 3, 0);
        assert_eq!(g.num_nodes(), 1);
        assert_eq!(g.num_edges(), 0);
    }
}
