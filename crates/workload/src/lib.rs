//! Deterministic workload generation for the `fastlive` benchmarks.
//!
//! The paper evaluates on the integer SPEC2000 programs compiled by the
//! LAO code generator — 4823 procedures whose structural statistics
//! Table 1 reports. Neither SPEC sources nor LAO are available here, so
//! this crate generates *synthetic procedure suites calibrated to
//! Table 1*: per-benchmark profiles fix the block-count distribution
//! (average, the ≤32/≤64 quantiles, the maximum) and the generator
//! produces structured programs (ifs, nested bounded loops, early
//! exits) whose def-use statistics land in the reported ranges (~70% of
//! variables with one use, ~95% with ≤4, ~1.3 CFG edges per block, few
//! back edges, rare irreducibility).
//!
//! Everything is seeded and bit-stable: the same seed always yields the
//! same suite, so measured numbers in EXPERIMENTS.md are reproducible.
//!
//! # Examples
//!
//! ```
//! use fastlive_workload::{generate_function, GenParams};
//!
//! let params = GenParams { target_blocks: 12, ..GenParams::default() };
//! let (pre, ssa) = generate_function("demo", params, 42);
//! assert!(ssa.num_blocks() >= 4);
//! // Same seed, same program.
//! let (_, again) = generate_function("demo", params, 42);
//! assert_eq!(ssa.to_string(), again.to_string());
//! # let _ = pre;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod faults;
mod irreducible;
mod module;
mod profiles;
mod random;
mod rng;
mod stats;
mod structured;
mod suite;

pub use faults::{
    generate_campaigns, CampaignParams, FaultCampaign, FaultEvent, FaultOp, FaultSpec, EACCES, EIO,
    ENOSPC,
};
pub use irreducible::inject_gotos;
pub use module::{generate_module, ModuleParams};
pub use profiles::{BenchProfile, SPEC2000_INT};
pub use random::random_digraph;
pub use rng::SplitMix64;
pub use stats::{FunctionStats, SuiteStats};
pub use structured::{generate_function, generate_pre, GenParams};
pub use suite::{generate_suite, Suite};
