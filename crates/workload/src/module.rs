//! Random multi-function [`Module`] generation — the workload shape of
//! the `fastlive-engine` analysis engine.
//!
//! A module mixes sizes the way a real compilation unit does: mostly
//! small structured (reducible) functions with a tail of larger ones,
//! plus an optional fraction of goto-injected procedures whose CFGs may
//! end up irreducible. Everything is seeded and bit-stable, like the
//! rest of this crate.

use fastlive_construct::construct_ssa;
use fastlive_ir::Module;

use crate::inject_gotos;
use crate::rng::SplitMix64;
use crate::structured::{generate_pre, GenParams};

/// Parameters for [`generate_module`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ModuleParams {
    /// Number of functions to generate.
    pub functions: usize,
    /// Smallest per-function block target (inclusive).
    pub min_blocks: usize,
    /// Largest per-function block target (inclusive).
    pub max_blocks: usize,
    /// Per-mille of functions receiving goto injection (about half of
    /// those end up truly irreducible; injections that would break
    /// strict SSA are discarded, as in the suite generator).
    pub irreducible_per_mille: u32,
    /// Per-mille of functions generated with the liveness-driven
    /// deep-live bias ([`GenParams::deep_live_percent`] = 60): long
    /// live ranges crossing loop headers and back edges, including
    /// live-through-but-not-used blocks. `0` (the default) reproduces
    /// the classic mix bit-for-bit.
    pub deep_live_per_mille: u32,
}

impl Default for ModuleParams {
    fn default() -> Self {
        ModuleParams {
            functions: 16,
            min_blocks: 4,
            max_blocks: 48,
            irreducible_per_mille: 125,
            deep_live_per_mille: 0,
        }
    }
}

/// Generates a module of `params.functions` strict-SSA functions named
/// `{prefix}_0 .. {prefix}_{n-1}`. Same seed, same module — the
/// engine's equivalence tests and the scaling benchmarks rely on that.
///
/// # Panics
///
/// Panics if `params.functions == 0` or `min_blocks > max_blocks`.
///
/// # Examples
///
/// ```
/// use fastlive_workload::{generate_module, ModuleParams};
///
/// let m = generate_module("demo", ModuleParams { functions: 3, ..ModuleParams::default() }, 7);
/// assert_eq!(m.len(), 3);
/// assert!(m.by_name("demo_2").is_some());
/// ```
pub fn generate_module(prefix: &str, params: ModuleParams, seed: u64) -> Module {
    assert!(params.functions > 0, "a module needs at least one function");
    assert!(
        params.min_blocks <= params.max_blocks,
        "min_blocks must not exceed max_blocks"
    );
    let mut rng = SplitMix64::new(seed ^ 0x6d6f_6475_6c65); // "module"
    let span = (params.max_blocks - params.min_blocks + 1) as u64;
    let mut module = Module::new();
    for i in 0..params.functions {
        let target = params.min_blocks + rng.range(span) as usize;
        // Short-circuit keeps the RNG stream untouched when the knob
        // is off, so classic seeds reproduce their old modules exactly.
        let deep =
            params.deep_live_per_mille > 0 && rng.range(1000) < params.deep_live_per_mille as u64;
        let gen = GenParams {
            target_blocks: target,
            max_depth: 3 + (target / 20).min(4) as u32,
            num_params: 1 + rng.range(4) as u32,
            deep_live_percent: if deep { 60 } else { 0 },
            ..GenParams::default()
        };
        let fseed = rng.next_u64();
        let mut pre = generate_pre(&format!("{prefix}_{i}"), gen, fseed);
        if rng.range(1000) < params.irreducible_per_mille as u64 {
            let mut dirty = pre.clone();
            inject_gotos(&mut dirty, 2 + rng.range(3) as usize, fseed);
            if construct_ssa(&dirty).is_ok() {
                pre = dirty;
            }
        }
        module.push(construct_ssa(&pre).expect("generated programs are strict"));
    }
    module
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastlive_cfg::{DfsTree, DomTree, Reducibility};

    #[test]
    fn deterministic_and_named() {
        let p = ModuleParams {
            functions: 5,
            ..ModuleParams::default()
        };
        let a = generate_module("m", p, 42);
        let b = generate_module("m", p, 42);
        assert_eq!(a.to_string(), b.to_string());
        assert_eq!(a.len(), 5);
        for i in 0..5 {
            assert_eq!(a.by_name(&format!("m_{i}")), Some(i));
        }
        // A different seed gives a different module.
        let c = generate_module("m", p, 43);
        assert_ne!(a.to_string(), c.to_string());
    }

    #[test]
    fn block_targets_are_respected_loosely() {
        let p = ModuleParams {
            functions: 12,
            min_blocks: 6,
            max_blocks: 30,
            irreducible_per_mille: 0,
            ..ModuleParams::default()
        };
        let m = generate_module("sized", p, 9);
        for (_, f) in m.iter() {
            // The structured generator overshoots targets slightly.
            assert!(f.num_blocks() >= 3, "{} too small", f.name);
            assert!(f.num_blocks() <= 3 * 30, "{} too big", f.name);
        }
    }

    #[test]
    fn deep_live_per_mille_zero_changes_nothing() {
        // The knob draws no RNG state when off, so adding it must not
        // disturb any classic seed's module.
        let classic = ModuleParams {
            functions: 6,
            min_blocks: 4,
            max_blocks: 20,
            irreducible_per_mille: 200,
            deep_live_per_mille: 0,
        };
        let a = generate_module("m", classic, 77);
        let b = generate_module("m", classic, 77);
        assert_eq!(a.to_string(), b.to_string());
        // Full-rate deep-live modules differ and stay strict.
        let deep = generate_module(
            "m",
            ModuleParams {
                deep_live_per_mille: 1000,
                ..classic
            },
            77,
        );
        assert_ne!(a.to_string(), deep.to_string());
        for (_, f) in deep.iter() {
            fastlive_core::verify_strict_ssa(f).unwrap_or_else(|e| panic!("{}: {e}", f.name));
        }
    }

    #[test]
    fn high_injection_rate_yields_some_irreducible_functions() {
        let p = ModuleParams {
            functions: 40,
            min_blocks: 12,
            max_blocks: 32,
            irreducible_per_mille: 1000,
            ..ModuleParams::default()
        };
        let m = generate_module("irr", p, 3);
        let irreducible = m
            .functions()
            .iter()
            .filter(|f| {
                let dfs = DfsTree::compute(*f);
                let dom = DomTree::compute(*f, &dfs);
                !Reducibility::compute(&dfs, &dom).is_reducible()
            })
            .count();
        assert!(
            irreducible >= 4,
            "only {irreducible} of 40 goto-injected functions were irreducible"
        );
    }
}
