//! Goto injection: making a few generated CFGs irreducible, matching
//! §6.1's observation that irreducible control flow exists but is rare
//! (7 of 4823 procedures, 60 of 8701 back edges).

use fastlive_construct::{definite_assignment, PreFunction, PreRvalue, PreTerm};
use fastlive_graph::NodeId;

use crate::rng::SplitMix64;

/// Rewires up to `gotos` jump terminators into two-way branches whose
/// second target is another random block, creating multi-entry loops
/// ("from a language perspective, gotos are necessary to create
/// irreducible control flow", §2.1).
///
/// Two safety properties are preserved:
///
/// * the injected branch condition is a fresh constant 0, so the new
///   edge is never taken at run time — semantics and termination are
///   untouched;
/// * a candidate edge `b → target` is accepted only when every variable
///   definitely assigned at `target`'s entry is also assigned at `b`'s
///   exit, so the program stays *strict* (SSA construction still
///   succeeds). This check is what makes the injected edges jump into
///   loop bodies rather than arbitrary scopes.
///
/// Returns the number of edges injected.
pub fn inject_gotos(pre: &mut PreFunction, gotos: usize, seed: u64) -> usize {
    let mut rng = SplitMix64::new(seed ^ 0x0bad_c0de_dead_0001);
    let n = pre.num_blocks() as NodeId;
    if n < 4 {
        return 0;
    }
    let mut injected = 0;
    let mut attempts = 0;
    while injected < gotos && attempts < gotos * 60 {
        attempts += 1;
        // Recompute after each successful injection (sets change).
        let da = definite_assignment(pre);
        let b = rng.range(n as u64) as NodeId;
        // Only rewrite unconditional jumps, and only to targets that are
        // neither the entry nor the block itself.
        let Some(PreTerm::Jump(dest)) = pre.term(b).cloned() else {
            continue;
        };
        let target = 1 + rng.range((n - 1) as u64) as NodeId;
        if target == b || target == dest {
            continue;
        }
        // Strictness filter: exit(b) must cover entry(target).
        let exit_b = &da.exit[b as usize];
        let entry_t = &da.entry[target as usize];
        if entry_t
            .iter()
            .zip(exit_b)
            .any(|(&need, &have)| need && !have)
        {
            continue;
        }
        pre.clear_term(b);
        let never = pre.fresh_var();
        pre.assign(b, never, PreRvalue::Const(0));
        pre.set_term(
            b,
            PreTerm::Brif {
                cond: never,
                then_dest: target,
                else_dest: dest,
            },
        );
        injected += 1;
    }
    injected
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structured::{generate_pre, GenParams};
    use fastlive_cfg::{DfsTree, DomTree, Reducibility};
    use fastlive_construct::{construct_ssa, run_pre};
    use fastlive_ir::interp;

    #[test]
    fn injection_preserves_semantics() {
        for seed in 0..12 {
            let params = GenParams {
                target_blocks: 20,
                ..GenParams::default()
            };
            let clean = generate_pre("g", params, seed);
            let mut dirty = clean.clone();
            let injected = inject_gotos(&mut dirty, 3, seed);
            if injected == 0 {
                continue;
            }
            let args = vec![7i64; clean.num_params() as usize];
            let want = run_pre(&clean, &args, 2_000_000).expect("clean runs");
            let got = run_pre(&dirty, &args, 2_000_000).expect("dirty runs");
            assert_eq!(got.returned, want.returned, "seed {seed}");
        }
    }

    #[test]
    fn injection_can_create_irreducible_cfgs() {
        let mut found_irreducible = false;
        for seed in 0..30 {
            let params = GenParams {
                target_blocks: 25,
                ..GenParams::default()
            };
            let mut pre = generate_pre("g", params, seed);
            inject_gotos(&mut pre, 4, seed);
            if construct_ssa(&pre).is_err() {
                // Gotos may break definite assignment (a jump into the
                // middle of a region skips initializations) — such
                // programs are discarded by the suite builder too.
                continue;
            }
            let ssa = construct_ssa(&pre).unwrap();
            let dfs = DfsTree::compute(&ssa);
            let dom = DomTree::compute(&ssa, &dfs);
            if !Reducibility::compute(&dfs, &dom).is_reducible() {
                found_irreducible = true;
                // Destruction and interpretation must still work.
                let args = vec![1i64; pre.num_params() as usize];
                let a = run_pre(&pre, &args, 2_000_000).unwrap();
                let b = interp::run(&ssa, &args, 2_000_000).unwrap();
                assert_eq!(a.returned, b.returned);
            }
        }
        assert!(
            found_irreducible,
            "30 seeds with 4 gotos each should yield irreducibility"
        );
    }
}
