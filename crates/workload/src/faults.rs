//! Deterministic fault-campaign generation: scripted filesystem-fault
//! scenarios composed with CFG workloads.
//!
//! The robustness suites need *adversarial schedules*, not just
//! adversarial graphs: an ENOSPC storm in the middle of write-through,
//! a torn write at every byte boundary of an entry, a flaky device
//! that errors one read in three. This module generates those schedules
//! as **plain data** — op kinds, errnos, skip/count windows — with the
//! same seeded bit-stability as the rest of the crate, so a failing
//! campaign can be replayed from its seed alone. The engine-side fault
//! harness (`fastlive_engine::vfs::FaultVfs`) consumes them after a
//! trivial translation; nothing here depends on the engine, the
//! filesystem, or the clock.
//!
//! # Examples
//!
//! ```
//! use fastlive_workload::{generate_campaigns, CampaignParams};
//!
//! let campaigns = generate_campaigns(CampaignParams::default(), 0xfau64);
//! assert!(!campaigns.is_empty());
//! // Same seed, same schedules.
//! let again = generate_campaigns(CampaignParams::default(), 0xfau64);
//! assert_eq!(campaigns, again);
//! ```

use crate::module::ModuleParams;
use crate::rng::SplitMix64;

/// Which filesystem operation class a scripted fault targets —
/// mirror of the engine harness's op kinds, kept engine-agnostic here.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FaultOp {
    /// Whole-file reads (cache probes).
    Read,
    /// Whole-file writes (write-through tmp files).
    Write,
    /// Atomic renames (tmp → entry publication).
    Rename,
    /// File removals (tmp cleanup, GC evictions).
    Remove,
    /// Metadata stats (existence/size/mtime probes).
    Metadata,
    /// Directory listings (GC sweeps).
    ReadDir,
    /// Directory creation (store setup).
    CreateDir,
    /// Every operation.
    Any,
}

/// What a scripted fault does when its window is active.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FaultSpec {
    /// Fail with the given raw OS errno (28 = ENOSPC, 13 = EACCES,
    /// 5 = EIO).
    Errno(i32),
    /// A *lying* write: persist only the first `n` bytes, then report
    /// success — the torn-write / power-cut model.
    TornWrite(usize),
    /// Succeed, but only after this many microseconds — the slow-disk
    /// model (latency amplification, not failure).
    DelayMicros(u64),
}

/// `errno` for "no space left on device".
pub const ENOSPC: i32 = 28;
/// `errno` for "permission denied".
pub const EACCES: i32 = 13;
/// `errno` for "input/output error".
pub const EIO: i32 = 5;

/// One scripted fault window: after `skip` matching operations, the
/// next `count` of them experience `fault`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// Operation class the window counts and fires on.
    pub op: FaultOp,
    /// Matching operations that pass through before the window opens.
    pub skip: u64,
    /// Matching operations that fault once it has (`u64::MAX` ≈
    /// forever).
    pub count: u64,
    /// What happens inside the window.
    pub fault: FaultSpec,
}

/// A full scenario: a CFG workload plus the fault schedule to run it
/// under, and the behaviour the harness should expect.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultCampaign {
    /// Scenario label (stable across runs of the same seed).
    pub name: String,
    /// The module workload to analyze while faults fire.
    pub module: ModuleParams,
    /// Seed for `generate_module` — recorded so a campaign is fully
    /// replayable from its own fields.
    pub module_seed: u64,
    /// The fault schedule, evaluated first-match-wins per operation.
    pub events: Vec<FaultEvent>,
    /// Whether the schedule leaves the disk *permanently* broken
    /// (an unbounded errno window on reads or writes). A harness
    /// should expect breaker trips and memory-only operation in that
    /// case, and full recovery otherwise.
    pub expect_persistent_failure: bool,
}

/// Knobs for [`generate_campaigns`].
#[derive(Copy, Clone, Debug)]
pub struct CampaignParams {
    /// How many campaigns to produce.
    pub campaigns: usize,
    /// Functions per campaign module.
    pub functions: usize,
    /// Largest per-function block target.
    pub max_blocks: usize,
    /// Upper bound on the byte offset used for torn-write truncation.
    /// Campaigns sweep `[0, torn_bound)`; real entry files are larger,
    /// so every prefix length is a valid torn outcome.
    pub torn_bound: usize,
}

impl Default for CampaignParams {
    fn default() -> Self {
        CampaignParams {
            campaigns: 12,
            functions: 8,
            max_blocks: 24,
            torn_bound: 64,
        }
    }
}

/// The fixed scenario archetypes a generated suite cycles through;
/// randomness varies the windows, errnos, offsets and workloads inside
/// each archetype, never the coverage itself (every archetype appears
/// once per full cycle — no silent gaps in a generated suite).
const ARCHETYPES: [&str; 6] = [
    "enospc_storm",
    "flaky_reads",
    "eacces_metadata",
    "torn_write_sweep",
    "slow_disk",
    "rename_failure",
];

/// Generates a deterministic suite of fault campaigns: `params.campaigns`
/// scenarios cycling through the archetypes above, each paired with its
/// own seeded CFG workload (reducible, irreducible and deep-live mixes
/// alternate). Same `(params, seed)`, same suite — bit-stable like
/// every other generator in this crate.
pub fn generate_campaigns(params: CampaignParams, seed: u64) -> Vec<FaultCampaign> {
    let mut rng = SplitMix64::new(seed ^ 0xfa17_fa17_fa17_fa17);
    (0..params.campaigns)
        .map(|i| {
            let archetype = ARCHETYPES[i % ARCHETYPES.len()];
            // Rotate the workload mix independently of the archetype so
            // each fault shape eventually meets each graph shape.
            let module = ModuleParams {
                functions: params.functions.max(1),
                min_blocks: 4,
                max_blocks: params.max_blocks.max(4),
                irreducible_per_mille: [0u32, 150, 300][i % 3],
                deep_live_per_mille: [0u32, 300, 600][(i / 3) % 3],
            };
            let module_seed = rng.next_u64();
            let (events, expect_persistent_failure) = match archetype {
                "enospc_storm" => {
                    // Disk fills mid-run: a few writes succeed, then
                    // every write fails until the storm window closes
                    // (bounded) or forever (unbounded → breaker trips).
                    let unbounded = rng.chance(50);
                    let count = if unbounded {
                        u64::MAX
                    } else {
                        1 + rng.range(8)
                    };
                    (
                        vec![FaultEvent {
                            op: FaultOp::Write,
                            skip: rng.range(4),
                            count,
                            fault: FaultSpec::Errno(ENOSPC),
                        }],
                        unbounded,
                    )
                }
                "flaky_reads" => {
                    // Intermittent EIO on probes: windows of 1–3 bad
                    // reads separated by healthy gaps.
                    let events = (0..3)
                        .map(|w| FaultEvent {
                            op: FaultOp::Read,
                            skip: w * 5 + rng.range(3),
                            count: 1 + rng.range(3),
                            fault: FaultSpec::Errno(EIO),
                        })
                        .collect();
                    (events, false)
                }
                "eacces_metadata" => (
                    vec![FaultEvent {
                        op: FaultOp::Metadata,
                        skip: rng.range(3),
                        count: 2 + rng.range(6),
                        fault: FaultSpec::Errno(EACCES),
                    }],
                    false,
                ),
                "torn_write_sweep" => {
                    // Truncate successive writes at marching byte
                    // boundaries — every prefix of an entry must decode
                    // to a clean reject, never a wrong answer.
                    let start = rng.index(params.torn_bound.max(1));
                    let events = (0..4)
                        .map(|w| FaultEvent {
                            op: FaultOp::Write,
                            skip: w,
                            count: 1,
                            fault: FaultSpec::TornWrite(
                                (start + w as usize * 7) % params.torn_bound.max(1),
                            ),
                        })
                        .collect();
                    (events, false)
                }
                "slow_disk" => (
                    vec![FaultEvent {
                        op: FaultOp::Any,
                        skip: 0,
                        count: u64::MAX,
                        fault: FaultSpec::DelayMicros(50 + rng.range(200)),
                    }],
                    false,
                ),
                _ => (
                    // rename_failure: publication fails — the tmp file
                    // was written, the entry never appears.
                    vec![FaultEvent {
                        op: FaultOp::Rename,
                        skip: rng.range(2),
                        count: 1 + rng.range(4),
                        fault: FaultSpec::Errno(EIO),
                    }],
                    false,
                ),
            };
            FaultCampaign {
                name: format!("{archetype}_{i}"),
                module,
                module_seed,
                events,
                expect_persistent_failure,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_suite() {
        let a = generate_campaigns(CampaignParams::default(), 7);
        let b = generate_campaigns(CampaignParams::default(), 7);
        assert_eq!(a, b);
        let c = generate_campaigns(CampaignParams::default(), 8);
        assert_ne!(a, c);
    }

    #[test]
    fn every_archetype_is_covered() {
        let suite = generate_campaigns(CampaignParams::default(), 3);
        for archetype in ARCHETYPES {
            assert!(
                suite.iter().any(|c| c.name.starts_with(archetype)),
                "missing archetype {archetype}"
            );
        }
    }

    #[test]
    fn campaigns_are_replayable_from_their_fields() {
        // The module workload regenerates bit-identically from the
        // campaign's own (params, seed) record.
        let suite = generate_campaigns(CampaignParams::default(), 11);
        for c in &suite {
            let m1 = crate::generate_module("fc", c.module, c.module_seed);
            let m2 = crate::generate_module("fc", c.module, c.module_seed);
            assert_eq!(m1.to_string(), m2.to_string(), "{}", c.name);
        }
    }

    #[test]
    fn persistent_failure_flag_tracks_unbounded_write_errnos() {
        let suite = generate_campaigns(
            CampaignParams {
                campaigns: 60,
                ..CampaignParams::default()
            },
            5,
        );
        for c in &suite {
            let unbounded_rw = c.events.iter().any(|e| {
                e.count == u64::MAX
                    && matches!(e.fault, FaultSpec::Errno(_))
                    && matches!(e.op, FaultOp::Read | FaultOp::Write)
            });
            assert_eq!(c.expect_persistent_failure, unbounded_rw, "{}", c.name);
        }
    }

    #[test]
    fn torn_offsets_stay_inside_the_bound() {
        let params = CampaignParams {
            campaigns: 24,
            torn_bound: 16,
            ..CampaignParams::default()
        };
        for c in generate_campaigns(params, 9) {
            for e in &c.events {
                if let FaultSpec::TornWrite(n) = e.fault {
                    assert!(n < 16, "{}: torn offset {n}", c.name);
                }
            }
        }
    }
}
