//! Suite generation: one synthetic "benchmark" per Table 1 profile.

use fastlive_construct::{construct_ssa, PreFunction};
use fastlive_ir::Function;

use crate::inject_gotos;
use crate::profiles::BenchProfile;
use crate::rng::SplitMix64;
use crate::stats::{FunctionStats, SuiteStats};
use crate::structured::{generate_pre, GenParams};

/// A generated benchmark: the SPEC-profile it imitates plus its
/// procedures in both representations.
#[derive(Clone, Debug)]
pub struct Suite {
    /// The profile this suite was calibrated to.
    pub profile: BenchProfile,
    /// Non-SSA originals.
    pub pres: Vec<PreFunction>,
    /// Strict-SSA functions (inputs of liveness and destruction).
    pub functions: Vec<Function>,
}

impl Suite {
    /// Table 1 statistics of the generated functions.
    pub fn stats(&self) -> SuiteStats {
        let per: Vec<FunctionStats> = self.functions.iter().map(FunctionStats::measure).collect();
        SuiteStats::aggregate(self.profile.name, &per)
    }
}

/// Generates one suite for `profile`, with `scale` procedures per
/// hundred of the original count (`scale = 100` reproduces the paper's
/// procedure counts; smaller values make quick runs).
///
/// A small fraction of procedures receives goto injection so the suite
/// contains occasional irreducible control flow, like SPEC2000 does
/// (§6.1: 7 of 4823 procedures).
pub fn generate_suite(profile: &BenchProfile, scale: u32, seed: u64) -> Suite {
    let mut rng = SplitMix64::new(seed ^ fnv(profile.name));
    let sampler = profile.block_count_sampler();
    let count = ((profile.procedures as u64 * scale as u64) / 100).max(1) as usize;

    let mut pres = Vec::with_capacity(count);
    let mut functions = Vec::with_capacity(count);
    for i in 0..count {
        let target = sampler.sample(&mut rng);
        let params = GenParams {
            target_blocks: target,
            max_depth: 3 + (target / 20).min(4) as u32,
            num_params: 1 + rng.range(4) as u32,
            ..GenParams::default()
        };
        let name = format!("{}_{i}", profile.name.replace('.', "_"));
        let fseed = rng.next_u64();
        let mut pre = generate_pre(&name, params, fseed);
        // Roughly 8 in 1000 procedures get gotos, of which about half
        // end up truly irreducible — rare, as in SPEC2000 (§6.1 reports
        // 7 of 4823) — and kept only if the program stays strict.
        if rng.range(1000) < 8 {
            let mut dirty = pre.clone();
            inject_gotos(&mut dirty, 2 + rng.range(3) as usize, fseed);
            if construct_ssa(&dirty).is_ok() {
                pre = dirty;
            }
        }
        let ssa = construct_ssa(&pre).expect("generated programs are strict");
        pres.push(pre);
        functions.push(ssa);
    }
    Suite {
        profile: *profile,
        pres,
        functions,
    }
}

/// Stable tiny hash so each profile gets an independent stream.
fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::SPEC2000_INT;

    #[test]
    fn small_scale_suite_generates_and_measures() {
        let suite = generate_suite(&SPEC2000_INT[3], 50, 1); // 181.mcf: 13 funcs
        assert_eq!(suite.functions.len(), 13);
        assert_eq!(suite.pres.len(), 13);
        let stats = suite.stats();
        assert_eq!(stats.procedures, 13);
        assert!(stats.avg_blocks > 3.0);
        assert!(stats.max_blocks <= suite.profile.max_blocks * 3);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_suite(&SPEC2000_INT[0], 10, 7);
        let b = generate_suite(&SPEC2000_INT[0], 10, 7);
        assert_eq!(a.functions.len(), b.functions.len());
        for (fa, fb) in a.functions.iter().zip(&b.functions) {
            assert_eq!(fa.to_string(), fb.to_string());
        }
    }

    #[test]
    fn shape_lands_in_the_spec_regime() {
        // Aggregate a mid-size sample of one benchmark and check the
        // qualitative Table 1 properties hold.
        let suite = generate_suite(&SPEC2000_INT[5], 30, 3); // 197.parser
        let s = suite.stats();
        assert!(s.pct_le_32 > 50.0, "small procedures dominate: {s:?}");
        assert!(s.pct_uses_le[3] > 85.0, "short def-use chains: {s:?}");
        assert!(s.pct_uses_le[0] > 40.0, "single-use majority: {s:?}");
        let epb = s.edges_per_block();
        assert!((1.0..2.0).contains(&epb), "edges per block {epb}");
        assert!(
            s.back_edge_pct() < 25.0,
            "back edges are rare: {}",
            s.back_edge_pct()
        );
    }
}
