//! Structural profiles of the ten SPEC2000-int benchmarks from Table 1
//! of the paper, and the machinery to sample procedure sizes matching
//! them.

use crate::rng::SplitMix64;

/// The Table 1 row of one benchmark: everything the paper reports
/// about a program's procedures.
#[derive(Copy, Clone, Debug)]
pub struct BenchProfile {
    /// Benchmark name (e.g. `"164.gzip"`).
    pub name: &'static str,
    /// Number of compiled procedures (Table 2, "# Proc.").
    pub procedures: usize,
    /// Average basic blocks per procedure.
    pub avg_blocks: f64,
    /// Percentage of procedures with ≤ 32 blocks.
    pub pct_le_32: f64,
    /// Percentage of procedures with ≤ 64 blocks.
    pub pct_le_64: f64,
    /// Largest block count observed.
    pub max_blocks: usize,
    /// Percentage of variables with ≤ 1 use (Table 1, "# Uses").
    pub pct_uses_le_1: f64,
    /// Percentage of variables with ≤ 4 uses.
    pub pct_uses_le_4: f64,
}

/// The ten benchmarks of Table 1 (252.eon and 253.perlbmk were not
/// compilable in the paper's environment either).
pub const SPEC2000_INT: [BenchProfile; 10] = [
    BenchProfile {
        name: "164.gzip",
        procedures: 82,
        avg_blocks: 33.35,
        pct_le_32: 69.51,
        pct_le_64: 85.36,
        max_blocks: 51,
        pct_uses_le_1: 65.64,
        pct_uses_le_4: 95.94,
    },
    BenchProfile {
        name: "175.vpr",
        procedures: 225,
        avg_blocks: 34.45,
        pct_le_32: 68.88,
        pct_le_64: 84.44,
        max_blocks: 75,
        pct_uses_le_1: 70.36,
        pct_uses_le_4: 96.28,
    },
    BenchProfile {
        name: "176.gcc",
        procedures: 2019,
        avg_blocks: 38.96,
        pct_le_32: 72.85,
        pct_le_64: 86.03,
        max_blocks: 422,
        pct_uses_le_1: 73.99,
        pct_uses_le_4: 94.84,
    },
    BenchProfile {
        name: "181.mcf",
        procedures: 26,
        avg_blocks: 20.31,
        pct_le_32: 84.61,
        pct_le_64: 100.0,
        max_blocks: 46,
        pct_uses_le_1: 66.91,
        pct_uses_le_4: 94.46,
    },
    BenchProfile {
        name: "186.crafty",
        procedures: 109,
        avg_blocks: 69.28,
        pct_le_32: 59.63,
        pct_le_64: 76.14,
        max_blocks: 620,
        pct_uses_le_1: 72.98,
        pct_uses_le_4: 95.75,
    },
    BenchProfile {
        name: "197.parser",
        procedures: 323,
        avg_blocks: 23.60,
        pct_le_32: 84.82,
        pct_le_64: 93.49,
        max_blocks: 96,
        pct_uses_le_1: 65.12,
        pct_uses_le_4: 96.62,
    },
    BenchProfile {
        name: "254.gap",
        procedures: 852,
        avg_blocks: 32.89,
        pct_le_32: 67.60,
        pct_le_64: 87.44,
        max_blocks: 156,
        pct_uses_le_1: 70.46,
        pct_uses_le_4: 94.54,
    },
    BenchProfile {
        name: "255.vortex",
        procedures: 923,
        avg_blocks: 26.46,
        pct_le_32: 77.57,
        pct_le_64: 90.68,
        max_blocks: 254,
        pct_uses_le_1: 65.99,
        pct_uses_le_4: 96.97,
    },
    BenchProfile {
        name: "256.bzip2",
        procedures: 74,
        avg_blocks: 22.97,
        pct_le_32: 78.37,
        pct_le_64: 91.89,
        max_blocks: 36,
        pct_uses_le_1: 69.89,
        pct_uses_le_4: 96.17,
    },
    BenchProfile {
        name: "300.twolf",
        procedures: 190,
        avg_blocks: 56.97,
        pct_le_32: 59.47,
        pct_le_64: 77.36,
        max_blocks: 165,
        pct_uses_le_1: 69.71,
        pct_uses_le_4: 95.92,
    },
];

impl BenchProfile {
    /// Fits a log-normal to this profile (matching the mean and the
    /// `P(blocks ≤ 32)` quantile) and returns a sampler of per-procedure
    /// block-count targets, clamped to `[3, max_blocks]`.
    pub fn block_count_sampler(&self) -> BlockCountSampler {
        // Solve  Φ((ln 32 − μ)/σ) = q  and  exp(μ + σ²/2) = mean:
        //   σ²/2 − zσ + (ln 32 − ln mean) = 0,  z = Φ⁻¹(q).
        let q = (self.pct_le_32 / 100.0).clamp(0.02, 0.98);
        let z = inverse_normal_cdf(q);
        let c = 32.0f64.ln() - self.avg_blocks.ln();
        let disc = (z * z - 2.0 * c).max(0.0);
        // The smaller positive root keeps the tail sane.
        let sigma = {
            let r1 = z - disc.sqrt();
            let r2 = z + disc.sqrt();
            let candidates = [r1, r2];
            let valid: Vec<f64> = candidates
                .into_iter()
                .filter(|s| *s > 0.05 && *s < 3.0)
                .collect();
            if valid.is_empty() {
                0.8
            } else {
                valid[0]
            }
        };
        let mu = self.avg_blocks.ln() - sigma * sigma / 2.0;
        BlockCountSampler {
            mu,
            sigma,
            max: self.max_blocks,
        }
    }
}

/// Samples per-procedure block counts from a clamped log-normal; see
/// [`BenchProfile::block_count_sampler`].
#[derive(Copy, Clone, Debug)]
pub struct BlockCountSampler {
    mu: f64,
    sigma: f64,
    max: usize,
}

impl BlockCountSampler {
    /// One block-count target.
    pub fn sample(&self, rng: &mut SplitMix64) -> usize {
        let x = (self.mu + self.sigma * rng.normal()).exp();
        (x.round() as usize).clamp(3, self.max)
    }
}

/// Φ⁻¹: the inverse of the standard normal CDF (Acklam's rational
/// approximation, |relative error| < 1.15e-9 on (0, 1)).
pub(crate) fn inverse_normal_cdf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "probability {p} out of (0,1)");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -((((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_profiles_matching_table1_totals() {
        assert_eq!(SPEC2000_INT.len(), 10);
        let total: usize = SPEC2000_INT.iter().map(|p| p.procedures).sum();
        assert_eq!(total, 4823, "Table 2 reports 4823 procedures in total");
        let max = SPEC2000_INT.iter().map(|p| p.max_blocks).max().unwrap();
        assert_eq!(max, 620, "186.crafty holds the maximum");
    }

    #[test]
    fn inverse_normal_cdf_known_values() {
        // Φ⁻¹(0.5) = 0, Φ⁻¹(0.975) ≈ 1.959964, Φ⁻¹(0.84134) ≈ 1.0.
        assert!(inverse_normal_cdf(0.5).abs() < 1e-9);
        assert!((inverse_normal_cdf(0.975) - 1.959964).abs() < 1e-4);
        assert!((inverse_normal_cdf(0.841344746) - 1.0).abs() < 1e-4);
        assert!((inverse_normal_cdf(0.158655254) + 1.0).abs() < 1e-4);
        // Tails are finite and monotone.
        assert!(inverse_normal_cdf(1e-6) < inverse_normal_cdf(1e-3));
        assert!(inverse_normal_cdf(0.999999) > 4.0);
    }

    #[test]
    #[should_panic(expected = "out of (0,1)")]
    fn inverse_normal_cdf_rejects_bounds() {
        inverse_normal_cdf(0.0);
    }

    #[test]
    fn samplers_land_near_profile_statistics() {
        let mut rng = SplitMix64::new(2024);
        for p in &SPEC2000_INT {
            let sampler = p.block_count_sampler();
            let n = 4000;
            let samples: Vec<usize> = (0..n).map(|_| sampler.sample(&mut rng)).collect();
            let mean = samples.iter().sum::<usize>() as f64 / n as f64;
            let le32 = samples.iter().filter(|&&s| s <= 32).count() as f64 / n as f64 * 100.0;
            // Clamping distorts the tails, so tolerances are loose; the
            // point is landing in the right regime, not digit-matching.
            assert!(
                (mean - p.avg_blocks).abs() / p.avg_blocks < 0.45,
                "{}: mean {mean:.1} vs profile {:.1}",
                p.name,
                p.avg_blocks
            );
            assert!(
                (le32 - p.pct_le_32).abs() < 18.0,
                "{}: ≤32 {le32:.1}% vs profile {:.1}%",
                p.name,
                p.pct_le_32
            );
            assert!(samples.iter().all(|&s| s <= p.max_blocks && s >= 3));
        }
    }
}
