//! Structural statistics: everything Table 1 (and the §6.1 prose)
//! reports about a procedure suite.

use fastlive_cfg::{DfsTree, DomTree, Reducibility};
use fastlive_graph::Cfg as _;
use fastlive_ir::Function;

/// Statistics of a single function.
#[derive(Clone, Debug, PartialEq)]
pub struct FunctionStats {
    /// Basic blocks.
    pub blocks: usize,
    /// CFG edges (with multiplicity).
    pub edges: usize,
    /// DFS back edges.
    pub back_edges: usize,
    /// Back edges whose target does not dominate their source.
    pub irreducible_back_edges: usize,
    /// SSA values.
    pub values: usize,
    /// Use-chain length of every value.
    pub use_counts: Vec<usize>,
}

impl FunctionStats {
    /// Measures `func`.
    pub fn measure(func: &Function) -> Self {
        let dfs = DfsTree::compute(func);
        let dom = DomTree::compute(func, &dfs);
        let red = Reducibility::compute(&dfs, &dom);
        FunctionStats {
            blocks: func.num_blocks(),
            edges: func.num_edges(),
            back_edges: dfs.back_edges().len(),
            irreducible_back_edges: red.irreducible_back_edges().len(),
            values: func.num_values(),
            use_counts: func.values().map(|v| func.uses(v).len()).collect(),
        }
    }

    /// `true` if every back-edge target dominates its source.
    pub fn is_reducible(&self) -> bool {
        self.irreducible_back_edges == 0
    }
}

/// Aggregated statistics of a suite of functions — one Table 1 row.
#[derive(Clone, Debug, Default)]
pub struct SuiteStats {
    /// Suite name (benchmark).
    pub name: String,
    /// Functions measured.
    pub procedures: usize,
    /// Total basic blocks (Table 1 "Sum").
    pub sum_blocks: usize,
    /// Average blocks per procedure.
    pub avg_blocks: f64,
    /// Largest procedure.
    pub max_blocks: usize,
    /// % of procedures with ≤ 32 blocks.
    pub pct_le_32: f64,
    /// % of procedures with ≤ 64 blocks.
    pub pct_le_64: f64,
    /// % of variables with ≤ k uses, k = 1..=4 (Table 1 right half).
    pub pct_uses_le: [f64; 4],
    /// Largest use-chain length.
    pub max_uses: usize,
    /// Total CFG edges (§6.1: 238427 for SPEC2000-int).
    pub total_edges: usize,
    /// Total back edges (§6.1: 8701).
    pub total_back_edges: usize,
    /// Back edges not dominated by their target (§6.1: 60).
    pub irreducible_back_edges: usize,
    /// Functions containing irreducible control flow (§6.1: 7).
    pub irreducible_functions: usize,
    /// Total variables.
    pub total_values: usize,
}

impl SuiteStats {
    /// Aggregates per-function statistics.
    pub fn aggregate(name: impl Into<String>, stats: &[FunctionStats]) -> Self {
        let n = stats.len().max(1) as f64;
        let sum_blocks: usize = stats.iter().map(|s| s.blocks).sum();
        let le = |k: usize| stats.iter().filter(|s| s.blocks <= k).count() as f64 / n * 100.0;
        let mut use_counts: Vec<usize> = Vec::new();
        for s in stats {
            use_counts.extend_from_slice(&s.use_counts);
        }
        let nu = use_counts.len().max(1) as f64;
        let ule = |k: usize| use_counts.iter().filter(|&&u| u <= k).count() as f64 / nu * 100.0;
        SuiteStats {
            name: name.into(),
            procedures: stats.len(),
            sum_blocks,
            avg_blocks: sum_blocks as f64 / n,
            max_blocks: stats.iter().map(|s| s.blocks).max().unwrap_or(0),
            pct_le_32: le(32),
            pct_le_64: le(64),
            pct_uses_le: [ule(1), ule(2), ule(3), ule(4)],
            max_uses: use_counts.iter().copied().max().unwrap_or(0),
            total_edges: stats.iter().map(|s| s.edges).sum(),
            total_back_edges: stats.iter().map(|s| s.back_edges).sum(),
            irreducible_back_edges: stats.iter().map(|s| s.irreducible_back_edges).sum(),
            irreducible_functions: stats.iter().filter(|s| !s.is_reducible()).count(),
            total_values: stats.iter().map(|s| s.values).sum(),
        }
    }

    /// Edges per block (§6.1 reports 1.3 on average, max 1.9).
    pub fn edges_per_block(&self) -> f64 {
        self.total_edges as f64 / self.sum_blocks.max(1) as f64
    }

    /// Back edges as a share of all edges (§6.1: about 3.6%).
    pub fn back_edge_pct(&self) -> f64 {
        self.total_back_edges as f64 / self.total_edges.max(1) as f64 * 100.0
    }

    /// One row in the layout of Table 1.
    pub fn table1_row(&self) -> String {
        format!(
            "{:<12} {:>7.2} {:>7} {:>7.2} {:>7.2} {:>8} {:>7.2} {:>7.2} {:>7.2} {:>7.2}",
            self.name,
            self.avg_blocks,
            self.sum_blocks,
            self.pct_le_32,
            self.pct_le_64,
            self.max_blocks,
            self.pct_uses_le[0],
            self.pct_uses_le[1],
            self.pct_uses_le[2],
            self.pct_uses_le[3],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastlive_ir::parse_function;

    #[test]
    fn measures_a_loop_function() {
        let f = parse_function(
            "function %loop { block0(v0):
                v1 = iconst 0
                jump block1(v1)
            block1(v2):
                v3 = iconst 1
                v4 = iadd v2, v3
                v5 = icmp_slt v4, v0
                brif v5, block1(v4), block2
            block2:
                return v4 }",
        )
        .unwrap();
        let s = FunctionStats::measure(&f);
        assert_eq!(s.blocks, 3);
        assert_eq!(s.edges, 3);
        assert_eq!(s.back_edges, 1);
        assert!(s.is_reducible());
        assert_eq!(s.values, 6);
        // v0 used once, v3 once, v2 once, v4 thrice, v1 once, v5 once.
        assert_eq!(s.use_counts.iter().sum::<usize>(), 8);
    }

    #[test]
    fn aggregation_computes_percentages() {
        let f1 = parse_function("function %a { block0: return }").unwrap();
        let f2 =
            parse_function("function %b { block0(v0): jump block1 block1: return v0 }").unwrap();
        let stats = [FunctionStats::measure(&f1), FunctionStats::measure(&f2)];
        let agg = SuiteStats::aggregate("tiny", &stats);
        assert_eq!(agg.procedures, 2);
        assert_eq!(agg.sum_blocks, 3);
        assert_eq!(agg.max_blocks, 2);
        assert_eq!(agg.pct_le_32, 100.0);
        assert_eq!(agg.pct_le_64, 100.0);
        assert_eq!(agg.pct_uses_le[0], 100.0); // the single value has 1 use
        assert_eq!(agg.irreducible_functions, 0);
        assert!(agg.table1_row().contains("tiny"));
        assert!(agg.edges_per_block() > 0.0);
        assert_eq!(agg.back_edge_pct(), 0.0);
    }
}
