/// A tiny, fast, seedable PRNG (Vigna's SplitMix64).
///
/// Used instead of the `rand` crate so that generated workloads are
/// bit-stable across platforms and dependency upgrades — EXPERIMENTS.md
/// quotes concrete numbers measured on these exact suites.
///
/// # Examples
///
/// ```
/// use fastlive_workload::SplitMix64;
///
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let x = a.range(10);
/// assert!(x < 10);
/// ```
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound` 0 yields 0).
    pub fn range(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Multiply-shift; bias is negligible for our bounds (« 2^32).
        ((self.next_u64() >> 32).wrapping_mul(bound)) >> 32
    }

    /// Uniform `usize` below `bound`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.range(bound as u64) as usize
    }

    /// Bernoulli draw: `true` with probability `percent`/100.
    pub fn chance(&mut self, percent: u64) -> bool {
        self.range(100) < percent
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A standard-normal sample (Box–Muller on two uniforms).
    pub fn normal(&mut self) -> f64 {
        let u1 = self.f64().max(f64::MIN_POSITIVE);
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Picks a random element of a slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.index(items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(124);
        assert_ne!(SplitMix64::new(123).next_u64(), c.next_u64());
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = SplitMix64::new(9);
        for bound in [1u64, 2, 7, 100, 1 << 20] {
            for _ in 0..200 {
                assert!(r.range(bound) < bound);
            }
        }
        assert_eq!(r.range(0), 0);
    }

    #[test]
    fn uniformish_distribution() {
        let mut r = SplitMix64::new(42);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[r.index(10)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "bucket count {c} out of range");
        }
    }

    #[test]
    fn normal_moments() {
        let mut r = SplitMix64::new(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance {var}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(5);
        assert!(!(0..100).any(|_| r.chance(0)));
        assert!((0..100).all(|_| r.chance(100)));
    }
}
