//! The harness must be able to fail: seed a deliberately wrong
//! backend, confirm the differential check catches it on a 200-block
//! case, and confirm the shrinker minimizes the failure to a
//! reproducer of at most 10 blocks that still fails — deterministically
//! — after being re-parsed from its own text.

use fastlive::{Fastlive, Query};
use fastlive_construct::construct_ssa;
use fastlive_ir::{Block, Module, Value};
use fastlive_workload::{generate_pre, GenParams};

use fastlive_fuzz::diff::check_against_oracle;
use fastlive_fuzz::shrink::shrink;
use fastlive_fuzz::BrokenDirect;

/// Exhaustive LiveIn probes — small candidates stay fully covered, so
/// shrinking never stalls because a random probe set missed the bug.
fn probes(module: &Module) -> Vec<Query> {
    let mut queries = Vec::new();
    for (id, func) in module.iter() {
        for v in 0..func.num_values() {
            for b in 0..func.num_blocks() {
                if v * b > 40_000 {
                    break;
                }
                queries.push(Query::live_in(
                    id,
                    Value::from_index(v),
                    Block::from_index(b),
                ));
            }
        }
    }
    queries
}

#[test]
fn broken_backend_shrinks_below_ten_blocks() {
    let pre = generate_pre(
        "shrink_selftest",
        GenParams {
            target_blocks: 200,
            deep_live_percent: 60,
            ..GenParams::default()
        },
        9,
    );
    let func = construct_ssa(&pre).expect("generator output is constructible");
    assert!(func.num_blocks() >= 150, "the starting case must be large");
    let mut module = Module::new();
    module.push(func);

    let fl = Fastlive::builder().build().expect("default build");
    let mut predicate = |m: &Module| {
        let queries = probes(m);
        let mut broken = BrokenDirect::new();
        check_against_oracle(&fl, &mut broken, m, &queries)
            .into_iter()
            .next()
    };

    let out = shrink(&module, &mut predicate, 4_000)
        .expect("the broken backend must be caught on the large case");
    assert!(
        out.blocks_after <= 10,
        "reproducer too large ({} blocks):\n{}",
        out.blocks_after,
        out.text
    );
    assert!(out.blocks_before > out.blocks_after);

    // Determinism: the emitted text re-parses and still fails, twice.
    let reparsed = out.reparse();
    let first = predicate(&reparsed).expect("re-parsed reproducer still fails");
    let second = predicate(&reparsed).expect("and fails again");
    assert_eq!(
        format!("{:?}", first.query),
        format!("{:?}", second.query),
        "the diverging query must be stable across runs"
    );
}
