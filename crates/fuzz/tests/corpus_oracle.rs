//! Every committed corpus case imports, verifies strict SSA, and
//! holds the facade differential invariant: Direct, Session, and
//! Oracle answer a mixed query load byte-identically.

use std::fs;
use std::path::PathBuf;

use fastlive::Fastlive;
use fastlive_core::verify_strict_ssa;
use fastlive_fuzz::diff::{check_module, query_mix};
use fastlive_fuzz::import::import_auto;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../corpus")
}

#[test]
fn every_corpus_case_imports_and_backends_agree() {
    let fl = Fastlive::builder().build().expect("default build");
    let mut cases = Vec::new();
    let mut entries: Vec<PathBuf> = fs::read_dir(corpus_dir())
        .expect("corpus/ exists at the workspace root")
        .map(|e| e.expect("readable corpus entry").path())
        .collect();
    entries.sort();
    for path in entries {
        let fname = path
            .file_name()
            .expect("corpus files have names")
            .to_string_lossy()
            .into_owned();
        if fname.ends_with(".md") {
            continue;
        }
        let src = fs::read_to_string(&path).unwrap_or_else(|e| panic!("{fname}: {e}"));
        let module = import_auto(&fname, &src).unwrap_or_else(|e| panic!("{fname}: {e}"));
        assert!(!module.is_empty(), "{fname}: imported an empty module");
        for func in module.functions() {
            verify_strict_ssa(func)
                .unwrap_or_else(|e| panic!("{fname}: {} fails strict SSA: {e}", func.name));
        }
        let mix = query_mix(&module, 8, 0xc0ffee);
        let divergences = check_module(&fl, &module, &mix);
        assert!(
            divergences.is_empty(),
            "{fname}: backends diverged: {:?}",
            divergences.iter().map(|d| d.render()).collect::<Vec<_>>()
        );
        cases.push(fname);
    }
    assert!(
        cases.len() >= 8,
        "corpus unexpectedly small ({} cases): {cases:?}",
        cases.len()
    );
}

#[test]
fn nullness_corpus_cases_exercise_joins_and_loop_carry() {
    // The two nullness-focused cases must stay non-trivial: the
    // merge-point case joins disagreeing facts into Maybe (and keeps
    // agreeing Null facts Null), and the loop case carries an
    // initially-Null fact around a back edge until it widens.
    use fastlive::Nullness;
    let fl = Fastlive::builder().build().expect("default build");

    let src = fs::read_to_string(corpus_dir().join("nullness_merge_join.fl")).expect("case");
    let module = import_auto("nullness_merge_join.fl", &src).expect("imports");
    let mut s = fl.session(&module);
    // v3 = 0+0 stays Null; v4 = 0+7 is NonNull; their join v5 is Maybe.
    assert_eq!(s.nullness_of(&module, 0usize, "v3"), Ok(Nullness::Null));
    assert_eq!(s.nullness_of(&module, 0usize, "v4"), Ok(Nullness::NonNull));
    assert_eq!(s.nullness_of(&module, 0usize, "v5"), Ok(Nullness::Maybe));
    // v6 joins NonNull (v2) with Null (v1) into Maybe; v7 joins
    // Null with Null and stays Null through the merge.
    assert_eq!(s.nullness_of(&module, 0usize, "v6"), Ok(Nullness::Maybe));
    assert_eq!(s.nullness_of(&module, 0usize, "v7"), Ok(Nullness::Null));

    let src = fs::read_to_string(corpus_dir().join("nullness_loop_carry.fl")).expect("case");
    let module = import_auto("nullness_loop_carry.fl", &src).expect("imports");
    let mut s = fl.session(&module);
    // The loop param starts Null (first iteration) and joins the
    // loop-carried Maybe — the fixpoint must widen, not stay Null.
    assert_eq!(s.nullness_of(&module, 0usize, "v2"), Ok(Nullness::Maybe));
    // v4 is defined in the loop header, which dominates the exit;
    // v6 is defined in the body, which does not.
    assert_eq!(
        s.is_definitely_init(&module, 0usize, "v4", "block3"),
        Ok(true)
    );
    assert_eq!(
        s.is_definitely_init(&module, 0usize, "v6", "block3"),
        Ok(false)
    );
}

#[test]
fn corpus_shapes_cover_irreducibility() {
    // At least one committed case must actually be irreducible — the
    // whole point of carrying real CFG shapes.
    use fastlive_cfg::{DfsTree, DomTree, Reducibility};
    let mut irreducible = 0usize;
    for path in fs::read_dir(corpus_dir()).expect("corpus dir") {
        let path = path.expect("entry").path();
        let fname = path.file_name().unwrap().to_string_lossy().into_owned();
        if fname.ends_with(".md") {
            continue;
        }
        let src = fs::read_to_string(&path).expect("readable");
        let module = import_auto(&fname, &src).expect("corpus case imports");
        for func in module.functions() {
            let dfs = DfsTree::compute(func);
            let dom = DomTree::compute(func, &dfs);
            let red = Reducibility::compute(&dfs, &dom);
            if !red.irreducible_back_edges().is_empty() {
                irreducible += 1;
            }
        }
    }
    assert!(irreducible >= 2, "expected irreducible corpus coverage");
}
