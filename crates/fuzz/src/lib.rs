//! Differential fuzzing for the fastlive workspace.
//!
//! The harness composes the workload generator with adversarial
//! mutators (irreducible double-entry loops, dominator ladders,
//! duplicate and self edges, in-place session edits, fault-injected
//! persistence campaigns) and runs every case through all three facade
//! backends — [`fastlive::BackendKind::Direct`],
//! [`fastlive::BackendKind::Session`],
//! [`fastlive::BackendKind::Oracle`] — under mixed block/point/interference
//! query loads. Any disagreement, panic, or round-trip mismatch is
//! handed to the [`shrink`] module's delta-debugging minimizer, which
//! emits a self-contained `.fl` reproducer plus the exact diverging
//! query.
//!
//! Module map:
//!
//! * [`case`] — the deletable case IR; the only road back to real IR
//!   is print → parse → verify, so every candidate the harness runs is
//!   strict SSA and every reproducer is its own parser test.
//! * [`mutate`] — adversarial generators and mutators.
//! * [`diff`] — query mixes and the backend-agreement check.
//! * [`shrink`] — the greedy delta-debugging minimizer.
//! * [`import`] — corpus importers (`.ssa` block-parameter text,
//!   `.dot` digraphs) for real CFG shapes.
//! * [`arms`] — the campaign runner tying it all together.
//!
//! The crate also ships [`BrokenDirect`], a deliberately wrong backend
//! used to prove, in CI, that the harness *detects* bugs and that the
//! shrinker minimizes them — a fuzzer whose failure path is never
//! exercised is indistinguishable from one that cannot fail.

pub mod arms;
pub mod case;
pub mod diff;
pub mod import;
pub mod mutate;
pub mod shrink;

use fastlive::{
    BlockRef, DirectBackend, FuncRef, Query, QueryEngine, QueryError, Response, ValueRef,
};
use fastlive_ir::{Block, Function, Module, Value};

/// A deliberately wrong [`QueryEngine`]: it answers like
/// [`DirectBackend`] except that *live-through* `LiveIn` queries — the
/// value neither defined nor used in the queried block — come back
/// `false`. That is precisely the class of answer a broken reduced
/// reachability precomputation would get wrong, and it is what the
/// shrinker self-test minimizes against.
pub struct BrokenDirect {
    inner: DirectBackend,
}

impl BrokenDirect {
    /// A fresh broken backend.
    pub fn new() -> Self {
        BrokenDirect {
            inner: DirectBackend::new(),
        }
    }
}

impl Default for BrokenDirect {
    fn default() -> Self {
        Self::new()
    }
}

/// Resolves the refs of a `LiveIn` query by hand (the facade's
/// resolvers are crate-private) — `None` when anything is out of
/// range, in which case the answer is left untouched (error answers
/// must keep agreeing with the oracle).
fn resolve_live_in<'m>(
    module: &'m Module,
    func: &FuncRef,
    value: &ValueRef,
    block: &BlockRef,
) -> Option<(&'m Function, Value, Block)> {
    let f = match func {
        FuncRef::Id(id) => (*id < module.len()).then(|| module.func(*id))?,
        FuncRef::Name(name) => module.func(module.by_name(name)?),
    };
    let v = match value {
        ValueRef::Id(v) => (v.index() < f.num_values()).then_some(*v)?,
        ValueRef::Name(name) => f.value(name)?,
    };
    let b = match block {
        BlockRef::Id(b) => (b.index() < f.num_blocks()).then_some(*b)?,
        BlockRef::Name(name) => f.block(name)?,
    };
    Some((f, v, b))
}

impl QueryEngine for BrokenDirect {
    fn query(&mut self, module: &Module, query: &Query) -> Result<Response, QueryError> {
        let mut answers = self.run_queries(module, std::slice::from_ref(query));
        answers.pop().expect("one query, one answer")
    }

    fn run_queries(
        &mut self,
        module: &Module,
        queries: &[Query],
    ) -> Vec<Result<Response, QueryError>> {
        let mut answers = self.inner.run_queries(module, queries);
        for (query, answer) in queries.iter().zip(answers.iter_mut()) {
            let Query::LiveIn { func, value, block } = query else {
                continue;
            };
            if !matches!(answer, Ok(Response::Live(true))) {
                continue;
            }
            let Some((f, v, b)) = resolve_live_in(module, func, value, block) else {
                continue;
            };
            let live_through = f.def_block(v) != b && f.use_blocks(v).all(|ub| ub != b);
            if live_through {
                *answer = Ok(Response::Live(false));
            }
        }
        answers
    }

    fn backend_name(&self) -> &'static str {
        "broken-direct"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::{check_against_oracle, query_mix};
    use fastlive::Fastlive;
    use fastlive_workload::{generate_module, ModuleParams};

    #[test]
    fn broken_backend_diverges_on_deep_live_ranges() {
        let module = generate_module(
            "bk",
            ModuleParams {
                functions: 2,
                min_blocks: 8,
                max_blocks: 24,
                deep_live_per_mille: 600,
                ..ModuleParams::default()
            },
            17,
        );
        let queries = query_mix(&module, 16, 5);
        let fl = Fastlive::builder().build().expect("default build");
        let mut broken = BrokenDirect::new();
        let divergences = check_against_oracle(&fl, &mut broken, &module, &queries);
        assert!(
            !divergences.is_empty(),
            "the wrong-answer backend must diverge on live-through probes"
        );
        for d in &divergences {
            assert!(
                matches!(d.query, Query::LiveIn { .. }),
                "only LiveIn answers are sabotaged, got {:?}",
                d.query
            );
        }
    }
}
