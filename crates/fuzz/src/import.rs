//! Corpus importers: real CFG shapes, translated into
//! [`fastlive_ir::Module`]s.
//!
//! Two textual formats feed the committed corpus under `corpus/`:
//!
//! * **Block-parameter SSA text** (`.ssa`) — the dejavu-shaped form
//!   compiler dumps use: named variables, named blocks, φs as block
//!   parameters (`bb1(x, y):`), `br`/`jmp`/`ret` terminators. Names
//!   are translated to dense ids; blocks and values may be referenced
//!   before their textual definition.
//! * **Graphviz digraphs** (`.dot`/`.gv`) — bare CFG shapes
//!   (`n0 -> n1;`). The importer synthesizes a strict-SSA body over
//!   the edge structure: a fresh pre-header becomes the entry, every
//!   node block carries one parameter threaded along every edge, and
//!   each block computes one local value — so the graph's dominance
//!   and liveness structure is preserved while every block defines and
//!   uses values. Nodes with three or more successors become `brif`
//!   dispatch chains; parallel edges are kept.
//!
//! Importers are **total**: any byte sequence either becomes a
//! verified strict-SSA module or a typed [`ImportError`] with a line
//! number — never a panic. The committed corpus files are run through
//! the full differential suite by `crates/fuzz/tests/corpus_oracle.rs`.

use std::collections::HashMap;
use std::fmt;

use fastlive_ir::{BinaryOp, Module, UnaryOp};

use crate::case::{module_of_cases, CaseCall, CaseFunc, CaseOp, CaseTerm};

/// Why an import failed: a position and a message, never a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ImportError {
    /// 1-based source line (0 when not attributable to one line).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ImportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "import error: {}", self.message)
        } else {
            write!(f, "import error at line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ImportError {}

fn err(line: usize, message: impl Into<String>) -> ImportError {
    ImportError {
        line,
        message: message.into(),
    }
}

/// Dispatches on the file extension: `.fl` is the native parser,
/// `.ssa` the block-parameter SSA importer, `.dot`/`.gv` the digraph
/// importer.
pub fn import_auto(filename: &str, src: &str) -> Result<Module, ImportError> {
    let ext = filename.rsplit('.').next().unwrap_or("");
    match ext {
        "fl" => fastlive_ir::parse_module(src).map_err(|e| err(0, e.to_string())),
        "ssa" => import_ssa_text(src),
        "dot" | "gv" => import_dot(src),
        other => Err(err(0, format!("unknown corpus extension `.{other}`"))),
    }
}

/// Strips a `#` or `//` comment and surrounding whitespace.
fn strip_comment(line: &str) -> &str {
    let line = line.split('#').next().unwrap_or("");
    let line = line.split("//").next().unwrap_or("");
    line.trim()
}

/// Splits `bb1(x, y)` into the name and its comma-separated list.
fn split_call(text: &str, line: usize) -> Result<(&str, Vec<&str>), ImportError> {
    let text = text.trim();
    match text.split_once('(') {
        None => {
            if text.is_empty() {
                Err(err(line, "empty name"))
            } else {
                Ok((text, Vec::new()))
            }
        }
        Some((name, rest)) => {
            let inner = rest
                .strip_suffix(')')
                .ok_or_else(|| err(line, format!("unclosed `(` in `{text}`")))?;
            let args = inner
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .collect();
            Ok((name.trim(), args))
        }
    }
}

fn binary_op(op: &str) -> Option<BinaryOp> {
    Some(match op {
        "add" | "iadd" => BinaryOp::Iadd,
        "sub" | "isub" => BinaryOp::Isub,
        "mul" | "imul" => BinaryOp::Imul,
        "div" | "sdiv" => BinaryOp::Sdiv,
        "rem" | "mod" | "srem" => BinaryOp::Srem,
        "and" | "band" => BinaryOp::Band,
        "or" | "bor" => BinaryOp::Bor,
        "xor" | "bxor" => BinaryOp::Bxor,
        "eq" | "icmp_eq" => BinaryOp::IcmpEq,
        "ne" | "icmp_ne" => BinaryOp::IcmpNe,
        "lt" | "slt" | "icmp_slt" => BinaryOp::IcmpSlt,
        "le" | "sle" | "icmp_sle" => BinaryOp::IcmpSle,
        _ => return None,
    })
}

fn unary_op(op: &str) -> Option<UnaryOp> {
    Some(match op {
        "copy" | "mov" | "id" => UnaryOp::Copy,
        "neg" | "ineg" => UnaryOp::Ineg,
        "not" | "bnot" => UnaryOp::Bnot,
        _ => return None,
    })
}

/// Per-function translation state for the SSA importer.
struct SsaFunc {
    case: CaseFunc,
    /// Variable name → value id, allocated on first mention (uses may
    /// textually precede definitions across blocks).
    values: HashMap<String, u32>,
    /// Variable name → line of its definition.
    defined: HashMap<String, usize>,
    /// Block name → block index, allocated on first mention.
    blocks: HashMap<String, usize>,
    /// Block name → line of its header (a targeted-but-never-headered
    /// block is an error at function end).
    headers: HashMap<String, usize>,
    current: Option<usize>,
    terminated: bool,
}

impl SsaFunc {
    fn new(name: &str) -> Self {
        SsaFunc {
            case: CaseFunc::new(name),
            values: HashMap::new(),
            defined: HashMap::new(),
            blocks: HashMap::new(),
            headers: HashMap::new(),
            current: None,
            terminated: true,
        }
    }

    fn value(&mut self, name: &str) -> u32 {
        if let Some(&v) = self.values.get(name) {
            return v;
        }
        let v = self.case.fresh_value();
        self.values.insert(name.to_string(), v);
        v
    }

    fn define(&mut self, name: &str, line: usize) -> Result<u32, ImportError> {
        if let Some(&first) = self.defined.get(name) {
            return Err(err(
                line,
                format!("`{name}` defined twice (first at line {first})"),
            ));
        }
        self.defined.insert(name.to_string(), line);
        Ok(self.value(name))
    }

    fn block(&mut self, name: &str) -> usize {
        if let Some(&b) = self.blocks.get(name) {
            return b;
        }
        // The very first block named in the function body is the entry
        // slot CaseFunc pre-creates; later names allocate new blocks.
        let b = if self.blocks.is_empty() {
            0
        } else {
            self.case.add_block()
        };
        self.blocks.insert(name.to_string(), b);
        b
    }

    fn call(&mut self, text: &str, line: usize) -> Result<CaseCall, ImportError> {
        let (name, args) = split_call(text, line)?;
        let block = self.block(name);
        Ok(CaseCall {
            block,
            args: args.iter().map(|a| self.value(a)).collect(),
        })
    }

    fn finish(self, line: usize) -> Result<CaseFunc, ImportError> {
        if !self.terminated || self.headers.is_empty() {
            return Err(err(line, "function needs at least one terminated block"));
        }
        for name in self.blocks.keys() {
            if !self.headers.contains_key(name) {
                return Err(err(line, format!("branch to undefined block `{name}`")));
            }
        }
        for name in self.values.keys() {
            if !self.defined.contains_key(name) {
                return Err(err(line, format!("use of undefined value `{name}`")));
            }
        }
        Ok(self.case)
    }
}

/// Imports dejavu-shaped block-parameter SSA text. See the module doc
/// for the grammar; `corpus/*.ssa` are the living examples.
pub fn import_ssa_text(src: &str) -> Result<Module, ImportError> {
    let mut cases: Vec<CaseFunc> = Vec::new();
    let mut cur: Option<SsaFunc> = None;

    for (ln, raw) in src.lines().enumerate() {
        let ln = ln + 1;
        let line = strip_comment(raw);
        if line.is_empty() {
            continue;
        }

        // Function header: `func @name(a, b) {`.
        if let Some(rest) = line
            .strip_prefix("func ")
            .or_else(|| line.strip_prefix("fn "))
            .or_else(|| line.strip_prefix("function "))
        {
            if cur.is_some() {
                return Err(err(ln, "nested `func` (missing `}`?)"));
            }
            let rest = rest
                .trim()
                .strip_suffix('{')
                .ok_or_else(|| err(ln, "function header must end in `{`"))?
                .trim();
            let (name, params) = split_call(rest, ln)?;
            let name = name.strip_prefix('@').unwrap_or(name);
            if name.is_empty() {
                return Err(err(ln, "function needs a name"));
            }
            let mut f = SsaFunc::new(name);
            for p in params {
                let v = f.define(p, ln)?;
                f.case.blocks[0].params.push(v);
            }
            cur = Some(f);
            continue;
        }

        if line == "}" {
            let f = cur
                .take()
                .ok_or_else(|| err(ln, "`}` outside a function"))?;
            cases.push(f.finish(ln)?);
            continue;
        }

        let f = cur
            .as_mut()
            .ok_or_else(|| err(ln, "statement outside a function"))?;

        // Block header: `bb1(x, y):`.
        if let Some(head) = line.strip_suffix(':') {
            if !f.terminated {
                return Err(err(ln, "previous block has no terminator"));
            }
            let (bname, params) = split_call(head, ln)?;
            if let Some(&seen) = f.headers.get(bname) {
                return Err(err(
                    ln,
                    format!("block `{bname}` defined twice (first at line {seen})"),
                ));
            }
            let first = f.headers.is_empty();
            let b = f.block(bname);
            f.headers.insert(bname.to_string(), ln);
            if first && !params.is_empty() {
                return Err(err(
                    ln,
                    "the entry block's parameters are the function parameters",
                ));
            }
            for p in params {
                let v = f.define(p, ln)?;
                f.case.blocks[b].params.push(v);
            }
            f.current = Some(b);
            f.terminated = false;
            continue;
        }

        let b = f
            .current
            .ok_or_else(|| err(ln, "instruction before any block header"))?;
        if f.terminated {
            return Err(err(ln, "instruction after the block's terminator"));
        }

        // Terminators.
        if let Some(rest) = line
            .strip_prefix("jmp ")
            .or_else(|| line.strip_prefix("jump "))
        {
            let dest = f.call(rest, ln)?;
            f.case.blocks[b].term = CaseTerm::Jump(dest);
            f.terminated = true;
            continue;
        }
        if let Some(rest) = line
            .strip_prefix("br ")
            .or_else(|| line.strip_prefix("brif "))
        {
            let (cond, targets) = rest
                .split_once(',')
                .ok_or_else(|| err(ln, "br needs `cond, then, else`"))?;
            let cond = f.value(cond.trim());
            // The two targets split at the comma outside parentheses.
            let targets = targets.trim();
            let mut depth = 0usize;
            let mut split_at = None;
            for (i, c) in targets.char_indices() {
                match c {
                    '(' => depth += 1,
                    ')' => depth = depth.saturating_sub(1),
                    ',' if depth == 0 => {
                        split_at = Some(i);
                        break;
                    }
                    _ => {}
                }
            }
            let split_at = split_at.ok_or_else(|| err(ln, "br needs two targets"))?;
            let then_call = f.call(&targets[..split_at], ln)?;
            let else_call = f.call(&targets[split_at + 1..], ln)?;
            f.case.blocks[b].term = CaseTerm::Brif(cond, then_call, else_call);
            f.terminated = true;
            continue;
        }
        if line == "ret"
            || line == "return"
            || line.starts_with("ret ")
            || line.starts_with("return ")
        {
            let rest = line
                .strip_prefix("return")
                .or_else(|| line.strip_prefix("ret"))
                .unwrap_or("")
                .trim();
            let args = if rest.is_empty() {
                Vec::new()
            } else {
                rest.split(',').map(|a| f.value(a.trim())).collect()
            };
            f.case.blocks[b].term = CaseTerm::Return(args);
            f.terminated = true;
            continue;
        }

        // Plain instruction: `dst = op operands`.
        let (dst, rhs) = line
            .split_once('=')
            .ok_or_else(|| err(ln, format!("unrecognized statement `{line}`")))?;
        let dst = f.define(dst.trim(), ln)?;
        let rhs = rhs.trim();
        let (op, operands) = match rhs.split_once(char::is_whitespace) {
            Some((op, rest)) => (op.trim(), rest.trim()),
            None => (rhs, ""),
        };
        let args: Vec<&str> = operands
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        let case_op = match op {
            "const" | "iconst" => {
                let imm: i64 = operands
                    .parse()
                    .map_err(|_| err(ln, format!("bad constant `{operands}`")))?;
                CaseOp::Iconst(imm)
            }
            _ => {
                if let Some(u) = unary_op(op) {
                    if args.len() != 1 {
                        return Err(err(ln, format!("`{op}` takes one operand")));
                    }
                    CaseOp::Unary(u, f.value(args[0]))
                } else if let Some(bi) = binary_op(op) {
                    if args.len() != 2 {
                        return Err(err(ln, format!("`{op}` takes two operands")));
                    }
                    CaseOp::Binary(bi, f.value(args[0]), f.value(args[1]))
                } else {
                    return Err(err(ln, format!("unknown operation `{op}`")));
                }
            }
        };
        f.case.blocks[b].insts.push((dst, case_op));
    }

    if cur.is_some() {
        return Err(err(0, "unterminated function (missing `}`)"));
    }
    if cases.is_empty() {
        return Err(err(0, "no functions in input"));
    }
    module_of_cases(&cases).map_err(|m| err(0, format!("imported function is invalid: {m}")))
}

/// Imports a Graphviz digraph as a CFG skeleton with a synthesized
/// strict-SSA body; see the module doc. The first node mentioned is
/// the entry node; nodes unreachable from it are pruned.
pub fn import_dot(src: &str) -> Result<Module, ImportError> {
    let mut name = String::from("dot_cfg");
    let mut order: Vec<String> = Vec::new();
    let mut index: HashMap<String, usize> = HashMap::new();
    let mut succs: Vec<Vec<usize>> = Vec::new();
    let mut saw_graph = false;

    fn intern(
        id: &str,
        order: &mut Vec<String>,
        index: &mut HashMap<String, usize>,
        succs: &mut Vec<Vec<usize>>,
    ) -> usize {
        if let Some(&i) = index.get(id) {
            return i;
        }
        let i = order.len();
        order.push(id.to_string());
        index.insert(id.to_string(), i);
        succs.push(Vec::new());
        i
    }

    for (ln, raw) in src.lines().enumerate() {
        let ln = ln + 1;
        let mut line = strip_comment(raw).to_string();
        // Drop [attr=...] blocks (they may contain `;` or `->`).
        while let Some(start) = line.find('[') {
            match line[start..].find(']') {
                Some(rel) => line.replace_range(start..start + rel + 1, " "),
                None => return Err(err(ln, "unclosed `[` attribute block")),
            }
        }
        for stmt in line.split(';') {
            let stmt = stmt
                .trim()
                .trim_end_matches('{')
                .trim_start_matches('}')
                .trim();
            if stmt.is_empty() {
                continue;
            }
            if let Some(rest) = stmt.strip_prefix("digraph") {
                saw_graph = true;
                let rest = rest.trim();
                if !rest.is_empty() {
                    name = rest.trim_matches('"').to_string();
                }
                continue;
            }
            if stmt.starts_with("graph")
                || stmt.starts_with("node")
                || stmt.starts_with("edge")
                || stmt.starts_with("subgraph")
                || stmt.starts_with("rankdir")
            {
                continue;
            }
            if stmt.contains("->") {
                let hops: Vec<&str> = stmt.split("->").map(str::trim).collect();
                for pair in hops.windows(2) {
                    let from = pair[0].trim_matches('"');
                    let to = pair[1].trim_matches('"');
                    if from.is_empty() || to.is_empty() {
                        return Err(err(ln, format!("malformed edge `{stmt}`")));
                    }
                    let fi = intern(from, &mut order, &mut index, &mut succs);
                    let ti = intern(to, &mut order, &mut index, &mut succs);
                    succs[fi].push(ti);
                }
            } else {
                // A bare node declaration claims its first-mention slot
                // (it may be the entry of a single-node graph).
                let id = stmt.trim_matches('"');
                if !id.is_empty() && id.chars().all(|c| c.is_alphanumeric() || "_.".contains(c)) {
                    intern(id, &mut order, &mut index, &mut succs);
                }
            }
        }
    }

    if !saw_graph {
        return Err(err(0, "not a digraph (missing `digraph` header)"));
    }
    if order.is_empty() {
        return Err(err(0, "digraph has no nodes"));
    }

    // Synthesize the body. Block 0 is a fresh pre-header entry (real
    // CFGs may loop back to their first node, and this IR dialect's
    // entry cannot receive block arguments); node i becomes block
    // i + 1 with one parameter, one local computation, and its edges.
    let mut case = CaseFunc::new(&name);
    for _ in 0..order.len() {
        case.add_block();
    }
    let seed = case.fresh_value();
    case.blocks[0].insts.push((seed, CaseOp::Iconst(1)));
    case.blocks[0].term = CaseTerm::Jump(CaseCall {
        block: 1,
        args: vec![seed],
    });
    let mut local = Vec::with_capacity(order.len());
    for n in 0..order.len() {
        let b = n + 1;
        let p = case.fresh_value();
        case.blocks[b].params.push(p);
        let y = case.fresh_value();
        case.blocks[b]
            .insts
            .push((y, CaseOp::Binary(BinaryOp::Iadd, p, p)));
        local.push(y);
    }
    for (n, &y) in local.iter().enumerate() {
        let b = n + 1;
        let call = |t: usize, v: u32| CaseCall {
            block: t + 1,
            args: vec![v],
        };
        let out = &succs[n];
        case.blocks[b].term = match out.len() {
            0 => CaseTerm::Return(vec![y]),
            1 => CaseTerm::Jump(call(out[0], y)),
            2 => CaseTerm::Brif(y, call(out[0], y), call(out[1], y)),
            m => {
                // Dispatch chain preserving all m edges:
                //   b:    brif y, s0, d1(y)
                //   d_i:  brif p_i, s_i, d_{i+1}(p_i)   (i = 1..m-2)
                //   d_{m-2} ends ... s_{m-2}, s_{m-1}.
                let ds: Vec<(usize, u32)> = (0..m - 2)
                    .map(|_| {
                        let d = case.add_block();
                        let p = case.fresh_value();
                        case.blocks[d].params.push(p);
                        (d, p)
                    })
                    .collect();
                for (i, &(d, p)) in ds.iter().enumerate() {
                    let next = if i + 1 < ds.len() {
                        CaseCall {
                            block: ds[i + 1].0,
                            args: vec![p],
                        }
                    } else {
                        call(out[m - 1], p)
                    };
                    case.blocks[d].term = CaseTerm::Brif(p, call(out[i + 1], p), next);
                }
                CaseTerm::Brif(
                    y,
                    call(out[0], y),
                    CaseCall {
                        block: ds[0].0,
                        args: vec![y],
                    },
                )
            }
        };
    }
    case.prune_unreachable();
    module_of_cases(&[case]).map_err(|m| err(0, format!("synthesized CFG invalid: {m}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_ssa_imports_and_verifies() {
        let src = "
            # Euclid, block-parameter form.
            func @gcd(a, b) {
            bb0:
              jmp bb1(a, b)
            bb1(x, y):
              zero = const 0
              done = eq y, zero
              br done, bb3(x), bb2
            bb2:
              r = rem x, y
              jmp bb1(y, r)
            bb3(g):
              ret g
            }";
        let m = import_ssa_text(src).expect("gcd imports");
        assert_eq!(m.len(), 1);
        assert_eq!(m.func(0).name, "gcd");
        assert_eq!(m.func(0).num_blocks(), 4);
    }

    #[test]
    fn forward_block_and_value_references_import() {
        // bb2 is targeted before its header; `x` is used in bb1 but
        // defined (as a block param) in a textually later header.
        let src = "
            func @fwd(n) {
            bb0:
              br n, bb2(n), bb1
            bb1:
              jmp bb2(n)
            bb2(x):
              y = add x, n
              ret y
            }";
        let m = import_ssa_text(src).expect("forward refs import");
        assert_eq!(m.func(0).num_blocks(), 3);
    }

    #[test]
    fn ssa_importer_is_total_on_garbage() {
        for bad in [
            "",
            "func @f {",
            "func @f {\n}",
            "func @f {\nbb0:\n  frobnicate x\n  ret\n}",
            "func @f {\nbb0:\n  x = add a\n  ret\n}",
            "func @f {\nbb0:\n  jmp missing_header\n}",
            "func @f {\nbb0:\n  x = const 1\n  x = const 2\n  ret\n}",
            "func @f {\nbb0:\n  ret\nbb0:\n  ret\n}",
            "func @f {\nbb0:\n  y = add a, b\n  ret y\n}",
            "ret",
        ] {
            assert!(import_ssa_text(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn dot_digraph_imports_with_loops_and_wide_switches() {
        let src = "
            digraph loop_nest {
              entry -> header;
              header -> body [label=\"taken\"];
              header -> exit;
              body -> latch; body -> early; // comment
              latch -> header;
              early -> exit;
              header -> sw;
              sw -> a; sw -> b; sw -> c; sw -> d;
              a -> exit; b -> exit; c -> exit; d -> exit;
            }";
        let m = import_dot(src).expect("digraph imports");
        let f = m.func(0);
        assert_eq!(f.name, "loop_nest");
        // 11 nodes + pre-header + 2 dispatch blocks for the 4-way `sw`
        // + 1 for the 3-way `header`.
        assert_eq!(f.num_blocks(), 15);
        fastlive_core::verify_strict_ssa(f).expect("synthesized body is strict");
    }

    #[test]
    fn dot_back_edge_into_first_node_is_fine() {
        let src = "digraph g { n0 -> n1; n1 -> n0; n1 -> n2; }";
        let m = import_dot(src).expect("imports");
        assert_eq!(m.func(0).num_blocks(), 4, "pre-header + three nodes");
    }

    #[test]
    fn dot_importer_is_total_on_garbage() {
        for bad in [
            "",
            "graph g { a -- b; }",
            "digraph g { a -> ; }",
            "digraph g { x [unclosed }",
        ] {
            assert!(import_dot(bad).is_err(), "accepted: {bad:?}");
        }
    }
}
