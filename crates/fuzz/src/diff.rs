//! The differential core: deterministic query mixes and the
//! backend-agreement check.
//!
//! The workspace invariant under test is the facade's: every backend
//! ([`BackendKind::Direct`], [`BackendKind::Session`],
//! [`BackendKind::Oracle`]) answers the same [`Query`] with a
//! byte-identical `Result<Response, QueryError>` — including the
//! *error* cases, because a backend that refuses a query its siblings
//! answer is as diverged as one that flips a liveness bit.

use std::fmt::Write as _;

use fastlive::{BackendKind, Fastlive, PointRef, Query, QueryEngine, QueryError, Response};
use fastlive_ir::{Block, Module, Value};
use fastlive_workload::SplitMix64;

/// One disagreement between backends on one query.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// The exact diverging query.
    pub query: Query,
    /// `(backend label, rendered answer)`, in the order the backends
    /// ran; at least two entries differ.
    pub answers: Vec<(String, String)>,
}

impl Divergence {
    /// A one-paragraph human rendering for reports and reproducer
    /// headers.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "query {:?} diverged:", self.query);
        for (label, answer) in &self.answers {
            let _ = write!(out, " {label}={answer};");
        }
        out
    }
}

/// Renders an answer compactly (whole-function set responses are
/// summarized, not dumped).
fn render_answer(r: &Result<Response, QueryError>) -> String {
    match r {
        Ok(Response::Sets(sets)) => {
            let ins: usize = sets.live_in.iter().map(Vec::len).sum();
            let outs: usize = sets.live_out.iter().map(Vec::len).sum();
            let mut digest: u64 = 0xcbf29ce484222325;
            for set in sets.live_in.iter().chain(sets.live_out.iter()) {
                for v in set {
                    digest = (digest ^ v.index() as u64).wrapping_mul(0x100000001b3);
                }
                digest = (digest ^ 0xff).wrapping_mul(0x100000001b3);
            }
            format!("Sets(in={ins}, out={outs}, digest={digest:016x})")
        }
        Ok(other) => format!("{other:?}"),
        Err(e) => format!("Err({e})"),
    }
}

/// The printed text of a whole module — what reproducers and findings
/// carry (parseable back via `parse_module`).
pub fn module_text(module: &Module) -> String {
    let mut out = String::new();
    for func in module.functions() {
        out.push_str(&func.to_string());
        out.push('\n');
    }
    out
}

/// A deterministic query mix over every function of the module:
/// `per_func` block probes of each polarity, point probes at entry /
/// before / after positions, interference pairs, one whole-function
/// set request, a couple of name-addressed probes (exercising the
/// resolution plane) and a couple of deliberately invalid references
/// (the error answers must agree too).
pub fn query_mix(module: &Module, per_func: usize, seed: u64) -> Vec<Query> {
    let mut rng = SplitMix64::new(seed ^ 0x71e5_3a11);
    // The nullness-family arms draw from their own stream so adding
    // them did not (and future arms need not) reshuffle the liveness
    // probes a given seed has always produced.
    let mut nrng = SplitMix64::new(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut queries = Vec::new();
    for (id, func) in module.iter() {
        let nv = func.num_values();
        let nb = func.num_blocks();
        if nv == 0 || nb == 0 {
            continue;
        }
        let rv = |rng: &mut SplitMix64| Value::from_index(rng.index(nv));
        let rb = |rng: &mut SplitMix64| Block::from_index(rng.index(nb));
        for _ in 0..per_func {
            queries.push(Query::live_in(id, rv(&mut rng), rb(&mut rng)));
            queries.push(Query::live_out(id, rv(&mut rng), rb(&mut rng)));
        }
        for _ in 0..per_func.div_ceil(2) {
            let b = rb(&mut rng);
            let n = func.block_insts(b).len();
            let point = match rng.index(3) {
                0 => PointRef::entry(b),
                1 => PointRef::before(b, rng.index(n.max(1))),
                _ => PointRef::after(b, rng.index(n.max(1))),
            };
            queries.push(Query::live_at(id, rv(&mut rng), point));
        }
        for _ in 0..per_func.div_ceil(2) {
            queries.push(Query::interfere(id, rv(&mut rng), rv(&mut rng)));
        }
        // Nullness-family arms: the second analysis rides the same
        // differential invariant — facts at definitions and
        // definite-initialization probes at random blocks.
        for _ in 0..per_func.div_ceil(2) {
            queries.push(Query::nullness(id, rv(&mut nrng)));
            queries.push(Query::definitely_init(id, rv(&mut nrng), rb(&mut nrng)));
        }
        queries.push(Query::live_sets(id));
        // Name-addressed probes: printed names are dense on any parsed
        // or generated function, so `v{i}`/`block{i}` resolve to the
        // same entities the id probes address.
        let v = rv(&mut rng);
        let b = rb(&mut rng);
        queries.push(Query::live_in(
            func.name.clone(),
            format!("v{}", v.index()),
            format!("block{}", b.index()),
        ));
        // Invalid references: every backend must refuse identically.
        queries.push(Query::live_in(id, Value::from_index(nv + 7), rb(&mut rng)));
        queries.push(Query::live_out(id, rv(&mut rng), "block999999"));
        queries.push(Query::nullness(id, Value::from_index(nv + 13)));
        queries.push(Query::definitely_init(id, rv(&mut nrng), "block999999"));
        queries.push(Query::live_at(
            id,
            rv(&mut rng),
            PointRef::before(rb(&mut rng), 100_000),
        ));
    }
    queries.push(Query::live_sets("no_such_function_anywhere"));
    queries
}

/// Collects the positions where answer vectors disagree (the first
/// run is the baseline). Exposed so arms that must hold sessions open
/// across module edits can diff their own runs.
pub fn divergences_of(
    queries: &[Query],
    runs: &[(String, Vec<Result<Response, QueryError>>)],
) -> Vec<Divergence> {
    let mut out = Vec::new();
    let (_, baseline) = &runs[0];
    for (i, query) in queries.iter().enumerate() {
        if runs.iter().any(|(_, run)| run[i] != baseline[i]) {
            out.push(Divergence {
                query: query.clone(),
                answers: runs
                    .iter()
                    .map(|(label, run)| (label.clone(), render_answer(&run[i])))
                    .collect(),
            });
        }
    }
    out
}

/// Runs the mix through all three facade backends and reports every
/// disagreement. Empty result = the differential invariant held.
pub fn check_module(fl: &Fastlive, module: &Module, queries: &[Query]) -> Vec<Divergence> {
    let runs: Vec<(String, Vec<Result<Response, QueryError>>)> = [
        BackendKind::Direct,
        BackendKind::Session,
        BackendKind::Oracle,
    ]
    .into_iter()
    .map(|kind| {
        let mut session = fl.session_with(module, kind);
        (format!("{kind:?}"), session.run_queries(module, queries))
    })
    .collect();
    divergences_of(queries, &runs)
}

/// Diffs one external engine (e.g. the intentionally broken one the
/// shrinker self-test seeds) against the oracle backend.
pub fn check_against_oracle(
    fl: &Fastlive,
    engine: &mut dyn QueryEngine,
    module: &Module,
    queries: &[Query],
) -> Vec<Divergence> {
    let mut oracle = fl.session_with(module, BackendKind::Oracle);
    let runs = vec![
        ("Oracle".to_string(), oracle.run_queries(module, queries)),
        (
            engine.backend_name().to_string(),
            engine.run_queries(module, queries),
        ),
    ];
    divergences_of(queries, &runs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastlive_workload::{generate_module, ModuleParams};

    #[test]
    fn mix_is_deterministic_and_backends_agree() {
        let module = generate_module(
            "mix",
            ModuleParams {
                functions: 3,
                max_blocks: 16,
                deep_live_per_mille: 500,
                ..ModuleParams::default()
            },
            21,
        );
        let a = query_mix(&module, 4, 9);
        let b = query_mix(&module, 4, 9);
        assert_eq!(a, b, "same seed, same mix");
        let fl = Fastlive::builder().build().expect("default build");
        assert!(check_module(&fl, &module, &a).is_empty());
    }

    #[test]
    fn invalid_references_get_identical_errors() {
        let module = generate_module(
            "err",
            ModuleParams {
                functions: 1,
                max_blocks: 8,
                ..ModuleParams::default()
            },
            3,
        );
        let queries = vec![
            Query::live_in(0usize, Value::from_index(10_000), Block::from_index(0)),
            Query::live_sets("missing"),
        ];
        let fl = Fastlive::builder().build().expect("default build");
        assert!(check_module(&fl, &module, &queries).is_empty());
    }
}
