//! A mutable, serializable mirror of one SSA function — the substrate
//! the adversarial mutators and the minimizing shrinker both edit.
//!
//! [`fastlive_ir::Function`] is append-only by design: blocks and
//! values can be added but never removed, which is exactly wrong for a
//! shrinker. [`CaseFunc`] is the plain vector-of-blocks picture of one
//! function where any block, edge, instruction or parameter can be
//! deleted in O(1) conceptual steps. The only road back to a real
//! `Function` is the text parser: [`CaseFunc::to_text`] prints the
//! `.fl` form (sparse value ids are fine — the parser renumbers them
//! densely in textual definition order) and [`CaseFunc::to_function`]
//! parses and verifies it. Every mutated or shrunk candidate therefore
//! flows through exactly the parser and verifier code paths this
//! harness is trying to break — the harness fuzzes its own plumbing
//! for free.

use std::fmt::Write as _;

use fastlive_core::verify_strict_ssa;
use fastlive_ir::{parse_function, BinaryOp, Function, InstData, Module, UnaryOp};

/// One non-terminator operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CaseOp {
    /// `v = iconst IMM`.
    Iconst(i64),
    /// `v = <op> a`.
    Unary(UnaryOp, u32),
    /// `v = <op> a, b`.
    Binary(BinaryOp, u32, u32),
}

/// A branch target: block index plus arguments for its parameters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CaseCall {
    /// Index into [`CaseFunc::blocks`].
    pub block: usize,
    /// Arguments matching the target's parameter list.
    pub args: Vec<u32>,
}

/// A block terminator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CaseTerm {
    /// Unconditional branch.
    Jump(CaseCall),
    /// Conditional branch on a value.
    Brif(u32, CaseCall, CaseCall),
    /// Function return.
    Return(Vec<u32>),
}

impl CaseTerm {
    /// The branch targets of the terminator (empty for `Return`).
    pub fn targets(&self) -> Vec<&CaseCall> {
        match self {
            CaseTerm::Jump(d) => vec![d],
            CaseTerm::Brif(_, t, e) => vec![t, e],
            CaseTerm::Return(_) => Vec::new(),
        }
    }

    /// Mutable access to the branch targets.
    pub fn targets_mut(&mut self) -> Vec<&mut CaseCall> {
        match self {
            CaseTerm::Jump(d) => vec![d],
            CaseTerm::Brif(_, t, e) => vec![t, e],
            CaseTerm::Return(_) => Vec::new(),
        }
    }
}

/// One basic block: parameters, body instructions, terminator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CaseBlock {
    /// Block parameter value ids (the φ-destinations).
    pub params: Vec<u32>,
    /// Non-terminator instructions: `(result id, operation)`.
    pub insts: Vec<(u32, CaseOp)>,
    /// The terminator.
    pub term: CaseTerm,
}

/// A whole function in deletable form. Block 0 is the entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CaseFunc {
    /// Function name (printed quoted when not a bare identifier).
    pub name: String,
    /// The blocks; index 0 is the entry block.
    pub blocks: Vec<CaseBlock>,
    next_value: u32,
}

impl CaseFunc {
    /// An empty function shell with one terminated entry block.
    pub fn new(name: impl Into<String>) -> Self {
        CaseFunc {
            name: name.into(),
            blocks: vec![CaseBlock {
                params: Vec::new(),
                insts: Vec::new(),
                term: CaseTerm::Return(Vec::new()),
            }],
            next_value: 0,
        }
    }

    /// Mints a value id never used in this function before.
    pub fn fresh_value(&mut self) -> u32 {
        let v = self.next_value;
        self.next_value += 1;
        v
    }

    /// Appends an empty (returning) block and returns its index.
    pub fn add_block(&mut self) -> usize {
        self.blocks.push(CaseBlock {
            params: Vec::new(),
            insts: Vec::new(),
            term: CaseTerm::Return(Vec::new()),
        });
        self.blocks.len() - 1
    }

    /// The deletable mirror of an existing function.
    pub fn from_function(func: &Function) -> Self {
        let mut blocks = Vec::with_capacity(func.num_blocks());
        for b in func.blocks() {
            let params = func
                .block_params(b)
                .iter()
                .map(|v| v.index() as u32)
                .collect();
            let mut insts = Vec::new();
            let mut term = CaseTerm::Return(Vec::new());
            for &inst in func.block_insts(b) {
                let vid = |v: fastlive_ir::Value| v.index() as u32;
                match func.inst_data(inst) {
                    InstData::IntConst { imm } => {
                        let r = func.inst_result(inst).map(vid).unwrap_or(u32::MAX);
                        insts.push((r, CaseOp::Iconst(*imm)));
                    }
                    InstData::Unary { op, arg } => {
                        let r = func.inst_result(inst).map(vid).unwrap_or(u32::MAX);
                        insts.push((r, CaseOp::Unary(*op, vid(*arg))));
                    }
                    InstData::Binary { op, args } => {
                        let r = func.inst_result(inst).map(vid).unwrap_or(u32::MAX);
                        insts.push((r, CaseOp::Binary(*op, vid(args[0]), vid(args[1]))));
                    }
                    InstData::Jump { dest } => {
                        term = CaseTerm::Jump(CaseCall {
                            block: dest.block.index(),
                            args: dest.args.iter().copied().map(vid).collect(),
                        });
                    }
                    InstData::Brif {
                        cond,
                        then_dest,
                        else_dest,
                    } => {
                        term = CaseTerm::Brif(
                            vid(*cond),
                            CaseCall {
                                block: then_dest.block.index(),
                                args: then_dest.args.iter().copied().map(vid).collect(),
                            },
                            CaseCall {
                                block: else_dest.block.index(),
                                args: else_dest.args.iter().copied().map(vid).collect(),
                            },
                        );
                    }
                    InstData::Return { args } => {
                        term = CaseTerm::Return(args.iter().copied().map(vid).collect());
                    }
                }
            }
            blocks.push(CaseBlock {
                params,
                insts,
                term,
            });
        }
        CaseFunc {
            name: func.name.clone(),
            blocks,
            next_value: func.num_values() as u32,
        }
    }

    /// Every value id defined by block `b` (parameters then results).
    pub fn defs_of(&self, b: usize) -> Vec<u32> {
        let block = &self.blocks[b];
        block
            .params
            .iter()
            .copied()
            .chain(block.insts.iter().map(|(r, _)| *r))
            .collect()
    }

    /// Rewrites every value *use* (operands, branch args, returns — not
    /// definitions) through `f`.
    pub fn map_uses(&mut self, mut f: impl FnMut(u32) -> u32) {
        for block in &mut self.blocks {
            for (_, op) in &mut block.insts {
                match op {
                    CaseOp::Iconst(_) => {}
                    CaseOp::Unary(_, a) => *a = f(*a),
                    CaseOp::Binary(_, a, b) => {
                        *a = f(*a);
                        *b = f(*b);
                    }
                }
            }
            match &mut block.term {
                CaseTerm::Jump(d) => {
                    for a in &mut d.args {
                        *a = f(*a);
                    }
                }
                CaseTerm::Brif(c, t, e) => {
                    *c = f(*c);
                    for a in t.args.iter_mut().chain(e.args.iter_mut()) {
                        *a = f(*a);
                    }
                }
                CaseTerm::Return(args) => {
                    for a in args {
                        *a = f(*a);
                    }
                }
            }
        }
    }

    /// Deletes every block unreachable from the entry (edge and block
    /// deletions orphan blocks; the dominance verifier has nothing to
    /// say about orphans, so the case keeps itself honest). Returns how
    /// many blocks were removed.
    pub fn prune_unreachable(&mut self) -> usize {
        let n = self.blocks.len();
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(b) = stack.pop() {
            for call in self.blocks[b].term.targets() {
                if call.block < n && !seen[call.block] {
                    seen[call.block] = true;
                    stack.push(call.block);
                }
            }
        }
        let dropped = seen.iter().filter(|s| !**s).count();
        if dropped == 0 {
            return 0;
        }
        // Old index → new index for the survivors.
        let mut remap = vec![usize::MAX; n];
        let mut next = 0usize;
        for (i, &s) in seen.iter().enumerate() {
            if s {
                remap[i] = next;
                next += 1;
            }
        }
        let mut i = 0usize;
        self.blocks.retain(|_| {
            let keep = seen[i];
            i += 1;
            keep
        });
        for block in &mut self.blocks {
            for call in block.term.targets_mut() {
                call.block = remap[call.block];
            }
        }
        dropped
    }

    /// The `.fl` text of the function. Value ids print as written —
    /// possibly sparse after deletions; the parser renumbers densely.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("function %");
        write_fl_name(&mut out, &self.name);
        out.push_str(" {\n");
        for (i, block) in self.blocks.iter().enumerate() {
            let _ = write!(out, "block{i}");
            if !block.params.is_empty() {
                out.push('(');
                for (j, p) in block.params.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "v{p}");
                }
                out.push(')');
            }
            out.push_str(":\n");
            for (r, op) in &block.insts {
                match op {
                    CaseOp::Iconst(imm) => {
                        let _ = writeln!(out, "    v{r} = iconst {imm}");
                    }
                    CaseOp::Unary(op, a) => {
                        let _ = writeln!(out, "    v{r} = {} v{a}", op.mnemonic());
                    }
                    CaseOp::Binary(op, a, b) => {
                        let _ = writeln!(out, "    v{r} = {} v{a}, v{b}", op.mnemonic());
                    }
                }
            }
            let call = |out: &mut String, c: &CaseCall| {
                let _ = write!(out, "block{}", c.block);
                if !c.args.is_empty() {
                    out.push('(');
                    for (j, a) in c.args.iter().enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        let _ = write!(out, "v{a}");
                    }
                    out.push(')');
                }
            };
            match &block.term {
                CaseTerm::Jump(d) => {
                    out.push_str("    jump ");
                    call(&mut out, d);
                    out.push('\n');
                }
                CaseTerm::Brif(c, t, e) => {
                    let _ = write!(out, "    brif v{c}, ");
                    call(&mut out, t);
                    out.push_str(", ");
                    call(&mut out, e);
                    out.push('\n');
                }
                CaseTerm::Return(args) => {
                    out.push_str("    return");
                    for (j, a) in args.iter().enumerate() {
                        out.push_str(if j == 0 { " " } else { ", " });
                        let _ = write!(out, "v{a}");
                    }
                    out.push('\n');
                }
            }
        }
        out.push_str("}\n");
        out
    }

    /// Parses the printed text back into a verified strict-SSA
    /// function. `Err` carries the parse or verification message — a
    /// mutation or shrink step that broke the program, which callers
    /// discard (and count) rather than run.
    pub fn to_function(&self) -> Result<Function, String> {
        let func = parse_function(&self.to_text()).map_err(|e| format!("parse: {e}"))?;
        verify_strict_ssa(&func).map_err(|e| format!("verify: {e}"))?;
        Ok(func)
    }

    /// [`to_function`](Self::to_function), wrapped as a one-function
    /// module (the unit the facade queries).
    pub fn to_module(&self) -> Result<Module, String> {
        let mut module = Module::new();
        module.push(self.to_function()?);
        Ok(module)
    }
}

/// Writes a function name the way the IR printer does: bare when it is
/// a bare identifier, quoted-and-escaped otherwise. The round-trip
/// tests in `fastlive-ir` pin the printer side; this mirror only has to
/// produce *some* text the parser maps back to the same name, which
/// the `to_function` round-trip checks on every use.
fn write_fl_name(out: &mut String, name: &str) {
    let mut chars = name.chars();
    let bare = match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {
            chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
        }
        _ => false,
    };
    if bare {
        out.push_str(name);
        return;
    }
    out.push('"');
    for c in name.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 || c as u32 == 0x7f => {
                let _ = write!(out, "\\u{{{:x}}}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Mirrors a whole module into case form, one [`CaseFunc`] per
/// function.
pub fn cases_of_module(module: &Module) -> Vec<CaseFunc> {
    module
        .functions()
        .iter()
        .map(CaseFunc::from_function)
        .collect()
}

/// Rebuilds a module from case functions, failing on the first case
/// that no longer parses or verifies.
pub fn module_of_cases(cases: &[CaseFunc]) -> Result<Module, String> {
    let mut module = Module::new();
    for case in cases {
        module.push(case.to_function()?);
    }
    Ok(module)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Function {
        parse_function(
            "function %f { block0(v0):
                v1 = iconst 0
                brif v0, block1(v1), block2
            block1(v2):
                v3 = iadd v2, v0
                jump block2
            block2:
                return v0 }",
        )
        .unwrap()
    }

    #[test]
    fn mirror_round_trips_through_the_parser() {
        let func = sample();
        let case = CaseFunc::from_function(&func);
        let back = case.to_function().expect("mirror parses");
        assert_eq!(back.to_string(), func.to_string());
    }

    #[test]
    fn sparse_ids_survive_serialization() {
        let func = sample();
        let mut case = CaseFunc::from_function(&func);
        // Delete the iadd (v3): ids stay sparse, text still parses.
        case.blocks[1].insts.clear();
        let back = case.to_function().expect("sparse mirror parses");
        assert_eq!(back.num_values(), 3);
    }

    #[test]
    fn prune_drops_orphaned_blocks() {
        let func = sample();
        let mut case = CaseFunc::from_function(&func);
        // Cut the edge into block1: brif → jump block2.
        case.blocks[0].term = CaseTerm::Jump(CaseCall {
            block: 2,
            args: vec![],
        });
        assert_eq!(case.prune_unreachable(), 1);
        assert_eq!(case.blocks.len(), 2);
        case.to_function().expect("pruned case is valid");
    }

    #[test]
    fn quoted_names_round_trip() {
        let mut case = CaseFunc::new("weird name \"x\"\n");
        case.blocks[0].term = CaseTerm::Return(vec![]);
        let func = case.to_function().expect("quoted name parses");
        assert_eq!(func.name, "weird name \"x\"\n");
    }
}
