//! Adversarial case generation: the shapes the paper's precomputation
//! is most likely to get wrong, built either by mutating generated
//! workloads or from scratch.
//!
//! Every product of this module is a [`CaseFunc`] whose
//! [`to_function`](CaseFunc::to_function) round-trip re-checks strict
//! SSA — a mutation that breaks the dominance property is *discarded
//! and counted*, never silently run, because the differential
//! invariant (all backends answer identically) is only promised for
//! strict-SSA inputs.

use fastlive_construct::construct_ssa;
use fastlive_ir::Function;
use fastlive_workload::{generate_pre, inject_gotos, GenParams, SplitMix64};

use crate::case::{CaseCall, CaseFunc, CaseTerm};

/// What one mutation attempt produced.
pub enum Mutated {
    /// The mutated case still parses and verifies.
    Ok(CaseFunc),
    /// The mutation broke strict SSA (or did not apply); the case was
    /// discarded. Carries the reason for the arm's skip counter.
    Skipped(&'static str),
}

/// Duplicates a `brif` edge: both targets of a random conditional
/// branch point at the same block with the same arguments — the
/// parallel-edge shape that stresses predecessor multiplicity.
pub fn duplicate_brif_edge(case: &CaseFunc, rng: &mut SplitMix64) -> Mutated {
    let brifs: Vec<usize> = (0..case.blocks.len())
        .filter(|&b| matches!(case.blocks[b].term, CaseTerm::Brif(..)))
        .collect();
    if brifs.is_empty() {
        return Mutated::Skipped("no brif to duplicate");
    }
    let b = *rng.pick(&brifs);
    let mut next = case.clone();
    if let CaseTerm::Brif(_, then_call, else_call) = &mut next.blocks[b].term {
        // Collapse onto one side; the dropped side may orphan blocks.
        if rng.chance(50) {
            *then_call = else_call.clone();
        } else {
            *else_call = then_call.clone();
        }
    }
    next.prune_unreachable();
    match next.to_function() {
        Ok(_) => Mutated::Ok(next),
        Err(_) => Mutated::Skipped("duplicate edge broke SSA"),
    }
}

/// Adds a self-edge: a block ending in `jump T` instead conditionally
/// re-enters itself, passing its own parameters — a one-block loop
/// whose header is its own latch. The condition and self-arguments are
/// values defined *in* the block, so dominance is preserved by
/// construction (still re-verified).
pub fn add_self_edge(case: &CaseFunc, rng: &mut SplitMix64) -> Mutated {
    let candidates: Vec<usize> = (0..case.blocks.len())
        .filter(|&b| {
            matches!(case.blocks[b].term, CaseTerm::Jump(_)) && !case.defs_of(b).is_empty()
        })
        .collect();
    if candidates.is_empty() {
        return Mutated::Skipped("no jump block with local defs");
    }
    let b = *rng.pick(&candidates);
    let mut next = case.clone();
    let local = next.defs_of(b);
    let cond = *rng.pick(&local);
    let self_args = next.blocks[b].params.clone();
    if let CaseTerm::Jump(dest) = next.blocks[b].term.clone() {
        next.blocks[b].term = CaseTerm::Brif(
            cond,
            dest,
            CaseCall {
                block: b,
                args: self_args,
            },
        );
    }
    match next.to_function() {
        Ok(_) => Mutated::Ok(next),
        Err(_) => Mutated::Skipped("self edge broke SSA"),
    }
}

/// A dominator ladder: `height` straight-line blocks, each defining one
/// value from its predecessor's, with the earliest values used again
/// only at the bottom — live *through* the whole chain. Worst case for
/// anything that walks dominator chains or reduced-reachability sets.
pub fn dominator_ladder(name: &str, height: usize, rng: &mut SplitMix64) -> CaseFunc {
    let height = height.max(2);
    let mut case = CaseFunc::new(name);
    let seed_val = case.fresh_value();
    case.blocks[0]
        .insts
        .push((seed_val, crate::case::CaseOp::Iconst(rng.range(97) as i64)));
    let mut rungs = vec![seed_val];
    let mut prev = 0usize;
    for _ in 1..height {
        let b = case.add_block();
        case.blocks[prev].term = CaseTerm::Jump(CaseCall {
            block: b,
            args: vec![],
        });
        let r = case.fresh_value();
        let from = *rungs.last().unwrap();
        case.blocks[b].insts.push((
            r,
            crate::case::CaseOp::Binary(fastlive_ir::BinaryOp::Iadd, from, seed_val),
        ));
        rungs.push(r);
        prev = b;
    }
    // The bottom folds a sample of early rungs back together: deep
    // ranges from the top of the ladder stay live through every rung.
    let mut acc = rungs[0];
    for _ in 0..4usize.min(rungs.len()) {
        let pick = rungs[rng.index(rungs.len() / 2 + 1)];
        let r = case.fresh_value();
        case.blocks[prev].insts.push((
            r,
            crate::case::CaseOp::Binary(fastlive_ir::BinaryOp::Bxor, acc, pick),
        ));
        acc = r;
    }
    case.blocks[prev].term = CaseTerm::Return(vec![acc]);
    case
}

/// Hand-built irreducible regions: per region, a two-block loop whose
/// blocks `a` and `b` are each entered from *outside* the loop as well
/// (a two-stage dispatch chain branches into `a` and into `b`), so
/// neither loop block dominates the other — the shape DFS-tree-based
/// reducibility tests misclassify first. Loop-carried state travels as
/// block parameters; the initial arguments are entry-defined, so
/// strict SSA holds by construction.
pub fn irreducible_double_entry(name: &str, rounds: usize, rng: &mut SplitMix64) -> CaseFunc {
    let rounds = rounds.max(1);
    let mut case = CaseFunc::new(name);
    let c = case.fresh_value();
    let x = case.fresh_value();
    case.blocks[0]
        .insts
        .push((c, crate::case::CaseOp::Iconst(rng.range(2) as i64)));
    case.blocks[0]
        .insts
        .push((x, crate::case::CaseOp::Iconst(rng.range(1000) as i64)));
    let exit = case.add_block();
    case.blocks[exit].term = CaseTerm::Return(vec![x]);
    let mut dispatch = 0usize;
    for i in 0..rounds {
        let a = case.add_block();
        let b = case.add_block();
        let pa = case.fresh_value();
        let pb = case.fresh_value();
        case.blocks[a].params.push(pa);
        case.blocks[b].params.push(pb);
        // The loop proper: a ⇄ b, each with a fall-out to the exit.
        case.blocks[a].term = CaseTerm::Brif(
            pa,
            CaseCall {
                block: b,
                args: vec![pa],
            },
            CaseCall {
                block: exit,
                args: vec![],
            },
        );
        case.blocks[b].term = CaseTerm::Brif(
            pb,
            CaseCall {
                block: a,
                args: vec![pb],
            },
            CaseCall {
                block: exit,
                args: vec![],
            },
        );
        // Two-stage dispatch: `dispatch → a | d2` and `d2 → b | next`,
        // giving both loop blocks an entry edge from outside the loop.
        let d2 = case.add_block();
        case.blocks[dispatch].term = CaseTerm::Brif(
            c,
            CaseCall {
                block: a,
                args: vec![x],
            },
            CaseCall {
                block: d2,
                args: vec![],
            },
        );
        let next = if i + 1 == rounds {
            exit
        } else {
            case.add_block()
        };
        case.blocks[d2].term = CaseTerm::Brif(
            c,
            CaseCall {
                block: b,
                args: vec![x],
            },
            CaseCall {
                block: next,
                args: vec![],
            },
        );
        dispatch = next;
    }
    case
}

/// A generated function pushed through heavy goto injection — the
/// workload generator's own irreducibility path, turned up far past
/// the SPEC-calibrated defaults. Returns the function plus how many
/// gotos actually landed.
pub fn pathological_irreducible(name: &str, blocks: usize, seed: u64) -> (Function, usize) {
    let mut pre = generate_pre(
        name,
        GenParams {
            target_blocks: blocks,
            loop_percent: 35,
            deep_live_percent: 40,
            ..GenParams::default()
        },
        seed,
    );
    let wanted = (blocks / 3).max(4);
    let landed = inject_gotos(&mut pre, wanted, seed ^ 0x9090);
    let func = construct_ssa(&pre).expect("generator output stays constructible");
    (func, landed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastlive_cfg::{DfsTree, DomTree, Reducibility};

    #[test]
    fn ladder_is_valid_and_tall() {
        let mut rng = SplitMix64::new(7);
        let case = dominator_ladder("ladder", 64, &mut rng);
        let func = case.to_function().expect("ladder is strict SSA");
        assert_eq!(func.num_blocks(), 64);
    }

    #[test]
    fn double_entry_is_truly_irreducible() {
        let mut rng = SplitMix64::new(3);
        let case = irreducible_double_entry("irr", 2, &mut rng);
        let func = case.to_function().expect("irreducible case is strict SSA");
        let dfs = DfsTree::compute(&func);
        let dom = DomTree::compute(&func, &dfs);
        let red = Reducibility::compute(&dfs, &dom);
        assert!(
            !red.irreducible_back_edges().is_empty(),
            "expected an irreducible back edge"
        );
    }

    #[test]
    fn mutators_only_emit_verified_cases() {
        let mut rng = SplitMix64::new(11);
        let (func, _) = pathological_irreducible("m", 24, 5);
        let case = CaseFunc::from_function(&func);
        for _ in 0..16 {
            if let Mutated::Ok(m) = duplicate_brif_edge(&case, &mut rng) {
                m.to_function().expect("mutant verified at emission");
            }
            if let Mutated::Ok(m) = add_self_edge(&case, &mut rng) {
                m.to_function().expect("mutant verified at emission");
            }
        }
    }
}
