//! The campaign runner: nine arms, each aiming a different adversarial
//! shape at the same invariant — all backends answer identically, and
//! no input reaches a panic.
//!
//! | arm           | what it stresses                                     |
//! |---------------|------------------------------------------------------|
//! | `generated`   | baseline generator coverage                          |
//! | `irreducible` | goto-injected + hand-built double-entry loops        |
//! | `dom_chains`  | deep dominator ladders, live-through ranges          |
//! | `massive`     | block counts far past the SPEC-calibrated defaults   |
//! | `dup_edges`   | duplicate `brif` edges and one-block self-loops      |
//! | `edits`       | mid-stream CFG/instruction edits against live open   |
//! |               | sessions (the revalidation contract)                 |
//! | `persist`     | fault-injected persistence campaigns + healthy reopen|
//! | `parser`      | arbitrary bytes through `parse_module` (totality)    |
//! | `roundtrip`   | print → parse → print fixpoint, reparsed equivalence |
//!
//! Every divergence is immediately handed to the shrinker; the arm
//! records a [`Finding`] carrying the minimized `.fl` reproducer and
//! the exact diverging query.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

use fastlive::{BackendKind, Fastlive, Fault, FaultRule, FaultVfs, OpKind};
use fastlive_construct::construct_ssa;
use fastlive_ir::{parse_module, Block, BlockCall, InstData, Module, Value};
use fastlive_workload::{
    generate_campaigns, generate_module, generate_pre, CampaignParams, FaultOp, FaultSpec,
    FunctionStats, GenParams, ModuleParams, SplitMix64, SuiteStats,
};

use crate::case::CaseFunc;
use crate::diff::{check_module, divergences_of, module_text, query_mix, Divergence};
use crate::mutate::{
    add_self_edge, dominator_ladder, duplicate_brif_edge, irreducible_double_entry,
    pathological_irreducible, Mutated,
};
use crate::shrink::shrink;

/// How hard to push.
#[derive(Clone, Copy, Debug)]
pub struct CampaignConfig {
    /// Base seed; every arm derives its own stream from it.
    pub seed: u64,
    /// Bounded CI-sized run (the `--quick` flag).
    pub quick: bool,
}

/// One failure the campaign surfaced, minimized.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Arm that found it.
    pub arm: &'static str,
    /// Human rendering: the diverging query and per-backend answers,
    /// or the panic/round-trip description.
    pub detail: String,
    /// Self-contained `.fl` reproducer (or the offending raw input for
    /// parser findings).
    pub reproducer: String,
}

/// Per-arm tallies.
#[derive(Clone, Debug)]
pub struct ArmStats {
    /// Arm name.
    pub name: &'static str,
    /// Cases executed.
    pub cases: usize,
    /// Probes issued per backend set.
    pub queries: usize,
    /// Diverging probes (pre-shrink).
    pub divergences: usize,
    /// Mutations/campaigns that could not apply (counted, never silent).
    pub skipped: usize,
}

/// The whole campaign's result.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// One entry per arm, in execution order.
    pub arms: Vec<ArmStats>,
    /// Structural coverage per arm (block/edge/irreducibility shape).
    pub coverage: Vec<SuiteStats>,
    /// Minimized failures (empty on a healthy workspace).
    pub findings: Vec<Finding>,
}

impl CampaignReport {
    /// Total diverging probes across arms.
    pub fn total_divergences(&self) -> usize {
        self.arms.iter().map(|a| a.divergences).sum()
    }
}

/// Scratch shared by all arms.
struct Ctx {
    fl: Fastlive,
    cfg: CampaignConfig,
    findings: Vec<Finding>,
    coverage: Vec<SuiteStats>,
}

impl Ctx {
    /// Runs the standard differential check on one module, recording
    /// divergences and (for the first of a case) a shrunk reproducer.
    fn check(&mut self, arm: &'static str, stats: &mut ArmStats, module: &Module, per_func: usize) {
        let mix = query_mix(module, per_func, self.cfg.seed ^ stats.cases as u64);
        stats.cases += 1;
        stats.queries += mix.len();
        let divs = check_module(&self.fl, module, &mix);
        if divs.is_empty() {
            return;
        }
        stats.divergences += divs.len();
        self.report(arm, module, &divs);
    }

    /// Shrinks the failing module and records a finding (bounded so a
    /// systemic bug does not turn the run into a shrink marathon).
    fn report(&mut self, arm: &'static str, module: &Module, divs: &[Divergence]) {
        if self.findings.iter().filter(|f| f.arm == arm).count() >= 3 {
            return;
        }
        let fl = &self.fl;
        let shrink_seed = self.cfg.seed ^ 0x5157;
        let mut predicate = |m: &Module| {
            let qs = query_mix(m, 8, shrink_seed);
            check_module(fl, m, &qs).into_iter().next()
        };
        let finding = match shrink(module, &mut predicate, 600) {
            Some(out) => Finding {
                arm,
                detail: out.divergence.render(),
                reproducer: out.text,
            },
            // The divergence did not reproduce under the shrinker's
            // probe set; keep the original module and query verbatim.
            None => Finding {
                arm,
                detail: divs[0].render(),
                reproducer: module_text(module),
            },
        };
        self.findings.push(finding);
    }

    fn measure(&mut self, name: &'static str, functions: &[FunctionStats]) {
        self.coverage.push(SuiteStats::aggregate(name, functions));
    }
}

/// Runs all nine arms and aggregates the report.
pub fn run_campaign(cfg: CampaignConfig) -> CampaignReport {
    let fl = Fastlive::builder()
        .build()
        .expect("default facade build cannot fail");
    let mut ctx = Ctx {
        fl,
        cfg,
        findings: Vec::new(),
        coverage: Vec::new(),
    };
    let arms = vec![
        arm_generated(&mut ctx),
        arm_irreducible(&mut ctx),
        arm_dom_chains(&mut ctx),
        arm_massive(&mut ctx),
        arm_dup_edges(&mut ctx),
        arm_edits(&mut ctx),
        arm_persist(&mut ctx),
        arm_parser(&mut ctx),
        arm_roundtrip(&mut ctx),
    ];
    CampaignReport {
        arms,
        coverage: ctx.coverage,
        findings: ctx.findings,
    }
}

fn new_stats(name: &'static str) -> ArmStats {
    ArmStats {
        name,
        cases: 0,
        queries: 0,
        divergences: 0,
        skipped: 0,
    }
}

fn measure_module(acc: &mut Vec<FunctionStats>, module: &Module) {
    acc.extend(module.functions().iter().map(FunctionStats::measure));
}

// ---------------------------------------------------------------- arms

fn arm_generated(ctx: &mut Ctx) -> ArmStats {
    let mut stats = new_stats("generated");
    let mut cover = Vec::new();
    let (modules, funcs, max_blocks) = if ctx.cfg.quick {
        (5, 6, 28)
    } else {
        (16, 10, 48)
    };
    for i in 0..modules {
        let module = generate_module(
            &format!("gen{i}"),
            ModuleParams {
                functions: funcs,
                max_blocks,
                deep_live_per_mille: 250,
                ..ModuleParams::default()
            },
            ctx.cfg.seed.wrapping_add(i as u64),
        );
        measure_module(&mut cover, &module);
        ctx.check("generated", &mut stats, &module, 6);
    }
    ctx.measure("generated", &cover);
    stats
}

fn arm_irreducible(ctx: &mut Ctx) -> ArmStats {
    let mut stats = new_stats("irreducible");
    let mut cover = Vec::new();
    let mut rng = SplitMix64::new(ctx.cfg.seed ^ 0x1221);
    let (patho, hand) = if ctx.cfg.quick { (4, 3) } else { (12, 8) };
    for i in 0..patho {
        let blocks = 24 + 8 * i;
        let (func, landed) = pathological_irreducible(
            &format!("irr{i}"),
            blocks,
            ctx.cfg.seed.wrapping_mul(3).wrapping_add(i as u64),
        );
        if landed == 0 {
            stats.skipped += 1;
        }
        let mut module = Module::new();
        module.push(func);
        measure_module(&mut cover, &module);
        ctx.check("irreducible", &mut stats, &module, 8);
    }
    for i in 0..hand {
        let case = irreducible_double_entry(&format!("dbl{i}"), 1 + i, &mut rng);
        match case.to_module() {
            Ok(module) => {
                measure_module(&mut cover, &module);
                ctx.check("irreducible", &mut stats, &module, 8);
            }
            Err(_) => stats.skipped += 1,
        }
    }
    ctx.measure("irreducible", &cover);
    stats
}

fn arm_dom_chains(ctx: &mut Ctx) -> ArmStats {
    let mut stats = new_stats("dom_chains");
    let mut cover = Vec::new();
    let mut rng = SplitMix64::new(ctx.cfg.seed ^ 0xd0d0);
    let heights: &[usize] = if ctx.cfg.quick {
        &[16, 48, 96]
    } else {
        &[16, 64, 192, 384]
    };
    for (i, &h) in heights.iter().enumerate() {
        let case = dominator_ladder(&format!("ladder{i}"), h, &mut rng);
        match case.to_module() {
            Ok(module) => {
                measure_module(&mut cover, &module);
                ctx.check("dom_chains", &mut stats, &module, 10);
            }
            Err(_) => stats.skipped += 1,
        }
    }
    ctx.measure("dom_chains", &cover);
    stats
}

fn arm_massive(ctx: &mut Ctx) -> ArmStats {
    let mut stats = new_stats("massive");
    let mut cover = Vec::new();
    let sizes: &[usize] = if ctx.cfg.quick { &[160] } else { &[384, 512] };
    for (i, &blocks) in sizes.iter().enumerate() {
        let pre = generate_pre(
            &format!("huge{i}"),
            GenParams {
                target_blocks: blocks,
                loop_percent: 28,
                deep_live_percent: 20,
                ..GenParams::default()
            },
            ctx.cfg.seed ^ (0xb16 + i as u64),
        );
        let func = construct_ssa(&pre).expect("generator output is constructible");
        let mut module = Module::new();
        module.push(func);
        measure_module(&mut cover, &module);
        ctx.check("massive", &mut stats, &module, 4);
    }
    ctx.measure("massive", &cover);
    stats
}

fn arm_dup_edges(ctx: &mut Ctx) -> ArmStats {
    let mut stats = new_stats("dup_edges");
    let mut cover = Vec::new();
    let mut rng = SplitMix64::new(ctx.cfg.seed ^ 0xedce);
    let (bases, rounds) = if ctx.cfg.quick { (4, 4) } else { (10, 8) };
    for i in 0..bases {
        let module = generate_module(
            &format!("dup{i}"),
            ModuleParams {
                functions: 2,
                max_blocks: 24,
                ..ModuleParams::default()
            },
            ctx.cfg.seed ^ (0xe0 + i as u64),
        );
        let mut case = CaseFunc::from_function(module.func(0));
        for _ in 0..rounds {
            let mutated = if rng.chance(50) {
                duplicate_brif_edge(&case, &mut rng)
            } else {
                add_self_edge(&case, &mut rng)
            };
            match mutated {
                Mutated::Ok(next) => case = next,
                Mutated::Skipped(_) => {
                    stats.skipped += 1;
                    continue;
                }
            }
            match case.to_module() {
                Ok(m) => {
                    measure_module(&mut cover, &m);
                    ctx.check("dup_edges", &mut stats, &m, 6);
                }
                Err(_) => stats.skipped += 1,
            }
        }
    }
    ctx.measure("dup_edges", &cover);
    stats
}

/// Applies one round of in-place edits to every function: an
/// instruction insertion (analysis must stay exact with zero work), a
/// branch-argument swap to an entry-defined value, and a jump-edge
/// split through a fresh block (a CFG edit the session must detect via
/// the version counter). Returns how many edits landed.
fn apply_edits(module: &mut Module, rng: &mut SplitMix64) -> usize {
    let mut applied = 0;
    for fi in 0..module.len() {
        let func = module.func_mut(fi);
        let entry = func.entry_block();

        // Instruction-level edit: a constant at the top of the entry.
        func.insert_inst(
            entry,
            0,
            InstData::IntConst {
                imm: rng.range(64) as i64,
            },
        );
        let fresh = Value::from_index(func.num_values() - 1);
        applied += 1;

        // Branch-argument swap: entry-defined values dominate every
        // edge, so the swap cannot break strict SSA.
        'swap: for b in 0..func.num_blocks() {
            let block = Block::from_index(b);
            let Some(term) = func.terminator(block) else {
                continue;
            };
            let targets = func.inst_data(term).branch_targets();
            for (ti, call) in targets.iter().enumerate() {
                if !call.args.is_empty() {
                    let ai = rng.index(call.args.len());
                    func.set_branch_arg(term, ti, ai, fresh);
                    applied += 1;
                    break 'swap;
                }
            }
        }

        // CFG edit: split a jump edge through a fresh middle block.
        let jumps: Vec<Block> = (0..func.num_blocks())
            .map(Block::from_index)
            .filter(|&b| {
                func.terminator(b)
                    .is_some_and(|t| matches!(func.inst_data(t), InstData::Jump { .. }))
            })
            .collect();
        if let Some(&b) = (!jumps.is_empty()).then(|| rng.pick(&jumps)) {
            let term = func.terminator(b).expect("picked a terminated block");
            let InstData::Jump { dest } = func.inst_data(term).clone() else {
                unreachable!("filtered on Jump");
            };
            let mid = func.add_block();
            func.append_inst(
                mid,
                InstData::Jump {
                    dest: BlockCall {
                        block: dest.block,
                        args: dest.args.clone(),
                    },
                },
            );
            func.redirect_branch_target(term, 0, mid, Vec::new());
            applied += 1;
        }
    }
    applied
}

fn arm_edits(ctx: &mut Ctx) -> ArmStats {
    let mut stats = new_stats("edits");
    let mut cover = Vec::new();
    let mut rng = SplitMix64::new(ctx.cfg.seed ^ 0xed17);
    let modules = if ctx.cfg.quick { 4 } else { 10 };
    for i in 0..modules {
        let mut module = generate_module(
            &format!("edit{i}"),
            ModuleParams {
                functions: 3,
                max_blocks: 20,
                deep_live_per_mille: 300,
                ..ModuleParams::default()
            },
            ctx.cfg.seed ^ (0x1e0 + i as u64),
        );
        // Sessions opened ONCE, before any edit: the Session backend
        // must track the module through every mutation below.
        let mut sessions: Vec<(String, fastlive::FastliveSession<'_>)> = [
            BackendKind::Direct,
            BackendKind::Session,
            BackendKind::Oracle,
        ]
        .into_iter()
        .map(|kind| (format!("{kind:?}"), ctx.fl.session_with(&module, kind)))
        .collect();
        for round in 0..3 {
            let mix = query_mix(&module, 4, ctx.cfg.seed ^ (round * 31 + i as u64));
            let runs: Vec<(String, Vec<_>)> = sessions
                .iter_mut()
                .map(|(label, s)| (label.clone(), s.run_queries(&module, &mix)))
                .collect();
            stats.cases += 1;
            stats.queries += mix.len();
            let divs = divergences_of(&mix, &runs);
            if !divs.is_empty() {
                stats.divergences += divs.len();
                let snapshot = module.clone();
                drop(runs);
                drop(sessions);
                ctx.report("edits", &snapshot, &divs);
                measure_module(&mut cover, &snapshot);
                // The sessions were poisoned by the failure; move on.
                break;
            }
            if apply_edits(&mut module, &mut rng) == 0 {
                stats.skipped += 1;
            }
        }
        measure_module(&mut cover, &module);
    }
    ctx.measure("edits", &cover);
    stats
}

fn op_kind(op: FaultOp) -> OpKind {
    match op {
        FaultOp::Read => OpKind::Read,
        FaultOp::Write => OpKind::Write,
        FaultOp::Rename => OpKind::Rename,
        FaultOp::Remove => OpKind::Remove,
        FaultOp::Metadata => OpKind::Metadata,
        FaultOp::ReadDir => OpKind::ReadDir,
        FaultOp::CreateDir => OpKind::CreateDir,
        FaultOp::Any => OpKind::Any,
    }
}

fn fault_of(spec: &FaultSpec) -> Fault {
    match spec {
        FaultSpec::Errno(e) => Fault::Errno(*e),
        FaultSpec::TornWrite(n) => Fault::TornWrite(*n),
        // Cap scripted delays: the campaign tests correctness under
        // slowness, not wall-clock endurance.
        FaultSpec::DelayMicros(us) => Fault::Delay(Duration::from_micros((*us).min(2_000))),
    }
}

fn arm_persist(ctx: &mut Ctx) -> ArmStats {
    let mut stats = new_stats("persist");
    let mut cover = Vec::new();
    let campaigns = generate_campaigns(
        CampaignParams {
            campaigns: if ctx.cfg.quick { 3 } else { 10 },
            functions: 4,
            max_blocks: 16,
            ..CampaignParams::default()
        },
        ctx.cfg.seed ^ 0x9e75,
    );
    for (i, c) in campaigns.iter().enumerate() {
        let module = generate_module(&c.name, c.module, c.module_seed);
        measure_module(&mut cover, &module);
        let mix = query_mix(&module, 4, ctx.cfg.seed ^ i as u64);
        let dir = std::env::temp_dir().join(format!("fastlive-fuzz-{}-{i}", std::process::id()));
        let rules: Vec<FaultRule> = c
            .events
            .iter()
            .map(|e| {
                FaultRule::window(
                    op_kind(e.op),
                    e.skip.min(usize::MAX as u64) as usize,
                    e.count.min(usize::MAX as u64) as usize,
                    fault_of(&e.fault),
                )
            })
            .collect();
        // Phase 1: query while the scripted faults fire. A refused
        // build is graceful degradation, not a divergence.
        match Fastlive::builder()
            .persist_dir(&dir)
            .vfs(Arc::new(FaultVfs::new(rules)))
            .build()
        {
            Ok(faulty) => {
                stats.cases += 1;
                stats.queries += mix.len();
                let divs = check_module(&faulty, &module, &mix);
                if !divs.is_empty() {
                    stats.divergences += divs.len();
                    ctx.report("persist", &module, &divs);
                }
            }
            Err(_) => stats.skipped += 1,
        }
        // Phase 2: reopen the same persist dir on a healthy disk — the
        // round-trip through whatever survived must still agree.
        match Fastlive::builder().persist_dir(&dir).build() {
            Ok(healthy) => {
                stats.cases += 1;
                stats.queries += mix.len();
                let divs = check_module(&healthy, &module, &mix);
                if !divs.is_empty() {
                    stats.divergences += divs.len();
                    ctx.report("persist", &module, &divs);
                }
            }
            Err(_) => {
                if !c.expect_persistent_failure {
                    stats.skipped += 1;
                }
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
    ctx.measure("persist", &cover);
    stats
}

/// One fuzz input for the parser arm: raw bytes, token soup, or a
/// mutation of valid module text.
fn parser_input(rng: &mut SplitMix64, valid: &str) -> String {
    const VOCAB: &[&str] = &[
        "func",
        "%",
        "v0",
        "v1",
        "v9999999999",
        "block0",
        "block1",
        ":",
        "=",
        "(",
        ")",
        ",",
        "{",
        "}",
        "iconst",
        "copy",
        "iadd",
        "icmp_slt",
        "brif",
        "jump",
        "return",
        "->",
        "\"",
        "\\",
        "0",
        "1",
        "-9223372036854775808",
        " ",
        "\n",
        "\t",
        ";",
        "#",
    ];
    match rng.index(3) {
        0 => {
            let len = rng.index(200);
            (0..len)
                .map(|_| {
                    if rng.chance(85) {
                        (0x20 + rng.index(0x5f) as u8) as char
                    } else {
                        char::from_u32(rng.next_u64() as u32 % 0xd7ff).unwrap_or('\u{fffd}')
                    }
                })
                .collect()
        }
        1 => {
            let len = rng.index(80);
            let mut out = String::new();
            for _ in 0..len {
                out.push_str(rng.pick::<&str>(VOCAB));
                if rng.chance(40) {
                    out.push(' ');
                }
            }
            out
        }
        _ => {
            let mut bytes = valid.as_bytes().to_vec();
            if bytes.is_empty() {
                return String::new();
            }
            match rng.index(3) {
                0 => bytes.truncate(rng.index(bytes.len())),
                1 => {
                    let i = rng.index(bytes.len());
                    bytes[i] = (0x20 + rng.index(0x5f)) as u8;
                }
                _ => {
                    let i = rng.index(bytes.len());
                    let j = i + rng.index(bytes.len() - i);
                    let splice = bytes[i..j].to_vec();
                    let at = rng.index(bytes.len());
                    bytes.splice(at..at, splice);
                }
            }
            String::from_utf8_lossy(&bytes).into_owned()
        }
    }
}

fn arm_parser(ctx: &mut Ctx) -> ArmStats {
    let mut stats = new_stats("parser");
    let mut cover = Vec::new();
    let mut rng = SplitMix64::new(ctx.cfg.seed ^ 0xbabb1e);
    let inputs = if ctx.cfg.quick { 300 } else { 2_000 };
    let valid = module_text(&generate_module(
        "seedtext",
        ModuleParams {
            functions: 2,
            max_blocks: 12,
            ..ModuleParams::default()
        },
        ctx.cfg.seed,
    ));
    // The parser must be total; a panic here is a finding, and the
    // default hook's backtrace spam would bury the report.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    for _ in 0..inputs {
        let input = parser_input(&mut rng, &valid);
        stats.cases += 1;
        match catch_unwind(AssertUnwindSafe(|| parse_module(&input))) {
            Ok(Ok(module)) => {
                // Accepted inputs must round-trip to a fixpoint.
                let printed = module_text(&module);
                match parse_module(&printed) {
                    Ok(again) if module_text(&again) == printed => {
                        measure_module(&mut cover, &module);
                    }
                    _ => {
                        stats.divergences += 1;
                        ctx.findings.push(Finding {
                            arm: "parser",
                            detail: "accepted input failed print→parse fixpoint".into(),
                            reproducer: input,
                        });
                    }
                }
            }
            Ok(Err(_)) => {}
            Err(_) => {
                stats.divergences += 1;
                ctx.findings.push(Finding {
                    arm: "parser",
                    detail: "parse_module panicked".into(),
                    reproducer: input,
                });
            }
        }
    }
    std::panic::set_hook(prev_hook);
    ctx.measure("parser", &cover);
    stats
}

fn arm_roundtrip(ctx: &mut Ctx) -> ArmStats {
    let mut stats = new_stats("roundtrip");
    let mut cover = Vec::new();
    let modules = if ctx.cfg.quick { 6 } else { 20 };
    for i in 0..modules {
        let module = generate_module(
            &format!("rt{i}"),
            ModuleParams {
                functions: 4,
                max_blocks: 20,
                irreducible_per_mille: 300,
                ..ModuleParams::default()
            },
            ctx.cfg.seed ^ (0x77 + i as u64),
        );
        stats.cases += 1;
        // The documented contract (tests/parser_roundtrip.rs): the
        // first print∘parse *normalizes* entity numbering; from then
        // on printing must be a fixed point.
        let printed = module_text(&module);
        let reparsed = match parse_module(&printed) {
            Ok(m) => m,
            Err(e) => {
                stats.divergences += 1;
                ctx.findings.push(Finding {
                    arm: "roundtrip",
                    detail: format!("printed module failed to re-parse: {e}"),
                    reproducer: printed,
                });
                continue;
            }
        };
        let normalized = module_text(&reparsed);
        match parse_module(&normalized) {
            Ok(again) if module_text(&again) == normalized => {}
            _ => {
                stats.divergences += 1;
                ctx.findings.push(Finding {
                    arm: "roundtrip",
                    detail: "normalized print→parse→print is not a fixpoint".into(),
                    reproducer: normalized,
                });
                continue;
            }
        }
        measure_module(&mut cover, &reparsed);
        // The reparsed module must satisfy the differential invariant
        // with the same answers its origin gives.
        ctx.check("roundtrip", &mut stats, &reparsed, 4);
    }
    ctx.measure("roundtrip", &cover);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The CI gate in miniature: a tiny deterministic campaign over a
    /// healthy workspace finds nothing.
    #[test]
    fn quick_campaign_is_clean() {
        let report = run_campaign(CampaignConfig {
            seed: 9,
            quick: true,
        });
        assert_eq!(report.arms.len(), 9);
        for arm in &report.arms {
            assert!(arm.cases > 0, "arm {} ran no cases", arm.name);
            assert_eq!(
                arm.divergences,
                0,
                "arm {} diverged: {:?}",
                arm.name,
                report
                    .findings
                    .iter()
                    .map(|f| &f.detail)
                    .collect::<Vec<_>>()
            );
        }
        assert!(report.findings.is_empty());
        assert_eq!(report.coverage.len(), 9);
    }
}
