//! The differential fuzz campaign entry point.
//!
//! ```text
//! fastlive-fuzz [--quick] [--seed N] [--out PATH]   # the campaign
//! fastlive-fuzz --broken [--seed N]                 # shrinker self-test
//! ```
//!
//! The campaign runs nine adversarial arms (see `arms`), prints one
//! line per arm, writes `BENCH_fuzz.json`, and exits non-zero if any
//! divergence or panic survived. `--broken` swaps in the deliberately
//! wrong [`BrokenDirect`] backend and demands the opposite: the
//! harness must *catch* it, and the shrinker must minimize a
//! 200-block failing case to a reproducer of at most 10 blocks.

use std::process::ExitCode;

use fastlive::{Fastlive, Query};
use fastlive_construct::construct_ssa;
use fastlive_ir::{Block, Module, Value};
use fastlive_workload::{generate_pre, GenParams, SplitMix64};

use fastlive_fuzz::arms::{run_campaign, CampaignConfig, CampaignReport};
use fastlive_fuzz::diff::check_against_oracle;
use fastlive_fuzz::shrink::shrink;
use fastlive_fuzz::BrokenDirect;

struct Args {
    quick: bool,
    seed: u64,
    broken: bool,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        quick: false,
        seed: 9,
        broken: false,
        out: "BENCH_fuzz.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => args.quick = true,
            "--broken" => args.broken = true,
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                args.seed = v.parse().map_err(|_| format!("bad seed `{v}`"))?;
            }
            "--out" => args.out = it.next().ok_or("--out needs a path")?,
            "--help" | "-h" => {
                return Err(
                    "usage: fastlive-fuzz [--quick] [--seed N] [--out PATH] [--broken]".to_string(),
                )
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn write_report(path: &str, args: &Args, report: &CampaignReport) -> std::io::Result<()> {
    use std::fmt::Write as _;
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"bench\": \"fuzz\",");
    let _ = writeln!(
        j,
        "  \"mode\": \"{}\",",
        if args.quick { "quick" } else { "full" }
    );
    let _ = writeln!(j, "  \"seed\": {},", args.seed);
    let _ = writeln!(j, "  \"arms\": [");
    for (i, a) in report.arms.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{\"name\": \"{}\", \"cases\": {}, \"queries\": {}, \"divergences\": {}, \"skipped\": {}}}{}",
            a.name, a.cases, a.queries, a.divergences, a.skipped,
            if i + 1 < report.arms.len() { "," } else { "" }
        );
    }
    let _ = writeln!(j, "  ],");
    let _ = writeln!(j, "  \"coverage\": [");
    for (i, c) in report.coverage.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{\"name\": \"{}\", \"procedures\": {}, \"sum_blocks\": {}, \"avg_blocks\": {:.2}, \"max_blocks\": {}, \"total_edges\": {}, \"total_back_edges\": {}, \"irreducible_back_edges\": {}, \"irreducible_functions\": {}, \"total_values\": {}}}{}",
            json_escape(&c.name), c.procedures, c.sum_blocks, c.avg_blocks, c.max_blocks,
            c.total_edges, c.total_back_edges, c.irreducible_back_edges,
            c.irreducible_functions, c.total_values,
            if i + 1 < report.coverage.len() { "," } else { "" }
        );
    }
    let _ = writeln!(j, "  ],");
    let _ = writeln!(j, "  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{\"arm\": \"{}\", \"detail\": \"{}\"}}{}",
            f.arm,
            json_escape(&f.detail),
            if i + 1 < report.findings.len() {
                ","
            } else {
                ""
            }
        );
    }
    let _ = writeln!(j, "  ],");
    let cases: usize = report.arms.iter().map(|a| a.cases).sum();
    let queries: usize = report.arms.iter().map(|a| a.queries).sum();
    let _ = writeln!(
        j,
        "  \"totals\": {{\"cases\": {}, \"queries\": {}, \"divergences\": {}, \"findings\": {}}}",
        cases,
        queries,
        report.total_divergences(),
        report.findings.len()
    );
    let _ = writeln!(j, "}}");
    std::fs::write(path, j)
}

fn run_fuzz(args: &Args) -> ExitCode {
    eprintln!(
        "fastlive-fuzz: campaign seed={} mode={}",
        args.seed,
        if args.quick { "quick" } else { "full" }
    );
    let report = run_campaign(CampaignConfig {
        seed: args.seed,
        quick: args.quick,
    });
    for (arm, cov) in report.arms.iter().zip(report.coverage.iter()) {
        println!(
            "arm {}: {} cases, {} probes, {} divergences, {} skipped | coverage: {} fns, {} blocks (max {}), {} irreducible fns",
            arm.name, arm.cases, arm.queries, arm.divergences, arm.skipped,
            cov.procedures, cov.sum_blocks, cov.max_blocks, cov.irreducible_functions
        );
    }
    for f in &report.findings {
        println!("\nFINDING [{}] {}", f.arm, f.detail);
        println!("reproducer:\n{}", f.reproducer);
    }
    if let Err(e) = write_report(&args.out, args, &report) {
        eprintln!("fastlive-fuzz: cannot write {}: {e}", args.out);
        return ExitCode::from(2);
    }
    println!(
        "\ntotal: {} divergences, {} findings -> {}",
        report.total_divergences(),
        report.findings.len(),
        args.out
    );
    if report.findings.is_empty() && report.total_divergences() == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Probe set for the self-test predicate: exhaustive `LiveIn` pairs on
/// small candidates (so shrinking never stalls for lack of probes), a
/// seeded sample on large ones.
fn broken_probes(module: &Module, seed: u64) -> Vec<Query> {
    let mut queries = Vec::new();
    for (id, func) in module.iter() {
        let nv = func.num_values();
        let nb = func.num_blocks();
        if nv.saturating_mul(nb) <= 4_000 {
            for v in 0..nv {
                for b in 0..nb {
                    queries.push(Query::live_in(
                        id,
                        Value::from_index(v),
                        Block::from_index(b),
                    ));
                }
            }
        } else {
            let mut rng = SplitMix64::new(seed ^ id as u64);
            for _ in 0..600 {
                queries.push(Query::live_in(
                    id,
                    Value::from_index(rng.index(nv)),
                    Block::from_index(rng.index(nb)),
                ));
            }
        }
    }
    queries
}

/// The self-test: a deliberately wrong backend must be caught, and the
/// shrinker must take a 200-block failure to a ≤ 10-block reproducer
/// that still fails deterministically after re-parsing.
fn run_broken(args: &Args) -> ExitCode {
    eprintln!("fastlive-fuzz: shrinker self-test seed={}", args.seed);
    let pre = generate_pre(
        "broken_selftest",
        GenParams {
            target_blocks: 200,
            deep_live_percent: 60,
            ..GenParams::default()
        },
        args.seed,
    );
    let func = construct_ssa(&pre).expect("generator output is constructible");
    let blocks_before = func.num_blocks();
    let mut module = Module::new();
    module.push(func);

    let fl = Fastlive::builder().build().expect("default build");
    let seed = args.seed;
    let mut predicate = |m: &Module| {
        let queries = broken_probes(m, seed);
        let mut broken = BrokenDirect::new();
        check_against_oracle(&fl, &mut broken, m, &queries)
            .into_iter()
            .next()
    };

    let Some(out) = shrink(&module, &mut predicate, 6_000) else {
        println!("broken backend was NOT caught on a {blocks_before}-block case");
        return ExitCode::FAILURE;
    };
    println!(
        "caught and shrank: {} blocks -> {} blocks in {} predicate calls",
        out.blocks_before, out.blocks_after, out.predicate_calls
    );
    println!("diverging query: {}", out.divergence.render());
    println!("reproducer:\n{}", out.text);

    let mut ok = true;
    if out.blocks_after > 10 {
        println!("FAIL: reproducer has {} blocks (> 10)", out.blocks_after);
        ok = false;
    }
    // Determinism: the reproducer must re-parse and still fail.
    let reparsed = out.reparse();
    if predicate(&reparsed).is_none() {
        println!("FAIL: re-parsed reproducer no longer fails");
        ok = false;
    }
    let path = std::env::temp_dir().join("fuzz-repro-broken.fl");
    if std::fs::write(&path, &out.text).is_ok() {
        println!("reproducer written to {}", path.display());
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if args.broken {
        run_broken(&args)
    } else {
        run_fuzz(&args)
    }
}
