//! The minimizing shrinker: greedy delta debugging over the case IR.
//!
//! Given a module that fails a predicate (a backend divergence, a
//! panic, a round-trip mismatch — the predicate is opaque), the
//! shrinker repeatedly tries structurally smaller candidates and keeps
//! any that *still fail*: drop whole functions, drop blocks (edges
//! into a dropped block are rerouted, its definitions substituted by
//! an entry-block constant), drop edges (`brif` → `jump`), drop
//! instructions, drop block parameters — and finally
//! rename-canonicalize, which falls out of the case IR for free: every
//! candidate is *printed and re-parsed*, so the survivor comes back
//! with dense value numbering and is a self-contained `.fl`
//! reproducer.
//!
//! Candidates that no longer parse or no longer satisfy strict SSA are
//! rejected before the predicate ever runs: a reproducer for a
//! liveness divergence must itself be a valid strict-SSA program, or
//! it reproduces nothing.

use std::collections::HashSet;

use fastlive_ir::Module;

use crate::case::{module_of_cases, CaseFunc, CaseOp, CaseTerm};
use crate::diff::Divergence;

/// The failure predicate: `Some(divergence)` when the module still
/// exhibits the failure being minimized.
pub type Predicate<'a> = &'a mut dyn FnMut(&Module) -> Option<Divergence>;

/// A finished shrink run.
#[derive(Clone, Debug)]
pub struct ShrinkOutcome {
    /// The minimized module, re-parsed from its own text.
    pub text: String,
    /// The diverging query and answers on the *minimized* module.
    pub divergence: Divergence,
    /// Block count across all functions before shrinking.
    pub blocks_before: usize,
    /// Block count after.
    pub blocks_after: usize,
    /// Predicate evaluations spent.
    pub predicate_calls: usize,
}

impl ShrinkOutcome {
    /// The minimized module, parsed back from the emitted text (a
    /// self-check that the reproducer is self-contained).
    pub fn reparse(&self) -> Module {
        fastlive_ir::parse_module(&self.text).expect("shrunk reproducer re-parses")
    }
}

struct Shrinker<'a, 'b> {
    predicate: &'a mut (dyn FnMut(&Module) -> Option<Divergence> + 'b),
    calls: usize,
    budget: usize,
    best: Vec<CaseFunc>,
    witness: Divergence,
}

impl Shrinker<'_, '_> {
    /// Accepts `candidate` iff it still parses, verifies and fails.
    fn attempt(&mut self, candidate: Vec<CaseFunc>) -> bool {
        if self.calls >= self.budget {
            return false;
        }
        let Ok(module) = module_of_cases(&candidate) else {
            return false;
        };
        self.calls += 1;
        match (self.predicate)(&module) {
            Some(w) => {
                self.best = candidate;
                self.witness = w;
                true
            }
            None => false,
        }
    }
}

/// Shrinks `module` against `predicate`, spending at most `budget`
/// predicate evaluations. Returns `None` when the initial module does
/// not fail the predicate (nothing to shrink).
pub fn shrink(module: &Module, predicate: Predicate<'_>, budget: usize) -> Option<ShrinkOutcome> {
    let witness = predicate(module)?;
    let blocks_before: usize = module.functions().iter().map(|f| f.num_blocks()).sum();
    let best: Vec<CaseFunc> = module
        .functions()
        .iter()
        .map(CaseFunc::from_function)
        .collect();
    let mut sh = Shrinker {
        predicate,
        calls: 1,
        budget: budget.max(2),
        best,
        witness,
    };

    let mut progress = true;
    while progress && sh.calls < sh.budget {
        progress = false;
        progress |= pass_drop_functions(&mut sh);
        for pass in [
            pass_drop_blocks,
            pass_drop_edges,
            pass_drop_insts,
            pass_drop_params,
        ] {
            while pass(&mut sh) {
                progress = true;
                if sh.calls >= sh.budget {
                    break;
                }
            }
        }
    }

    let module = module_of_cases(&sh.best).expect("accepted candidate parses");
    Some(ShrinkOutcome {
        text: crate::diff::module_text(&module),
        divergence: sh.witness.clone(),
        blocks_before,
        blocks_after: module.functions().iter().map(|f| f.num_blocks()).sum(),
        predicate_calls: sh.calls,
    })
}

fn pass_drop_functions(sh: &mut Shrinker<'_, '_>) -> bool {
    let mut progress = false;
    let mut fi = 0;
    while sh.best.len() > 1 && fi < sh.best.len() {
        let mut candidate = sh.best.clone();
        candidate.remove(fi);
        if sh.attempt(candidate) {
            progress = true; // same index now names the next function
        } else {
            fi += 1;
        }
    }
    progress
}

fn pass_drop_blocks(sh: &mut Shrinker<'_, '_>) -> bool {
    for fi in 0..sh.best.len() {
        for b in (1..sh.best[fi].blocks.len()).rev() {
            let mut candidate = sh.best.clone();
            drop_block(&mut candidate[fi], b);
            if sh.attempt(candidate) {
                return true;
            }
        }
    }
    false
}

/// Removes block `b` (never the entry): edges into it are rerouted
/// (`jump b` becomes `return`, `brif` collapses onto its surviving
/// arm), outside uses of its definitions are substituted by a fresh
/// `iconst 0` at the top of the entry block, and orphans are pruned.
fn drop_block(case: &mut CaseFunc, b: usize) {
    debug_assert!(b != 0);
    let dropped: HashSet<u32> = case.defs_of(b).into_iter().collect();
    for i in 0..case.blocks.len() {
        if i == b {
            continue;
        }
        let term = &mut case.blocks[i].term;
        match term {
            CaseTerm::Jump(d) if d.block == b => *term = CaseTerm::Return(Vec::new()),
            CaseTerm::Brif(_, t, e) => match (t.block == b, e.block == b) {
                (true, true) => *term = CaseTerm::Return(Vec::new()),
                (true, false) => *term = CaseTerm::Jump(e.clone()),
                (false, true) => *term = CaseTerm::Jump(t.clone()),
                (false, false) => {}
            },
            _ => {}
        }
    }
    substitute_uses(case, &dropped, Some(b));
    case.blocks.remove(b);
    for block in &mut case.blocks {
        for call in block.term.targets_mut() {
            if call.block > b {
                call.block -= 1;
            }
        }
    }
    case.prune_unreachable();
}

/// Replaces every use of `dead` values (outside `skip_block`, if any)
/// with a fresh `iconst 0` prepended to the entry — the entry
/// dominates everything, so the substitution can never break strict
/// SSA. The constant is only materialized if a use actually remains.
fn substitute_uses(case: &mut CaseFunc, dead: &HashSet<u32>, skip_block: Option<usize>) {
    let mut used = false;
    for (i, block) in case.blocks.iter().enumerate() {
        if Some(i) == skip_block {
            continue;
        }
        for (_, op) in &block.insts {
            match op {
                CaseOp::Iconst(_) => {}
                CaseOp::Unary(_, a) => used |= dead.contains(a),
                CaseOp::Binary(_, a, b) => used |= dead.contains(a) || dead.contains(b),
            }
        }
        match &block.term {
            CaseTerm::Jump(d) => used |= d.args.iter().any(|a| dead.contains(a)),
            CaseTerm::Brif(c, t, e) => {
                used |= dead.contains(c)
                    || t.args.iter().any(|a| dead.contains(a))
                    || e.args.iter().any(|a| dead.contains(a));
            }
            CaseTerm::Return(args) => used |= args.iter().any(|a| dead.contains(a)),
        }
    }
    if !used {
        return;
    }
    let sub = case.fresh_value();
    case.blocks[0].insts.insert(0, (sub, CaseOp::Iconst(0)));
    case.map_uses(|v| if dead.contains(&v) { sub } else { v });
}

fn pass_drop_edges(sh: &mut Shrinker<'_, '_>) -> bool {
    for fi in 0..sh.best.len() {
        for b in 0..sh.best[fi].blocks.len() {
            let CaseTerm::Brif(_, then_call, else_call) = sh.best[fi].blocks[b].term.clone() else {
                continue;
            };
            for keep in [then_call, else_call] {
                let mut candidate = sh.best.clone();
                candidate[fi].blocks[b].term = CaseTerm::Jump(keep);
                candidate[fi].prune_unreachable();
                if sh.attempt(candidate) {
                    return true;
                }
            }
        }
    }
    false
}

fn pass_drop_insts(sh: &mut Shrinker<'_, '_>) -> bool {
    for fi in 0..sh.best.len() {
        for b in 0..sh.best[fi].blocks.len() {
            for i in (0..sh.best[fi].blocks[b].insts.len()).rev() {
                let mut candidate = sh.best.clone();
                let (r, _) = candidate[fi].blocks[b].insts.remove(i);
                let dead: HashSet<u32> = [r].into_iter().collect();
                substitute_uses(&mut candidate[fi], &dead, None);
                if sh.attempt(candidate) {
                    return true;
                }
            }
        }
    }
    false
}

fn pass_drop_params(sh: &mut Shrinker<'_, '_>) -> bool {
    for fi in 0..sh.best.len() {
        for b in 0..sh.best[fi].blocks.len() {
            for j in (0..sh.best[fi].blocks[b].params.len()).rev() {
                let mut candidate = sh.best.clone();
                let p = candidate[fi].blocks[b].params.remove(j);
                // Peel the matching argument off every edge into `b`.
                for i in 0..candidate[fi].blocks.len() {
                    for call in candidate[fi].blocks[i].term.targets_mut() {
                        if call.block == b && j < call.args.len() {
                            call.args.remove(j);
                        }
                    }
                }
                let dead: HashSet<u32> = [p].into_iter().collect();
                substitute_uses(&mut candidate[fi], &dead, None);
                if sh.attempt(candidate) {
                    return true;
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastlive_workload::{generate_module, ModuleParams};

    /// An always-failing predicate is the shrinker's floor: every pass
    /// fires, and the survivor must be the smallest representable
    /// module — one function, one returning block.
    #[test]
    fn always_failing_predicate_shrinks_to_the_floor() {
        let module = generate_module(
            "sh",
            ModuleParams {
                functions: 3,
                min_blocks: 6,
                max_blocks: 14,
                deep_live_per_mille: 400,
                ..ModuleParams::default()
            },
            77,
        );
        let mut predicate = |_: &Module| {
            Some(Divergence {
                query: fastlive::Query::live_sets(0usize),
                answers: vec![("structural".into(), "always fails".into())],
            })
        };
        let out = shrink(&module, &mut predicate, 4_000).expect("initial module fails");
        assert_eq!(out.reparse().len(), 1, "shrunk to a single function");
        assert_eq!(
            out.blocks_after, 1,
            "expected the one-block floor, got {}:\n{}",
            out.blocks_after, out.text
        );
        assert!(out.blocks_after < out.blocks_before);
    }

    #[test]
    fn non_failing_module_is_not_shrunk() {
        let module = generate_module(
            "ok",
            ModuleParams {
                functions: 1,
                max_blocks: 6,
                ..ModuleParams::default()
            },
            5,
        );
        assert!(shrink(&module, &mut |_| None, 100).is_none());
    }
}
