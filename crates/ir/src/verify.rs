//! Structural verification of functions.
//!
//! [`verify_structure`] checks everything that can be checked without a
//! dominator tree: block/terminator shape, operand existence, branch
//! argument arity, def-use chain consistency, and reachability of an
//! entry block. The *dominance property* of strict SSA (every use
//! dominated by its definition — the paper's §2.2 prerequisite) needs a
//! dominator tree and therefore lives upstack in
//! `fastlive_core::verify_strict_ssa`.

use std::fmt;

use fastlive_graph::Cfg as _;

use crate::entities::Block;
use crate::function::Function;

/// A structural defect found by [`verify_structure`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyError {
    /// Offending block, when attributable.
    pub block: Option<Block>,
    /// Description of the defect.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.block {
            Some(b) => write!(f, "{b}: {}", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Checks the structural invariants of `func`.
///
/// # Errors
///
/// Returns the first defect found:
/// * no blocks / empty blocks / missing or misplaced terminators,
/// * branch argument count differing from the target's parameter count,
/// * inconsistent def-use chains (should be impossible via the public
///   API; guards against internal bugs),
/// * CFG successor/predecessor tables that disagree with terminators.
///
/// # Examples
///
/// ```
/// use fastlive_ir::{parse_function, verify_structure};
///
/// let f = parse_function("function %ok { block0: return }")?;
/// verify_structure(&f)?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn verify_structure(func: &Function) -> Result<(), VerifyError> {
    if func.num_blocks() == 0 {
        return Err(VerifyError {
            block: None,
            message: "function has no blocks".into(),
        });
    }
    for block in func.blocks() {
        let insts = func.block_insts(block);
        if insts.is_empty() {
            return Err(VerifyError {
                block: Some(block),
                message: "block is empty".into(),
            });
        }
        for (i, &inst) in insts.iter().enumerate() {
            let data = func.inst_data(inst);
            let last = i + 1 == insts.len();
            if last != data.is_terminator() {
                return Err(VerifyError {
                    block: Some(block),
                    message: if last {
                        format!("last instruction {inst} is not a terminator")
                    } else {
                        format!("terminator {inst} in the middle of the block")
                    },
                });
            }
            if func.inst_block(inst) != Some(block) {
                return Err(VerifyError {
                    block: Some(block),
                    message: format!("{inst} does not know it lives in {block}"),
                });
            }
            // Branch argument arity.
            for call in data.branch_targets() {
                let want = func.block_params(call.block).len();
                if call.args.len() != want {
                    return Err(VerifyError {
                        block: Some(block),
                        message: format!(
                            "branch to {} passes {} args, parameters expect {want}",
                            call.block,
                            call.args.len()
                        ),
                    });
                }
            }
        }
    }

    // CFG tables must mirror the terminators exactly (with multiplicity).
    for block in func.blocks() {
        let mut expect: Vec<u32> = Vec::new();
        if let Some(t) = func.terminator(block) {
            for c in func.inst_data(t).branch_targets() {
                expect.push(c.block.as_u32());
            }
        }
        let mut got = func.succs(block.as_u32()).to_vec();
        expect.sort_unstable();
        got.sort_unstable();
        if expect != got {
            return Err(VerifyError {
                block: Some(block),
                message: format!("successor table {got:?} disagrees with terminator {expect:?}"),
            });
        }
    }

    func.check_use_chains().map_err(|message| VerifyError {
        block: None,
        message,
    })?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{BlockCall, InstData};
    use crate::parser::parse_function;

    #[test]
    fn accepts_well_formed_functions() {
        let f = parse_function(
            "function %f { block0(v0):
                v1 = iconst 3
                brif v0, block1(v1), block2
            block1(v2):
                jump block2
            block2:
                return }",
        )
        .unwrap();
        verify_structure(&f).expect("valid");
    }

    #[test]
    fn rejects_empty_function() {
        let f = Function::new("empty");
        let e = verify_structure(&f).unwrap_err();
        assert!(e.message.contains("no blocks"));
    }

    #[test]
    fn rejects_unterminated_block() {
        let mut f = Function::new("f");
        let b = f.add_block();
        f.ins(b).iconst(1);
        let e = verify_structure(&f).unwrap_err();
        assert!(e.to_string().contains("not a terminator"), "{e}");
        assert_eq!(e.block, Some(b));
    }

    #[test]
    fn rejects_empty_block() {
        let mut f = Function::new("f");
        let b0 = f.add_block();
        f.add_block(); // never filled
        f.ins(b0).ret(vec![]);
        let e = verify_structure(&f).unwrap_err();
        assert!(e.message.contains("empty"));
    }

    #[test]
    fn rejects_branch_arity_mismatch() {
        let mut f = Function::new("f");
        let b0 = f.add_block();
        let b1 = f.add_block();
        // block1 takes one param but jump passes none.
        f.append_inst(
            b0,
            InstData::Jump {
                dest: BlockCall::no_args(b1),
            },
        );
        f.append_block_param(b1);
        f.ins(b1).ret(vec![]);
        let e = verify_structure(&f).unwrap_err();
        assert!(e.message.contains("passes 0 args"), "{e}");
    }
}
