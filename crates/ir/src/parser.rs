//! A parser for the textual IR format produced by the printer.
//!
//! The grammar (whitespace-insensitive, `;` starts a line comment):
//!
//! ```text
//! module    ::= function+
//! function  ::= "function" "%" NAME [paramlist] "{" block* "}"
//! NAME      ::= IDENT | STRING
//! block     ::= BLOCKREF [paramlist] ":" inst*
//! paramlist ::= "(" [VALUEREF ("," VALUEREF)*] ")"
//! inst      ::= VALUEREF "=" op | terminator
//! op        ::= "iconst" INT | UNOP VALUEREF | BINOP VALUEREF "," VALUEREF
//! terminator::= "jump" call | "brif" VALUEREF "," call "," call
//!             | "return" [VALUEREF ("," VALUEREF)*]
//! call      ::= BLOCKREF [arglist]
//! ```
//!
//! Function names that are not bare identifiers are written as quoted
//! strings (`function %"odd name!" { ... }`) with `\"`, `\\`, `\n`,
//! `\t`, `\r` and `\u{hex}` escapes — the printer quotes exactly when
//! needed, so `parse(display(f))` holds for every name.
//!
//! Source names (`v7`, `block3`) are arbitrary non-negative numbers; they
//! are mapped to freshly numbered entities in order of textual
//! definition, independently per function. Both blocks *and values* may
//! be referenced before their definition: a pre-pass registers every
//! definition site (block headers, block parameters, `vN =` results),
//! so a printed function whose layout order differs from dominance
//! order still re-parses. Using a value with no definition anywhere in
//! the function is an error.
//!
//! [`parse_function`] accepts exactly one `function` unit;
//! [`parse_module`] accepts one or more and returns a
//! [`Module`](crate::Module).

use std::collections::HashMap;
use std::fmt;

use crate::entities::{Block, Value};
use crate::function::Function;
use crate::instr::{BinaryOp, BlockCall, InstData, UnaryOp};
use crate::module::Module;

/// A parse error with 1-based line/column and a message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending token.
    pub line: usize,
    /// 1-based column of the offending token.
    pub col: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses one function from `src`.
///
/// # Errors
///
/// Returns a [`ParseError`] (with position) for syntax errors, undefined
/// or redefined values, branches to undeclared blocks, or trailing input.
///
/// # Examples
///
/// ```
/// use fastlive_ir::parse_function;
///
/// let f = parse_function(
///     "function %f { block0(v0): v1 = iadd v0, v0  return v1 }",
/// )?;
/// assert_eq!(f.name, "f");
/// assert_eq!(f.num_blocks(), 1);
/// # Ok::<(), fastlive_ir::ParseError>(())
/// ```
pub fn parse_function(src: &str) -> Result<Function, ParseError> {
    Parser::new(src)?.parse()
}

/// Parses a whole [`Module`]: one or more `function` units in one
/// source. Function names must be distinct; entity numbering restarts
/// per function, so each unit is exactly what [`parse_function`] would
/// accept on its own.
///
/// # Errors
///
/// Returns a [`ParseError`] for any per-function syntax error, for an
/// empty source, and for duplicate function names.
///
/// # Examples
///
/// ```
/// use fastlive_ir::parse_module;
///
/// let m = parse_module(
///     "function %a { block0: return }
///      function %b { block0(v0): return v0 }",
/// )?;
/// assert_eq!(m.len(), 2);
/// assert_eq!(m.func(m.by_name("b").unwrap()).params().len(), 1);
/// # Ok::<(), fastlive_ir::ParseError>(())
/// ```
pub fn parse_module(src: &str) -> Result<Module, ParseError> {
    let mut parser = Parser::new(src)?;
    let mut module = Module::new();
    if parser.tok == Tok::Eof {
        return Err(parser.err("empty module: expected at least one `function`"));
    }
    while parser.tok != Tok::Eof {
        let (line, col) = (parser.line, parser.col);
        let func = parser.parse_unit()?;
        if module.by_name(&func.name).is_some() {
            return Err(ParseError {
                line,
                col,
                message: format!("function %{} defined twice", func.name),
            });
        }
        module.push(func);
    }
    Ok(module)
}

// ------------------------------------------------------------- lexer

#[derive(Clone, Debug, PartialEq, Eq)]
enum Tok {
    Ident(String), // iadd, function, v3, block0, ...
    Str(String),   // "quoted function name"
    Int(i64),      // possibly negative
    Percent,
    LBrace,
    RBrace,
    LParen,
    RParen,
    Comma,
    Colon,
    Eq,
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Str(s) => write!(f, "`\"{s}\"`"),
            Tok::Int(i) => write!(f, "`{i}`"),
            Tok::Percent => write!(f, "`%`"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Colon => write!(f, "`:`"),
            Tok::Eq => write!(f, "`=`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            chars: src.chars().peekable(),
            line: 1,
            col: 1,
        }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn next_token(&mut self) -> Result<(Tok, usize, usize), ParseError> {
        loop {
            // Skip whitespace and comments.
            match self.chars.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some(';') => {
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                _ => break,
            }
        }
        let (line, col) = (self.line, self.col);
        let Some(&c) = self.chars.peek() else {
            return Ok((Tok::Eof, line, col));
        };
        let tok = match c {
            '%' => {
                self.bump();
                Tok::Percent
            }
            '{' => {
                self.bump();
                Tok::LBrace
            }
            '}' => {
                self.bump();
                Tok::RBrace
            }
            '(' => {
                self.bump();
                Tok::LParen
            }
            ')' => {
                self.bump();
                Tok::RParen
            }
            ',' => {
                self.bump();
                Tok::Comma
            }
            ':' => {
                self.bump();
                Tok::Colon
            }
            '=' => {
                self.bump();
                Tok::Eq
            }
            '"' => {
                self.bump();
                self.string_literal(line, col)?
            }
            '-' | '0'..='9' => {
                let mut s = String::new();
                s.push(self.bump().expect("peeked"));
                while let Some(&d) = self.chars.peek() {
                    if d.is_ascii_digit() {
                        s.push(self.bump().expect("peeked"));
                    } else {
                        break;
                    }
                }
                let value = s.parse::<i64>().map_err(|_| ParseError {
                    line,
                    col,
                    message: format!("invalid integer literal `{s}`"),
                })?;
                Tok::Int(value)
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&d) = self.chars.peek() {
                    if d.is_ascii_alphanumeric() || d == '_' || d == '.' {
                        s.push(self.bump().expect("peeked"));
                    } else {
                        break;
                    }
                }
                Tok::Ident(s)
            }
            other => {
                return Err(ParseError {
                    line,
                    col,
                    message: format!("unexpected character `{other}`"),
                })
            }
        };
        Ok((tok, line, col))
    }

    /// Lexes the body of a quoted string; the opening `"` is consumed.
    /// Total over arbitrary input: an unterminated literal or a bad
    /// escape is a [`ParseError`], never a panic or a hang.
    fn string_literal(&mut self, line: usize, col: usize) -> Result<Tok, ParseError> {
        let fail = |message: String| ParseError { line, col, message };
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(fail("unterminated string literal".into())),
                Some('"') => break,
                Some('\\') => match self.bump() {
                    Some('"') => s.push('"'),
                    Some('\\') => s.push('\\'),
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    Some('r') => s.push('\r'),
                    Some('u') => {
                        if self.bump() != Some('{') {
                            return Err(fail("expected `{` after `\\u`".into()));
                        }
                        let mut hex = String::new();
                        loop {
                            match self.bump() {
                                Some('}') => break,
                                Some(c) if c.is_ascii_hexdigit() && hex.len() < 6 => hex.push(c),
                                _ => return Err(fail("malformed `\\u{...}` escape".into())),
                            }
                        }
                        let cp = u32::from_str_radix(&hex, 16)
                            .map_err(|_| fail("empty `\\u{}` escape".into()))?;
                        s.push(
                            char::from_u32(cp).ok_or_else(|| {
                                fail(format!("`\\u{{{hex}}}` is not a character"))
                            })?,
                        );
                    }
                    other => {
                        let shown = other.map_or("end of input".into(), |c| format!("`\\{c}`"));
                        return Err(fail(format!("invalid escape {shown}")));
                    }
                },
                Some(c) => s.push(c),
            }
        }
        Ok(Tok::Str(s))
    }
}

// ------------------------------------------------------------ parser

struct Parser {
    /// The whole source, pre-lexed (the last entry is always `Eof`).
    toks: Vec<(Tok, usize, usize)>,
    /// Index of the current token within `toks`.
    pos: usize,
    tok: Tok,
    line: usize,
    col: usize,
    /// Source block number -> entity, for the function being parsed.
    /// Headers are pre-registered in definition order so that block
    /// numbering is stable under print/parse round trips regardless of
    /// forward references.
    blocks: HashMap<u64, Block>,
    /// Source value number -> reserved entity slot. Definition sites
    /// are pre-registered in textual order (so numbering is stable),
    /// and each slot is bound to its block parameter or instruction
    /// result when the body parse reaches the definition.
    values: HashMap<u64, Value>,
    func: Function,
}

impl Parser {
    /// Lexes the whole source up front (a module can then be parsed as
    /// a sequence of function units without re-lexing).
    fn new(src: &str) -> Result<Self, ParseError> {
        let mut lexer = Lexer::new(src);
        let mut toks = Vec::new();
        loop {
            let entry = lexer.next_token()?;
            let done = entry.0 == Tok::Eof;
            toks.push(entry);
            if done {
                break;
            }
        }
        let (tok, line, col) = toks[0].clone();
        Ok(Parser {
            toks,
            pos: 0,
            tok,
            line,
            col,
            blocks: HashMap::new(),
            values: HashMap::new(),
            func: Function::new(""),
        })
    }

    /// Pre-pass: register every *definition site* of the **current
    /// function body** in textual order — block headers (an identifier
    /// `blockN` followed by `:` or by `( ... ) :`), the value
    /// parameters inside those headers, and `vN =` instruction results
    /// — so blocks and values are numbered by textual definition
    /// rather than first mention, and both kinds of forward reference
    /// resolve. Called with the cursor just past the function's `{`;
    /// scans up to the matching `}` without moving it. Duplicate value
    /// definitions are reported here, with the position of the second
    /// site.
    fn preregister_defs(&mut self) -> Result<(), ParseError> {
        let mut depth = 0usize;
        let mut i = self.pos;
        let mut reserved = 0usize;
        while i < self.toks.len() {
            match &self.toks[i].0 {
                Tok::LBrace => depth += 1,
                Tok::RBrace if depth == 0 => break,
                Tok::RBrace => depth -= 1,
                Tok::Eof => break,
                Tok::Ident(name) if Self::entity_num(name, "block").is_some() => {
                    // A potential block header: scan its parenthesized
                    // parameter list (if any) without committing until
                    // the trailing `:` confirms the shape.
                    let mut j = i + 1;
                    let mut params: Vec<(u64, usize, usize)> = Vec::new();
                    let mut params_clean = true;
                    if self.toks.get(j).map(|t| &t.0) == Some(&Tok::LParen) {
                        j += 1;
                        while j < self.toks.len() && self.toks[j].0 != Tok::RParen {
                            match &self.toks[j].0 {
                                Tok::Ident(p) => match Self::entity_num(p, "v") {
                                    Some(n) => params.push((n, self.toks[j].1, self.toks[j].2)),
                                    // The body parse will reject this
                                    // parameter list; register nothing.
                                    None => params_clean = false,
                                },
                                Tok::Comma => {}
                                _ => params_clean = false,
                            }
                            j += 1;
                        }
                        j += 1;
                    }
                    if self.toks.get(j).map(|t| &t.0) == Some(&Tok::Colon) {
                        let name = name.clone();
                        self.block_ref(&name)?;
                        if params_clean {
                            for (n, line, col) in params {
                                self.register_value_def(n, line, col, &mut reserved)?;
                            }
                        }
                    }
                }
                // `vN =` is an instruction-result definition.
                Tok::Ident(name)
                    if Self::entity_num(name, "v").is_some()
                        && self.toks.get(i + 1).map(|t| &t.0) == Some(&Tok::Eq) =>
                {
                    let n = Self::entity_num(name, "v").expect("matched by guard");
                    let (line, col) = (self.toks[i].1, self.toks[i].2);
                    self.register_value_def(n, line, col, &mut reserved)?;
                }
                _ => {}
            }
            i += 1;
        }
        self.func.reserve_values(reserved);
        Ok(())
    }

    /// Registers source value `n` as the `next`-th defined value of the
    /// unit, erroring (at the definition's position) on duplicates.
    fn register_value_def(
        &mut self,
        n: u64,
        line: usize,
        col: usize,
        next: &mut usize,
    ) -> Result<(), ParseError> {
        if self.values.insert(n, Value::from_index(*next)).is_some() {
            return Err(ParseError {
                line,
                col,
                message: format!("value `v{n}` defined twice"),
            });
        }
        *next += 1;
        Ok(())
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line,
            col: self.col,
            message: message.into(),
        }
    }

    fn advance(&mut self) -> Result<(), ParseError> {
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        let (tok, line, col) = self.toks[self.pos].clone();
        self.tok = tok;
        self.line = line;
        self.col = col;
        Ok(())
    }

    /// Peeks one token past `self.tok` without consuming anything.
    fn peek_next(&mut self) -> Result<&Tok, ParseError> {
        Ok(self.toks.get(self.pos + 1).map_or(&Tok::Eof, |t| &t.0))
    }

    fn expect(&mut self, tok: Tok) -> Result<(), ParseError> {
        if self.tok == tok {
            self.advance()
        } else {
            Err(self.err(format!("expected {tok}, found {}", self.tok)))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match std::mem::replace(&mut self.tok, Tok::Eof) {
            Tok::Ident(s) => {
                self.advance()?;
                Ok(s)
            }
            other => {
                self.tok = other;
                Err(self.err(format!("expected identifier, found {}", self.tok)))
            }
        }
    }

    /// A function name: a bare identifier or a quoted string.
    fn expect_name(&mut self) -> Result<String, ParseError> {
        match std::mem::replace(&mut self.tok, Tok::Eof) {
            Tok::Ident(s) | Tok::Str(s) => {
                self.advance()?;
                Ok(s)
            }
            other => {
                self.tok = other;
                Err(self.err(format!("expected function name, found {}", self.tok)))
            }
        }
    }

    /// Parses `v<NUM>` or `block<NUM>` identifiers.
    fn entity_num(name: &str, prefix: &str) -> Option<u64> {
        name.strip_prefix(prefix)?.parse().ok()
    }

    fn parse(mut self) -> Result<Function, ParseError> {
        let func = self.parse_unit()?;
        if self.tok != Tok::Eof {
            return Err(self.err(format!("trailing input: {}", self.tok)));
        }
        Ok(func)
    }

    /// Parses one `function %name { ... }` unit, leaving the cursor on
    /// the first token after its closing `}` (the next unit's
    /// `function` keyword, or `Eof`). Per-function entity maps reset
    /// here, so source numbering restarts with every unit.
    fn parse_unit(&mut self) -> Result<Function, ParseError> {
        self.blocks.clear();
        self.values.clear();
        self.func = Function::new("");
        match &self.tok {
            Tok::Ident(k) if k == "function" => self.advance()?,
            _ => return Err(self.err(format!("expected `function`, found {}", self.tok))),
        }
        self.expect(Tok::Percent)?;
        self.func.name = self.expect_name()?;

        // Optional (and ignored) parameter list echoing block0's params.
        if self.tok == Tok::LParen {
            while self.tok != Tok::RParen {
                if self.tok == Tok::Eof {
                    // `advance` saturates at `Eof`; erroring here (not
                    // spinning) keeps the parser total on truncated
                    // input like `function %f (`.
                    return Err(self.err("unterminated function parameter list"));
                }
                self.advance()?;
            }
            self.advance()?;
        }
        self.expect(Tok::LBrace)?;
        self.preregister_defs()?;

        while self.tok != Tok::RBrace {
            self.parse_block()?;
        }
        self.expect(Tok::RBrace)?;

        // Every referenced block must have been defined with a header.
        for b in self.func.blocks() {
            if !self.func.is_terminated(b) {
                return Err(ParseError {
                    line: self.line,
                    col: self.col,
                    message: format!("{b} has no terminator (or was referenced but never defined)"),
                });
            }
        }
        Ok(std::mem::replace(&mut self.func, Function::new("")))
    }

    fn block_ref(&mut self, name: &str) -> Result<Block, ParseError> {
        let n = Self::entity_num(name, "block")
            .ok_or_else(|| self.err(format!("expected block reference, found `{name}`")))?;
        if let Some(&b) = self.blocks.get(&n) {
            return Ok(b);
        }
        let b = self.func.add_block();
        self.blocks.insert(n, b);
        Ok(b)
    }

    fn value_use(&mut self, name: &str) -> Result<Value, ParseError> {
        let n = Self::entity_num(name, "v")
            .ok_or_else(|| self.err(format!("expected value reference, found `{name}`")))?;
        self.values
            .get(&n)
            .copied()
            .ok_or_else(|| self.err(format!("use of undefined value `v{n}`")))
    }

    /// The reserved slot for a definition site the pre-pass registered.
    fn value_def_slot(&mut self, name: &str) -> Result<Value, ParseError> {
        let n = Self::entity_num(name, "v")
            .ok_or_else(|| self.err(format!("expected value name, found `{name}`")))?;
        self.values
            .get(&n)
            .copied()
            .ok_or_else(|| self.err(format!("value `v{n}` has no registered definition")))
    }

    /// `true` iff the current token opens a block definition:
    /// a `blockN` identifier followed by `(` or `:`.
    fn at_block_header(&mut self) -> Result<bool, ParseError> {
        let is_block_name = matches!(&self.tok, Tok::Ident(name)
            if Self::entity_num(name, "block").is_some());
        if !is_block_name {
            return Ok(false);
        }
        Ok(matches!(self.peek_next()?, Tok::LParen | Tok::Colon))
    }

    fn parse_block(&mut self) -> Result<(), ParseError> {
        let name = self.expect_ident()?;
        let block = self.block_ref(&name)?;
        if self.func.is_terminated(block) || !self.func.block_insts(block).is_empty() {
            return Err(self.err(format!("{block} defined twice")));
        }
        if self.tok == Tok::LParen {
            self.advance()?;
            while self.tok != Tok::RParen {
                let pname = self.expect_ident()?;
                let v = self.value_def_slot(&pname)?;
                self.func.bind_block_param(block, v);
                if self.tok == Tok::Comma {
                    self.advance()?;
                }
            }
            self.advance()?;
        }
        self.expect(Tok::Colon)?;

        loop {
            if self.tok == Tok::RBrace || self.at_block_header()? {
                if !self.func.is_terminated(block) {
                    return Err(self.err(format!("{block} has no terminator")));
                }
                return Ok(());
            }
            match &self.tok {
                Tok::Ident(_) => {
                    let ident = self.expect_ident()?;
                    self.parse_inst(block, ident)?;
                }
                other => return Err(self.err(format!("expected instruction, found {other}"))),
            }
        }
    }

    fn parse_call(&mut self) -> Result<BlockCall, ParseError> {
        let name = self.expect_ident()?;
        let block = self.block_ref(&name)?;
        let mut args = Vec::new();
        if self.tok == Tok::LParen {
            self.advance()?;
            while self.tok != Tok::RParen {
                let a = self.expect_ident()?;
                args.push(self.value_use(&a)?);
                if self.tok == Tok::Comma {
                    self.advance()?;
                }
            }
            self.advance()?;
        }
        Ok(BlockCall::with_args(block, args))
    }

    /// Parses one instruction whose first identifier is already consumed.
    fn parse_inst(&mut self, block: Block, first: String) -> Result<(), ParseError> {
        if self.func.is_terminated(block) {
            return Err(self.err(format!("instruction after terminator of {block}")));
        }
        match first.as_str() {
            "jump" => {
                let dest = self.parse_call()?;
                self.func.append_inst(block, InstData::Jump { dest });
            }
            "brif" => {
                let c = self.expect_ident()?;
                let cond = self.value_use(&c)?;
                self.expect(Tok::Comma)?;
                let then_dest = self.parse_call()?;
                self.expect(Tok::Comma)?;
                let else_dest = self.parse_call()?;
                self.func.append_inst(
                    block,
                    InstData::Brif {
                        cond,
                        then_dest,
                        else_dest,
                    },
                );
            }
            "return" => {
                let mut args = Vec::new();
                while let Tok::Ident(name) = &self.tok {
                    if !name.starts_with('v') || Self::entity_num(name, "v").is_none() {
                        break;
                    }
                    let name = self.expect_ident()?;
                    args.push(self.value_use(&name)?);
                    if self.tok == Tok::Comma {
                        self.advance()?;
                    } else {
                        break;
                    }
                }
                self.func.append_inst(block, InstData::Return { args });
            }
            _ => {
                // `vN = op ...`
                self.expect(Tok::Eq)
                    .map_err(|_| self.err(format!("unknown instruction `{first}`")))?;
                let op = self.expect_ident()?;
                let data = self.parse_value_op(&op)?;
                let result = self.value_def_slot(&first)?;
                self.func.append_inst_bound(block, data, result);
            }
        }
        Ok(())
    }

    fn parse_value_op(&mut self, op: &str) -> Result<InstData, ParseError> {
        if op == "iconst" {
            let imm = match self.tok {
                Tok::Int(i) => i,
                _ => return Err(self.err(format!("expected integer, found {}", self.tok))),
            };
            self.advance()?;
            return Ok(InstData::IntConst { imm });
        }
        if let Some(u) = UnaryOp::ALL.iter().find(|u| u.mnemonic() == op) {
            let a = self.expect_ident()?;
            let arg = self.value_use(&a)?;
            return Ok(InstData::Unary { op: *u, arg });
        }
        if let Some(b) = BinaryOp::ALL.iter().find(|b| b.mnemonic() == op) {
            let a0 = self.expect_ident()?;
            let x = self.value_use(&a0)?;
            self.expect(Tok::Comma)?;
            let a1 = self.expect_ident()?;
            let y = self.value_use(&a1)?;
            return Ok(InstData::Binary {
                op: *b,
                args: [x, y],
            });
        }
        Err(self.err(format!("unknown opcode `{op}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_round_trips() {
        let src = "\
function %demo {
block0(v0):
    v2 = iconst 7
    v3 = iadd v0, v2
    brif v3, block1(v3), block2
block1(v1):
    jump block2
block2:
    return v1
}";
        let f = parse_function(src).expect("parses");
        // Entities are renumbered densely; re-print and re-parse must be a
        // fixed point.
        let printed = f.to_string();
        let f2 = parse_function(&printed).expect("reparses");
        assert_eq!(printed, f2.to_string());
        assert_eq!(f.num_blocks(), 3);
        assert_eq!(f.block_params(f.entry_block()).len(), 1);
        f.check_use_chains().expect("chains consistent");
    }

    #[test]
    fn accepts_header_params_and_comments() {
        let src = "
; leading comment
function %f(v0) { ; trailing comment
block0(v0):
    return v0 ; done
}";
        let f = parse_function(src).expect("parses");
        assert_eq!(f.name, "f");
        assert_eq!(f.params().len(), 1);
    }

    #[test]
    fn negative_constants() {
        let f = parse_function("function %f { block0: v0 = iconst -42\n return v0 }").unwrap();
        let k = f.block_insts(f.entry_block())[0];
        assert_eq!(f.inst_data(k), &InstData::IntConst { imm: -42 });
    }

    #[test]
    fn forward_block_references_work() {
        let src = "function %f { block0: jump block5 block5: return }";
        let f = parse_function(src).expect("parses");
        assert_eq!(f.num_blocks(), 2);
    }

    #[test]
    fn return_without_values_then_next_block() {
        let src = "function %f { block0: brif v0, block1, block2 block1: return block2: return }";
        // v0 undefined -> error, but the shape we care about is tested via
        // a defined value:
        assert!(parse_function(src).is_err());
        let src = "function %f {
            block0(v9): brif v9, block1, block2
            block1: return
            block2: return v9
        }";
        let f = parse_function(src).expect("parses");
        assert_eq!(f.num_blocks(), 3);
    }

    #[test]
    fn error_on_undefined_value() {
        let e = parse_function("function %f { block0: return v3 }").unwrap_err();
        assert!(e.message.contains("undefined value"), "{e}");
        assert!(e.line >= 1);
    }

    #[test]
    fn forward_value_references_work() {
        // block1 textually precedes block2, which dominates it through
        // the edge chain block0 -> block2 -> block1: the use of v1 in
        // block1 appears before its defining header. This is exactly
        // what printing a function whose layout order differs from
        // dominance order produces.
        let src = "function %f {
            block0(v0): jump block2(v0)
            block1: return v1
            block2(v1): jump block1
        }";
        let f = parse_function(src).expect("forward value ref parses");
        f.check_use_chains().expect("chains consistent");
        // Fixed point: printing and re-parsing is stable.
        let printed = f.to_string();
        let f2 = parse_function(&printed).expect("reparses");
        assert_eq!(printed, f2.to_string());
        // Numbering is textual definition order: v0 = entry param,
        // v1 = block2's param.
        assert_eq!(f.params().len(), 1);
        assert_eq!(
            f.block_params(f.block("block2").unwrap()),
            &[f.value("v1").unwrap()]
        );
    }

    #[test]
    fn forward_inst_result_reference_works() {
        let src = "function %f {
            block0: jump block2
            block1: return v9
            block2: v9 = iconst 3
                jump block1
        }";
        let f = parse_function(src).expect("parses");
        f.check_use_chains().expect("chains consistent");
        let printed = f.to_string();
        assert_eq!(printed, parse_function(&printed).unwrap().to_string());
    }

    #[test]
    fn truncated_function_param_list_errors_instead_of_hanging() {
        // Regression: `advance()` saturates at Eof, so this loop used
        // to spin forever.
        let e = parse_function("function %f (").unwrap_err();
        assert!(e.message.contains("unterminated"), "{e}");
        let e = parse_function("function %f (v0, v1").unwrap_err();
        assert!(e.message.contains("unterminated"), "{e}");
    }

    #[test]
    fn quoted_names_parse_and_round_trip() {
        let src = "function %\"two words\" { block0: return }";
        let f = parse_function(src).expect("parses");
        assert_eq!(f.name, "two words");
        let printed = f.to_string();
        assert!(printed.starts_with("function %\"two words\""), "{printed}");
        assert_eq!(parse_function(&printed).unwrap().name, "two words");

        // Escapes cover quotes, backslashes and control characters.
        let mut g = Function::new("a\"b\\c\nd\u{1}e");
        let b = g.add_block();
        g.ins(b).ret(vec![]);
        let printed = g.to_string();
        let g2 = parse_function(&printed).expect("escaped name reparses");
        assert_eq!(g2.name, g.name);
        assert_eq!(printed, g2.to_string());
    }

    #[test]
    fn empty_and_numeric_names_are_quoted() {
        let mut f = Function::new("");
        let b = f.add_block();
        f.ins(b).ret(vec![]);
        let printed = f.to_string();
        assert!(printed.starts_with("function %\"\""), "{printed}");
        assert_eq!(parse_function(&printed).unwrap().name, "");

        let mut f = Function::new("123");
        let b = f.add_block();
        f.ins(b).ret(vec![]);
        let printed = f.to_string();
        assert_eq!(parse_function(&printed).unwrap().name, "123");
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(parse_function("function %\"oops { block0: return }").is_err());
        assert!(parse_function("function %\"bad\\q\" { block0: return }").is_err());
        assert!(parse_function("function %\"bad\\u{}\" { block0: return }").is_err());
        assert!(parse_function("function %\"bad\\u{d800}\" { block0: return }").is_err());
        assert!(parse_function("function %\"e\\").is_err());
    }

    #[test]
    fn overflowing_integer_literal_is_an_error() {
        let e = parse_function("function %f { block0: v0 = iconst 99999999999999999999\n return }")
            .unwrap_err();
        assert!(e.message.contains("invalid integer literal"), "{e}");
        // An overflowing *entity* number is not a value reference.
        assert!(parse_function(
            "function %f { block0: v99999999999999999999999 = iconst 1\n return }"
        )
        .is_err());
    }

    #[test]
    fn error_on_double_definition() {
        let e = parse_function("function %f { block0: v1 = iconst 1 v1 = iconst 2\n return }")
            .unwrap_err();
        assert!(e.message.contains("defined twice"), "{e}");
    }

    #[test]
    fn error_on_missing_terminator() {
        let e = parse_function("function %f { block0: v1 = iconst 1 }").unwrap_err();
        assert!(e.message.contains("terminator"), "{e}");
    }

    #[test]
    fn error_on_unknown_opcode() {
        let e = parse_function("function %f { block0: v1 = frobnicate 3\n return }").unwrap_err();
        assert!(e.message.contains("unknown opcode"), "{e}");
    }

    #[test]
    fn error_on_garbage() {
        assert!(parse_function("").is_err());
        assert!(parse_function("function f {}").is_err());
        assert!(parse_function("function %f { block0: return } extra").is_err());
        assert!(parse_function("function %f { block0: @ }").is_err());
    }

    #[test]
    fn referenced_but_undefined_block_is_an_error() {
        let e = parse_function("function %f { block0: jump block9 }").unwrap_err();
        assert!(
            e.message.contains("never defined") || e.message.contains("terminator"),
            "{e}"
        );
    }

    #[test]
    fn parses_a_module_with_forward_references() {
        let m = parse_module(
            "function %first {
                block0(v0): jump block2
                block2: return v0
             }
             ; a comment between units
             function %second { block0: return }",
        )
        .expect("parses");
        assert_eq!(m.len(), 2);
        assert_eq!(m.func(0).num_blocks(), 2);
        assert_eq!(m.func(1).num_blocks(), 1);
    }

    #[test]
    fn module_block_preregistration_is_per_function() {
        // %b's headers must not leak block entities into %a: each unit
        // sees exactly its own blocks, in its own textual order.
        let m = parse_module(
            "function %a { block0: jump block1 block1: return }
             function %b { block0: jump block7 block7: return }",
        )
        .expect("parses");
        assert_eq!(m.func(0).num_blocks(), 2);
        assert_eq!(m.func(1).num_blocks(), 2);
    }

    #[test]
    fn module_errors() {
        // Empty source.
        assert!(parse_module("").is_err());
        // Duplicate names.
        let e = parse_module("function %f { block0: return } function %f { block0: return }")
            .unwrap_err();
        assert!(e.message.contains("defined twice"), "{e}");
        // A syntax error in the second unit reports its position.
        let e = parse_module("function %a { block0: return }\nfunction %b { block0: v1 = bogus }")
            .unwrap_err();
        assert_eq!(e.line, 2);
        // A single function with trailing garbage still errors through
        // parse_function but is two units for parse_module only if the
        // garbage is a function.
        assert!(parse_module("function %a { block0: return } extra").is_err());
    }

    #[test]
    fn single_function_parser_rejects_modules() {
        let e = parse_function(
            "function %a { block0: return }
             function %b { block0: return }",
        )
        .unwrap_err();
        assert!(e.message.contains("trailing input"), "{e}");
    }

    #[test]
    fn error_positions_are_useful() {
        let e =
            parse_function("function %f {\nblock0:\n    v1 = iconst x\n return\n}").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.col > 1);
    }
}
