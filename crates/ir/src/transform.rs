//! IR-level transformations.
//!
//! * [`split_critical_edges`] — the standard prerequisite of SSA
//!   destruction. A *critical edge* runs from a block with several
//!   successors to a block with several predecessors; the copies that
//!   replace φ-functions need a spot "on the edge" (the paper's §2.2:
//!   the φ assignment happens on the way from the predecessor), which
//!   only exists after splitting. **Changes the CFG** — liveness
//!   precomputations must be redone afterwards.
//! * [`remove_dead_block_params`] — drops φs whose result is never
//!   used, cascading (removing an argument may kill the producing φ's
//!   last use). **Does not change the CFG** — the paper's checker stays
//!   valid across it, which `tests` demonstrate.

use fastlive_graph::Cfg as _;

use crate::entities::Block;
use crate::function::Function;
use crate::instr::InstData;

/// Splits every critical edge of `func` by inserting an empty block with
/// a `jump`, moving the branch arguments onto the new edge. Returns the
/// newly created blocks.
///
/// After this pass, any block with multiple predecessors has only
/// single-successor predecessors, so SSA destruction can place copies at
/// the end of predecessors without affecting other paths.
///
/// # Examples
///
/// ```
/// use fastlive_graph::Cfg as _;
/// use fastlive_ir::{parse_function, split_critical_edges, verify_structure};
///
/// // block0 has two successors; block2 has two predecessors: the edge
/// // block0 -> block2 is critical.
/// let mut f = parse_function(
///     "function %f { block0(v0):
///         brif v0, block1, block2
///     block1:
///         jump block2
///     block2:
///         return }",
/// )?;
/// let new = split_critical_edges(&mut f);
/// assert_eq!(new.len(), 1);
/// verify_structure(&f)?;
/// assert_eq!(f.num_blocks(), 4);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn split_critical_edges(func: &mut Function) -> Vec<Block> {
    let mut created = Vec::new();
    let blocks: Vec<Block> = func.blocks().collect();
    for b in blocks {
        let Some(term) = func.terminator(b) else {
            continue;
        };
        let n_targets = func.inst_data(term).branch_targets().len();
        if n_targets < 2 {
            continue; // jumps and returns never start critical edges
        }
        for ti in 0..n_targets {
            let (dest, args) = {
                let targets = func.inst_data(term).branch_targets();
                (targets[ti].block, targets[ti].args.clone())
            };
            if func.preds(dest.as_u32()).len() < 2 {
                continue; // not critical
            }
            let mid = func.add_block();
            created.push(mid);
            // The new block forwards the original arguments; the branch
            // now targets `mid` with no arguments.
            func.redirect_branch_target(term, ti, mid, Vec::new());
            func.append_inst(
                mid,
                InstData::Jump {
                    dest: crate::instr::BlockCall::with_args(dest, args),
                },
            );
        }
    }
    created
}

/// Removes every non-entry block parameter whose value is unused,
/// together with the branch arguments feeding it, iterating until no
/// dead parameter remains (an argument removal can kill its producer's
/// last use). Returns the number of parameters removed.
///
/// # Examples
///
/// ```
/// use fastlive_ir::{parse_function, remove_dead_block_params};
///
/// // block1's parameter is never read.
/// let mut f = parse_function(
///     "function %f { block0(v0):
///          jump block1(v0)
///      block1(v1):
///          return v0 }",
/// )?;
/// assert_eq!(remove_dead_block_params(&mut f), 1);
/// assert!(f.block_params(f.block_by_index(1)).is_empty());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn remove_dead_block_params(func: &mut Function) -> usize {
    let entry = func.entry_block();
    let mut removed = 0;
    loop {
        let mut victim = None;
        'scan: for b in func.blocks() {
            if b == entry {
                continue;
            }
            for (i, &p) in func.block_params(b).iter().enumerate() {
                if func.uses(p).is_empty() {
                    victim = Some((b, i));
                    break 'scan;
                }
            }
        }
        match victim {
            Some((b, i)) => {
                func.remove_block_param(b, i);
                removed += 1;
            }
            None => return removed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp;
    use crate::parser::parse_function;
    use crate::verify::verify_structure;

    /// No block with ≥2 preds may have a pred with ≥2 succs.
    fn assert_no_critical_edges(f: &Function) {
        for b in f.blocks() {
            if f.preds(b.as_u32()).len() >= 2 {
                for &p in f.preds(b.as_u32()) {
                    assert!(
                        f.succs(p).len() < 2,
                        "critical edge block{p} -> {b} survived"
                    );
                }
            }
        }
    }

    #[test]
    fn splits_diamond_shortcut() {
        let mut f = parse_function(
            "function %f { block0(v0):
                brif v0, block1, block2
            block1:
                jump block2
            block2:
                return v0 }",
        )
        .unwrap();
        let before = interp::run(&f, &[1], 100).unwrap().returned;
        let created = split_critical_edges(&mut f);
        assert_eq!(created.len(), 1);
        verify_structure(&f).expect("still valid");
        assert_no_critical_edges(&f);
        assert_eq!(interp::run(&f, &[1], 100).unwrap().returned, before);
    }

    #[test]
    fn loop_back_edge_with_args_is_split() {
        let mut f = parse_function(
            "function %count { block0(v0):
                v1 = iconst 0
                jump block1(v1)
            block1(v2):
                v3 = iconst 1
                v4 = iadd v2, v3
                v5 = icmp_slt v4, v0
                brif v5, block1(v4), block2
            block2:
                return v4 }",
        )
        .unwrap();
        // block1 has 2 preds (entry, itself) and its pred block1 has 2
        // succs: the back edge is critical.
        let created = split_critical_edges(&mut f);
        assert_eq!(created.len(), 1);
        verify_structure(&f).expect("still valid");
        assert_no_critical_edges(&f);
        // Arguments moved onto the new edge block's jump.
        let mid = created[0];
        let j = f.terminator(mid).unwrap();
        match f.inst_data(j) {
            InstData::Jump { dest } => assert_eq!(dest.args.len(), 1),
            other => panic!("expected jump, got {other:?}"),
        }
        // Semantics preserved.
        assert_eq!(interp::run(&f, &[5], 1_000).unwrap().returned, vec![5]);
    }

    #[test]
    fn no_op_without_critical_edges() {
        let mut f = parse_function(
            "function %f { block0(v0):
                brif v0, block1, block2
            block1:
                return v0
            block2:
                return }",
        )
        .unwrap();
        assert!(split_critical_edges(&mut f).is_empty());
        assert_eq!(f.num_blocks(), 3);
    }

    #[test]
    fn dead_param_cascade() {
        // v1 feeds v2 which feeds nothing: removing v2's parameter
        // kills v1's last use, so v1's parameter dies too.
        let mut f = parse_function(
            "function %cascade { block0(v0):
                jump block1(v0)
            block1(v1):
                jump block2(v1)
            block2(v2):
                return v0 }",
        )
        .unwrap();
        assert_eq!(remove_dead_block_params(&mut f), 2);
        verify_structure(&f).expect("still valid");
        assert!(f.block_params(f.block_by_index(1)).is_empty());
        assert!(f.block_params(f.block_by_index(2)).is_empty());
        assert_eq!(interp::run(&f, &[9], 100).unwrap().returned, vec![9]);
        f.check_use_chains().expect("chains consistent");
    }

    #[test]
    fn live_params_survive() {
        let mut f = parse_function(
            "function %keep { block0(v0):
                jump block1(v0)
            block1(v1):
                return v1 }",
        )
        .unwrap();
        assert_eq!(remove_dead_block_params(&mut f), 0);
        assert_eq!(f.block_params(f.block_by_index(1)).len(), 1);
    }

    #[test]
    fn middle_param_removal_reindexes_and_fixes_branches() {
        // Three params, the middle one dead: later params shift down and
        // every predecessor's argument list shrinks coherently.
        let mut f = parse_function(
            "function %mid { block0(v0, v1):
                brif v0, block1(v0, v1, v0), block1(v1, v0, v1)
            block1(v2, v3, v4):
                v5 = iadd v2, v4
                return v5 }",
        )
        .unwrap();
        assert_eq!(remove_dead_block_params(&mut f), 1);
        verify_structure(&f).expect("branch arity stays consistent");
        let b1 = f.block_by_index(1);
        assert_eq!(f.block_params(b1).len(), 2);
        // then-arm passed (v0, _, v0): the survivors compute v0 + v0.
        assert_eq!(interp::run(&f, &[21, 5], 100).unwrap().returned, vec![42]);
        // else-arm passed (v1, _, v1): v1 + v1.
        assert_eq!(interp::run(&f, &[0, 8], 100).unwrap().returned, vec![16]);
        f.check_use_chains().expect("chains consistent");
    }

    #[test]
    #[should_panic(expected = "still has uses")]
    fn removing_a_used_param_is_rejected() {
        let mut f = parse_function(
            "function %used { block0(v0):
                jump block1(v0)
            block1(v1):
                return v1 }",
        )
        .unwrap();
        f.remove_block_param(f.block_by_index(1), 0);
    }

    #[test]
    #[should_panic(expected = "function signature")]
    fn entry_params_cannot_be_removed() {
        let mut f = parse_function("function %sig { block0(v0): return }").unwrap();
        f.remove_block_param(f.entry_block(), 0);
    }

    #[test]
    fn brif_to_same_block_twice() {
        // Both targets point at block1, which therefore has 2 preds; both
        // edges are critical and each gets its own split block.
        let mut f = parse_function(
            "function %f { block0(v0):
                brif v0, block1(v0), block1(v0)
            block1(v1):
                return v1 }",
        )
        .unwrap();
        let created = split_critical_edges(&mut f);
        assert_eq!(created.len(), 2);
        verify_structure(&f).expect("still valid");
        assert_no_critical_edges(&f);
        assert_eq!(interp::run(&f, &[9], 100).unwrap().returned, vec![9]);
    }
}
