//! [`ProgramPoint`]: an instruction-granularity position inside a
//! block, the unit of the workspace-wide point-precise liveness API.
//!
//! The paper's checker answers block-granularity questions; its
//! flagship client — SSA destruction via the Budimlić interference test
//! (§6.2) — needs liveness *at an instruction position* ("whether one
//! variable is live directly after the instruction that defines the
//! other one"). A `ProgramPoint` names exactly the positions such
//! queries talk about: the **gaps between instructions** of one block.
//!
//! ```text
//! blockN(params):      ← BlockEntry: after parameter binding,
//!     inst a             before the first instruction
//!                      ← after instruction 0
//!     inst b
//!                      ← after instruction 1
//!     terminator
//!                      ← after the terminator (the block's last point)
//! ```
//!
//! Points of the *same block* are totally ordered (entry first, then
//! after-instruction positions in layout order); points of different
//! blocks are incomparable — cross-block "before/after" is a dominance
//! question, not a layout one — which is why `ProgramPoint` implements
//! [`PartialOrd`] but not `Ord`.

use crate::entities::Block;

/// A position between the instructions of one block: the block entry
/// (after parameter binding) or the gap just after the `i`-th
/// instruction.
///
/// Construct points through [`ProgramPoint::block_entry`] /
/// [`ProgramPoint::after`] when the position is known, or through the
/// [`Function`](crate::Function) accessors
/// ([`def_point`](crate::Function::def_point),
/// [`point_after`](crate::Function::point_after),
/// [`block_points`](crate::Function::block_points)) when it has to be
/// resolved from an instruction or value.
///
/// # Examples
///
/// ```
/// use fastlive_ir::{parse_function, ProgramPoint};
///
/// let f = parse_function(
///     "function %f { block0(v0):
///          v1 = iconst 1
///          v2 = iadd v0, v1
///          return v2 }",
/// )?;
/// let b0 = f.entry_block();
/// let entry = ProgramPoint::block_entry(b0);
/// let after_iconst = ProgramPoint::after(b0, 0);
///
/// // Same-block points are ordered; the entry precedes everything.
/// assert!(entry < after_iconst);
///
/// // v1 is defined by the iconst: its definition point is after it.
/// let v1 = f.value("v1").unwrap();
/// assert_eq!(f.def_point(v1), Some(after_iconst));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash)]
pub struct ProgramPoint {
    block: Block,
    /// 0 = block entry; `i + 1` = after the `i`-th instruction.
    pos: u32,
}

impl ProgramPoint {
    /// The entry point of `block`: after its parameters bind, before
    /// its first instruction. Block parameters (φ-results) are defined
    /// *at* this point.
    pub fn block_entry(block: Block) -> Self {
        ProgramPoint { block, pos: 0 }
    }

    /// The point just after the instruction at layout position
    /// `inst_index` of `block`. The index is not range-checked here —
    /// resolve it through
    /// [`point_after`](crate::Function::point_after) when only an
    /// [`Inst`](crate::Inst) is at hand.
    pub fn after(block: Block, inst_index: usize) -> Self {
        debug_assert!(inst_index < u32::MAX as usize, "instruction index overflow");
        ProgramPoint {
            block,
            pos: inst_index as u32 + 1,
        }
    }

    /// The block this point lies in.
    pub fn block(self) -> Block {
        self.block
    }

    /// `true` for the block-entry point.
    pub fn is_block_entry(self) -> bool {
        self.pos == 0
    }

    /// Layout index of the instruction this point follows, or `None`
    /// for the block entry.
    pub fn inst_index(self) -> Option<usize> {
        (self.pos > 0).then(|| self.pos as usize - 1)
    }

    /// Layout index of the first instruction **at or after** this
    /// point: everything in `block_insts(b)[p.next_index()..]` executes
    /// after `p`. (Entry → 0; after instruction `i` → `i + 1`.)
    pub fn next_index(self) -> usize {
        self.pos as usize
    }
}

/// Points of the same block compare by position (entry first); points
/// of different blocks are incomparable (`None`).
impl PartialOrd for ProgramPoint {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        (self.block == other.block).then(|| self.pos.cmp(&other.pos))
    }
}

impl std::fmt::Display for ProgramPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.inst_index() {
            None => write!(f, "{}@entry", self.block),
            Some(i) => write!(f, "{}@{}", self.block, i),
        }
    }
}

impl std::fmt::Debug for ProgramPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_function;

    #[test]
    fn ordering_within_a_block() {
        let b = Block::from_index(0);
        let entry = ProgramPoint::block_entry(b);
        let p0 = ProgramPoint::after(b, 0);
        let p1 = ProgramPoint::after(b, 1);
        assert!(entry < p0);
        assert!(p0 < p1);
        assert!(entry <= entry);
        assert_eq!(entry.partial_cmp(&p1), Some(std::cmp::Ordering::Less));
    }

    #[test]
    fn cross_block_points_are_incomparable() {
        let p = ProgramPoint::block_entry(Block::from_index(0));
        let q = ProgramPoint::after(Block::from_index(1), 3);
        assert_eq!(p.partial_cmp(&q), None);
        assert_eq!(q.partial_cmp(&p), None);
        assert_ne!(p, q);
    }

    #[test]
    fn accessors_round_trip() {
        let b = Block::from_index(2);
        let entry = ProgramPoint::block_entry(b);
        assert!(entry.is_block_entry());
        assert_eq!(entry.inst_index(), None);
        assert_eq!(entry.next_index(), 0);
        assert_eq!(entry.block(), b);
        let after = ProgramPoint::after(b, 4);
        assert!(!after.is_block_entry());
        assert_eq!(after.inst_index(), Some(4));
        assert_eq!(after.next_index(), 5);
        assert_eq!(format!("{entry} {after}"), "block2@entry block2@4");
    }

    #[test]
    fn block_points_enumerate_every_gap() {
        let f = parse_function(
            "function %f { block0(v0):
                v1 = iconst 1
                v2 = iadd v0, v1
                return v2 }",
        )
        .expect("parses");
        let b0 = f.entry_block();
        let points: Vec<ProgramPoint> = f.block_points(b0).collect();
        // Entry + one point after each of the three instructions.
        assert_eq!(points.len(), 4);
        assert_eq!(points[0], ProgramPoint::block_entry(b0));
        assert_eq!(points[3], ProgramPoint::after(b0, 2));
        // Enumeration order is program order.
        for w in points.windows(2) {
            assert!(w[0] < w[1]);
        }
    }
}
